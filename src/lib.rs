//! # vodplace — optimal content placement for a large-scale VoD system
//!
//! A from-scratch Rust reproduction of *"Optimal Content Placement for
//! a Large-Scale VoD System"* (Applegate, Archer, Gopalakrishnan, Lee,
//! Ramakrishnan — ACM CoNEXT 2010 / IEEE/ACM ToN 2016): a mixed
//! integer program that places videos across the video hub offices
//! (VHOs) of an IPTV backbone so that every request can be served
//! within disk and link-bandwidth limits at minimum network cost, and
//! the exponential-potential-function (EPF) Lagrangian decomposition
//! that solves it at scales where generic LP solvers collapse.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `vod-model` | ids, units, time, the video catalog |
//! | [`net`] | `vod-net` | backbone graphs, routing, topology generators |
//! | [`trace`] | `vod-trace` | workload synthesis, demand aggregation, trace analytics |
//! | [`lp`] | `vod-lp` | generic dense simplex + branch-and-bound (the "CPLEX" baseline) |
//! | [`core`] | `vod-core` | the MIP, the EPF solver, rounding, feasibility searches |
//! | [`sim`] | `vod-sim` | discrete-event streaming simulator, LRU/LFU caches, strategy setups |
//! | [`estimate`] | `vod-estimate` | history / series / blockbuster demand estimators |
//!
//! ## Quickstart
//!
//! ```
//! use vodplace::prelude::*;
//!
//! // A small backbone, a synthetic library and a week of requests.
//! let mut network = vodplace::net::topologies::mesh_backbone(8, 12, 7);
//! network.set_uniform_capacity(Mbps::from_gbps(1.0));
//! let library = synthesize_library(&LibraryConfig::default_for(200, 7, 7));
//! let trace = generate_trace(&library, &network, &TraceConfig::default_for(1500.0, 7, 7));
//!
//! // Demand input: aggregate requests + the two peak-hour windows.
//! let windows = vodplace::trace::analysis::select_peak_windows(&trace, &library, 3600, 2);
//! let demand = DemandInput::from_trace(&trace, &library, network.num_nodes(), windows);
//!
//! // Solve the placement MIP (EPF decomposition + rounding).
//! let instance = MipInstance::new(
//!     network, library, demand,
//!     &DiskConfig::UniformRatio { ratio: 2.0 },
//!     1.0, 0.0, None,
//! );
//! let out = solve_placement(&instance, &EpfConfig { max_passes: 40, ..Default::default() })
//!     .expect("well-formed instance");
//! assert_eq!(out.placement.n_videos(), instance.n_videos());
//! ```

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub use vod_core as core;
pub use vod_estimate as estimate;
pub use vod_lp as lp;
pub use vod_model as model;
pub use vod_net as net;
pub use vod_sim as sim;
pub use vod_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use vod_core::{
        solve_placement, DiskConfig, EpfConfig, MipInstance, Placement, PlacementCost,
    };
    pub use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
    pub use vod_model::{Catalog, Gigabytes, Mbps, SimTime, TimeWindow, VhoId, VideoId};
    pub use vod_net::{Network, PathSet};
    pub use vod_sim::{simulate, CacheKind, PolicyKind, SimConfig, VhoConfig};
    pub use vod_trace::{
        generate_trace, synthesize_library, DemandInput, LibraryConfig, Trace, TraceConfig,
    };
}
