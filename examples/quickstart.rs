//! Quickstart: build a backbone, synthesize a workload, solve the
//! placement MIP with the EPF decomposition, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use vodplace::prelude::*;

fn main() {
    // 1. A 10-VHO backbone with 1 Gb/s links.
    let mut network = vodplace::net::topologies::mesh_backbone(10, 16, 42);
    network.set_uniform_capacity(Mbps::from_gbps(1.0));
    println!(
        "network: {} VHOs, {} directed links",
        network.num_nodes(),
        network.num_links()
    );

    // 2. A 500-video library and one week of requests (~20k).
    let library = synthesize_library(&LibraryConfig::default_for(500, 7, 42));
    let trace = generate_trace(&library, &network, &TraceConfig::default_for(3000.0, 7, 42));
    println!(
        "library: {} videos ({:.0} GB); trace: {} requests over {} days",
        library.len(),
        library.total_size().value(),
        trace.len(),
        trace.horizon().secs() / 86_400
    );

    // 3. Demand input: aggregate demand plus the two peak-hour windows
    //    at which link constraints are enforced (Section VI-B).
    let windows = vodplace::trace::analysis::select_peak_windows(&trace, &library, 3600, 2);
    println!("peak windows: {} and {}", windows[0], windows[1]);
    let demand = DemandInput::from_trace(&trace, &library, network.num_nodes(), windows);

    // 4. Solve: aggregate disk = 2× the library, spread uniformly.
    let instance = MipInstance::new(
        network,
        library,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    );
    let cfg = EpfConfig {
        max_passes: std::env::var("P")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120),
        seed: 42,
        ..Default::default()
    };
    let out = solve_placement(&instance, &cfg).expect("quickstart instance is well-formed");

    println!(
        "\nEPF solve: {} passes, {} block steps, {:.1} ms",
        out.epf.passes,
        out.epf.block_steps,
        out.epf.wall.as_secs_f64() * 1e3
    );
    println!(
        "fractional: objective {:.1} GB·hop, lower bound {:.1}, max violation {:.2} %",
        out.fractional.objective,
        out.fractional.lower_bound,
        out.fractional.max_violation * 100.0
    );
    println!(
        "rounded:    objective {:.1} GB·hop, {} videos re-solved, violation {:.2} %, gap {:.2} %",
        out.rounding.objective,
        out.rounding.videos_rounded,
        out.rounding.max_violation * 100.0,
        out.rounding.optimality_gap.unwrap_or(f64::NAN) * 100.0
    );

    // 5. Inspect the placement: copy counts by popularity (Fig. 8's
    //    shape: popular videos replicated more, but not everywhere).
    let ranked = instance.demand.aggregate.rank_videos();
    let counts = out.placement.copy_counts(&ranked);
    println!(
        "\ncopies of the 5 most-requested videos: {:?}",
        &counts[..5]
    );
    println!(
        "copies of the 5 least-requested videos: {:?}",
        &counts[counts.len() - 5..]
    );
    println!(
        "total copies: {} ({:.2}× the library)",
        out.placement.total_copies(),
        out.placement.total_copies() as f64 / instance.n_videos() as f64
    );

    let usage = out.placement.disk_usage(&instance.catalog);
    for (i, (u, d)) in usage.iter().zip(&instance.disks).enumerate().take(3) {
        println!(
            "VHO {i}: {:.0} / {:.0} GB pinned ({:.0} %)",
            u.value(),
            d.value(),
            u.value() / d.value() * 100.0
        );
    }
}
