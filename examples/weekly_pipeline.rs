//! The operational pipeline of Section VI: every week, estimate the
//! coming week's demand from the last week's history (with the
//! TV-series and blockbuster substitutions for new releases), re-solve
//! the placement with a migration-cost term, and replay the real
//! requests against it.
//!
//! Run with: `cargo run --release --example weekly_pipeline`

use vodplace::prelude::*;
use vodplace::sim::mip_vho_configs;

fn main() {
    let seed = 11;
    let weeks = 4u64;
    let mut network = vodplace::net::topologies::mesh_backbone(10, 16, seed);
    network.set_uniform_capacity(Mbps::from_gbps(1.0));
    let library = synthesize_library(&LibraryConfig::default_for(500, weeks * 7, seed));
    let trace = generate_trace(
        &library,
        &network,
        &TraceConfig::default_for(4000.0, weeks * 7, seed),
    );
    let paths = PathSet::shortest_paths(&network);
    let disks = DiskConfig::UniformRatio { ratio: 2.0 }.capacities(&network, library.total_size());

    let est_cfg = EstimateConfig::default();
    let epf_cfg = EpfConfig {
        max_passes: 80,
        seed,
        ..Default::default()
    };
    let week_secs = 7 * 86_400;
    let mut prev: Option<Placement> = None;

    for w in 1..weeks {
        let start = w * week_secs;
        let history = trace.restricted(TimeWindow::new(
            SimTime::new(start - week_secs),
            SimTime::new(start),
        ));
        let future = trace.restricted(TimeWindow::new(
            SimTime::new(start),
            SimTime::new(start + week_secs),
        ));
        // Estimate the coming week from history (+ new-release rules).
        let demand = estimate_demand(
            EstimatorKind::History,
            &library,
            network.num_nodes(),
            &history,
            &future,
            w * 7,
            7,
            &est_cfg,
        );
        // Re-solve, charging migration from the previous placement
        // (eq. (11) with w = 1).
        let placement_cost = prev.as_ref().map(|p| PlacementCost {
            weight: 1.0,
            previous: Some(p.holder_lists()),
            origin: VhoId::new(0),
        });
        let instance = MipInstance::new(
            network.clone(),
            library.clone(),
            demand,
            &DiskConfig::UniformRatio { ratio: 1.9 },
            1.0,
            0.0,
            placement_cost.as_ref(),
        );
        let out = vodplace::core::solve_placement(&instance, &epf_cfg)
            .expect("weekly instance is well-formed");

        let migrated = prev
            .as_ref()
            .map(|p| out.placement.migration_copies_from(p))
            .unwrap_or(out.placement.total_copies());
        // Replay the actual week against the new placement.
        let vhos = mip_vho_configs(&out.placement, &disks, 0.05, CacheKind::Lru);
        let rep = simulate(
            &network,
            &paths,
            &library,
            &future,
            &vhos,
            &PolicyKind::MipRouting(out.placement.clone()),
            &SimConfig {
                seed,
                ..Default::default()
            },
        );
        println!(
            "week {w}: solve {:>5.0} ms | migrate {migrated:>4} copies | peak {:>7.1} Mb/s | \
             transfer {:>9.1} GB·hop | local {:>5.1} %",
            out.epf.wall.as_secs_f64() * 1e3,
            rep.max_link_mbps,
            rep.total_gb_hops,
            rep.local_fraction() * 100.0,
        );
        prev = Some(out.placement);
    }
}
