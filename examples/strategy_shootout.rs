//! Strategy shootout: the paper's headline comparison (Figs. 5–6) in
//! miniature — MIP placement vs Random+LRU, Random+LFU and Top-K+LRU
//! on the same disks, same trace, same network.
//!
//! Run with: `cargo run --release --example strategy_shootout`

use vodplace::prelude::*;
use vodplace::sim::{mip_vho_configs, random_single_vho_configs, top_k_vho_configs};

fn main() {
    let seed = 7;
    let mut network = vodplace::net::topologies::mesh_backbone(12, 19, seed);
    network.set_uniform_capacity(Mbps::from_gbps(1.0));
    let library = synthesize_library(&LibraryConfig::default_for(600, 14, seed));
    let trace = generate_trace(
        &library,
        &network,
        &TraceConfig::default_for(6000.0, 14, seed),
    );
    let paths = PathSet::shortest_paths(&network);

    // Demand history = week 1; evaluation = week 2.
    let week = 7 * 86_400;
    let history = trace.restricted(TimeWindow::new(SimTime::ZERO, SimTime::new(week)));
    let windows = vodplace::trace::analysis::select_peak_windows(&history, &library, 3600, 2);
    let demand = DemandInput::from_trace(&history, &library, network.num_nodes(), windows);

    // Solve the MIP on 95% of each disk, keeping 5% as LRU complement.
    let cache_frac = 0.05;
    let ratio = 2.0;
    let instance = MipInstance::new(
        network.clone(),
        library.clone(),
        demand,
        &DiskConfig::UniformRatio {
            ratio: ratio * (1.0 - cache_frac),
        },
        1.0,
        0.0,
        None,
    );
    let out = solve_placement(
        &instance,
        &EpfConfig {
            max_passes: 100,
            seed,
            ..Default::default()
        },
    )
    .expect("instance is well-formed");
    println!(
        "MIP solved: violation {:.2} %, gap {:.2} %",
        out.rounding.max_violation * 100.0,
        out.rounding.optimality_gap.unwrap_or(f64::NAN) * 100.0
    );

    // Full disks for the baselines (they use the same total space).
    let full_disks: Vec<Gigabytes> =
        DiskConfig::UniformRatio { ratio }.capacities(&network, library.total_size());
    let ranked = instance.demand.aggregate.rank_videos();

    let sim_cfg = SimConfig {
        measure_from: SimTime::new(week),
        seed,
        ..Default::default()
    };
    let run = |name: &str, vhos: Vec<VhoConfig>, policy: PolicyKind| {
        let rep = simulate(&network, &paths, &library, &trace, &vhos, &policy, &sim_cfg);
        println!(
            "{name:<14} peak link {:7.1} Mb/s | transfer {:9.1} GB·hop | local {:5.1} %",
            rep.max_link_mbps,
            rep.total_gb_hops,
            rep.local_fraction() * 100.0
        );
        rep
    };

    println!("\nweek-2 evaluation (same aggregate disk for all):");
    let mip = run(
        "MIP",
        mip_vho_configs(&out.placement, &full_disks, cache_frac, CacheKind::Lru),
        PolicyKind::MipRouting(out.placement.clone()),
    );
    let lru = run(
        "Random+LRU",
        random_single_vho_configs(&library, &full_disks, CacheKind::Lru, seed),
        PolicyKind::NearestReplica,
    );
    let lfu = run(
        "Random+LFU",
        random_single_vho_configs(&library, &full_disks, CacheKind::Lfu, seed),
        PolicyKind::NearestReplica,
    );
    let topk = run(
        "Top-20+LRU",
        top_k_vho_configs(&library, &ranked, 20, &full_disks, seed),
        PolicyKind::NearestReplica,
    );

    println!(
        "\npeak-bandwidth ratio vs MIP: LRU {:.2}×, LFU {:.2}×, Top-K {:.2}×",
        lru.max_link_mbps / mip.max_link_mbps,
        lfu.max_link_mbps / mip.max_link_mbps,
        topk.max_link_mbps / mip.max_link_mbps,
    );
}
