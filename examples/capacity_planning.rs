//! Capacity planning with the feasibility-region search (Fig. 11): for
//! a sweep of link capacities, find the minimum aggregate disk (as a
//! multiple of the library size) at which every request can be served —
//! for uniform VHOs and for population-tiered VHOs.
//!
//! Run with: `cargo run --release --example capacity_planning`

use vodplace::core::feasibility::{min_disk_ratio, Scenario};
use vodplace::prelude::*;

fn main() {
    let seed = 13;
    let network = vodplace::net::topologies::mesh_backbone(10, 16, seed);
    let library = synthesize_library(&LibraryConfig::default_for(400, 7, seed));
    let trace = generate_trace(
        &library,
        &network,
        &TraceConfig::default_for(4000.0, 7, seed),
    );
    let windows = vodplace::trace::analysis::select_peak_windows(&trace, &library, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &library, network.num_nodes(), windows);

    let scenario = Scenario {
        network: &network,
        catalog: &library,
        demand: &demand,
        alpha: 1.0,
        beta: 0.0,
    };
    let cfg = EpfConfig {
        max_passes: 60,
        seed,
        ..Default::default()
    };

    println!("min aggregate disk (× library size) to serve all requests:");
    println!(
        "{:>12} | {:>12} | {:>12}",
        "link (Gb/s)", "uniform", "tiered"
    );
    for gbps in [0.05, 0.1, 0.2, 0.5, 1.0] {
        let uniform = min_disk_ratio(
            &scenario,
            Mbps::from_gbps(gbps),
            |r| DiskConfig::UniformRatio { ratio: r },
            1.05,
            10.0,
            0.2,
            &cfg,
        );
        let tiered = min_disk_ratio(
            &scenario,
            Mbps::from_gbps(gbps),
            |r| DiskConfig::Tiered {
                ratio: r,
                n_large: 2,
                n_medium: 4,
            },
            1.05,
            10.0,
            0.2,
            &cfg,
        );
        let fmt = |x: Option<f64>| {
            x.map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "infeasible".into())
        };
        println!("{gbps:>12.2} | {:>12} | {:>12}", fmt(uniform), fmt(tiered));
    }
    println!(
        "\n(the lower bound is 1.0 — one copy of every video must exist; \
         bigger links ⇒ less disk, and tiered VHOs need less aggregate \
         disk than uniform ones, Fig. 11)"
    );
}
