//! Cross-crate integration: the full paper pipeline — synthesize a
//! world, estimate demand, solve the placement MIP, replay the trace —
//! and the headline comparison against caching.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
use vodplace::prelude::*;
use vodplace::sim::{mip_vho_configs, random_single_vho_configs};

fn world(seed: u64) -> (Network, PathSet, Catalog, Trace) {
    let mut net = vodplace::net::topologies::mesh_backbone(8, 13, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(250, 14, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(3000.0, 14, seed));
    let paths = PathSet::shortest_paths(&net);
    (net, paths, catalog, trace)
}

#[test]
fn placement_pipeline_respects_capacities() {
    let (net, _paths, catalog, trace) = world(101);
    let windows = vodplace::trace::analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    );
    let out = vodplace::core::solve_placement(
        &inst,
        &EpfConfig {
            max_passes: 150,
            seed: 101,
            ..Default::default()
        },
    )
    .expect("instance is well-formed");
    // Every video stored; disks respected after repair.
    for m in inst.catalog.ids() {
        assert!(!out.placement.stores(m).is_empty());
    }
    let usage = out.placement.disk_usage(&inst.catalog);
    for (u, cap) in usage.iter().zip(&inst.disks) {
        assert!(u.value() <= cap.value() * 1.02 + 1e-9, "{u} > {cap}");
    }
    // Certified bound sanity: objective never below the valid LB.
    assert!(out.rounding.objective >= out.fractional.lower_bound - 1e-6);
}

#[test]
fn mip_beats_caching_on_peak_bandwidth() {
    let (net, paths, catalog, trace) = world(102);
    // Solve on week-0 history; evaluate week 1.
    let week0 = trace.restricted(TimeWindow::new(SimTime::ZERO, SimTime::new(7 * 86_400)));
    let windows = vodplace::trace::analysis::select_peak_windows(&week0, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&week0, &catalog, net.num_nodes(), windows);
    let inst = MipInstance::new(
        net.clone(),
        catalog.clone(),
        demand,
        &DiskConfig::UniformRatio { ratio: 1.9 },
        1.0,
        0.0,
        None,
    );
    let out = vodplace::core::solve_placement(
        &inst,
        &EpfConfig {
            max_passes: 150,
            seed: 102,
            ..Default::default()
        },
    )
    .expect("instance is well-formed");
    let disks = DiskConfig::UniformRatio { ratio: 2.0 }.capacities(&net, catalog.total_size());
    let cfg = SimConfig {
        measure_from: SimTime::new(7 * 86_400),
        seed: 102,
        ..Default::default()
    };
    let mip = vodplace::sim::simulate(
        &net,
        &paths,
        &catalog,
        &trace,
        &mip_vho_configs(&out.placement, &disks, 0.05, CacheKind::Lru),
        &PolicyKind::MipRouting(out.placement.clone()),
        &cfg,
    );
    let lru = vodplace::sim::simulate(
        &net,
        &paths,
        &catalog,
        &trace,
        &random_single_vho_configs(&catalog, &disks, CacheKind::Lru, 102),
        &PolicyKind::NearestReplica,
        &cfg,
    );
    assert_eq!(
        mip.total_requests, lru.total_requests,
        "both schemes must serve every request"
    );
    assert!(
        mip.max_link_mbps <= lru.max_link_mbps,
        "MIP peak {} must not exceed LRU peak {}",
        mip.max_link_mbps,
        lru.max_link_mbps
    );
    assert!(
        mip.total_gb_hops < lru.total_gb_hops,
        "MIP transfer {} must beat LRU {}",
        mip.total_gb_hops,
        lru.total_gb_hops
    );
}

#[test]
fn estimation_pipeline_improves_over_no_estimate() {
    let (net, paths, catalog, trace) = world(103);
    let week0 = trace.restricted(TimeWindow::new(SimTime::ZERO, SimTime::new(7 * 86_400)));
    let week1 = trace.restricted(TimeWindow::new(
        SimTime::new(7 * 86_400),
        SimTime::new(14 * 86_400),
    ));
    let run = |kind: EstimatorKind| {
        let demand = estimate_demand(
            kind,
            &catalog,
            net.num_nodes(),
            &week0,
            &week1,
            7,
            7,
            &EstimateConfig::default(),
        );
        let inst = MipInstance::new(
            net.clone(),
            catalog.clone(),
            demand,
            &DiskConfig::UniformRatio { ratio: 1.9 },
            1.0,
            0.0,
            None,
        );
        let out = vodplace::core::solve_placement(
            &inst,
            &EpfConfig {
                max_passes: 120,
                seed: 103,
                ..Default::default()
            },
        )
        .expect("instance is well-formed");
        let disks = DiskConfig::UniformRatio { ratio: 2.0 }.capacities(&net, catalog.total_size());
        vodplace::sim::simulate(
            &net,
            &paths,
            &catalog,
            &week1,
            &mip_vho_configs(&out.placement, &disks, 0.0, CacheKind::Lru),
            &PolicyKind::MipRouting(out.placement.clone()),
            &SimConfig {
                insert_on_miss: false,
                seed: 103,
                ..Default::default()
            },
        )
    };
    let history = run(EstimatorKind::History);
    let perfect = run(EstimatorKind::Perfect);
    // Perfect knowledge is the floor; history should be in its
    // neighbourhood (the paper: "comparable to perfect knowledge").
    assert!(history.total_gb_hops >= perfect.total_gb_hops * 0.95);
    assert!(
        history.total_gb_hops <= perfect.total_gb_hops * 1.6,
        "history estimate too far from perfect: {} vs {}",
        history.total_gb_hops,
        perfect.total_gb_hops
    );
}
