//! Property-based tests over the core data structures and invariants,
//! spanning crates.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
use proptest::prelude::*;
use vodplace::prelude::*;

// ---------------------------------------------------------------------------
// Routing: BFS shortest paths match a Bellman-Ford oracle.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shortest_paths_match_bellman_ford(n in 3usize..10, extra in 0usize..12, seed in 0u64..1000) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let net = vodplace::net::topologies::mesh_backbone(
            n, n + extra.min(max_extra.saturating_sub(n)).min(max_extra), seed,
        );
        let paths = PathSet::shortest_paths(&net);
        // Bellman-Ford hop counts from every source.
        for src in net.vho_ids() {
            let mut dist = vec![usize::MAX; net.num_nodes()];
            dist[src.index()] = 0;
            for _ in 0..net.num_nodes() {
                for l in net.links() {
                    let du = dist[l.from.index()];
                    if du != usize::MAX && du + 1 < dist[l.to.index()] {
                        dist[l.to.index()] = du + 1;
                    }
                }
            }
            for dst in net.vho_ids() {
                prop_assert_eq!(paths.hops(src, dst), dist[dst.index()],
                    "hops {} -> {}", src, dst);
            }
        }
    }

    // -----------------------------------------------------------------------
    // Caches: capacity, pinning, and accounting invariants under random
    // operation sequences.
    // -----------------------------------------------------------------------

    #[test]
    fn cache_invariants_random_ops(
        ops in prop::collection::vec((0u8..4, 0u32..30, 1u32..4), 1..300),
        lru in any::<bool>(),
        cap in 3.0f64..20.0,
    ) {
        use vodplace::sim::{Cache, LfuCache, LruCache};
        let mut cache: Box<dyn Cache> = if lru {
            Box::new(LruCache::new(cap))
        } else {
            Box::new(LfuCache::new(cap))
        };
        let mut pins: std::collections::HashMap<u32, u32> = Default::default();
        let mut evicted = Vec::new();
        for (op, vid, size) in ops {
            let m = VideoId::new(vid);
            match op {
                0 => { let _ = cache.insert(m, size as f64, &mut evicted); }
                1 => cache.touch(m),
                2 => {
                    if cache.contains(m) {
                        cache.pin(m);
                        *pins.entry(vid).or_insert(0) += 1;
                    }
                }
                _ => {
                    if let Some(c) = pins.get_mut(&vid) {
                        if *c > 0 {
                            cache.unpin(m);
                            *c -= 1;
                        }
                    }
                }
            }
            // Invariant: never exceeds capacity.
            prop_assert!(cache.used_gb() <= cap + 1e-9);
            // Invariant: pinned entries are still present.
            for (&v, &c) in &pins {
                if c > 0 {
                    prop_assert!(cache.contains(VideoId::new(v)),
                        "pinned video {v} was evicted");
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Simplex vs brute-force vertex enumeration on random bounded 2-var
    // LPs.
    // -----------------------------------------------------------------------

    #[test]
    fn simplex_matches_vertex_enumeration(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        rows in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0, 0.5f64..6.0), 1..5),
    ) {
        use vodplace::lp::{Cmp, LinearProgram};
        let mut lp = LinearProgram::new();
        let x = lp.add_var(c0, Some(10.0));
        let y = lp.add_var(c1, Some(10.0));
        for &(a, b, rhs) in &rows {
            lp.add_constraint(vec![(x, a), (y, b)], Cmp::Le, rhs);
        }
        // Brute force: candidate vertices are intersections of all
        // constraint pairs (incl. bounds/axes), filtered for
        // feasibility.
        let mut lines: Vec<(f64, f64, f64)> = rows.clone();
        lines.push((1.0, 0.0, 10.0));
        lines.push((0.0, 1.0, 10.0));
        lines.push((-1.0, 0.0, 0.0)); // x >= 0 as -x <= 0
        lines.push((0.0, -1.0, 0.0));
        let mut best: Option<f64> = None;
        let feasible = |px: f64, py: f64| {
            px >= -1e-9 && py >= -1e-9 && px <= 10.0 + 1e-9 && py <= 10.0 + 1e-9
                && rows.iter().all(|&(a, b, r)| a * px + b * py <= r + 1e-7)
        };
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, r1) = lines[i];
                let (a2, b2, r2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 { continue; }
                let px = (r1 * b2 - r2 * b1) / det;
                let py = (a1 * r2 - a2 * r1) / det;
                if feasible(px, py) {
                    let v = c0 * px + c1 * py;
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
            }
        }
        match (vodplace::lp::solve_lp(&lp), best) {
            (Ok(sol), Some(b)) => {
                prop_assert!((sol.objective - b).abs() < 1e-5,
                    "simplex {} vs enumeration {}", sol.objective, b);
            }
            (Err(_), None) => {} // both infeasible
            (Ok(sol), None) => {
                // Enumeration found no vertex: the only way the LP is
                // feasible is if the origin region is degenerate —
                // accept only if the solution is (numerically) a
                // vertex we missed due to tolerance.
                prop_assert!(lp.max_violation(&sol.x) < 1e-6);
            }
            (Err(e), Some(b)) => {
                return Err(TestCaseError::fail(format!(
                    "simplex said {e} but enumeration found optimum {b}"
                )));
            }
        }
    }

    // -----------------------------------------------------------------------
    // Trace generation invariants.
    // -----------------------------------------------------------------------

    #[test]
    fn trace_generation_invariants(n_videos in 20usize..120, rpd in 50.0f64..800.0, seed in 0u64..500) {
        let net = vodplace::net::topologies::mesh_backbone(5, 7, seed);
        let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 14, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(rpd, 14, seed));
        let mut last = SimTime::ZERO;
        for r in trace.requests() {
            prop_assert!(r.time < trace.horizon());
            prop_assert!(r.time >= last, "trace must be sorted");
            last = r.time;
            prop_assert!(r.video.index() < catalog.len());
            prop_assert!(r.vho.index() < net.num_nodes());
            prop_assert!(r.time.day() >= catalog.video(r.video).release_day);
        }
        // Demand aggregation is conservative.
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), vec![]);
        prop_assert_eq!(demand.aggregate.total() as usize, trace.len());
    }

    // -----------------------------------------------------------------------
    // Block solutions: convex steps preserve the block polytope.
    // -----------------------------------------------------------------------

    #[test]
    fn block_steps_stay_in_polytope(
        steps in prop::collection::vec((0u16..6, 0.0f64..1.0), 1..40),
    ) {
        use vodplace::core::BlockSolution;
        let mut cur = BlockSolution {
            y: vec![(VhoId::new(0), 1.0)],
            x: vec![vec![(VhoId::new(0), 1.0)], vec![(VhoId::new(0), 1.0)]],
        };
        for (target, tau) in steps {
            let t = VhoId::new(target);
            let hat = BlockSolution {
                y: vec![(t, 1.0)],
                x: vec![vec![(t, 1.0)], vec![(t, 1.0)]],
            };
            cur.step_toward(&hat, tau);
            for dist in &cur.x {
                let total: f64 = dist.iter().map(|&(_, v)| v).sum();
                prop_assert!((total - 1.0).abs() < 1e-9, "x sums to {total}");
                for &(i, v) in dist {
                    prop_assert!(v <= cur.y_at(i) + 1e-9, "x exceeds y");
                }
            }
            for &(_, yv) in &cur.y {
                prop_assert!(yv > 0.0 && yv <= 1.0 + 1e-9);
            }
        }
    }

    // -----------------------------------------------------------------------
    // UFL block solver: bound sandwich on random instances.
    // -----------------------------------------------------------------------

    #[test]
    fn ufl_bound_sandwich(
        fac in prop::collection::vec(0.0f64..5.0, 1..10),
        svc in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 1..10), 0..8),
    ) {
        use vodplace::core::block::UflProblem;
        let n = fac.len();
        let service: Vec<Vec<f64>> = svc.into_iter()
            .map(|row| (0..n).map(|i| row[i % row.len()]).collect())
            .collect();
        let p = UflProblem::from_rows(fac, service);
        let sol = p.solve_local_search();
        let lb = p.dual_ascent_bound();
        prop_assert!(lb <= p.cost(&sol) + 1e-9);
        prop_assert!(!sol.open.is_empty());
        for &a in &sol.assign {
            prop_assert!(sol.open.contains(&a));
        }
    }

    // -----------------------------------------------------------------------
    // Simulator conservation: every request is served exactly once.
    // -----------------------------------------------------------------------

    #[test]
    fn simulator_conservation(seed in 0u64..200, n_videos in 20usize..80) {
        let net = vodplace::net::topologies::mesh_backbone(5, 7, seed);
        let paths = PathSet::shortest_paths(&net);
        let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(300.0, 7, seed));
        let disks = vec![Gigabytes::new(catalog.total_size().value()); 5];
        let vhos = vodplace::sim::random_single_vho_configs(
            &catalog, &disks, CacheKind::Lru, seed,
        );
        let rep = vodplace::sim::simulate(
            &net, &paths, &catalog, &trace, &vhos,
            &PolicyKind::NearestReplica, &SimConfig { seed, ..Default::default() },
        );
        prop_assert_eq!(rep.total_requests as usize, trace.len());
        prop_assert_eq!(
            rep.served_local_pinned + rep.served_local_cached + rep.served_remote,
            rep.total_requests
        );
        // Load series sanity: nonnegative everywhere, and the reported
        // maximum is exactly the series maximum. (The final bucket may
        // legitimately be nonzero: streams started near the horizon
        // are still active at it.)
        let series_max = rep.peak_link_mbps.iter().cloned().fold(0.0, f64::max);
        prop_assert!(rep.peak_link_mbps.iter().all(|&v| v >= 0.0));
        prop_assert!((rep.max_link_mbps - series_max).abs() < 1e-9);
    }
}

use vod_model::Gigabytes;
