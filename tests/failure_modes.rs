//! Failure-injection and degenerate-input coverage across crates.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
use vodplace::prelude::*;

#[test]
#[should_panic(expected = "strongly connected")]
fn disconnected_network_rejected_by_routing() {
    use vodplace::net::graph::{make_nodes, Network};
    let net = Network::from_undirected_edges(
        make_nodes(&[1.0, 1.0, 1.0, 1.0]),
        &[
            (VhoId::new(0), VhoId::new(1)),
            (VhoId::new(2), VhoId::new(3)),
        ],
        Mbps::from_gbps(1.0),
    );
    let _ = PathSet::shortest_paths(&net);
}

#[test]
fn infeasible_disk_detected_fast() {
    let net = vodplace::net::topologies::mesh_backbone(5, 7, 9);
    let catalog = synthesize_library(&LibraryConfig::default_for(60, 7, 9));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(500.0, 7, 9));
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), vec![]);
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 0.4 }, // below one library copy
        1.0,
        0.0,
        None,
    );
    assert!(inst.quick_feasibility_check().is_err());
    assert!(!vodplace::core::feasibility::is_feasible(
        &inst,
        &EpfConfig {
            max_passes: 30,
            seed: 9,
            ..Default::default()
        }
    ));
}

#[test]
fn empty_trace_demand_still_places_everything() {
    let net = vodplace::net::topologies::mesh_backbone(5, 7, 9);
    let catalog = synthesize_library(&LibraryConfig::default_for(40, 7, 9));
    let empty = Trace::new(SimTime::new(86_400), vec![]);
    let demand = DemandInput::from_trace(&empty, &catalog, net.num_nodes(), vec![]);
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 1.5 },
        1.0,
        0.0,
        None,
    );
    let out = vodplace::core::solve_placement(
        &inst,
        &EpfConfig {
            max_passes: 20,
            seed: 9,
            ..Default::default()
        },
    )
    .expect("instance is well-formed");
    // Zero demand: every video still gets exactly one copy somewhere.
    for m in inst.catalog.ids() {
        assert!(!out.placement.stores(m).is_empty());
    }
    assert!(out.rounding.objective.abs() < 1e-9);
}

#[test]
fn single_vho_degenerate_world() {
    // One VHO, no links: everything is local; the simulator and the
    // analytics must handle it.
    use vodplace::net::graph::{make_nodes, Network};
    let net = Network::from_directed_links(make_nodes(&[1.0]), vec![]);
    assert!(net.is_strongly_connected());
    let paths = PathSet::shortest_paths(&net);
    assert_eq!(paths.diameter(), 0);
    let catalog = synthesize_library(&LibraryConfig::default_for(30, 7, 5));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(200.0, 7, 5));
    let vhos = vec![vodplace::sim::VhoConfig {
        pinned: catalog.ids().collect(),
        cache: None,
    }];
    let rep = vodplace::sim::simulate(
        &net,
        &paths,
        &catalog,
        &trace,
        &vhos,
        &PolicyKind::NearestReplica,
        &SimConfig::default(),
    );
    assert_eq!(rep.served_remote, 0);
    assert_eq!(rep.max_link_mbps, 0.0);
    assert_eq!(rep.total_requests as usize, trace.len());
}

#[test]
fn solver_handles_zero_window_instances() {
    // No link windows at all (disk-only MIP, pure data placement).
    let net = vodplace::net::topologies::mesh_backbone(6, 9, 4);
    let catalog = synthesize_library(&LibraryConfig::default_for(50, 7, 4));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(400.0, 7, 4));
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), vec![]);
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    );
    assert_eq!(inst.n_windows(), 0);
    let out = vodplace::core::solve_placement(
        &inst,
        &EpfConfig {
            max_passes: 80,
            seed: 4,
            ..Default::default()
        },
    )
    .expect("instance is well-formed");
    assert!(out.rounding.max_violation < 0.05);
}
