//! Criterion benches for the solver stack: EPF scaling with library
//! size (Table III's shape), the direct simplex baseline, and the
//! facility-location block solvers.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vod_core::block::UflProblem;
use vod_core::{direct::build_direct_lp, solve_fractional, DiskConfig, EpfConfig, MipInstance};
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

fn instance(n_videos: usize, n_vhos: usize) -> MipInstance {
    let net = vod_net::topologies::mesh_backbone(n_vhos, n_vhos + n_vhos / 2, 3);
    let lib = synthesize_library(&LibraryConfig::default_for(n_videos, 7, 3));
    let demand = synthetic_demand(&lib, &net, &TraceConfig::default_for(n_videos as f64, 7, 3));
    MipInstance::new(
        net,
        lib,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

fn bench_epf_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("epf_library_scaling");
    g.sample_size(10);
    for n in [200usize, 400, 800] {
        let inst = instance(n, 10);
        let cfg = EpfConfig {
            max_passes: 20,
            seed: 3,
            polish_iters: 0,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solve_fractional(&inst, &cfg).1.block_steps)
        });
    }
    g.finish();
}

fn bench_simplex_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_direct_lp");
    g.sample_size(10);
    for n in [10usize, 20, 40] {
        let inst = instance(n, 5);
        let direct = build_direct_lp(&inst);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                vod_lp::solve_lp(&direct.lp)
                    .expect("exact LP solve failed")
                    .objective
            })
        });
    }
    g.finish();
}

fn bench_block_solvers(c: &mut Criterion) {
    use rand::Rng;
    use vod_core::block::UflScratch;
    let mut rng = vod_model::rng::rng_from_seed(8);
    let p = UflProblem::from_rows(
        (0..55).map(|_| rng.gen_range(0.0..5.0)).collect(),
        (0..30)
            .map(|_| (0..55).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect(),
    );
    c.bench_function("ufl_local_search_fast_55x30", |b| {
        b.iter(|| p.solve_local_search_fast().open.len())
    });
    c.bench_function("ufl_local_search_full_55x30", |b| {
        b.iter(|| p.solve_local_search().open.len())
    });
    c.bench_function("ufl_dual_ascent_55x30", |b| {
        b.iter(|| p.dual_ascent_bound())
    });
    // Scratch reuse — the worker-pool steady state (no allocations).
    let mut scratch = UflScratch::default();
    c.bench_function("ufl_local_search_fast_55x30_scratch", |b| {
        b.iter(|| p.solve_local_search_fast_with(&mut scratch).open.len())
    });
}

/// The Table III EPF ladder on real Rocketfuel-like topologies — the
/// criterion twin of the tracked `solver_baseline` binary (which emits
/// `BENCH_solver.json`); sizes are scaled down so criterion's repeated
/// sampling stays tractable.
fn bench_table3_ladder(c: &mut Criterion) {
    let mut g = c.benchmark_group("epf_table3_ladder");
    g.sample_size(10);
    for (n, net, name) in [
        (200usize, vod_net::topologies::ebone(), "ebone"),
        (400, vod_net::topologies::sprint(), "sprint"),
        (800, vod_net::topologies::tiscali(), "tiscali"),
    ] {
        let lib = synthesize_library(&LibraryConfig::default_for(n, 7, 3));
        let tc = TraceConfig::default_for(n as f64 * 1.2, 7, 3);
        let demand = synthetic_demand(&lib, &net, &tc);
        let inst = MipInstance::new(
            net,
            lib,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        );
        let cfg = EpfConfig {
            max_passes: 15,
            seed: 3,
            polish_iters: 0,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| solve_fractional(&inst, &cfg).1.block_steps)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_epf_scaling,
    bench_simplex_baseline,
    bench_block_solvers,
    bench_table3_ladder
);
criterion_main!(benches);
