//! Criterion benches for the streaming simulator and its caches.
use criterion::{criterion_group, criterion_main, Criterion};
use vod_model::{Gigabytes, VideoId};
use vod_net::PathSet;
use vod_sim::{
    random_single_vho_configs, simulate, simulate_batch, Cache, CacheKind, LfuCache, LruCache,
    PolicyKind, SimConfig, SimJob,
};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

fn bench_simulator(c: &mut Criterion) {
    let net = vod_net::topologies::mesh_backbone(10, 16, 5);
    let paths = PathSet::shortest_paths(&net);
    let lib = synthesize_library(&LibraryConfig::default_for(300, 7, 5));
    let trace = generate_trace(&lib, &net, &TraceConfig::default_for(4000.0, 7, 5));
    let disks = vec![Gigabytes::new(60.0); 10];
    let vhos = random_single_vho_configs(&lib, &disks, CacheKind::Lru, 5);
    c.bench_function("simulate_28k_requests_lru", |b| {
        b.iter(|| {
            simulate(
                &net,
                &paths,
                &lib,
                &trace,
                &vhos,
                &PolicyKind::NearestReplica,
                &SimConfig {
                    seed: 5,
                    ..Default::default()
                },
            )
            .total_requests
        })
    });
}

fn bench_caches(c: &mut Criterion) {
    c.bench_function("lru_insert_touch_1k", |b| {
        let mut evicted = Vec::new();
        b.iter(|| {
            let mut cache = LruCache::with_video_hint(100.0, 200);
            for i in 0..1000u32 {
                cache.insert(VideoId::new(i % 200), 1.0, &mut evicted);
                cache.touch(VideoId::new(i % 50));
            }
            cache.len()
        })
    });
    c.bench_function("lfu_insert_touch_1k", |b| {
        let mut evicted = Vec::new();
        b.iter(|| {
            let mut cache = LfuCache::with_video_hint(100.0, 200);
            for i in 0..1000u32 {
                cache.insert(VideoId::new(i % 200), 1.0, &mut evicted);
                cache.touch(VideoId::new(i % 50));
            }
            cache.len()
        })
    });
}

fn bench_batch(c: &mut Criterion) {
    let net = vod_net::topologies::mesh_backbone(10, 16, 5);
    let paths = PathSet::shortest_paths(&net);
    let lib = synthesize_library(&LibraryConfig::default_for(300, 7, 5));
    let trace = generate_trace(&lib, &net, &TraceConfig::default_for(4000.0, 7, 5));
    let disks = vec![Gigabytes::new(60.0); 10];
    let vhos = random_single_vho_configs(&lib, &disks, CacheKind::Lru, 5);
    let policy = PolicyKind::NearestReplica;
    let jobs: Vec<SimJob> = (0..6u64)
        .map(|seed| SimJob {
            net: &net,
            paths: &paths,
            catalog: &lib,
            trace: &trace,
            vhos: &vhos,
            policy: &policy,
            cfg: SimConfig {
                seed,
                ..Default::default()
            },
        })
        .collect();
    let threads = vod_sim::default_threads();
    c.bench_function("simulate_batch_6x28k_requests", |b| {
        b.iter(|| simulate_batch(&jobs, threads).len())
    });
}

fn bench_paths(c: &mut Criterion) {
    let net = vod_net::topologies::backbone55();
    c.bench_function("shortest_paths_backbone55", |b| {
        b.iter(|| PathSet::shortest_paths(&net).diameter())
    });
    let lib = synthesize_library(&LibraryConfig::default_for(2000, 7, 5));
    let net10 = vod_net::topologies::mesh_backbone(10, 16, 5);
    c.bench_function("generate_trace_2k_videos_week", |b| {
        b.iter(|| generate_trace(&lib, &net10, &TraceConfig::default_for(10_000.0, 7, 5)).len())
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_caches,
    bench_batch,
    bench_paths
);
criterion_main!(benches);
