//! The four-strategy comparison behind Figs. 5, 6 and the headline
//! claims: MIP placement (weekly re-solves with history estimation and
//! a 5 % complementary LRU cache) versus Random+LRU, Random+LFU and
//! Top-K+LRU on identical disks, links and requests.
//!
//! The weekly MIP solves are serial (each anchors migration cost on the
//! previous placement); every replay — per-week MIP and the three
//! full-trace baselines — joins a single `simulate_batch` fan-out, and
//! the series are stitched back together in week order so the outcome
//! is byte-identical to the serial loop.

use crate::{Defaults, Scenario};
use vod_core::{solve_placement, MipInstance, Placement, PlacementCost};
use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
use vod_model::{SimTime, VhoId};
use vod_sim::{
    default_threads, mip_vho_configs, random_single_vho_configs, simulate_batch, top_k_vho_configs,
    CacheKind, PolicyKind, SimConfig, SimJob, SimReport, VhoConfig,
};
use vod_trace::Trace;

/// One strategy's measured outcome over the evaluation period.
#[derive(Debug)]
pub struct StrategyOutcome {
    pub name: String,
    /// Peak link bandwidth per 5-minute bucket (Fig. 5's series),
    /// starting at the evaluation period.
    pub peak_series_mbps: Vec<f64>,
    /// Aggregate transfer per 5-minute bucket in GB (Fig. 6's series).
    pub transfer_series_gb: Vec<f64>,
    pub max_link_mbps: f64,
    pub total_gb_hops: f64,
    pub local_fraction: f64,
    pub uncachable: u64,
}

impl vod_json::ToJson for StrategyOutcome {
    fn to_value(&self) -> vod_json::Value {
        vod_json::obj(vec![
            ("name", self.name.to_value()),
            ("peak_series_mbps", self.peak_series_mbps.to_value()),
            ("transfer_series_gb", self.transfer_series_gb.to_value()),
            ("max_link_mbps", self.max_link_mbps.to_value()),
            ("total_gb_hops", self.total_gb_hops.to_value()),
            ("local_fraction", self.local_fraction.to_value()),
            ("uncachable", self.uncachable.to_value()),
        ])
    }
}

fn outcome_from(name: &str, rep: &SimReport, from_bucket: usize) -> StrategyOutcome {
    StrategyOutcome {
        name: name.to_string(),
        peak_series_mbps: rep.peak_link_mbps[from_bucket.min(rep.peak_link_mbps.len())..].to_vec(),
        transfer_series_gb: rep.transfer_gb[from_bucket.min(rep.transfer_gb.len())..].to_vec(),
        max_link_mbps: rep
            .peak_link_mbps
            .iter()
            .skip(from_bucket)
            .cloned()
            .fold(0.0, f64::max),
        total_gb_hops: rep.total_gb_hops,
        local_fraction: rep.local_fraction(),
        uncachable: rep.cache.rejections,
    }
}

/// One week of the MIP schedule, solved and ready to replay.
struct WeekPlan {
    w: u64,
    future: Trace,
    vhos: Vec<VhoConfig>,
    policy: PolicyKind,
}

/// Run the full comparison. The first `warmup_weeks` weeks warm the
/// caches (and provide the first demand history); measurements cover
/// the remaining weeks, with the MIP re-solved weekly from the previous
/// week's history (Section VII-B).
pub fn run_comparison(s: &Scenario, d: &Defaults, top_k: usize) -> Vec<StrategyOutcome> {
    let weeks = s.trace.horizon().secs() / (7 * 86_400);
    assert!(weeks >= 2, "need at least two weeks of trace");
    let week_secs = 7 * 86_400u64;
    let eval_from = SimTime::new(week_secs); // week 0 is warm-up/history
    let from_bucket = (eval_from.secs() / 300) as usize;

    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let full_disks = s.full_disks(d);
    let est_cfg = EstimateConfig {
        window_secs: d.window_secs,
        n_windows: d.n_windows,
    };
    let epf = s.epf_config();

    // ---- MIP: weekly re-solves (serial — migration cost chains each
    // placement to the previous one). The replays join the batch below.
    let mut prev: Option<Placement> = None;
    let mut plans = Vec::new();
    for w in 1..weeks {
        let history = s.week(w - 1);
        let future = s.week(w);
        let demand = estimate_demand(
            EstimatorKind::History,
            &s.catalog,
            s.net.num_nodes(),
            &history,
            &future,
            w * 7,
            7,
            &est_cfg,
        );
        let pc = prev.as_ref().map(|p| PlacementCost {
            weight: 1.0,
            previous: Some(p.holder_lists()),
            // lint:allow(raw-index): update transfers are anchored at VHO 0 by convention
            origin: VhoId::new(0),
        });
        let inst = MipInstance::new(
            net.clone(),
            s.catalog.clone(),
            demand,
            &s.mip_disk(d),
            1.0,
            0.0,
            pc.as_ref(),
        );
        let out = solve_placement(&inst, &epf).expect("weekly placement instance is well-formed");
        let vhos = mip_vho_configs(&out.placement, &full_disks, d.cache_frac, CacheKind::Lru);
        plans.push(WeekPlan {
            w,
            future,
            vhos,
            policy: PolicyKind::MipRouting(out.placement.clone()),
        });
        prev = Some(out.placement);
    }

    // ---- Baselines: static assignment + cache, full-trace run with
    // week 0 as cache warm-up. ----
    let ranked = {
        let week0 = s.week(0);
        let demand =
            vod_trace::DemandInput::from_trace(&week0, &s.catalog, s.net.num_nodes(), vec![]);
        demand.aggregate.rank_videos()
    };
    let baselines: Vec<(String, Vec<VhoConfig>)> = vec![
        (
            "Random+LRU".to_string(),
            random_single_vho_configs(&s.catalog, &full_disks, CacheKind::Lru, s.seed),
        ),
        (
            "Random+LFU".to_string(),
            random_single_vho_configs(&s.catalog, &full_disks, CacheKind::Lfu, s.seed),
        ),
        (
            format!("Top-{top_k}+LRU"),
            top_k_vho_configs(&s.catalog, &ranked, top_k, &full_disks, s.seed),
        ),
    ];
    let baseline_policy = PolicyKind::NearestReplica;

    // ---- One fan-out over every replay: per-week MIP runs first, the
    // three baselines after. ----
    let mip_cfg = SimConfig {
        seed: s.seed,
        ..Default::default()
    };
    let base_cfg = SimConfig {
        measure_from: eval_from,
        seed: s.seed,
        ..Default::default()
    };
    let jobs: Vec<SimJob> = plans
        .iter()
        .map(|p| SimJob {
            net: &net,
            paths: &s.paths,
            catalog: &s.catalog,
            trace: &p.future,
            vhos: &p.vhos,
            policy: &p.policy,
            cfg: mip_cfg.clone(),
        })
        .chain(baselines.iter().map(|(_, vhos)| SimJob {
            net: &net,
            paths: &s.paths,
            catalog: &s.catalog,
            trace: &s.trace,
            vhos,
            policy: &baseline_policy,
            cfg: base_cfg.clone(),
        }))
        .collect();
    let reps = simulate_batch(&jobs, default_threads());
    let (mip_reps, base_reps) = reps.split_at(plans.len());

    // Stitch the MIP weeks back together in week order.
    let mut peak_series = Vec::new();
    let mut transfer_series = Vec::new();
    let mut gb_hops = 0.0;
    let mut local = 0u64;
    let mut total_reqs = 0u64;
    let mut uncachable = 0u64;
    for (plan, rep) in plans.iter().zip(mip_reps) {
        let lo = ((plan.w * week_secs) / 300) as usize;
        let hi = (((plan.w + 1) * week_secs) / 300) as usize;
        peak_series.extend_from_slice(
            &rep.peak_link_mbps[lo.min(rep.peak_link_mbps.len())..hi.min(rep.peak_link_mbps.len())],
        );
        transfer_series.extend_from_slice(
            &rep.transfer_gb[lo.min(rep.transfer_gb.len())..hi.min(rep.transfer_gb.len())],
        );
        gb_hops += rep.total_gb_hops;
        local += rep.served_local_pinned + rep.served_local_cached;
        total_reqs += rep.total_requests;
        uncachable += rep.cache.rejections;
    }
    let mip_outcome = StrategyOutcome {
        name: "MIP".into(),
        max_link_mbps: peak_series.iter().cloned().fold(0.0, f64::max),
        peak_series_mbps: peak_series,
        transfer_series_gb: transfer_series,
        total_gb_hops: gb_hops,
        local_fraction: if total_reqs > 0 {
            local as f64 / total_reqs as f64
        } else {
            0.0
        },
        uncachable,
    };

    let mut outcomes = vec![mip_outcome];
    for ((name, _), rep) in baselines.iter().zip(base_reps) {
        outcomes.push(outcome_from(name, rep, from_bucket));
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn comparison_runs_and_mip_wins_on_peak() {
        let s = Scenario::operational(Scale::Quick, 3);
        let d = Defaults::default();
        let outcomes = run_comparison(&s, &d, 10);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].name, "MIP");
        for o in &outcomes {
            assert!(o.max_link_mbps > 0.0, "{} saw no load", o.name);
            assert!(!o.peak_series_mbps.is_empty());
        }
        // The headline claim: the MIP needs less peak bandwidth than
        // every caching baseline (allow a whisker of slack at the tiny
        // CI scale).
        let mip = outcomes[0].max_link_mbps;
        for o in &outcomes[1..] {
            assert!(
                mip <= o.max_link_mbps * 1.15,
                "MIP peak {mip} vs {} peak {}",
                o.name,
                o.max_link_mbps
            );
        }
    }
}
