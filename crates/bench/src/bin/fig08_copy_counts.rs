//! Fig. 8 — number of copies of each video, ranked by demand: popular
//! videos get many (but not |V|) copies; over half the catalog has more
//! than one copy; the tail has exactly one.
use vod_bench::{save_results, Defaults, Scale, Scenario, Table};
use vod_core::solve_placement;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let demand = s.demand_of_week(0, &d);
    let inst = vod_core::MipInstance::new(
        net,
        s.catalog.clone(),
        demand,
        &s.mip_disk(&d),
        1.0,
        0.0,
        None,
    );
    let out = solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
    let ranked = inst.demand.aggregate.rank_videos();
    let counts = out.placement.copy_counts(&ranked);
    let mut table = Table::new(
        "Fig. 8 — copies per video by demand rank",
        &["rank", "copies"],
    );
    // Log-spaced ranks for a readable table; full series in the JSON.
    let mut r = 1usize;
    while r <= counts.len() {
        table.row(vec![r.to_string(), counts[r - 1].to_string()]);
        r = (r * 3).div_ceil(2);
    }
    table.print();
    let multi = counts.iter().filter(|&&c| c > 1).count();
    let v = out.placement.n_vhos();
    println!(
        "\n{} of {} videos have multiple copies; max copies {} (of {} VHOs); \
         10th most popular has {} (paper: <30 of 55 VHOs hold the 10th most popular)",
        multi,
        counts.len(),
        counts.iter().max().copied().unwrap_or(0),
        v,
        counts.get(9).copied().unwrap_or(0)
    );
    save_results("fig08_copy_counts", &counts);
}
