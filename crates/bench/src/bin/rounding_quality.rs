//! Section V-D — rounding quality vs library size: optimality gap
//! (certified, against the Lagrangian bound) and constraint violation
//! of the final integer solution, plus the rounding *degradation* over
//! the fractional solution. The paper reports the gap shrinking from
//! 4.1 % at 5 K videos to 1.0 % at 200 K, and violations under ~4 %.
use vod_bench::{fmt, save_results, Scale, Table};
use vod_core::{solve_placement, DiskConfig, EpfConfig, MipInstance};
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![300, 1000],
        Scale::Default => vec![1000, 3000, 10_000],
        Scale::Full => vec![5000, 20_000, 50_000],
    };
    let net = vod_net::topologies::sprint();
    let mut table = Table::new(
        "Section V-D — rounding quality vs library size",
        &[
            "library",
            "videos re-solved",
            "certified gap %",
            "rounding degradation %",
            "violation %",
        ],
    );
    let mut payload = Vec::new();
    for &n in &sizes {
        let lib = synthesize_library(&LibraryConfig::default_for(n, 7, 17));
        let tc = TraceConfig::default_for(n as f64 * 1.5, 7, 17);
        let demand = synthetic_demand(&lib, &net, &tc);
        let inst = MipInstance::new(
            net.clone(),
            lib,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        );
        let out = solve_placement(
            &inst,
            &EpfConfig {
                max_passes: 250,
                seed: 17,
                ..Default::default()
            },
        )
        .expect("instance is well-formed");
        let degradation =
            (out.rounding.objective - out.fractional.objective) / out.fractional.objective;
        table.row(vec![
            n.to_string(),
            out.rounding.videos_rounded.to_string(),
            fmt(out.rounding.optimality_gap.unwrap_or(f64::NAN) * 100.0),
            fmt(degradation * 100.0),
            fmt(out.rounding.max_violation * 100.0),
        ]);
        payload.push((
            n,
            out.rounding.videos_rounded,
            out.rounding.optimality_gap,
            degradation,
            out.rounding.max_violation,
        ));
    }
    table.print();
    println!(
        "\npaper: gap 4.1 % @5K → 1.0 % @200K; violation 4.4 % → 0.8 %. Our \
         certified gaps include Lagrangian-bound slack (see DESIGN.md §4); the \
         degradation column isolates what rounding itself costs."
    );
    save_results("rounding_quality", &payload);
}
