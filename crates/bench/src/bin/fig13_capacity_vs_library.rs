//! Fig. 13 — required link capacity vs library size on the
//! Rocketfuel-like Tiscali / Sprint / Ebone networks, with request
//! volume proportional to library size and 2x aggregate disk. The
//! paper's finding: capacity normalized by library size stays flat, and
//! Tiscali (more, smaller VHOs) needs the most.
use vod_bench::{save_results, Scale, Table};
use vod_core::feasibility::{min_link_capacity, Scenario as FeasScenario};
use vod_core::{DiskConfig, EpfConfig};
use vod_model::Mbps;
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![500, 1000],
        Scale::Default => vec![1000, 2000, 5000],
        Scale::Full => vec![5000, 10_000, 20_000, 50_000],
    };
    let nets = [
        ("Tiscali", vod_net::topologies::tiscali()),
        ("Sprint", vod_net::topologies::sprint()),
        ("Ebone", vod_net::topologies::ebone()),
    ];
    let cfg = EpfConfig {
        max_passes: 100,
        seed: 13,
        ..Default::default()
    };
    let mut table = Table::new(
        "Fig. 13 — min link capacity (Mb/s per 1000 videos) vs library size",
        &["library", "Tiscali", "Sprint", "Ebone"],
    );
    let mut payload = Vec::new();
    for &n_videos in &sizes {
        let mut row = vec![n_videos.to_string()];
        for (name, net) in &nets {
            // Requests proportional to library size (Section VII-E).
            let days = 7;
            let lib = synthesize_library(&LibraryConfig::default_for(n_videos, days, 13));
            let tc = TraceConfig::default_for(n_videos as f64 * 2.5, days, 13);
            let demand = synthetic_demand(&lib, net, &tc);
            let fs = FeasScenario {
                network: net,
                catalog: &lib,
                demand: &demand,
                alpha: 1.0,
                beta: 0.0,
            };
            let cap = min_link_capacity(
                &fs,
                &DiskConfig::UniformRatio { ratio: 2.0 },
                Mbps::new(0.2),
                Mbps::from_gbps(20.0),
                0.15,
                &cfg,
            );
            let norm = cap.map(|c| c.value() / (n_videos as f64 / 1000.0));
            row.push(
                norm.map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "infeasible".into()),
            );
            payload.push((n_videos, name.to_string(), norm));
        }
        table.row(row);
    }
    table.print();
    println!(
        "\npaper's shape: normalized capacity ~flat in library size; \
         Tiscali highest (most locations → least disk each)"
    );
    save_results("fig13_capacity_vs_library", &payload);
}
