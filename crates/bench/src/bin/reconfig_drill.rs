//! Reconfiguration drill — the deterministic live-churn matrix for the
//! supervised placement service (robustness harness, not a paper
//! table).
//!
//! For each drill seed the same *reconfiguration storm* — a
//! capacity-only link squeeze before cycle 1, then a VHO decommission
//! plus catalog growth before cycle 2 — runs twice:
//!
//! - **baseline**: the [`vod_ops::Service`] daemon applies the delta
//!   schedule uninterrupted: warm-state remap across the capacity-only
//!   delta, churn-capped feasibility repair of the darkened VHO,
//!   catalog-tail growth re-solved in place,
//! - **chaos**: the identical config driven through a seeded kill
//!   matrix (a stage-boundary kill per cycle, rotating across seeds;
//!   mid-solve kills in cycles 0 and 1; the `service.state` file torn
//!   after the first crash) *plus* an injected snapshot-I/O fault
//!   storm: scattered ENOSPC, torn partial writes, failed fsync
//!   barriers and read-EIO faults fired by operation index through the
//!   [`vod_json::faults`] shim.
//!
//! Asserts the chaos run's per-cycle deployed placements, denial
//! counts and feasibility-repair fingerprints are *byte-identical* to
//! the baseline's, that warm-remap is recorded for the capacity-only
//! delta in both twins, that the churn cap is never exceeded (repair
//! included), and that the service never aborts — snapshot trouble
//! degrades to typed `SnapshotUnavailable` cycles served from memory.
//! Emits `results/BENCH_reconfig.json` — counters and fingerprints
//! only, no wall times (the service never reads a clock).
use std::path::{Path, PathBuf};
use vod_bench::{save_results, Defaults, Scale, Scenario};
use vod_estimate::EstimateConfig;
use vod_estimate::EstimatorKind;
use vod_json::faults::{self, FaultPlan as IoFaultPlan, IoFault, ShimHandle};
use vod_json::{obj, Value};
use vod_model::{LinkId, Mbps, VhoId};
use vod_ops::{
    DegradeReason, DeltaOp, OpsConfig, OpsWorld, RecoveryAction, Service, ServiceConfig,
    ServicePlan, ServiceState, StageId, StepOutcome, WorldDelta,
};

/// Drill seeds: three independent worlds; the stage-kill rotation
/// across them covers all five stages.
const SEEDS: [u64; 3] = [2020, 2021, 2022];

/// Copies the service may migrate per cycle — shared by scheduled
/// deploys *and* delta-triggered feasibility repair.
const CHURN_CAP: usize = 64;

/// Videos appended at the cycle-2 delta.
const GROWTH: usize = 8;

fn world(s: &Scenario, d: &Defaults) -> OpsWorld {
    let mut net = s.net.clone();
    net.set_uniform_capacity(Mbps::from_gbps(d.link_gbps));
    OpsWorld {
        net,
        paths: s.paths.clone(),
        catalog: s.catalog.clone(),
        trace: s.trace.clone(),
        disks: s.full_disks(d),
        mip_disk: s.mip_disk(d),
        est: EstimateConfig {
            window_secs: d.window_secs,
            n_windows: d.n_windows,
        },
    }
}

/// The storm both twins replay: a capacity-only squeeze (remap
/// eligible — warm solver state survives) before cycle 1, then a
/// topology+catalog delta (repair required) before cycle 2.
fn storm_deltas(seed: u64) -> Vec<WorldDelta> {
    vec![
        WorldDelta {
            cycle: 1,
            seed,
            ops: vec![
                DeltaOp::ScaleLink {
                    link: LinkId::new(0),
                    factor: 0.5,
                },
                DeltaOp::CutLink {
                    link: LinkId::new(1),
                },
            ],
        },
        WorldDelta {
            cycle: 2,
            seed,
            ops: vec![
                // lint:allow(raw-index): the drill darkens VHO 1 by convention
                DeltaOp::DecommissionVho { vho: VhoId::new(1) },
                DeltaOp::AppendVideos { count: GROWTH },
            ],
        },
    ]
}

fn config(s: &Scenario, dir: PathBuf) -> ServiceConfig {
    let epf = s.epf_config();
    let budget = epf.step_limit.map(|l| l * 3 / 4);
    ServiceConfig {
        ops: OpsConfig {
            cycles: 3,
            period_days: match s.scale {
                Scale::Quick => 2,
                _ => 7,
            },
            start_day: 7,
            estimator: EstimatorKind::History,
            epf,
            max_attempts: 3,
            checkpoint_every: 3,
            backoff_base_ms: 250,
            validate_tol: 1e-6,
            simulate: true,
            state_dir: dir,
        },
        churn_cap: Some(CHURN_CAP),
        cycle_step_budget: budget,
        watchdog_budget: 64,
        cycle_faults: Vec::new(),
        cycle_deltas: storm_deltas(s.seed),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_reconfig_drill_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprints(st: &ServiceState) -> Vec<u64> {
    st.records.iter().map(|r| r.placement_fnv).collect()
}

fn denials(st: &ServiceState) -> Vec<u64> {
    st.records.iter().map(|r| r.denied).collect()
}

fn repairs(st: &ServiceState) -> Vec<Vec<u64>> {
    st.records.iter().map(|r| r.repairs.clone()).collect()
}

struct TwinOutcome {
    state: ServiceState,
    deltas_seen: usize,
    catalog_len: usize,
    dark_vho1: bool,
}

fn run_baseline(w: &OpsWorld, s: &Scenario, dir: &Path) -> TwinOutcome {
    let _quiet = faults::install(IoFaultPlan::default());
    let mut svc = Service::resume_or_start(w, config(s, dir.to_path_buf()), ServicePlan::default())
        .expect("drill config is valid");
    let mut deltas_seen = 0usize;
    loop {
        match svc.step().expect("baseline never aborts") {
            StepOutcome::DeltaApplied { .. } => deltas_seen += 1,
            StepOutcome::Finished => break,
            _ => {}
        }
    }
    TwinOutcome {
        state: svc.state().clone(),
        deltas_seen,
        catalog_len: svc.world().catalog.len(),
        dark_vho1: svc.dark_mask()[1],
    }
}

/// The snapshot-I/O fault storm: scattered write faults (flavour
/// rotating through ENOSPC, torn partial writes, failed fsync) and two
/// read-EIO faults, all fired by deterministic operation index across
/// the whole chaos scenario — constructions, crashes and rebuilds
/// share one counter.
fn io_storm() -> IoFaultPlan {
    let flavours = [
        IoFault::WriteEnospc,
        IoFault::WritePartial { keep: 7 },
        IoFault::FsyncFail,
    ];
    IoFaultPlan {
        writes: [3u64, 7, 11, 19, 31, 43]
            .iter()
            .enumerate()
            .map(|(i, &at)| (at, flavours[i % flavours.len()]))
            .collect(),
        reads: vec![2, 6],
    }
}

struct ChaosOutcome {
    twin: TwinOutcome,
    crashes: u64,
    io_writes_seen: u64,
    io_reads_seen: u64,
    stages_killed: Vec<StageId>,
}

/// The chaos run: drop the service value on every simulated crash and
/// rebuild it over the same state directory, with the I/O fault shim
/// installed for the scenario's whole lifetime. Fired kills are
/// removed from the plan between rebuilds.
fn run_chaos(w: &OpsWorld, s: &Scenario, dir: &Path, rotate: usize) -> ChaosOutcome {
    let shim: ShimHandle = faults::install(io_storm());
    let stages = StageId::ALL;
    let mut stage_kills: Vec<(usize, StageId)> = (0..3)
        .map(|c| (c, stages[(c + rotate) % stages.len()]))
        .collect();
    let stages_killed: Vec<StageId> = stage_kills.iter().map(|&(_, st)| st).collect();
    let mut solve_kills: Vec<(usize, u64)> = vec![(0, 1), (1, 1)];
    let mut crashes = 0u64;
    let mut torn = false;
    let mut deltas_seen = 0usize;
    loop {
        let mut svc = Service::resume_or_start(
            w,
            config(s, dir.to_path_buf()),
            ServicePlan {
                fail: Vec::new(),
                kill_at_stage: stage_kills.clone(),
                kill_mid_solve: solve_kills.clone(),
            },
        )
        .expect("drill config is valid");
        let crashed_at = loop {
            match svc
                .step()
                .expect("reconfig trouble degrades, it never aborts")
            {
                StepOutcome::SimulatedCrash { cycle } => break Some(cycle),
                StepOutcome::DeltaApplied { .. } => deltas_seen += 1,
                StepOutcome::Finished => break None,
                _ => {}
            }
        };
        let Some(cycle) = crashed_at else {
            return ChaosOutcome {
                twin: TwinOutcome {
                    state: svc.state().clone(),
                    deltas_seen,
                    catalog_len: svc.world().catalog.len(),
                    dark_vho1: svc.dark_mask()[1],
                },
                crashes,
                io_writes_seen: shim.writes_seen(),
                io_reads_seen: shim.reads_seen(),
                stages_killed,
            };
        };
        crashes += 1;
        let stage = svc.state().stage;
        if stage_kills.contains(&(cycle, stage)) {
            stage_kills.retain(|&k| k != (cycle, stage));
        } else {
            solve_kills.retain(|&(c, _)| c != cycle);
        }
        if !torn {
            // Torn write after the first crash: the rebuild must cold
            // restart and replay the delta schedule deterministically.
            let path = dir.join("service.state");
            if let Ok(bytes) = std::fs::read(&path) {
                // lint:allow(snapshot-io): deliberately tearing the state file to test recovery
                std::fs::write(&path, &bytes[..bytes.len().min(23)]).expect("tear state file");
                torn = true;
            }
        }
    }
}

/// Twin-shared assertions: the churn cap holds through scheduled
/// deploys and delta repair, every cycle deploys, and the only
/// tolerated degradation is typed snapshot unavailability (the I/O
/// storm's signature — baseline runs must not show even that).
fn check_twin(out: &TwinOutcome, who: &str, io_faults_allowed: bool) {
    let st = &out.state;
    for r in &st.records {
        match r.degraded.as_ref() {
            None => {}
            Some(DegradeReason::SnapshotUnavailable { .. }) if io_faults_allowed => {}
            Some(other) => panic!("{who}: cycle {} degraded: {other:?}", r.cycle),
        }
        assert!(!r.stale, "{who}: cycle {} served stale", r.cycle);
        assert_ne!(
            r.placement_fnv, 0,
            "{who}: cycle {} deployed nothing",
            r.cycle
        );
        assert!(
            r.moved <= CHURN_CAP,
            "{who}: cycle {} moved {} > cap {CHURN_CAP}",
            r.cycle,
            r.moved
        );
    }
    assert!(out.dark_vho1, "{who}: VHO 1 must end storage-dark");
    // The capacity-only delta carried warm state across: recorded as a
    // typed warm-remap recovery on its cycle.
    assert!(
        st.records
            .iter()
            .any(|r| r.recoveries.contains(&RecoveryAction::WarmRemap)),
        "{who}: capacity-only delta must record a warm-remap"
    );
    // The decommission forced a feasibility repair under the cap.
    assert!(
        st.records.iter().any(|r| !r.repairs.is_empty()),
        "{who}: darkening a serving VHO must fingerprint a repair plan"
    );
}

fn ledger(st: &ServiceState) -> Value {
    obj(vec![
        (
            "placements",
            Value::Arr(
                fingerprints(st)
                    .iter()
                    .map(|f| Value::Str(format!("{f:016x}")))
                    .collect(),
            ),
        ),
        (
            "denied",
            Value::Arr(denials(st).iter().map(|&d| Value::Num(d as f64)).collect()),
        ),
        (
            "repairs",
            Value::Arr(
                repairs(st)
                    .iter()
                    .map(|c| {
                        Value::Arr(c.iter().map(|f| Value::Str(format!("{f:016x}"))).collect())
                    })
                    .collect(),
            ),
        ),
        (
            "rejections",
            Value::Arr(
                st.records
                    .iter()
                    .flat_map(|r| r.rejections.iter())
                    .map(|m| Value::Str(m.clone()))
                    .collect(),
            ),
        ),
        ("resumes", Value::Num(st.resumes as f64)),
        ("cold_restarts", Value::Num(st.cold_restarts as f64)),
        ("snapshot_failures", Value::Num(st.snapshot_failures as f64)),
    ])
}

fn main() {
    let scale = Scale::from_args();
    let mut seed_rows = Vec::new();
    let mut stages_covered: Vec<StageId> = Vec::new();
    let mut all_identical = true;

    for (rotate, &seed) in SEEDS.iter().enumerate() {
        let s = Scenario::operational(scale, seed);
        let d = Defaults::for_scale(s.scale);
        let w = world(&s, &d);
        let grown = w.catalog.len() + GROWTH;

        let base = run_baseline(&w, &s, &fresh_dir(&format!("base_{seed}")));
        check_twin(&base, "baseline", false);
        assert_eq!(base.state.cold_restarts, 0, "baseline never cold-restarts");
        assert_eq!(base.deltas_seen, 2, "baseline applies each delta once");
        assert_eq!(base.catalog_len, grown, "baseline catalog must grow");

        let chaos = run_chaos(&w, &s, &fresh_dir(&format!("chaos_{seed}")), rotate);
        check_twin(&chaos.twin, "chaos", true);
        for st in &chaos.stages_killed {
            if !stages_covered.contains(st) {
                stages_covered.push(*st);
            }
        }
        assert_eq!(
            chaos.crashes, 5,
            "seed {seed}: expected 5 crashes (3 stage kills + 2 mid-solve)"
        );
        assert!(
            chaos.twin.state.cold_restarts >= 1,
            "seed {seed}: the torn state must cold-restart"
        );
        // Replays may re-apply a delta whose transition was lost with
        // the crash — never fewer applications than the schedule.
        assert!(chaos.twin.deltas_seen >= 2, "seed {seed}: deltas lost");
        assert_eq!(chaos.twin.catalog_len, grown, "seed {seed}: catalog");
        // Every scheduled I/O fault actually fired.
        assert!(chaos.io_writes_seen > 43, "seed {seed}: write storm idle");
        assert!(chaos.io_reads_seen > 6, "seed {seed}: read storm idle");

        let identical = fingerprints(&chaos.twin.state) == fingerprints(&base.state)
            && denials(&chaos.twin.state) == denials(&base.state)
            && repairs(&chaos.twin.state) == repairs(&base.state);
        assert!(
            identical,
            "seed {seed}: chaos run diverged from its uninterrupted twin:\n  \
             base  {:x?} denied {:?} repairs {:x?}\n  chaos {:x?} denied {:?} repairs {:x?}",
            fingerprints(&base.state),
            denials(&base.state),
            repairs(&base.state),
            fingerprints(&chaos.twin.state),
            denials(&chaos.twin.state),
            repairs(&chaos.twin.state),
        );
        all_identical &= identical;

        println!(
            "reconfig_drill seed {seed}: {} cycles | deltas {} | crashes {} \
             (stages {:?}) | cold restarts {} | snapshot failures {} | \
             identical to twin: {identical}",
            chaos.twin.state.records.len(),
            chaos.twin.deltas_seen,
            chaos.crashes,
            chaos
                .stages_killed
                .iter()
                .map(|st| st.name())
                .collect::<Vec<_>>(),
            chaos.twin.state.cold_restarts,
            chaos.twin.state.snapshot_failures,
        );

        seed_rows.push(obj(vec![
            ("seed", Value::Num(seed as f64)),
            ("identical", Value::Bool(identical)),
            ("crashes", Value::Num(chaos.crashes as f64)),
            (
                "stages_killed",
                Value::Arr(
                    chaos
                        .stages_killed
                        .iter()
                        .map(|st| Value::Str(st.name().into()))
                        .collect(),
                ),
            ),
            ("deltas_applied", Value::Num(chaos.twin.deltas_seen as f64)),
            ("catalog_len", Value::Num(chaos.twin.catalog_len as f64)),
            ("io_writes_seen", Value::Num(chaos.io_writes_seen as f64)),
            ("io_reads_seen", Value::Num(chaos.io_reads_seen as f64)),
            ("baseline", ledger(&base.state)),
            ("chaos", ledger(&chaos.twin.state)),
        ]));
    }

    assert_eq!(
        stages_covered.len(),
        StageId::ALL.len(),
        "the rotation must kill every stage at least once across seeds"
    );

    save_results(
        "BENCH_reconfig",
        &obj(vec![
            ("scale", Value::Str(format!("{scale:?}").to_lowercase())),
            ("churn_cap", Value::Num(CHURN_CAP as f64)),
            ("growth", Value::Num(GROWTH as f64)),
            ("identical_after_chaos", Value::Bool(all_identical)),
            (
                "stages_covered",
                Value::Arr(
                    stages_covered
                        .iter()
                        .map(|st| Value::Str(st.name().into()))
                        .collect(),
                ),
            ),
            ("seeds", Value::Arr(seed_rows)),
        ]),
    );
}
