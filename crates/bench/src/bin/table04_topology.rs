//! Table IV — topology vs required link capacity: the backbone, a
//! spanning tree and a full mesh over the same VHOs, plus the
//! Rocketfuel-like maps (restricted to the top-n VHOs by request
//! volume), all at 3x aggregate disk. Fewer links ⇒ longer paths ⇒ more
//! capacity needed per link; the full mesh needs almost none.
use vod_bench::{save_results, Defaults, Scale, Scenario, Table};
use vod_core::feasibility::{min_link_capacity, Scenario as FeasScenario};
use vod_core::DiskConfig;
use vod_model::Mbps;
use vod_net::topologies;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::default();
    let demand_full = s.demand_of_week(0, &d);
    let disk = DiskConfig::UniformRatio { ratio: 3.0 };
    let cfg = s.probe_config();
    let tree = topologies::spanning_tree_of(&s.net);
    let mesh = topologies::full_mesh_of(&s.net);
    let mut table = Table::new(
        "Table IV — topology vs feasibility link capacity (3x disk)",
        &["topology", "nodes", "links", "min capacity (Gb/s)"],
    );
    let mut payload = Vec::new();
    // Same-node-set variants reuse the same demand.
    for (name, net) in [("backbone", &s.net), ("tree", &tree), ("full mesh", &mesh)] {
        let fs = FeasScenario {
            network: net,
            catalog: &s.catalog,
            demand: &demand_full,
            alpha: 1.0,
            beta: 0.0,
        };
        let cap = min_link_capacity(
            &fs,
            &disk,
            Mbps::new(0.5),
            Mbps::from_gbps(50.0),
            0.12,
            &cfg,
        );
        let val = cap.map(|c| c.gbps());
        table.row(vec![
            name.into(),
            net.num_nodes().to_string(),
            net.num_undirected_edges().to_string(),
            val.map(|v| format!("{v:.3}"))
                .unwrap_or("infeasible".into()),
        ]);
        payload.push((name.to_string(), net.num_nodes(), val));
    }
    // Rocketfuel nets: keep the top-n VHOs by request count, re-derive
    // demand from the same trace restricted to those VHOs' requests.
    let week0 = s.week(0);
    let mut by_requests: Vec<(u64, vod_model::VhoId)> = {
        let mut counts = vec![0u64; s.net.num_nodes()];
        for r in week0.requests() {
            counts[r.vho.index()] += 1;
        }
        counts
            .iter()
            .enumerate()
            // lint:allow(raw-index): remaps node indices when subsetting the backbone
            .map(|(i, &c)| (c, vod_model::VhoId::from_index(i)))
            .collect()
    };
    by_requests.sort_by_key(|&(c, v)| (std::cmp::Reverse(c), v));
    for (name, net) in [
        ("Tiscali-like", topologies::tiscali()),
        ("Sprint-like", topologies::sprint()),
        ("Ebone-like", topologies::ebone()),
    ] {
        // Map the top-k busiest VHOs onto the first k nodes of this
        // network (k = min of the two sizes; any remaining Rocketfuel
        // nodes carry no demand but still contribute storage/links).
        let k = net.num_nodes().min(s.net.num_nodes());
        let keep: Vec<vod_model::VhoId> = by_requests.iter().take(k).map(|&(_, v)| v).collect();
        let remap: std::collections::BTreeMap<vod_model::VhoId, vod_model::VhoId> = keep
            .iter()
            .enumerate()
            // lint:allow(raw-index): remaps node indices when subsetting the backbone
            .map(|(new, &old)| (old, vod_model::VhoId::from_index(new)))
            .collect();
        let reqs: Vec<vod_trace::Request> = week0
            .requests()
            .iter()
            .filter_map(|r| {
                remap
                    .get(&r.vho)
                    .map(|&nv| vod_trace::Request { vho: nv, ..*r })
            })
            .collect();
        let sub_trace = vod_trace::Trace::new(week0.horizon(), reqs);
        let windows = vod_trace::analysis::select_peak_windows(
            &sub_trace,
            &s.catalog,
            d.window_secs,
            d.n_windows,
        );
        let demand =
            vod_trace::DemandInput::from_trace(&sub_trace, &s.catalog, net.num_nodes(), windows);
        let fs = FeasScenario {
            network: &net,
            catalog: &s.catalog,
            demand: &demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let cap = min_link_capacity(
            &fs,
            &disk,
            Mbps::new(0.5),
            Mbps::from_gbps(50.0),
            0.12,
            &cfg,
        );
        let val = cap.map(|c| c.gbps());
        table.row(vec![
            name.into(),
            net.num_nodes().to_string(),
            net.num_undirected_edges().to_string(),
            val.map(|v| format!("{v:.3}"))
                .unwrap_or("infeasible".into()),
        ]);
        payload.push((name.to_string(), net.num_nodes(), val));
    }
    table.print();
    println!(
        "\npaper's ordering: tree >> backbone >> full mesh (0.05 Gb/s); \
         Tiscali needs more than Sprint/Ebone"
    );
    save_results("table04_topology", &payload);
}
