//! Fig. 9 — behaviour of a pure LRU deployment (half of each disk is
//! cache): request breakdown into locally-pinned / cache hits / remote,
//! cache cycling (insertions and evictions), and the share of requests
//! that were *uncachable* because the cache was full of active streams.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_model::SimTime;
use vod_sim::{random_single_vho_configs, simulate, CacheKind, PolicyKind, SimConfig};

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let full_disks = s.full_disks(&d);
    let vhos = random_single_vho_configs(&s.catalog, &full_disks, CacheKind::Lru, s.seed);
    let rep = simulate(
        &net,
        &s.paths,
        &s.catalog,
        &s.trace,
        &vhos,
        &PolicyKind::NearestReplica,
        &SimConfig {
            measure_from: SimTime::new(7 * 86_400),
            seed: s.seed,
            ..Default::default()
        },
    );
    let mut table = Table::new(
        "Fig. 9 — LRU cache behaviour (aggregate disk = 2x library)",
        &["metric", "value"],
    );
    let total = rep.total_requests as f64;
    table.row(vec![
        "requests (measured)".into(),
        rep.total_requests.to_string(),
    ]);
    table.row(vec![
        "served from pinned copy %".into(),
        fmt(rep.served_local_pinned as f64 / total * 100.0),
    ]);
    table.row(vec![
        "served from local cache %".into(),
        fmt(rep.served_local_cached as f64 / total * 100.0),
    ]);
    table.row(vec![
        "served remotely %".into(),
        fmt(rep.served_remote as f64 / total * 100.0),
    ]);
    table.row(vec![
        "cache insertions".into(),
        rep.cache.insertions.to_string(),
    ]);
    table.row(vec![
        "cache evictions (cycling)".into(),
        rep.cache.evictions.to_string(),
    ]);
    table.row(vec![
        "uncachable (all-pinned) requests".into(),
        rep.cache.rejections.to_string(),
    ]);
    table.row(vec![
        "uncachable % of remote fetches".into(),
        fmt(rep.cache.rejections as f64 / rep.served_remote.max(1) as f64 * 100.0),
    ]);
    table.print();
    println!(
        "\npaper: ~60 % of requests served remotely, ~20 % uncachable, heavy cycling; \
         we observe {:.0} % remote and {:.0} % uncachable with eviction/insertion ratio {:.2}",
        rep.served_remote as f64 / total * 100.0,
        rep.cache.rejections as f64 / rep.served_remote.max(1) as f64 * 100.0,
        rep.cache.evictions as f64 / rep.cache.insertions.max(1) as f64
    );
    save_results("fig09_lru_behavior", &table);
}
