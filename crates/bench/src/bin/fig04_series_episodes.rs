//! Fig. 4 — daily request counts for consecutive episodes of one TV
//! series: each episode spikes on its release day with a volume similar
//! to the previous episode's, which is what the series demand estimator
//! (Section VI-A) exploits.
use vod_bench::{save_results, Scale, Scenario, Table};
use vod_trace::analysis;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    // Pick the series with the most total requests for a clear figure.
    let n_series = s
        .catalog
        .iter()
        .filter_map(|v| match v.kind {
            vod_model::VideoKind::SeriesEpisode { series, .. } => Some(series),
            _ => None,
        })
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    let best_series = (0..n_series)
        .max_by_key(|&sid| {
            analysis::episode_daily_counts(&s.trace, &s.catalog, sid)
                .iter()
                .map(|(_, days)| days.iter().sum::<u64>())
                .sum::<u64>()
        })
        .expect("library has series");
    let eps = analysis::episode_daily_counts(&s.trace, &s.catalog, best_series);
    let days = s.trace.horizon().secs() / 86_400;
    let mut headers: Vec<String> = vec![
        "episode".into(),
        "release day".into(),
        "peak day reqs".into(),
    ];
    headers.extend((0..days).map(|d| format!("d{d}")));
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Fig. 4 — daily requests for episodes of series {best_series}"),
        &hdr_refs,
    );
    let mut peaks = Vec::new();
    for (ep, daily) in &eps {
        let video = s
            .catalog
            .iter()
            .find(|v| {
                v.kind
                    == vod_model::VideoKind::SeriesEpisode {
                        series: best_series,
                        episode: *ep,
                    }
            })
            .expect("episode exists in catalog");
        let peak = daily.iter().copied().max().unwrap_or(0);
        peaks.push(peak);
        let mut row = vec![
            ep.to_string(),
            video.release_day.to_string(),
            peak.to_string(),
        ];
        row.extend(daily.iter().map(|c| c.to_string()));
        table.row(row);
    }
    table.print();
    if peaks.len() >= 2 {
        let ratios: Vec<f64> = peaks
            .windows(2)
            .filter(|w| w[0] > 0)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect();
        println!(
            "\nrelease-day peak ratios between consecutive episodes: {:?} \
             (paper's example: 7000 vs 8700 ≈ 1.24)",
            ratios
                .iter()
                .map(|r| (r * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    save_results("fig04_series_episodes", &table);
}
