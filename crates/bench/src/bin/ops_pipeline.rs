//! Ops drill — crash-safe re-optimization (robustness harness, not a
//! paper table). Runs the supervised estimate→solve→round→validate→
//! simulate schedule of `vod-ops` three ways over the same scenario:
//!
//! - **baseline**: uninterrupted,
//! - **interrupted**: killed mid-solve at seeded points, with the
//!   surviving solver checkpoint truncated after some crashes (torn
//!   write) and one transient injected failure per cycle, then resumed
//!   from the durable state alone,
//! - **degraded**: cycle 1's solve forced to exhaust every retry.
//!
//! Asserts the interrupted run's per-cycle placements are
//! *byte-identical* to the baseline's, and that the degraded run falls
//! back to the last-good placement with a typed reason. Emits
//! `results/BENCH_ops.json` — counters and fingerprints only, no wall
//! times (the supervisor never reads a clock).
use std::path::{Path, PathBuf};
use vod_bench::{save_results, Defaults, Scale, Scenario};
use vod_estimate::{EstimateConfig, EstimatorKind};
use vod_json::{obj, Value};
use vod_model::rng::derive_seed;
use vod_model::Mbps;
use vod_ops::{
    CycleRecord, DegradeReason, FaultPlan, OpsConfig, OpsWorld, Pipeline, PipelineState, StageId,
    StepOutcome,
};

fn world(s: &Scenario, d: &Defaults) -> OpsWorld {
    let mut net = s.net.clone();
    net.set_uniform_capacity(Mbps::from_gbps(d.link_gbps));
    OpsWorld {
        net,
        paths: s.paths.clone(),
        catalog: s.catalog.clone(),
        trace: s.trace.clone(),
        disks: s.full_disks(d),
        mip_disk: s.mip_disk(d),
        est: EstimateConfig {
            window_secs: d.window_secs,
            n_windows: d.n_windows,
        },
    }
}

fn config(s: &Scenario, dir: PathBuf) -> OpsConfig {
    OpsConfig {
        cycles: 3,
        period_days: match s.scale {
            Scale::Quick => 2,
            _ => 7,
        },
        start_day: 7,
        estimator: EstimatorKind::History,
        // The scenario config already budgets via the deterministic
        // `step_limit` (never `wall_limit`), which checkpoint resume
        // preserves — a prerequisite for the identity assertion below.
        epf: s.epf_config(),
        max_attempts: 3,
        checkpoint_every: 3,
        backoff_base_ms: 250,
        validate_tol: 1e-6,
        simulate: true,
        state_dir: dir,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_ops_bench_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprints(st: &PipelineState) -> Vec<u64> {
    st.records.iter().map(|r| r.placement_fnv).collect()
}

/// The interrupted run: drop the pipeline value on every simulated
/// crash and resume from disk, truncating the solver checkpoint after
/// every other crash to model a torn write.
fn run_interrupted(w: &OpsWorld, s: &Scenario, dir: &Path) -> PipelineState {
    let seed = s.seed;
    let stages = StageId::ALL;
    // One transient failure per cycle at a seeded stage (attempt 0
    // only — the retry then succeeds).
    let fail: Vec<(usize, StageId, u32)> = (0..3)
        .map(|c| {
            let pick = derive_seed(seed, 0xFA11 ^ c as u64) % stages.len() as u64;
            (c, stages[usize::try_from(pick).expect("pick < 5")], 0)
        })
        .collect();
    // Kill cycles 0 and 1 mid-solve after a seeded number of surviving
    // checkpoints.
    let mut kills: Vec<(usize, u64)> = (0..2)
        .map(|c| (c, derive_seed(seed, 0x6111 ^ c as u64) % 3))
        .collect();
    let mut truncate_next = true;
    loop {
        let mut p = Pipeline::resume_or_start(
            w,
            config(s, dir.to_path_buf()),
            FaultPlan {
                fail: fail.clone(),
                kill_mid_solve: kills.clone(),
            },
        )
        .expect("pipeline config is valid");
        let mut crashed = false;
        loop {
            match p.step().expect("only NoFallback/Io are fatal") {
                StepOutcome::SimulatedCrash { cycle } => {
                    kills.retain(|(c, _)| *c != cycle);
                    crashed = true;
                    break;
                }
                StepOutcome::Finished => break,
                _ => {}
            }
        }
        if !crashed {
            return p.state().clone();
        }
        // Simulate a torn checkpoint write on alternating crashes: the
        // supervisor must fall back to a cold (still deterministic)
        // solve instead of resuming.
        let ckpt = dir.join("solver.ckpt");
        if truncate_next {
            if let Ok(bytes) = std::fs::read(&ckpt) {
                if bytes.len() > 8 {
                    // lint:allow(snapshot-io): deliberately tearing the checkpoint to test recovery
                    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).expect("truncate checkpoint");
                }
            }
        }
        truncate_next = !truncate_next;
    }
}

fn reason_str(r: &DegradeReason) -> String {
    match r {
        DegradeReason::StageFailed {
            stage, attempts, ..
        } => {
            format!("stage-failed:{stage}:{attempts}")
        }
        DegradeReason::ValidationFailed { .. } => "validation-failed".into(),
        DegradeReason::Stalled { stage, .. } => format!("stalled:{stage}"),
        DegradeReason::SnapshotUnavailable { failures, .. } => {
            format!("snapshot-unavailable:{failures}")
        }
    }
}

fn ledger(st: &PipelineState) -> Value {
    let row = |r: &CycleRecord| {
        obj(vec![
            ("cycle", Value::Num(r.cycle as f64)),
            (
                "degraded",
                r.degraded
                    .as_ref()
                    .map_or(Value::Null, |d| Value::Str(reason_str(d))),
            ),
            ("attempts", Value::Num(f64::from(r.attempts))),
            ("backoff_ms", Value::Num(r.backoff_ms as f64)),
            ("solver_resumes", Value::Num(f64::from(r.solver_resumes))),
            (
                "placement_fnv",
                Value::Str(format!("{:016x}", r.placement_fnv)),
            ),
            ("objective", r.objective.map_or(Value::Null, Value::Num)),
            ("migrated", Value::Num(r.migrated as f64)),
            (
                "sim",
                r.sim.as_ref().map_or(Value::Null, |m| {
                    obj(vec![
                        ("max_gbps", Value::Num(m.max_gbps)),
                        ("local_frac", Value::Num(m.local_frac)),
                        ("total_requests", Value::Num(m.total_requests as f64)),
                    ])
                }),
            ),
        ])
    };
    obj(vec![
        ("records", Value::Arr(st.records.iter().map(row).collect())),
        ("resumes", Value::Num(st.resumes as f64)),
        ("cold_restarts", Value::Num(st.cold_restarts as f64)),
    ])
}

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let w = world(&s, &d);

    // Baseline: uninterrupted.
    let base = {
        let mut p =
            Pipeline::resume_or_start(&w, config(&s, fresh_dir("base")), FaultPlan::default())
                .expect("pipeline config is valid");
        p.run().expect("baseline run completes").clone()
    };
    let base_fps = fingerprints(&base);
    assert!(
        base.records.iter().all(|r| r.degraded.is_none()),
        "baseline must not degrade"
    );

    // Interrupted: kills + truncation + transient failures, resumed.
    let dir_b = fresh_dir("interrupted");
    let inter = run_interrupted(&w, &s, &dir_b);
    let identical = fingerprints(&inter) == base_fps;
    assert!(
        identical,
        "interrupted run placements diverged from baseline:\n  base  {base_fps:x?}\n  inter {:x?}",
        fingerprints(&inter)
    );
    assert!(
        inter.resumes >= 2,
        "expected at least two process resumes, saw {}",
        inter.resumes
    );

    // Degraded: cycle 1's solve exhausts its retries.
    let deg = {
        let faults = FaultPlan {
            fail: (0..3).map(|a| (1usize, StageId::Solve, a)).collect(),
            kill_mid_solve: Vec::new(),
        };
        let mut p = Pipeline::resume_or_start(&w, config(&s, fresh_dir("degraded")), faults)
            .expect("pipeline config is valid");
        p.run().expect("degraded run still completes").clone()
    };
    let bad = &deg.records[1];
    assert!(
        matches!(
            bad.degraded,
            Some(DegradeReason::StageFailed {
                stage: StageId::Solve,
                ..
            })
        ),
        "cycle 1 must degrade on the solve stage, got {:?}",
        bad.degraded
    );
    assert_eq!(
        bad.placement_fnv, deg.records[0].placement_fnv,
        "degraded cycle must serve the previous cycle's placement"
    );

    println!(
        "ops_pipeline: {} cycles | interrupted identical to baseline: {} \
         ({} resumes, {} solver checkpoint resumes) | degraded cycle served last-good",
        base.records.len(),
        identical,
        inter.resumes,
        inter
            .records
            .iter()
            .map(|r| u64::from(r.solver_resumes))
            .sum::<u64>(),
    );

    save_results(
        "BENCH_ops",
        &obj(vec![
            ("scale", Value::Str(format!("{:?}", s.scale).to_lowercase())),
            ("identical_after_interruptions", Value::Bool(identical)),
            ("baseline", ledger(&base)),
            ("interrupted", ledger(&inter)),
            ("degraded", ledger(&deg)),
        ]),
    );
}
