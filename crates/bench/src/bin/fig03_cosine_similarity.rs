//! Fig. 3 — cosine similarity of the per-VHO request mix between the
//! peak interval and the previous interval, for several window sizes.
//! Small windows ⇒ dissimilar mixes ⇒ caches cycle.
use vod_bench::{fmt, save_results, Scale, Scenario, Table};
use vod_model::time::{DAY, HOUR};
use vod_trace::analysis;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let windows: [(u64, &str); 4] = [
        (HOUR, "1 hour"),
        (4 * HOUR, "4 hours"),
        (12 * HOUR, "12 hours"),
        (DAY, "1 day"),
    ];
    let mut table = Table::new(
        "Fig. 3 — request-mix cosine similarity vs window size",
        &["window", "mean", "min", "max"],
    );
    let mut means = Vec::new();
    for (secs, label) in windows {
        let sims = analysis::peak_cosine_similarity(&s.trace, s.net.num_nodes(), secs);
        let mean = sims.iter().sum::<f64>() / sims.len() as f64;
        let min = sims.iter().cloned().fold(f64::MAX, f64::min);
        let max = sims.iter().cloned().fold(f64::MIN, f64::max);
        means.push(mean);
        table.row(vec![label.into(), fmt(mean), fmt(min), fmt(max)]);
    }
    table.print();
    println!(
        "\nsimilarity rises with window size ({} → {}), as in the paper: \
         day-scale mixes are alike, hour-scale mixes are not",
        fmt(means[0]),
        fmt(means[3])
    );
    save_results("fig03_cosine_similarity", &table);
}
