//! Service drill — the deterministic chaos matrix for the supervised
//! placement service (robustness harness, not a paper table).
//!
//! For each drill seed the same scenario runs twice:
//!
//! - **baseline**: the [`vod_ops::Service`] daemon loop uninterrupted —
//!   streaming estimates, budgeted warm-started solves, churn-capped
//!   deploys, a fault storm replayed in cycle 1,
//! - **chaos**: the identical config driven through a seeded
//!   kill/corruption matrix — a stage-boundary kill in *every* cycle
//!   (the killed stage rotates across seeds so all five stages are
//!   covered), mid-solve kills in cycles 0 and 1, the `service.state`
//!   file torn inside its header after the first crash, the surviving
//!   cycle-0 solver checkpoint planted over cycle 1's (a foreign
//!   checkpoint the validator must refuse), bit rot in the fractional
//!   snapshot, and one transient injected stage failure per cycle.
//!
//! Asserts the chaos run's per-cycle deployed placements and denial
//! counts are *byte-identical* to the baseline's, that the churn cap
//! is never exceeded, that recovery took the typed ladder rungs
//! (warm-resume after a mid-solve kill, cold-solve after the foreign
//! checkpoint, exactly one cold restart from the torn state), and that
//! nothing panics or degrades. Emits `results/BENCH_service.json` —
//! counters and fingerprints only, no wall times (the service never
//! reads a clock).
use std::path::{Path, PathBuf};
use vod_bench::{save_results, Defaults, Scale, Scenario};
use vod_estimate::{EstimateConfig, EstimatorKind};
use vod_json::{obj, Value};
use vod_model::rng::derive_seed;
use vod_model::{LinkId, Mbps, SimTime, VhoId};
use vod_ops::{
    DegradeReason, OpsConfig, OpsWorld, RecoveryAction, Service, ServiceConfig, ServicePlan,
    ServiceRecord, ServiceState, StageId, StepOutcome,
};
use vod_sim::{FaultEvent, FaultKind, FaultSchedule};

/// Drill seeds: three independent worlds; the stage-kill rotation
/// across them covers all five stages.
const SEEDS: [u64; 3] = [2010, 2011, 2012];

/// Copies the service may migrate per cycle in the drill.
const CHURN_CAP: usize = 64;

/// Snapshot container header for the `ops-service` kind: 8B magic +
/// 1B kind-len + 11B kind + 4B version + 8B payload-len + 8B checksum.
/// Torn-write offsets are drawn inside this range.
const SERVICE_HEADER_LEN: u64 = 8 + 1 + 11 + 4 + 8 + 8;

fn world(s: &Scenario, d: &Defaults) -> OpsWorld {
    let mut net = s.net.clone();
    net.set_uniform_capacity(Mbps::from_gbps(d.link_gbps));
    OpsWorld {
        net,
        paths: s.paths.clone(),
        catalog: s.catalog.clone(),
        trace: s.trace.clone(),
        disks: s.full_disks(d),
        mip_disk: s.mip_disk(d),
        est: EstimateConfig {
            window_secs: d.window_secs,
            n_windows: d.n_windows,
        },
    }
}

/// Cycle 1's replay storm: one VHO dark for the whole window, one
/// backbone link at quarter capacity, demand doubled everywhere, with
/// admission control on. Identical in both twins — faults may change
/// what is *denied*, never what is *placed*.
fn storm(horizon: SimTime) -> FaultSchedule {
    FaultSchedule {
        events: vec![
            FaultEvent {
                start: SimTime::new(0),
                end: horizon,
                // lint:allow(raw-index): the storm darkens VHO 1 by convention
                kind: FaultKind::VhoOutage { vho: VhoId::new(1) },
            },
            FaultEvent {
                start: SimTime::new(0),
                end: horizon,
                kind: FaultKind::LinkDegrade {
                    link: LinkId::new(0),
                    capacity_scale: 0.25,
                },
            },
            FaultEvent {
                start: SimTime::new(0),
                end: horizon,
                kind: FaultKind::FlashCrowd {
                    vho: None,
                    multiplier: 2,
                },
            },
        ],
        admission: true,
    }
}

fn config(s: &Scenario, w: &OpsWorld, dir: PathBuf) -> ServiceConfig {
    let epf = s.epf_config();
    // Budget each cycle at 3/4 of the scenario's pass limit: tight
    // enough to exercise the budget path, loose enough to stay
    // serviceable. Deterministic in passes, never wall time.
    let budget = epf.step_limit.map(|l| l * 3 / 4);
    ServiceConfig {
        ops: OpsConfig {
            cycles: 3,
            period_days: match s.scale {
                Scale::Quick => 2,
                _ => 7,
            },
            start_day: 7,
            estimator: EstimatorKind::History,
            epf,
            max_attempts: 3,
            checkpoint_every: 3,
            backoff_base_ms: 250,
            validate_tol: 1e-6,
            simulate: true,
            state_dir: dir,
        },
        churn_cap: Some(CHURN_CAP),
        cycle_step_budget: budget,
        watchdog_budget: 64,
        cycle_faults: vec![(1, storm(w.trace.horizon()))],
        cycle_deltas: Vec::new(),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vod_service_drill_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprints(st: &ServiceState) -> Vec<u64> {
    st.records.iter().map(|r| r.placement_fnv).collect()
}

fn denials(st: &ServiceState) -> Vec<u64> {
    st.records.iter().map(|r| r.denied).collect()
}

fn run_baseline(w: &OpsWorld, s: &Scenario, dir: &Path) -> ServiceState {
    let mut svc =
        Service::resume_or_start(w, config(s, w, dir.to_path_buf()), ServicePlan::default())
            .expect("service config is valid");
    svc.run().expect("baseline service run completes").clone()
}

struct ChaosOutcome {
    state: ServiceState,
    crashes: u64,
    torn: bool,
    planted: bool,
    stages_killed: Vec<StageId>,
}

/// The chaos run: drop the service value on every simulated crash and
/// rebuild it over the same state directory, corrupting the durable
/// artifacts along the way. Fired kills are removed from the plan
/// between rebuilds — each crash site fires exactly once.
fn run_chaos(w: &OpsWorld, s: &Scenario, dir: &Path, rotate: usize) -> ChaosOutcome {
    let stages = StageId::ALL;
    // One transient failure per cycle at a seeded stage (attempt 0
    // only — the retry then succeeds).
    let fail: Vec<(usize, StageId, u32)> = (0..3)
        .map(|c| {
            let pick = derive_seed(s.seed, 0xFA11 ^ c as u64) % stages.len() as u64;
            (c, stages[usize::try_from(pick).expect("pick < 5")], 0)
        })
        .collect();
    // A stage-boundary kill in every cycle; the stage index rotates
    // with the drill seed so the matrix covers all five stages.
    let mut stage_kills: Vec<(usize, StageId)> = (0..3)
        .map(|c| (c, stages[(c + rotate) % stages.len()]))
        .collect();
    let stages_killed: Vec<StageId> = stage_kills.iter().map(|&(_, st)| st).collect();
    // Mid-solve kills in cycles 0 and 1, each after one surviving
    // checkpoint emission.
    let mut solve_kills: Vec<(usize, u64)> = vec![(0, 1), (1, 1)];
    let mut crashes = 0u64;
    let mut torn = false;
    let mut planted = false;
    let mut stash: Vec<u8> = Vec::new();
    loop {
        let mut svc = Service::resume_or_start(
            w,
            config(s, w, dir.to_path_buf()),
            ServicePlan {
                fail: fail.clone(),
                kill_at_stage: stage_kills.clone(),
                kill_mid_solve: solve_kills.clone(),
            },
        )
        .expect("service config is valid");
        let crashed_at = loop {
            match svc.step().expect("cycle trouble degrades, it never aborts") {
                StepOutcome::SimulatedCrash { cycle } => break Some(cycle),
                StepOutcome::Finished => break None,
                _ => {}
            }
        };
        let Some(cycle) = crashed_at else {
            return ChaosOutcome {
                state: svc.state().clone(),
                crashes,
                torn,
                planted,
                stages_killed,
            };
        };
        crashes += 1;
        // A kill fires before anything runs, so the durable stage
        // still names the crash site: disambiguate stage kills from
        // mid-solve kills and retire the one that fired.
        let stage = svc.state().stage;
        if stage_kills.contains(&(cycle, stage)) {
            stage_kills.retain(|&k| k != (cycle, stage));
        } else {
            solve_kills.retain(|&(c, _)| c != cycle);
            if cycle == 0 {
                // Stash the surviving cycle-0 checkpoint: it becomes
                // the *foreign* checkpoint planted over cycle 1's.
                stash = std::fs::read(dir.join("solver.ckpt")).unwrap_or_default();
            } else if !stash.is_empty() {
                // Foreign-checkpoint flip: cycle 1 resumes against a
                // checkpoint written for cycle 0. The validator must
                // refuse it and fall through to a cold solve.
                // lint:allow(snapshot-io): deliberately planting a foreign checkpoint
                std::fs::write(dir.join("solver.ckpt"), &stash).expect("plant checkpoint");
                planted = true;
            }
        }
        if crashes == 1 {
            // Torn write: only a seeded prefix of the service-state
            // header survives the first crash. The rebuild must cold
            // restart and deterministically replay the schedule.
            let path = dir.join("service.state");
            let bytes = std::fs::read(&path).expect("state file exists");
            let cut = usize::try_from(derive_seed(s.seed, 0x7EA2) % SERVICE_HEADER_LEN)
                .expect("cut < header");
            // lint:allow(snapshot-io): deliberately tearing the state file to test recovery
            std::fs::write(&path, &bytes[..cut.min(bytes.len())]).expect("tear state file");
            torn = true;
        } else if crashes == 3 {
            // Bit rot in the fractional snapshot (when one survived
            // the crash): the round stage must reject it and retreat
            // to a fresh — still deterministic — solve.
            let path = dir.join("fractional.snap");
            if let Ok(mut bytes) = std::fs::read(&path) {
                if let Some(b) = bytes.last_mut() {
                    *b ^= 0x20;
                }
                // lint:allow(snapshot-io): deliberately corrupting the snapshot to test recovery
                std::fs::write(&path, &bytes).expect("corrupt fractional snapshot");
            }
        }
    }
}

fn reason_str(r: &DegradeReason) -> String {
    match r {
        DegradeReason::StageFailed {
            stage, attempts, ..
        } => format!("stage-failed:{stage}:{attempts}"),
        DegradeReason::ValidationFailed { .. } => "validation-failed".into(),
        DegradeReason::Stalled { stage, .. } => format!("stalled:{stage}"),
        DegradeReason::SnapshotUnavailable { failures, .. } => {
            format!("snapshot-unavailable:{failures}")
        }
    }
}

fn ledger(st: &ServiceState) -> Value {
    let row = |r: &ServiceRecord| {
        obj(vec![
            ("cycle", Value::Num(r.cycle as f64)),
            (
                "degraded",
                r.degraded
                    .as_ref()
                    .map_or(Value::Null, |d| Value::Str(reason_str(d))),
            ),
            (
                "recoveries",
                Value::Arr(
                    r.recoveries
                        .iter()
                        .map(|a| Value::Str(a.name().into()))
                        .collect(),
                ),
            ),
            ("attempts", Value::Num(f64::from(r.attempts))),
            ("backoff_ms", Value::Num(r.backoff_ms as f64)),
            ("solver_resumes", Value::Num(f64::from(r.solver_resumes))),
            (
                "placement_fnv",
                Value::Str(format!("{:016x}", r.placement_fnv)),
            ),
            ("objective", r.objective.map_or(Value::Null, Value::Num)),
            ("lower_bound", r.lower_bound.map_or(Value::Null, Value::Num)),
            (
                "gap",
                match (r.objective, r.lower_bound) {
                    (Some(o), Some(l)) if l > 0.0 => Value::Num(o / l - 1.0),
                    _ => Value::Null,
                },
            ),
            ("moved", Value::Num(r.moved as f64)),
            ("deferred", Value::Num(r.deferred as f64)),
            ("denied", Value::Num(r.denied as f64)),
            ("denial_rate", r.denial_rate.map_or(Value::Null, Value::Num)),
            ("stale", Value::Bool(r.stale)),
            (
                "sim",
                r.sim.as_ref().map_or(Value::Null, |m| {
                    obj(vec![
                        ("max_gbps", Value::Num(m.max_gbps)),
                        ("local_frac", Value::Num(m.local_frac)),
                        ("total_requests", Value::Num(m.total_requests as f64)),
                    ])
                }),
            ),
        ])
    };
    obj(vec![
        ("records", Value::Arr(st.records.iter().map(row).collect())),
        ("resumes", Value::Num(st.resumes as f64)),
        ("cold_restarts", Value::Num(st.cold_restarts as f64)),
        ("stale_serves", Value::Num(st.stale_serves as f64)),
        ("queue_len", Value::Num(st.deferred.len() as f64)),
    ])
}

/// Drill assertions common to both twins: the churn cap holds, the
/// bootstrap cycle is a free bulk load, nothing degrades.
fn check_common(st: &ServiceState, who: &str) {
    for r in &st.records {
        assert!(
            r.degraded.is_none(),
            "{who}: cycle {} degraded: {:?}",
            r.cycle,
            r.degraded
        );
        assert!(!r.stale, "{who}: cycle {} served stale", r.cycle);
        assert!(
            r.moved <= CHURN_CAP,
            "{who}: cycle {} moved {} > cap {CHURN_CAP}",
            r.cycle,
            r.moved
        );
        if let (Some(o), Some(l)) = (r.objective, r.lower_bound) {
            assert!(
                l <= o * (1.0 + 1e-9),
                "{who}: cycle {} bound {l} above objective {o}",
                r.cycle
            );
        }
    }
    assert_eq!(
        st.records.first().map(|r| r.moved),
        Some(0),
        "{who}: bootstrap deployment must be a free bulk load"
    );
}

fn main() {
    let scale = Scale::from_args();
    let mut seed_rows = Vec::new();
    let mut stages_covered: Vec<StageId> = Vec::new();
    let mut all_identical = true;

    for (rotate, &seed) in SEEDS.iter().enumerate() {
        let s = Scenario::operational(scale, seed);
        let d = Defaults::for_scale(s.scale);
        let w = world(&s, &d);

        let base = run_baseline(&w, &s, &fresh_dir(&format!("base_{seed}")));
        check_common(&base, "baseline");
        assert_eq!(base.cold_restarts, 0, "baseline must never cold-restart");

        let chaos = run_chaos(&w, &s, &fresh_dir(&format!("chaos_{seed}")), rotate);
        check_common(&chaos.state, "chaos");
        for st in &chaos.stages_killed {
            if !stages_covered.contains(st) {
                stages_covered.push(*st);
            }
        }
        assert_eq!(
            chaos.crashes, 5,
            "seed {seed}: expected 5 crashes (3 stage kills + 2 mid-solve)"
        );
        assert!(
            chaos.torn && chaos.planted,
            "seed {seed}: matrix incomplete"
        );
        assert_eq!(
            chaos.state.cold_restarts, 1,
            "seed {seed}: the torn state must cause exactly one cold restart"
        );
        let recoveries: Vec<RecoveryAction> = chaos
            .state
            .records
            .iter()
            .flat_map(|r| r.recoveries.iter().copied())
            .collect();
        assert!(
            recoveries.contains(&RecoveryAction::WarmResume),
            "seed {seed}: a mid-solve kill must warm-resume from its checkpoint"
        );
        assert!(
            recoveries.contains(&RecoveryAction::ColdSolve),
            "seed {seed}: the foreign checkpoint must be refused into a cold solve"
        );

        let identical = fingerprints(&chaos.state) == fingerprints(&base)
            && denials(&chaos.state) == denials(&base);
        assert!(
            identical,
            "seed {seed}: chaos run diverged from its uninterrupted twin:\n  \
             base  {:x?} denied {:?}\n  chaos {:x?} denied {:?}",
            fingerprints(&base),
            denials(&base),
            fingerprints(&chaos.state),
            denials(&chaos.state),
        );
        all_identical &= identical;

        println!(
            "service_drill seed {seed}: {} cycles | crashes 5 (stages {:?}) | \
             cold restarts {} | identical to twin: {identical}",
            chaos.state.records.len(),
            chaos
                .stages_killed
                .iter()
                .map(|st| st.name())
                .collect::<Vec<_>>(),
            chaos.state.cold_restarts,
        );

        seed_rows.push(obj(vec![
            ("seed", Value::Num(seed as f64)),
            ("identical", Value::Bool(identical)),
            ("crashes", Value::Num(chaos.crashes as f64)),
            (
                "stages_killed",
                Value::Arr(
                    chaos
                        .stages_killed
                        .iter()
                        .map(|st| Value::Str(st.name().into()))
                        .collect(),
                ),
            ),
            ("state_torn", Value::Bool(chaos.torn)),
            ("foreign_checkpoint_planted", Value::Bool(chaos.planted)),
            ("baseline", ledger(&base)),
            ("chaos", ledger(&chaos.state)),
        ]));
    }

    assert_eq!(
        stages_covered.len(),
        StageId::ALL.len(),
        "the rotation must kill every stage at least once across seeds"
    );

    save_results(
        "BENCH_service",
        &obj(vec![
            ("scale", Value::Str(format!("{scale:?}").to_lowercase())),
            ("churn_cap", Value::Num(CHURN_CAP as f64)),
            ("identical_after_chaos", Value::Bool(all_identical)),
            (
                "stages_covered",
                Value::Arr(
                    stages_covered
                        .iter()
                        .map(|st| Value::Str(st.name().into()))
                        .collect(),
                ),
            ),
            ("seeds", Value::Arr(seed_rows)),
        ]),
    );
}
