//! Tracked solver performance baseline — emits `BENCH_solver.json`
//! (schema `BENCH_solver/v3`).
//!
//! Runs the Table III EPF instance ladder (same generator as
//! `table03_scalability`, decomposition solver only) plus the
//! large-library *scale* rows on 100+-VHO [`ladder_mesh`] backbones.
//! Three row modes:
//!
//! - **perf** — the PR trajectory numbers: min-of-`REPEATS` (≥ 3)
//!   wall time per kernel backend, per-repeat walls recorded, plus
//!   the speedup over the `scalar` reference. Backends promise
//!   bitwise-identical results ([`vod_core::kernel`]) and this binary
//!   *asserts* it, along with dense-vs-sparse penalty-arena identity
//!   ([`vod_core::penalty::PenaltyLayout`]) on every perf row.
//! - **quality** — one adaptive-budget solve per Table III instance
//!   (`gap_limit`, polish + exact certification) reporting the
//!   certified gap and convergence flag.
//! - **scale** — the 10⁵ (default) / 10⁶ (`--full`) video rows:
//!   wall, peak approximate working set, gap, and a `threads = 1` vs
//!   `threads = 4` byte-identity assert (the sharded-EPF determinism
//!   contract at multi-shard block counts).
//!
//! Scales: `--quick` (CI smoke: small ebone rows + a 20 k-video /
//! 100-VHO scale smoke), default (PR ladder), `--full` (paper-scale
//! plus the 10⁶ stretch row).
use std::time::Instant;
use vod_bench::{fmt, save_results, Scale, Table};
use vod_core::penalty::PenaltyLayout;
use vod_core::{
    solve_fractional, DiskConfig, EpfConfig, EpfStats, FractionalSolution, Kernel, MipInstance,
};
use vod_json::{obj, ToJson, Value};
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

/// Timed repeats per perf row (min-of-N reported).
const REPEATS: usize = 3;

fn instance(n_videos: usize, net: &vod_net::Network, seed: u64) -> MipInstance {
    let days = 7;
    let lib = synthesize_library(&LibraryConfig::default_for(n_videos, days, seed));
    let tc = TraceConfig::default_for(n_videos as f64 * 1.2, days, seed);
    let demand = synthetic_demand(&lib, net, &tc);
    MipInstance::new(
        net.clone(),
        lib,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

/// Backends requested by `--kernel NAME` (repeatable; `all` = every
/// backend compiled into this binary). Default: scalar + chunked.
fn kernels_from_args() -> Vec<Kernel> {
    let mut out: Vec<Kernel> = Vec::new();
    let mut expect_name = false;
    for arg in std::env::args() {
        if expect_name {
            expect_name = false;
            if arg == "all" {
                for &k in Kernel::all() {
                    if !out.contains(&k) {
                        out.push(k);
                    }
                }
                continue;
            }
            let Some(k) = Kernel::from_name(&arg) else {
                eprintln!("unknown --kernel {arg:?} (scalar|chunked|simd|all)");
                std::process::exit(2);
            };
            if !out.contains(&k) {
                out.push(k);
            }
            continue;
        }
        if arg == "--kernel" {
            expect_name = true;
        }
    }
    if out.is_empty() {
        out = vec![Kernel::Scalar, Kernel::Chunked];
    }
    out
}

struct Row {
    label: String,
    mode: &'static str,
    kernel: &'static str,
    layout: &'static str,
    n_videos: usize,
    n_vhos: usize,
    wall_s: f64,
    walls_s: Vec<f64>,
    speedup_vs_scalar: Option<f64>,
    passes: usize,
    block_steps: u64,
    approx_mb: f64,
    objective: f64,
    lower_bound: f64,
    gap: f64,
    converged: bool,
}

impl ToJson for Row {
    fn to_value(&self) -> Value {
        obj(vec![
            ("label", self.label.to_value()),
            ("mode", self.mode.to_value()),
            ("kernel", self.kernel.to_value()),
            ("layout", self.layout.to_value()),
            ("n_videos", self.n_videos.to_value()),
            ("n_vhos", self.n_vhos.to_value()),
            ("wall_s", self.wall_s.to_value()),
            (
                "walls_s",
                self.walls_s
                    .iter()
                    .map(|w| w.to_value())
                    .collect::<Vec<_>>()
                    .to_value(),
            ),
            (
                "speedup_vs_scalar",
                self.speedup_vs_scalar.map_or(Value::Null, |s| s.to_value()),
            ),
            ("passes", self.passes.to_value()),
            ("block_steps", self.block_steps.to_value()),
            ("approx_mb", self.approx_mb.to_value()),
            ("objective", self.objective.to_value()),
            ("lower_bound", self.lower_bound.to_value()),
            ("gap", self.gap.to_value()),
            ("converged", self.converged.to_value()),
        ])
    }
}

fn gap_of(frac: &FractionalSolution) -> f64 {
    if frac.lower_bound > 0.0 {
        frac.objective / frac.lower_bound - 1.0
    } else {
        f64::INFINITY
    }
}

/// Solution identity key: the bitwise contract every backend, arena
/// layout and thread count must agree on.
fn identity_key(frac: &FractionalSolution, stats: &EpfStats) -> (u64, u64, usize, u64) {
    (
        frac.objective.to_bits(),
        frac.lower_bound.to_bits(),
        stats.passes,
        stats.block_steps,
    )
}

#[allow(clippy::too_many_arguments)]
fn row_from(
    label: &str,
    mode: &'static str,
    kernel: Kernel,
    layout: PenaltyLayout,
    inst: &MipInstance,
    frac: &FractionalSolution,
    stats: &EpfStats,
    walls_s: Vec<f64>,
    speedup: Option<f64>,
) -> Row {
    Row {
        label: label.to_string(),
        mode,
        kernel: kernel.name(),
        layout: layout.name(),
        n_videos: inst.n_videos(),
        n_vhos: inst.n_vhos(),
        wall_s: walls_s.iter().cloned().fold(f64::INFINITY, f64::min),
        walls_s,
        speedup_vs_scalar: speedup,
        passes: stats.passes,
        block_steps: stats.block_steps,
        approx_mb: stats.approx_bytes as f64 / 1e6,
        objective: frac.objective,
        lower_bound: frac.lower_bound,
        gap: gap_of(frac),
        converged: stats.converged,
    }
}

fn main() {
    let scale = Scale::from_args();
    let kernels = kernels_from_args();
    // The EPF rows of Table III: library size × Rocketfuel-like net.
    // The smallest row of each scale doubles as the CI smoke instance.
    let ladder: Vec<(usize, vod_net::Network, &str)> = match scale {
        Scale::Quick => vec![
            (200, vod_net::topologies::ebone(), "ebone"),
            (500, vod_net::topologies::ebone(), "ebone"),
        ],
        Scale::Default => vec![
            (1000, vod_net::topologies::ebone(), "ebone"),
            (2000, vod_net::topologies::sprint(), "sprint"),
            (5000, vod_net::topologies::tiscali(), "tiscali"),
        ],
        Scale::Full => vec![
            (5000, vod_net::topologies::tiscali(), "tiscali"),
            (20_000, vod_net::topologies::tiscali(), "tiscali"),
            (50_000, vod_net::topologies::tiscali(), "tiscali"),
        ],
    };
    // Large-library scale rows on ladder meshes: (videos, vhos,
    // max_passes, memory_budget_mb). Pass budgets are deliberate wall
    // caps — the row reports whatever gap that budget certifies. The
    // 10⁶ stretch row runs under a 512 MiB working-set budget, which
    // its block solutions alone exceed, forcing the sparse arena down
    // the streaming-degrade path (bitwise-identical by contract).
    let scale_rows: Vec<(usize, usize, usize, Option<usize>)> = match scale {
        Scale::Quick => vec![(20_000, 100, 40, None)],
        Scale::Default => vec![(100_000, 100, 60, None)],
        Scale::Full => vec![(100_000, 100, 60, None), (1_000_000, 100, 24, Some(512))],
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Solver baseline — EPF Table III ladder + scale rows",
        &[
            "instance",
            "mode",
            "kernel",
            "wall (s)",
            "vs scalar",
            "passes",
            "approx MB",
            "gap",
            "conv",
        ],
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut push = |table: &mut Table, r: Row| {
        table.row(vec![
            r.label.clone(),
            r.mode.to_string(),
            r.kernel.to_string(),
            fmt(r.wall_s),
            r.speedup_vs_scalar
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
            r.passes.to_string(),
            fmt(r.approx_mb),
            if r.gap.is_finite() {
                format!("{:.1}%", r.gap * 100.0)
            } else {
                "-".to_string()
            },
            r.converged.to_string(),
        ]);
        rows.push(r);
    };

    // ---- Table III perf + quality rows ----
    for (n, net, net_name) in &ladder {
        let inst = instance(*n, net, 3);
        let label = format!("{n}/{net_name}");
        let perf_cfg = EpfConfig {
            max_passes: 60,
            seed: 3,
            ..Default::default()
        };
        let mut scalar_key: Option<(f64, (u64, u64, usize, u64))> = None;
        for &kernel in &kernels {
            let cfg = EpfConfig {
                kernel,
                ..perf_cfg.clone()
            };
            let mut walls = Vec::with_capacity(REPEATS);
            let mut out = None;
            for _ in 0..REPEATS {
                let t0 = Instant::now();
                let (frac, stats) = solve_fractional(&inst, &cfg);
                walls.push(t0.elapsed().as_secs_f64());
                out = Some((frac, stats));
            }
            let (frac, stats) = out.expect("REPEATS >= 1");
            let key = identity_key(&frac, &stats);
            let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
            let speedup = match (kernel, &scalar_key) {
                (Kernel::Scalar, _) => {
                    scalar_key = Some((best, key));
                    None
                }
                (_, Some(s)) => {
                    // The backends' bitwise-identity contract, asserted
                    // on every ladder row (this is what CI smoke runs).
                    assert_eq!(
                        s.1,
                        key,
                        "kernel {} diverged from scalar on {label}: \
                         objective/lower_bound/passes/block_steps must be bitwise equal",
                        kernel.name(),
                    );
                    Some(s.0 / best)
                }
                (_, None) => None,
            };
            push(
                &mut table,
                row_from(
                    &label, "perf", kernel, cfg.layout, &inst, &frac, &stats, walls, speedup,
                ),
            );
        }
        // Dense-arena identity: the sparse penalty arena (the default
        // layout above) must reproduce the historical dense objectives
        // bit for bit.
        {
            let cfg = EpfConfig {
                layout: PenaltyLayout::Dense,
                ..perf_cfg.clone()
            };
            let (frac, stats) = solve_fractional(&inst, &cfg);
            if let Some((_, key)) = &scalar_key {
                assert_eq!(
                    *key,
                    identity_key(&frac, &stats),
                    "dense arena diverged from sparse on {label}: layouts must be bitwise equal",
                );
            }
        }
        // Quality row: adaptive budget with certification. Exact
        // per-block LPs only below ~3k blocks, where they are cheaper
        // than the passes they certify.
        {
            let cfg = EpfConfig {
                max_passes: 400,
                seed: 3,
                epsilon: 0.02,
                gap_limit: Some(0.02),
                polish_iters: 40,
                exact_cert: if *n <= 2_000 { 16 } else { 0 },
                ..Default::default()
            };
            let t0 = Instant::now();
            let (frac, stats) = solve_fractional(&inst, &cfg);
            let wall = t0.elapsed().as_secs_f64();
            push(
                &mut table,
                row_from(
                    &label,
                    "quality",
                    cfg.kernel,
                    cfg.layout,
                    &inst,
                    &frac,
                    &stats,
                    vec![wall],
                    None,
                ),
            );
        }
    }

    // ---- Scale rows: 10⁵–10⁶ videos on 100+-VHO ladder meshes ----
    for (n, vhos, max_passes, memory_budget_mb) in scale_rows {
        let net = vod_net::topologies::ladder_mesh(vhos);
        let inst = instance(n, &net, 3);
        let label = format!("{n}/mesh{vhos}");
        println!("[scale] {label}: solving (threads=1, then 4-thread identity check)");
        // No polish: at 10⁵ blocks the wander never beats the
        // smoothed-dual harvest (measured — 40 iters, zero lift), so
        // the budget goes to passes instead.
        let cfg = EpfConfig {
            max_passes,
            seed: 3,
            epsilon: 0.02,
            gap_limit: Some(0.02),
            polish_iters: 0,
            memory_budget_mb,
            threads: 1,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (frac, stats) = solve_fractional(&inst, &cfg);
        let wall = t0.elapsed().as_secs_f64();
        // The sharded-EPF determinism contract at multi-shard block
        // counts: more workers than cores is fine (this asserts
        // identity, it is not the timed run).
        let (frac4, stats4) = solve_fractional(
            &inst,
            &EpfConfig {
                threads: 4,
                ..cfg.clone()
            },
        );
        assert_eq!(
            identity_key(&frac, &stats),
            identity_key(&frac4, &stats4),
            "threads=4 diverged from threads=1 on {label}: sharded EPF must be thread-invariant",
        );
        push(
            &mut table,
            row_from(
                &label,
                "scale",
                cfg.kernel,
                cfg.layout,
                &inst,
                &frac,
                &stats,
                vec![wall],
                None,
            ),
        );
    }

    table.print();
    let payload = obj(vec![
        ("schema", "BENCH_solver/v3".to_value()),
        ("scale", format!("{scale:?}").to_value()),
        ("threads", threads.to_value()),
        ("repeats", REPEATS.to_value()),
        (
            "kernels",
            kernels
                .iter()
                .map(|k| k.name().to_value())
                .collect::<Vec<_>>()
                .to_value(),
        ),
        ("rows", rows.to_value()),
    ]);
    save_results("BENCH_solver", &payload);
}
