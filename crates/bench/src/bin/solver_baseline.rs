//! Tracked solver performance baseline — emits `BENCH_solver.json`.
//!
//! Runs the Table III EPF instance ladder (same generator as
//! `table03_scalability`, decomposition solver only) and records
//! per-instance wall time, pass/step counts and approximate
//! working-set bytes. The point is the *trajectory*: run this binary
//! before and after any solver change and diff
//! `results/BENCH_solver.json` — a hot-path regression shows up as a
//! slower row, an allocation regression as a fatter `approx_mb`.
//!
//! Scales: `--quick` (CI smoke, smallest rows), default (the PR
//! comparison ladder), `--full` (paper-scale library sizes).
use std::time::Instant;
use vod_bench::{fmt, save_results, Scale, Table};
use vod_core::{solve_fractional, DiskConfig, EpfConfig, MipInstance};
use vod_json::{obj, ToJson, Value};
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

fn instance(n_videos: usize, net: &vod_net::Network, seed: u64) -> MipInstance {
    let days = 7;
    let lib = synthesize_library(&LibraryConfig::default_for(n_videos, days, seed));
    let tc = TraceConfig::default_for(n_videos as f64 * 1.2, days, seed);
    let demand = synthetic_demand(&lib, net, &tc);
    MipInstance::new(
        net.clone(),
        lib,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

struct Row {
    label: String,
    n_videos: usize,
    n_vhos: usize,
    wall_s: f64,
    passes: usize,
    block_steps: u64,
    approx_mb: f64,
    objective: f64,
    lower_bound: f64,
    converged: bool,
}

impl ToJson for Row {
    fn to_value(&self) -> Value {
        obj(vec![
            ("label", self.label.to_value()),
            ("n_videos", self.n_videos.to_value()),
            ("n_vhos", self.n_vhos.to_value()),
            ("wall_s", self.wall_s.to_value()),
            ("passes", self.passes.to_value()),
            ("block_steps", self.block_steps.to_value()),
            ("approx_mb", self.approx_mb.to_value()),
            ("objective", self.objective.to_value()),
            ("lower_bound", self.lower_bound.to_value()),
            ("converged", self.converged.to_value()),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    // The EPF rows of Table III: library size × Rocketfuel-like net.
    // The smallest row of each scale doubles as the CI smoke instance.
    let ladder: Vec<(usize, vod_net::Network, &str)> = match scale {
        Scale::Quick => vec![
            (200, vod_net::topologies::ebone(), "ebone"),
            (500, vod_net::topologies::ebone(), "ebone"),
        ],
        Scale::Default => vec![
            (1000, vod_net::topologies::ebone(), "ebone"),
            (2000, vod_net::topologies::sprint(), "sprint"),
            (5000, vod_net::topologies::tiscali(), "tiscali"),
        ],
        Scale::Full => vec![
            (5000, vod_net::topologies::tiscali(), "tiscali"),
            (20_000, vod_net::topologies::tiscali(), "tiscali"),
            (50_000, vod_net::topologies::tiscali(), "tiscali"),
        ],
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Solver baseline — EPF Table III ladder",
        &["instance", "wall (s)", "passes", "block steps", "approx MB"],
    );
    let mut rows: Vec<Row> = Vec::new();
    for (n, net, net_name) in ladder {
        let inst = instance(n, &net, 3);
        let cfg = EpfConfig {
            max_passes: 60,
            seed: 3,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (frac, stats) = solve_fractional(&inst, &cfg);
        let wall_s = t0.elapsed().as_secs_f64();
        let label = format!("{n}/{net_name}");
        table.row(vec![
            label.clone(),
            fmt(wall_s),
            stats.passes.to_string(),
            stats.block_steps.to_string(),
            fmt(stats.approx_bytes as f64 / 1e6),
        ]);
        rows.push(Row {
            label,
            n_videos: n,
            n_vhos: inst.n_vhos(),
            wall_s,
            passes: stats.passes,
            block_steps: stats.block_steps,
            approx_mb: stats.approx_bytes as f64 / 1e6,
            objective: frac.objective,
            lower_bound: frac.lower_bound,
            converged: stats.converged,
        });
    }
    table.print();
    let payload = obj(vec![
        ("schema", "BENCH_solver/v1".to_value()),
        ("scale", format!("{scale:?}").to_value()),
        ("threads", threads.to_value()),
        ("rows", rows.to_value()),
    ]);
    save_results("BENCH_solver", &payload);
}
