//! Tracked solver performance baseline — emits `BENCH_solver.json`.
//!
//! Runs the Table III EPF instance ladder (same generator as
//! `table03_scalability`, decomposition solver only) once **per kernel
//! backend** and records per-row wall time, pass/step counts,
//! approximate working-set bytes and the speedup over the `scalar`
//! reference backend. The point is twofold:
//!
//! - **trajectory** — run this binary before and after any solver
//!   change and diff `results/BENCH_solver.json`; a hot-path
//!   regression shows up as a slower row, an allocation regression as
//!   a fatter `approx_mb`;
//! - **identity** — the kernel backends promise bitwise-identical
//!   results ([`vod_core::kernel`]), and this binary *asserts* it:
//!   any objective / lower-bound / pass / step divergence between
//!   backends on the same instance aborts the run.
//!
//! Scales: `--quick` (CI smoke, smallest rows), default (the PR
//! comparison ladder), `--full` (paper-scale library sizes).
//! Backends: `--kernel scalar|chunked|simd|all` — default runs
//! `scalar` + `chunked` so every run reports a speedup and exercises
//! the identity assertion (`simd` requires `--features simd` on
//! nightly).
use std::time::Instant;
use vod_bench::{fmt, save_results, Scale, Table};
use vod_core::{solve_fractional, DiskConfig, EpfConfig, Kernel, MipInstance};
use vod_json::{obj, ToJson, Value};
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

fn instance(n_videos: usize, net: &vod_net::Network, seed: u64) -> MipInstance {
    let days = 7;
    let lib = synthesize_library(&LibraryConfig::default_for(n_videos, days, seed));
    let tc = TraceConfig::default_for(n_videos as f64 * 1.2, days, seed);
    let demand = synthetic_demand(&lib, net, &tc);
    MipInstance::new(
        net.clone(),
        lib,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

/// Backends requested by `--kernel NAME` (repeatable; `all` = every
/// backend compiled into this binary). Default: scalar + chunked.
fn kernels_from_args() -> Vec<Kernel> {
    let mut out: Vec<Kernel> = Vec::new();
    let mut expect_name = false;
    for arg in std::env::args() {
        if expect_name {
            expect_name = false;
            if arg == "all" {
                for &k in Kernel::all() {
                    if !out.contains(&k) {
                        out.push(k);
                    }
                }
                continue;
            }
            let Some(k) = Kernel::from_name(&arg) else {
                eprintln!("unknown --kernel {arg:?} (scalar|chunked|simd|all)");
                std::process::exit(2);
            };
            if !out.contains(&k) {
                out.push(k);
            }
            continue;
        }
        if arg == "--kernel" {
            expect_name = true;
        }
    }
    if out.is_empty() {
        out = vec![Kernel::Scalar, Kernel::Chunked];
    }
    out
}

struct Row {
    label: String,
    kernel: &'static str,
    n_videos: usize,
    n_vhos: usize,
    wall_s: f64,
    speedup_vs_scalar: Option<f64>,
    passes: usize,
    block_steps: u64,
    approx_mb: f64,
    objective: f64,
    lower_bound: f64,
    converged: bool,
}

impl ToJson for Row {
    fn to_value(&self) -> Value {
        obj(vec![
            ("label", self.label.to_value()),
            ("kernel", self.kernel.to_value()),
            ("n_videos", self.n_videos.to_value()),
            ("n_vhos", self.n_vhos.to_value()),
            ("wall_s", self.wall_s.to_value()),
            (
                "speedup_vs_scalar",
                self.speedup_vs_scalar.map_or(Value::Null, |s| s.to_value()),
            ),
            ("passes", self.passes.to_value()),
            ("block_steps", self.block_steps.to_value()),
            ("approx_mb", self.approx_mb.to_value()),
            ("objective", self.objective.to_value()),
            ("lower_bound", self.lower_bound.to_value()),
            ("converged", self.converged.to_value()),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let kernels = kernels_from_args();
    // The EPF rows of Table III: library size × Rocketfuel-like net.
    // The smallest row of each scale doubles as the CI smoke instance.
    let ladder: Vec<(usize, vod_net::Network, &str)> = match scale {
        Scale::Quick => vec![
            (200, vod_net::topologies::ebone(), "ebone"),
            (500, vod_net::topologies::ebone(), "ebone"),
        ],
        Scale::Default => vec![
            (1000, vod_net::topologies::ebone(), "ebone"),
            (2000, vod_net::topologies::sprint(), "sprint"),
            (5000, vod_net::topologies::tiscali(), "tiscali"),
        ],
        Scale::Full => vec![
            (5000, vod_net::topologies::tiscali(), "tiscali"),
            (20_000, vod_net::topologies::tiscali(), "tiscali"),
            (50_000, vod_net::topologies::tiscali(), "tiscali"),
        ],
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(
        "Solver baseline — EPF Table III ladder, per kernel backend",
        &[
            "instance",
            "kernel",
            "wall (s)",
            "vs scalar",
            "passes",
            "block steps",
            "approx MB",
        ],
    );
    let mut rows: Vec<Row> = Vec::new();
    for (n, net, net_name) in ladder {
        let inst = instance(n, &net, 3);
        let label = format!("{n}/{net_name}");
        // (wall, objective bits, lb bits, passes, steps) of the scalar
        // run on this instance, if scalar is in the requested set.
        let mut scalar_ref: Option<(f64, u64, u64, usize, u64)> = None;
        for &kernel in &kernels {
            let cfg = EpfConfig {
                max_passes: 60,
                seed: 3,
                kernel,
                ..Default::default()
            };
            let t0 = Instant::now();
            let (frac, stats) = solve_fractional(&inst, &cfg);
            let wall_s = t0.elapsed().as_secs_f64();
            let key = (
                wall_s,
                frac.objective.to_bits(),
                frac.lower_bound.to_bits(),
                stats.passes,
                stats.block_steps,
            );
            let speedup = match (kernel, &scalar_ref) {
                (Kernel::Scalar, _) => {
                    scalar_ref = Some(key);
                    None
                }
                (_, Some(s)) => {
                    // The backends' bitwise-identity contract, asserted
                    // on every ladder row (this is what CI smoke runs).
                    assert_eq!(
                        (s.1, s.2, s.3, s.4),
                        (key.1, key.2, key.3, key.4),
                        "kernel {} diverged from scalar on {label}: \
                         objective/lower_bound/passes/block_steps must be bitwise equal",
                        kernel.name(),
                    );
                    Some(s.0 / wall_s)
                }
                (_, None) => None,
            };
            table.row(vec![
                label.clone(),
                kernel.name().to_string(),
                fmt(wall_s),
                speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
                stats.passes.to_string(),
                stats.block_steps.to_string(),
                fmt(stats.approx_bytes as f64 / 1e6),
            ]);
            rows.push(Row {
                label: label.clone(),
                kernel: kernel.name(),
                n_videos: n,
                n_vhos: inst.n_vhos(),
                wall_s,
                speedup_vs_scalar: speedup,
                passes: stats.passes,
                block_steps: stats.block_steps,
                approx_mb: stats.approx_bytes as f64 / 1e6,
                objective: frac.objective,
                lower_bound: frac.lower_bound,
                converged: stats.converged,
            });
        }
    }
    table.print();
    let payload = obj(vec![
        ("schema", "BENCH_solver/v2".to_value()),
        ("scale", format!("{scale:?}").to_value()),
        ("threads", threads.to_value()),
        (
            "kernels",
            kernels
                .iter()
                .map(|k| k.name().to_value())
                .collect::<Vec<_>>()
                .to_value(),
        ),
        ("rows", rows.to_value()),
    ]);
    save_results("BENCH_solver", &payload);
}
