//! Exact-LP validation on a trace-driven instance (like the unit-test
//! instances but sized for the dense simplex).
use vod_core::direct::build_direct_lp;
use vod_core::epf::{solve_fractional, EpfConfig};
use vod_core::instance::{DiskConfig, MipInstance};
use vod_model::Mbps;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

fn main() {
    let seed = 5;
    let mut net = vod_net::topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(40, 7, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(500.0, 7, seed));
    let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    );
    let direct = build_direct_lp(&inst);
    eprintln!(
        "direct LP: {} vars {} rows",
        direct.lp.num_vars(),
        direct.lp.num_constraints()
    );
    let t0 = std::time::Instant::now();
    let exact = vod_lp::solve_lp(&direct.lp).expect("exact LP solve failed");
    eprintln!(
        "exact LP optimum {:.3} in {:?} ({} pivots)",
        exact.objective,
        t0.elapsed(),
        exact.iterations
    );
    {
        let passes = 600;
        let (frac, _) = solve_fractional(
            &inst,
            &EpfConfig {
                max_passes: passes,
                seed,
                ..Default::default()
            },
        );
        eprintln!(
            "EPF {passes}: obj {:.3} viol {:.4} lb {:.3} (obj {:+.2}% lb {:+.2}%)",
            frac.objective,
            frac.max_violation,
            frac.lower_bound,
            (frac.objective / exact.objective - 1.0) * 100.0,
            (frac.lower_bound / exact.objective - 1.0) * 100.0
        );
    }
}
