//! Fig. 11 — the disk/bandwidth feasibility region: minimum aggregate
//! disk (multiple of library size) that can serve all requests, vs
//! uniform link capacity, for uniform and population-tiered VHOs.
use vod_bench::{save_results, Defaults, Scale, Scenario, Table};
use vod_core::feasibility::{min_disk_ratio, Scenario as FeasScenario};
use vod_core::DiskConfig;
use vod_model::Mbps;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::default();
    let demand = s.demand_of_week(0, &d);
    let fs = FeasScenario {
        network: &s.net,
        catalog: &s.catalog,
        demand: &demand,
        alpha: 1.0,
        beta: 0.0,
    };
    let cfg = s.probe_config();
    let n = s.net.num_nodes();
    let (n_large, n_medium) = (n * 12 / 55 + 1, n * 19 / 55 + 1);
    // Sweep capacities around the regime where links actually bind;
    // the interesting region scales with the scenario's request load.
    let caps_gbps: &[f64] = match s.scale {
        Scale::Quick => &[0.005, 0.01, 0.02, 0.05, 0.1],
        Scale::Default => &[0.02, 0.05, 0.1, 0.25, 0.5],
        Scale::Full => &[0.1, 0.25, 0.5, 1.0, 2.0],
    };
    let mut table = Table::new(
        "Fig. 11 — feasibility region: min aggregate disk (x library)",
        &[
            "link (Gb/s)",
            "uniform VHOs",
            "tiered VHOs",
            "library floor",
        ],
    );
    let mut payload = Vec::new();
    for &gbps in caps_gbps {
        let cap = Mbps::from_gbps(gbps);
        let uni = min_disk_ratio(
            &fs,
            cap,
            |r| DiskConfig::UniformRatio { ratio: r },
            1.02,
            12.0,
            0.15,
            &cfg,
        );
        let tier = min_disk_ratio(
            &fs,
            cap,
            |r| DiskConfig::Tiered {
                ratio: r,
                n_large,
                n_medium,
            },
            1.02,
            12.0,
            0.15,
            &cfg,
        );
        let f = |x: Option<f64>| x.map(|v| format!("{v:.2}")).unwrap_or("infeasible".into());
        table.row(vec![format!("{gbps}"), f(uni), f(tier), "1.00".into()]);
        payload.push((gbps, uni, tier));
    }
    table.print();
    println!(
        "\npaper's shape: at 0.5 Gb/s uniform needs ~5x vs tiered <3x; both \
         converge toward 1x (one copy of the library) as links grow"
    );
    save_results("fig11_feasibility_region", &payload);
}
