//! Fig. 2 — working-set size during peak hours: for each VHO, the
//! number of distinct videos (and their GB) requested during the peak
//! hour of the busiest Friday and Saturday, versus the library size.
use vod_bench::{fmt, save_results, Scale, Scenario, Table};
use vod_trace::analysis;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    // First full week's Friday (day 4) and Saturday (day 5).
    let lib_gb = s.catalog.total_size().value();
    let mut table = Table::new(
        "Fig. 2 — working set during peak hours (per VHO)",
        &[
            "VHO",
            "Fri videos",
            "Fri GB",
            "Sat videos",
            "Sat GB",
            "Sat % of library",
        ],
    );
    let fri = analysis::peak_hour_of_day(&s.trace, 4);
    let sat = analysis::peak_hour_of_day(&s.trace, 5);
    let ws_fri = analysis::working_sets(&s.trace, &s.catalog, s.net.num_nodes(), fri);
    let ws_sat = analysis::working_sets(&s.trace, &s.catalog, s.net.num_nodes(), sat);
    let mut max_frac: f64 = 0.0;
    for (f, t) in ws_fri.iter().zip(&ws_sat) {
        let frac = t.size.value() / lib_gb * 100.0;
        max_frac = max_frac.max(frac);
        table.row(vec![
            f.vho.to_string(),
            f.distinct_videos.to_string(),
            fmt(f.size.value()),
            t.distinct_videos.to_string(),
            fmt(t.size.value()),
            fmt(frac),
        ]);
    }
    table.print();
    println!(
        "\nmax working set = {:.1} % of the library (paper: up to ~25 %); \
         library = {:.0} GB",
        max_frac, lib_gb
    );
    save_results("fig02_working_set", &table);
}
