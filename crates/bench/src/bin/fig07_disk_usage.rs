//! Fig. 7 — disk usage by popularity class: how one MIP solution splits
//! each VHO's pinned storage between the top-100 videos, the next 20 %
//! ("medium popular") and the tail. The paper's point: medium-popular
//! videos, not the head, occupy the bulk of the disk.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_core::solve_placement;

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let demand = s.demand_of_week(0, &d);
    let inst = vod_core::MipInstance::new(
        net,
        s.catalog.clone(),
        demand,
        &s.mip_disk(&d),
        1.0,
        0.0,
        None,
    );
    let out = solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
    let ranked = inst.demand.aggregate.rank_videos();
    let split = out
        .placement
        .disk_usage_by_popularity(&inst.catalog, &ranked);
    let mut table = Table::new(
        "Fig. 7 — per-VHO pinned disk by popularity class (GB)",
        &["VHO", "top-100", "next 20 %", "tail", "total"],
    );
    let mut tot = [0.0f64; 3];
    for (i, classes) in split.iter().enumerate() {
        let t: f64 = classes.iter().map(|g| g.value()).sum();
        for (k, g) in classes.iter().enumerate() {
            tot[k] += g.value();
        }
        table.row(vec![
            format!("v{i}"),
            fmt(classes[0].value()),
            fmt(classes[1].value()),
            fmt(classes[2].value()),
            fmt(t),
        ]);
    }
    table.print();
    let total: f64 = tot.iter().sum();
    println!(
        "\nsystem-wide: top-100 {:.1} %, medium {:.1} %, tail {:.1} % of pinned disk \
         (paper: medium-popular videos occupy >30 %)",
        tot[0] / total * 100.0,
        tot[1] / total * 100.0,
        tot[2] / total * 100.0
    );
    save_results("fig07_disk_usage", &table);
}
