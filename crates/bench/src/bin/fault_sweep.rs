//! Fault-injection sweep — emits `results/BENCH_faults.json`.
//!
//! Degradation curves for the optimal placement vs the Random+LRU
//! baseline as faults accumulate: for k ∈ {0..4} the sweep fails the
//! first k VHOs (storage + cache offline for an 8-hour window) and,
//! separately, cuts the first k backbone edges (both directions), with
//! admission control on. Every job runs through `simulate_batch` twice
//! — threads=1 and threads=N — and the reports must be byte-identical;
//! this binary asserts it, so the sweep doubles as a determinism check
//! for the fault layer.
//!
//! A final repair step re-solves the k=2 VHO-outage scenario with
//! `resolve_from` (warm start from the healthy placement, failed
//! disks scaled to zero via `CapacityOverrides`) and records how many
//! copies the repair migrates and the gap it achieves.
//!
//! The JSON deliberately contains no wall times or thread counts, so
//! the file is byte-identical across machines and thread counts at a
//! fixed seed.
//!
//! Scales: `--quick` (CI smoke), default, `--full`.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_core::{resolve_from, solve_placement, CapacityOverrides};
use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
use vod_json::{obj, ToJson, Value};
use vod_model::{LinkId, Mbps, SimTime};
use vod_sim::{
    default_threads, mip_vho_configs, random_single_vho_configs, simulate_batch, CacheKind,
    FaultEvent, FaultKind, FaultSchedule, PolicyKind, SimConfig, SimJob, SimReport, VhoConfig,
};

/// Which element class the sweep degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    VhoOutage,
    LinkCut,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::VhoOutage => "vho-outage",
            Mode::LinkCut => "link-cut",
        }
    }
}

/// An 8-hour fault window in the middle of the measured week: every
/// scheduled element fails at the same instant and recovers together.
fn schedule(mode: Mode, k: usize, net: &vod_net::Network) -> FaultSchedule {
    let start = SimTime::new(7 * 86_400 + 8 * 3_600);
    let end = SimTime::new(7 * 86_400 + 16 * 3_600);
    let mut events = Vec::new();
    match mode {
        Mode::VhoOutage => {
            for vho in net.vho_ids().take(k) {
                events.push(FaultEvent {
                    start,
                    end,
                    kind: FaultKind::VhoOutage { vho },
                });
            }
        }
        Mode::LinkCut => {
            // Undirected edge i is the directed pair (2i, 2i+1).
            for i in 0..k.min(net.num_undirected_edges()) {
                for dir in 0..2 {
                    events.push(FaultEvent {
                        start,
                        end,
                        kind: FaultKind::LinkDegrade {
                            link: LinkId::from_index(2 * i + dir),
                            capacity_scale: 0.0,
                        },
                    });
                }
            }
        }
    }
    FaultSchedule {
        events,
        admission: true,
    }
}

/// Bitwise fingerprint of a report, including the denial counters the
/// fault layer adds — any thread-count divergence trips the assert.
fn fingerprint(rep: &SimReport) -> (u64, u64, u64, u64, u64) {
    let mut series = 0u64;
    for &v in rep.peak_link_mbps.iter().chain(&rep.transfer_gb) {
        series = series.rotate_left(7) ^ v.to_bits();
    }
    (
        rep.total_requests,
        rep.total_gb_hops.to_bits(),
        rep.denied_no_replica ^ rep.denied_capacity.rotate_left(21),
        rep.interrupted_streams,
        series,
    )
}

struct Row {
    policy: String,
    mode: &'static str,
    k: usize,
    requests: u64,
    denied_no_replica: u64,
    denied_capacity: u64,
    interrupted: u64,
    denial_rate: f64,
    gb_hops: f64,
}

impl ToJson for Row {
    fn to_value(&self) -> Value {
        obj(vec![
            ("policy", self.policy.to_value()),
            ("mode", self.mode.to_value()),
            ("k", self.k.to_value()),
            ("requests", self.requests.to_value()),
            ("denied_no_replica", self.denied_no_replica.to_value()),
            ("denied_capacity", self.denied_capacity.to_value()),
            ("interrupted", self.interrupted.to_value()),
            ("denial_rate", self.denial_rate.to_value()),
            ("gb_hops", self.gb_hops.to_value()),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let s = Scenario::operational(scale, 2010);
    let d = Defaults::for_scale(scale);
    let mut net = s.net.clone();
    net.set_uniform_capacity(Mbps::from_gbps(d.link_gbps));
    let full_disks = s.full_disks(&d);
    let history = s.week(0);
    let future = s.week(1);
    let est = EstimateConfig {
        window_secs: d.window_secs,
        n_windows: d.n_windows,
    };

    // ---- Healthy placement (MIP) and the Random+LRU baseline. ----
    let demand = estimate_demand(
        EstimatorKind::History,
        &s.catalog,
        s.net.num_nodes(),
        &history,
        &future,
        7,
        7,
        &est,
    );
    let inst = vod_core::MipInstance::new(
        net.clone(),
        s.catalog.clone(),
        demand.clone(),
        &s.mip_disk(&d),
        1.0,
        0.0,
        None,
    );
    let out = solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
    let mip_placement = out.placement.clone();
    let policies: Vec<(String, Vec<VhoConfig>, PolicyKind)> = vec![
        (
            "MIP+LRU".to_string(),
            mip_vho_configs(&out.placement, &full_disks, d.cache_frac, CacheKind::Lru),
            PolicyKind::MipRouting(out.placement),
        ),
        (
            "Random+LRU".to_string(),
            random_single_vho_configs(&s.catalog, &full_disks, CacheKind::Lru, s.seed),
            PolicyKind::NearestReplica,
        ),
    ];

    // ---- The sweep grid: policy × fault mode × k. ----
    let ks = [0usize, 1, 2, 3, 4];
    let mut labels: Vec<(String, &'static str, usize)> = Vec::new();
    let mut jobs: Vec<SimJob> = Vec::new();
    for (name, vhos, policy) in &policies {
        for mode in [Mode::VhoOutage, Mode::LinkCut] {
            for &k in &ks {
                labels.push((name.clone(), mode.label(), k));
                jobs.push(SimJob {
                    net: &net,
                    paths: &s.paths,
                    catalog: &s.catalog,
                    trace: &future,
                    vhos,
                    policy,
                    cfg: SimConfig {
                        measure_from: SimTime::new(7 * 86_400),
                        seed: s.seed,
                        faults: schedule(mode, k, &s.net),
                        ..Default::default()
                    },
                });
            }
        }
    }

    // ---- Determinism: threads=1 vs threads=N must agree bitwise. ----
    let threads = default_threads().max(2);
    let serial_reps = simulate_batch(&jobs, 1);
    let batch_reps = simulate_batch(&jobs, threads);
    for (i, (a, b)) in serial_reps.iter().zip(&batch_reps).enumerate() {
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "fault job {i} diverged between threads=1 and threads={threads}"
        );
    }

    let rows: Vec<Row> = labels
        .iter()
        .zip(&serial_reps)
        .map(|((policy, mode, k), rep)| Row {
            policy: policy.clone(),
            mode,
            k: *k,
            requests: rep.total_requests,
            denied_no_replica: rep.denied_no_replica,
            denied_capacity: rep.denied_capacity,
            interrupted: rep.interrupted_streams,
            denial_rate: rep.denial_rate(),
            gb_hops: rep.total_gb_hops,
        })
        .collect();

    // ---- Repair: warm re-solve of the k=2 VHO-outage world. ----
    let failed: Vec<vod_model::VhoId> = s.net.vho_ids().take(2).collect();
    let core_scn = vod_core::feasibility::Scenario {
        network: &net,
        catalog: &s.catalog,
        demand: &demand,
        alpha: 1.0,
        beta: 0.0,
    };
    let overrides = CapacityOverrides {
        link_scale: Vec::new(),
        disk_scale: failed.iter().map(|&v| (v, 0.0)).collect(),
    };
    let degraded = core_scn
        .instance_with(&s.mip_disk(&d), Mbps::from_gbps(d.link_gbps), &overrides)
        .expect("overrides validated above");
    let repair = resolve_from(&degraded, &mip_placement, &s.probe_config())
        .expect("degraded instance is well-formed");
    let migrated = repair.placement.migration_copies_from(&mip_placement);

    let mut table = Table::new(
        "Fault sweep — denial/interruption counts per policy",
        &[
            "policy",
            "mode",
            "k",
            "requests",
            "denied (no replica)",
            "denied (capacity)",
            "interrupted",
            "denial rate",
            "GB-hops",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.policy.clone(),
            r.mode.to_string(),
            r.k.to_string(),
            r.requests.to_string(),
            r.denied_no_replica.to_string(),
            r.denied_capacity.to_string(),
            r.interrupted.to_string(),
            fmt(r.denial_rate),
            fmt(r.gb_hops),
        ]);
    }
    table.print();
    println!(
        "\nrepair (k=2 VHO outage): {migrated} copies migrated, \
         feasibility gap {:.4}, converged: {}; \
         {} jobs byte-identical at threads=1 vs {threads}",
        repair.feasibility_gap(),
        repair.converged(),
        jobs.len(),
    );

    let payload = obj(vec![
        ("schema", "BENCH_faults/v1".to_value()),
        ("scale", format!("{scale:?}").to_value()),
        ("seed", s.seed.to_value()),
        ("rows", rows.to_value()),
        (
            "repair",
            obj(vec![
                ("mode", "vho-outage".to_value()),
                ("k", 2u64.to_value()),
                ("migrated_copies", migrated.to_value()),
                ("feasibility_gap", repair.feasibility_gap().to_value()),
                ("converged", repair.converged().to_value()),
            ]),
        ),
    ]);
    save_results("BENCH_faults", &payload);
}
