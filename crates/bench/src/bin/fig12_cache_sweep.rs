//! Fig. 12 — importance of the complementary cache: peak and aggregate
//! bandwidth as the per-VHO LRU share sweeps 0 %..25 %. The big gain is
//! from 0 % to 5 %; beyond that, placement quality dominates.
//!
//! The placements are solved serially (each share needs its own MIP),
//! then the five replays fan out over all cores via `simulate_batch` —
//! report order (and every byte of the JSON) is independent of the
//! thread count.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_core::{solve_placement, DiskConfig};
use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
use vod_model::SimTime;
use vod_sim::{
    default_threads, mip_vho_configs, simulate_batch, CacheKind, PolicyKind, SimConfig, SimJob,
    VhoConfig,
};

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let full_disks = s.full_disks(&d);
    // Placement from week-0 history (with new-release estimation so the
    // cache's error-absorbing role is visible), replayed on week 1.
    let history = s.week(0);
    let future = s.week(1);
    let est = EstimateConfig {
        window_secs: d.window_secs,
        n_windows: d.n_windows,
    };
    let mut solved: Vec<(f64, Vec<VhoConfig>, PolicyKind)> = Vec::new();
    for frac in [0.0, 0.05, 0.10, 0.15, 0.25] {
        let demand = estimate_demand(
            EstimatorKind::History,
            &s.catalog,
            s.net.num_nodes(),
            &history,
            &future,
            7,
            7,
            &est,
        );
        let inst = vod_core::MipInstance::new(
            net.clone(),
            s.catalog.clone(),
            demand,
            &DiskConfig::UniformRatio {
                ratio: d.disk_ratio * (1.0 - frac),
            },
            1.0,
            0.0,
            None,
        );
        let out =
            solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
        let vhos = mip_vho_configs(&out.placement, &full_disks, frac, CacheKind::Lru);
        solved.push((frac, vhos, PolicyKind::MipRouting(out.placement)));
    }
    let cfg = SimConfig {
        measure_from: SimTime::new(7 * 86_400),
        seed: s.seed,
        ..Default::default()
    };
    let jobs: Vec<SimJob> = solved
        .iter()
        .map(|(_, vhos, policy)| SimJob {
            net: &net,
            paths: &s.paths,
            catalog: &s.catalog,
            trace: &future,
            vhos,
            policy,
            cfg: cfg.clone(),
        })
        .collect();
    let reps = simulate_batch(&jobs, default_threads());

    let mut table = Table::new(
        "Fig. 12 — complementary-cache share sweep",
        &["cache %", "peak link (Mb/s)", "total GB-hop", "local %"],
    );
    let mut payload = Vec::new();
    for ((frac, _, _), rep) in solved.iter().zip(&reps) {
        table.row(vec![
            format!("{:.0}", frac * 100.0),
            fmt(rep.max_link_mbps),
            fmt(rep.total_gb_hops),
            fmt(rep.local_fraction() * 100.0),
        ]);
        payload.push((*frac, rep.max_link_mbps, rep.total_gb_hops));
    }
    table.print();
    save_results("fig12_cache_sweep", &payload);
}
