//! Fig. 10 + Table II — MIP placement vs LRU caching with origin
//! servers: four region origins hold the full library (extra storage,
//! granted to the caching side), VHO disks are pure LRU caches of the
//! same total size the MIP uses. At 2x and 6x disk.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_core::{solve_placement, DiskConfig};
use vod_model::SimTime;
use vod_sim::{mip_vho_configs, origin_vho_configs, simulate, CacheKind, PolicyKind, SimConfig};

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let mut table = Table::new(
        "Table II — MIP vs LRU caching with origin servers",
        &[
            "disk",
            "scheme",
            "peak link (Mb/s)",
            "max aggregate (GB/5min)",
            "hit rate %",
        ],
    );
    let sim_cfg = SimConfig {
        measure_from: SimTime::new(7 * 86_400),
        seed: s.seed,
        ..Default::default()
    };
    let mut payload = Vec::new();
    for ratio in [2.0, 6.0] {
        let disks = DiskConfig::UniformRatio { ratio }.capacities(&net, s.catalog.total_size());
        // MIP (placement solved on week-0 history, 5 % cache).
        let demand = s.demand_of_week(0, &d);
        let inst = vod_core::MipInstance::new(
            net.clone(),
            s.catalog.clone(),
            demand,
            &DiskConfig::UniformRatio {
                ratio: ratio * (1.0 - d.cache_frac),
            },
            1.0,
            0.0,
            None,
        );
        let out =
            solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
        let vhos = mip_vho_configs(&out.placement, &disks, d.cache_frac, CacheKind::Lru);
        let mip = simulate(
            &net,
            &s.paths,
            &s.catalog,
            &s.trace,
            &vhos,
            &PolicyKind::MipRouting(out.placement.clone()),
            &sim_cfg,
        );
        // LRU + origins.
        let vhos = origin_vho_configs(&s.catalog, &s.paths, &disks, 4, CacheKind::Lru);
        let lru = simulate(
            &net,
            &s.paths,
            &s.catalog,
            &s.trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &sim_cfg,
        );
        for (name, rep) in [("MIP", &mip), ("LRU+origins", &lru)] {
            table.row(vec![
                format!("{ratio}x"),
                name.into(),
                fmt(rep.max_link_mbps),
                fmt(rep.max_aggregate_gb()),
                fmt(rep.hit_rate() * 100.0),
            ]);
            payload.push((ratio, name.to_string(), rep.max_link_mbps, rep.hit_rate()));
        }
        println!(
            "{ratio}x disk: LRU+origins peak / MIP peak = {:.2} (paper: ~3.5x)",
            lru.max_link_mbps / mip.max_link_mbps
        );
    }
    table.print();
    save_results("fig10_origin_comparison", &payload);
}
