//! Table VI — placement-update frequency and estimation accuracy: max
//! bandwidth, total transfer and locally-served fraction when the MIP
//! placement is refreshed every two weeks / weekly / daily, and with
//! perfect / no estimation of new-release demand. No complementary
//! cache (as in the paper). Also reports the migration cost (copies
//! moved per update, Section VII-H).
//!
//! Each schedule's solve chain is inherently serial (every re-solve
//! takes the previous placement as its migration anchor), but the
//! replays only consume the placements — they fan out over all cores
//! via `simulate_batch` once the chain is solved, and the aggregation
//! runs in period order so the row is byte-identical to a serial loop.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_core::{solve_placement, MipInstance, Placement, PlacementCost};
use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
use vod_model::time::DAY;
use vod_model::{SimTime, TimeWindow, VhoId};
use vod_sim::{
    default_threads, mip_vho_configs, simulate_batch, CacheKind, PolicyKind, SimConfig, SimJob,
    VhoConfig,
};
use vod_trace::Trace;

struct RowOut {
    label: String,
    max_gbps: f64,
    total_gb_hops: f64,
    local: f64,
    migrated: usize,
}

fn run(
    s: &Scenario,
    d: &Defaults,
    period_days: u64,
    estimator: EstimatorKind,
    label: &str,
) -> RowOut {
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let est = EstimateConfig {
        window_secs: d.window_secs,
        n_windows: d.n_windows,
    };
    let epf = s.epf_config();
    let disks = s.full_disks(d);
    let horizon_days = s.trace.horizon().secs() / DAY;
    let mut migrated = 0usize;
    let mut prev: Option<Placement> = None;
    let mut day = 7u64; // first week is history
                        // Solve the whole update chain first (serial: each solve anchors
                        // its migration cost on the previous placement) ...
    let mut periods: Vec<(Trace, Vec<VhoConfig>, PolicyKind)> = Vec::new();
    while day < horizon_days {
        let period_end = (day + period_days).min(horizon_days);
        let history = s.trace.restricted(TimeWindow::new(
            SimTime::new((day - 7) * DAY),
            SimTime::new(day * DAY),
        ));
        let future = s.trace.restricted(TimeWindow::new(
            SimTime::new(day * DAY),
            SimTime::new(period_end * DAY),
        ));
        let demand = estimate_demand(
            estimator,
            &s.catalog,
            s.net.num_nodes(),
            &history,
            &future,
            day,
            period_end - day,
            &est,
        );
        let pc = prev.as_ref().map(|p| PlacementCost {
            weight: 1.0,
            previous: Some(p.holder_lists()),
            // lint:allow(raw-index): update transfers are anchored at VHO 0 by convention
            origin: VhoId::new(0),
        });
        let inst = MipInstance::new(
            net.clone(),
            s.catalog.clone(),
            demand,
            &s.mip_disk(d),
            1.0,
            0.0,
            pc.as_ref(),
        );
        let out = solve_placement(&inst, &epf).expect("scenario instance is well-formed");
        if let Some(p) = &prev {
            migrated += out.placement.migration_copies_from(p);
        }
        // No complementary cache in this experiment (paper, Table VI).
        let vhos = mip_vho_configs(&out.placement, &disks, 0.0, CacheKind::Lru);
        periods.push((future, vhos, PolicyKind::MipRouting(out.placement.clone())));
        prev = Some(out.placement);
        day = period_end;
    }
    // ... then replay every period in parallel.
    let cfg = SimConfig {
        seed: s.seed,
        insert_on_miss: false,
        ..Default::default()
    };
    let jobs: Vec<SimJob> = periods
        .iter()
        .map(|(future, vhos, policy)| SimJob {
            net: &net,
            paths: &s.paths,
            catalog: &s.catalog,
            trace: future,
            vhos,
            policy,
            cfg: cfg.clone(),
        })
        .collect();
    let reps = simulate_batch(&jobs, default_threads());
    let mut max_mbps: f64 = 0.0;
    let mut gb_hops = 0.0;
    let mut local = 0u64;
    let mut total = 0u64;
    for rep in &reps {
        max_mbps = max_mbps.max(rep.max_link_mbps);
        gb_hops += rep.total_gb_hops;
        local += rep.served_local_pinned + rep.served_local_cached;
        total += rep.total_requests;
    }
    RowOut {
        label: label.into(),
        max_gbps: max_mbps / 1000.0,
        total_gb_hops: gb_hops,
        local: local as f64 / total.max(1) as f64,
        migrated,
    }
}

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let runs = [
        run(&s, &d, 14, EstimatorKind::History, "once in 2 weeks"),
        run(&s, &d, 7, EstimatorKind::History, "weekly"),
        run(&s, &d, 1, EstimatorKind::History, "daily"),
        run(
            &s,
            &d,
            7,
            EstimatorKind::Perfect,
            "perfect estimate (weekly)",
        ),
        run(&s, &d, 7, EstimatorKind::NoEstimate, "no estimate (weekly)"),
    ];
    let mut table = Table::new(
        "Table VI — update frequency & estimation accuracy (no cache)",
        &[
            "schedule",
            "max BW (Gb/s)",
            "total GB-hop",
            "locally served",
            "copies migrated",
        ],
    );
    let mut payload = Vec::new();
    for r in &runs {
        table.row(vec![
            r.label.clone(),
            fmt(r.max_gbps),
            fmt(r.total_gb_hops),
            fmt(r.local),
            r.migrated.to_string(),
        ]);
        payload.push((
            r.label.clone(),
            r.max_gbps,
            r.total_gb_hops,
            r.local,
            r.migrated,
        ));
    }
    table.print();
    println!(
        "\npaper's ordering: no-estimate >> 2-weekly > weekly ≥ daily > perfect \
         on max bandwidth; daily updates trim total transfer ~10 % vs weekly"
    );
    save_results("table06_update_frequency", &payload);
}
