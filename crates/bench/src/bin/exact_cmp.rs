use rand::Rng;
use vod_core::direct::build_direct_lp;
use vod_core::epf::{solve_fractional, EpfConfig};
use vod_core::instance::{DiskConfig, MipInstance};
use vod_model::{Catalog, Mbps, SimTime, TimeWindow, VhoId, Video, VideoClass, VideoId, VideoKind};
use vod_trace::{DemandInput, DemandMatrix};

fn main() {
    let mut rng = vod_model::rng::rng_from_seed(3);
    let mut net = vod_net::topologies::mesh_backbone(5, 7, 3);
    net.set_uniform_capacity(Mbps::new(500.0));
    let n_videos = 14u32;
    let videos: Vec<Video> = (0..n_videos)
        .map(|i| Video {
            id: VideoId::new(i),
            class: VideoClass::Show,
            kind: VideoKind::Catalog,
            release_day: 0,
            weight: 1.0,
        })
        .collect();
    let catalog = Catalog::new(videos);
    let rows: Vec<Vec<(VhoId, f64)>> = (0..n_videos)
        .map(|_| {
            (0..5)
                .filter_map(|j| {
                    let c = rng.gen_range(0..40u32) as f64;
                    // lint:allow(raw-index): builds demand rows from a dense per-VHO count vector
                    (c > 0.0).then_some((VhoId::new(j), c))
                })
                .collect()
        })
        .collect();
    let agg = DemandMatrix::from_rows(5, rows);
    let active = vec![agg.clone()];
    let demand = DemandInput {
        aggregate: agg,
        windows: vec![TimeWindow::of_len(SimTime::ZERO, 3600)],
        active,
    };
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 1.6 },
        1.0,
        0.0,
        None,
    );
    let direct = build_direct_lp(&inst);
    eprintln!(
        "direct LP: {} vars {} rows",
        direct.lp.num_vars(),
        direct.lp.num_constraints()
    );
    let t0 = std::time::Instant::now();
    let exact = vod_lp::solve_lp(&direct.lp).expect("exact LP solve failed");
    eprintln!(
        "exact LP optimum {:.3} in {:?} ({} pivots)",
        exact.objective,
        t0.elapsed(),
        exact.iterations
    );
    {
        let passes = 1500;
        let (frac, stats) = solve_fractional(
            &inst,
            &EpfConfig {
                max_passes: passes,
                seed: 3,
                ..Default::default()
            },
        );
        eprintln!("EPF {passes} passes: obj {:.3} viol {:.4} lb {:.3} (exact-relative obj {:+.2}% lb {:+.2}%)",
            frac.objective, frac.max_violation, frac.lower_bound,
            (frac.objective/exact.objective-1.0)*100.0, (frac.lower_bound/exact.objective-1.0)*100.0);
        let _ = stats;
    }
}
