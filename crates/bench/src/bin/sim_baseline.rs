//! Tracked simulator performance baseline — emits `BENCH_sim.json`.
//!
//! Replays the Fig. 12 cache-share ladder (five MIP placements, one
//! week of trace each) twice: serially with per-row wall timing, then
//! through `simulate_batch` on all cores. The reports must be
//! byte-identical between the two passes — this binary asserts it on
//! every run, so the baseline doubles as a determinism check.
//!
//! The point is the *trajectory*: run this binary before and after any
//! simulator change and diff `results/BENCH_sim.json`. If a previous
//! baseline file exists its per-row wall times are carried forward as
//! `prev_wall_s`, so the committed file always records the pre→post
//! movement of the last change. Solve time is excluded — only the
//! replay is measured.
//!
//! Scales: `--quick` (CI smoke), default (the PR comparison ladder),
//! `--full` (paper-scale).
use std::time::Instant;
use vod_bench::{fmt, results_dir, save_results, Defaults, Scale, Scenario, Table};
use vod_core::{solve_placement, DiskConfig};
use vod_estimate::{estimate_demand, EstimateConfig, EstimatorKind};
use vod_json::{obj, ToJson, Value};
use vod_model::SimTime;
use vod_sim::{
    default_threads, mip_vho_configs, simulate, simulate_batch, CacheKind, PolicyKind, SimConfig,
    SimJob, SimReport, VhoConfig,
};

/// Per-row wall times from an existing `BENCH_sim.json`, keyed by row
/// label. Missing / unparsable files yield an empty list (first run).
fn previous_walls() -> Vec<(String, f64)> {
    let path = results_dir().join("BENCH_sim.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Value::parse(&text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let Some(rows) = doc.get("rows").and_then(Value::as_arr) {
        for row in rows {
            if let (Some(label), Some(wall)) = (
                row.get("label").and_then(Value::as_str),
                row.get("wall_s").and_then(Value::as_f64),
            ) {
                out.push((label.to_string(), wall));
            }
        }
    }
    out
}

/// Bitwise fingerprint of a report — any divergence between the serial
/// and batched passes trips the assert below.
fn fingerprint(rep: &SimReport) -> (u64, u64, u64, u64) {
    let mut series = 0u64;
    for &v in rep.peak_link_mbps.iter().chain(&rep.transfer_gb) {
        series = series.rotate_left(7) ^ v.to_bits();
    }
    (
        rep.total_requests,
        rep.total_gb_hops.to_bits(),
        rep.max_link_mbps.to_bits(),
        series,
    )
}

struct Row {
    label: String,
    requests: u64,
    wall_s: f64,
    reqs_per_sec: f64,
    prev_wall_s: Option<f64>,
}

impl ToJson for Row {
    fn to_value(&self) -> Value {
        obj(vec![
            ("label", self.label.to_value()),
            ("requests", self.requests.to_value()),
            ("wall_s", self.wall_s.to_value()),
            ("reqs_per_sec", self.reqs_per_sec.to_value()),
            (
                "prev_wall_s",
                match self.prev_wall_s {
                    Some(w) => w.to_value(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

fn main() {
    let scale = Scale::from_args();
    let s = Scenario::operational(scale, 2010);
    let d = Defaults::for_scale(scale);
    let prev = previous_walls();
    let mut net = s.net.clone();
    net.set_uniform_capacity(vod_model::Mbps::from_gbps(d.link_gbps));
    let full_disks = s.full_disks(&d);
    let history = s.week(0);
    let future = s.week(1);
    let est = EstimateConfig {
        window_secs: d.window_secs,
        n_windows: d.n_windows,
    };
    // The Fig. 12 ladder: five placements, cache share 0 %..25 %.
    let mut solved: Vec<(String, Vec<VhoConfig>, PolicyKind)> = Vec::new();
    for frac in [0.0, 0.05, 0.10, 0.15, 0.25] {
        let demand = estimate_demand(
            EstimatorKind::History,
            &s.catalog,
            s.net.num_nodes(),
            &history,
            &future,
            7,
            7,
            &est,
        );
        let inst = vod_core::MipInstance::new(
            net.clone(),
            s.catalog.clone(),
            demand,
            &DiskConfig::UniformRatio {
                ratio: d.disk_ratio * (1.0 - frac),
            },
            1.0,
            0.0,
            None,
        );
        let out =
            solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
        let vhos = mip_vho_configs(&out.placement, &full_disks, frac, CacheKind::Lru);
        solved.push((
            format!("cache {:.0}%", frac * 100.0),
            vhos,
            PolicyKind::MipRouting(out.placement),
        ));
    }
    let cfg = SimConfig {
        measure_from: SimTime::new(7 * 86_400),
        seed: s.seed,
        ..Default::default()
    };

    // ---- Serial pass: per-row wall time. ----
    let mut rows: Vec<Row> = Vec::new();
    let mut serial_reps = Vec::new();
    let t_serial = Instant::now();
    for (label, vhos, policy) in &solved {
        let t0 = Instant::now();
        let rep = simulate(&net, &s.paths, &s.catalog, &future, vhos, policy, &cfg);
        let wall_s = t0.elapsed().as_secs_f64();
        rows.push(Row {
            label: label.clone(),
            requests: rep.total_requests,
            wall_s,
            reqs_per_sec: rep.total_requests as f64 / wall_s.max(1e-9),
            prev_wall_s: prev.iter().find(|(l, _)| l == label).map(|&(_, w)| w),
        });
        serial_reps.push(rep);
    }
    let serial_wall_s = t_serial.elapsed().as_secs_f64();

    // ---- Batched pass: same jobs, must be byte-identical. ----
    let jobs: Vec<SimJob> = solved
        .iter()
        .map(|(_, vhos, policy)| SimJob {
            net: &net,
            paths: &s.paths,
            catalog: &s.catalog,
            trace: &future,
            vhos,
            policy,
            cfg: cfg.clone(),
        })
        .collect();
    // The *timed* batch runs at its natural width — no more workers
    // than cores or jobs. Timing a forced-2-worker batch on a 1-core
    // runner measures scheduler overhead, not batching (it reported
    // `batch_speedup` 0.82× on such boxes).
    let threads = default_threads().min(jobs.len()).max(1);
    let t_batch = Instant::now();
    let batch_reps = simulate_batch(&jobs, threads);
    let batched_wall_s = t_batch.elapsed().as_secs_f64();
    for (i, (a, b)) in serial_reps.iter().zip(&batch_reps).enumerate() {
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "batched report {i} diverged from serial"
        );
    }
    // Determinism still gets a genuinely threaded pass on every
    // runner: when the natural width fell back to 1, re-run untimed
    // with two workers and hold it to the same byte identity.
    if threads < 2 {
        let det_reps = simulate_batch(&jobs, 2);
        for (i, (a, b)) in serial_reps.iter().zip(&det_reps).enumerate() {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "2-worker batched report {i} diverged from serial"
            );
        }
    }

    // ---- Regression guard (`--guard-batch-speedup`): the batched
    // pass must not be slower than the serial one. Only meaningful
    // with a genuinely parallel batch; a single noisy timing must not
    // fail CI, so up to two extra rounds are timed and the best
    // observed ratio is what the guard judges. The *recorded*
    // `batch_speedup` stays the first-round figure — the file tracks
    // the trajectory, the guard tracks non-regression.
    let guard = std::env::args().any(|a| a == "--guard-batch-speedup");
    if guard && threads >= 2 {
        let mut best = serial_wall_s / batched_wall_s.max(1e-9);
        for _ in 0..2 {
            if best >= 1.0 {
                break;
            }
            let t0 = Instant::now();
            for (_, vhos, policy) in &solved {
                let _ = simulate(&net, &s.paths, &s.catalog, &future, vhos, policy, &cfg);
            }
            let serial = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _ = simulate_batch(&jobs, threads);
            best = best.max(serial / t1.elapsed().as_secs_f64().max(1e-9));
        }
        assert!(
            best >= 1.0,
            "batching regression: best observed speedup {best:.3}x < 1.0 on {threads} threads"
        );
        println!("batch-speedup guard passed ({best:.2}x on {threads} threads)");
    } else if guard {
        println!("batch-speedup guard skipped (only {threads} thread available)");
    }

    let mut table = Table::new(
        "Simulator baseline — Fig. 12 ladder replay",
        &["row", "requests", "wall (s)", "req/s", "prev wall (s)"],
    );
    for r in &rows {
        table.row(vec![
            r.label.clone(),
            r.requests.to_string(),
            fmt(r.wall_s),
            fmt(r.reqs_per_sec),
            r.prev_wall_s.map_or_else(|| "-".into(), fmt),
        ]);
    }
    table.print();
    println!(
        "\nserial {serial_wall_s:.4} s vs batched {batched_wall_s:.4} s \
         on {threads} threads ({:.2}x); batched reports byte-identical",
        serial_wall_s / batched_wall_s.max(1e-9)
    );
    let payload = obj(vec![
        ("schema", "BENCH_sim/v1".to_value()),
        ("scale", format!("{scale:?}").to_value()),
        ("threads", threads.to_value()),
        ("rows", rows.to_value()),
        ("serial_wall_s", serial_wall_s.to_value()),
        ("batched_wall_s", batched_wall_s.to_value()),
        (
            "batch_speedup",
            (serial_wall_s / batched_wall_s.max(1e-9)).to_value(),
        ),
    ]);
    save_results("BENCH_sim", &payload);
}
