//! Table V — peak-window size vs bandwidth: solve the placement with
//! link constraints enforced on |T| = 2 windows of 1 s / 1 min / 1 h /
//! 1 day, then replay the week. Tiny windows under-constrain (load
//! outside the window exceeds the target); day-long windows
//! over-constrain (feasibility demands far more capacity than the
//! replay ever uses). One hour is the sweet spot.
//!
//! Feasibility probes and solves run serially per window size (each
//! needs its own capacity search); the replays are fanned out over all
//! cores via `simulate_batch`, which preserves row order exactly.
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};
use vod_core::feasibility::{min_link_capacity, Scenario as FeasScenario};
use vod_core::{solve_placement, MipInstance};
use vod_model::time::{DAY, HOUR, MINUTE};
use vod_model::{Mbps, TimeWindow};
use vod_net::Network;
use vod_sim::{
    default_threads, mip_vho_configs, simulate_batch, CacheKind, PolicyKind, SimConfig, SimJob,
    VhoConfig,
};

/// One window size's solve products (rows that failed the feasibility
/// probe carry no simulation).
enum RowPlan {
    Infeasible {
        label: &'static str,
    },
    Feasible {
        label: &'static str,
        cap: Mbps,
        windows: Vec<TimeWindow>,
        net: Network,
        vhos: Vec<VhoConfig>,
        policy: PolicyKind,
    },
}

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::default();
    let week = s.week(0);
    let mut plans = Vec::new();
    for (secs, label) in [
        (1, "1 second"),
        (MINUTE, "1 minute"),
        (HOUR, "1 hour"),
        (DAY, "1 day"),
    ] {
        let windows =
            vod_trace::analysis::select_peak_windows(&week, &s.catalog, secs, d.n_windows);
        let demand = vod_trace::DemandInput::from_trace(
            &week,
            &s.catalog,
            s.net.num_nodes(),
            windows.clone(),
        );
        // Minimum capacity at which this window choice is feasible.
        let fs = FeasScenario {
            network: &s.net,
            catalog: &s.catalog,
            demand: &demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let cap = min_link_capacity(
            &fs,
            &s.mip_disk(&d),
            Mbps::new(0.5),
            Mbps::from_gbps(40.0),
            0.12,
            &s.probe_config(),
        );
        let Some(cap) = cap else {
            plans.push(RowPlan::Infeasible { label });
            continue;
        };
        // Solve at that capacity; the replay joins the batch below.
        let mut net = s.net.clone();
        net.set_uniform_capacity(cap);
        let inst = MipInstance::new(
            net.clone(),
            s.catalog.clone(),
            demand,
            &s.mip_disk(&d),
            1.0,
            0.0,
            None,
        );
        let out =
            solve_placement(&inst, &s.epf_config()).expect("scenario instance is well-formed");
        let disks = s.full_disks(&d);
        let vhos = mip_vho_configs(&out.placement, &disks, 0.0, CacheKind::Lru);
        plans.push(RowPlan::Feasible {
            label,
            cap,
            windows,
            net,
            vhos,
            policy: PolicyKind::MipRouting(out.placement),
        });
    }
    let cfg = SimConfig {
        seed: s.seed,
        insert_on_miss: false,
        ..Default::default()
    };
    let jobs: Vec<SimJob> = plans
        .iter()
        .filter_map(|p| match p {
            RowPlan::Infeasible { .. } => None,
            RowPlan::Feasible {
                net, vhos, policy, ..
            } => Some(SimJob {
                net,
                paths: &s.paths,
                catalog: &s.catalog,
                trace: &week,
                vhos,
                policy,
                cfg: cfg.clone(),
            }),
        })
        .collect();
    let reps = simulate_batch(&jobs, default_threads());

    let mut table = Table::new(
        "Table V — peak-window size vs bandwidth",
        &[
            "window",
            "feasibility capacity (Gb/s)",
            "max in-window (Gb/s)",
            "max whole week (Gb/s)",
        ],
    );
    let mut payload = Vec::new();
    let mut rep_iter = reps.iter();
    for plan in &plans {
        match plan {
            RowPlan::Infeasible { label } => {
                table.row(vec![
                    (*label).into(),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            RowPlan::Feasible {
                label,
                cap,
                windows,
                ..
            } => {
                let rep = rep_iter.next().expect("one report per feasible row");
                // Max load inside the enforced windows vs over the whole week.
                let in_window = rep
                    .peak_link_mbps
                    .iter()
                    .enumerate()
                    .filter(|&(b, _)| {
                        let t = b as u64 * rep.bucket_secs;
                        windows.iter().any(|w| {
                            w.overlaps(
                                vod_model::SimTime::new(t),
                                vod_model::SimTime::new(t + rep.bucket_secs),
                            )
                        })
                    })
                    .map(|(_, &v)| v)
                    .fold(0.0, f64::max);
                table.row(vec![
                    (*label).into(),
                    fmt(cap.gbps()),
                    fmt(in_window / 1000.0),
                    fmt(rep.max_link_mbps / 1000.0),
                ]);
                payload.push((
                    (*label).to_string(),
                    cap.gbps(),
                    in_window / 1000.0,
                    rep.max_link_mbps / 1000.0,
                ));
            }
        }
    }
    table.print();
    println!(
        "\npaper: 1 s/1 min windows let whole-week load overshoot the constraint; \
         1-day windows force 2x capacity that replay never uses; 1 h is balanced"
    );
    save_results("table05_window_size", &payload);
}
