//! Fig. 6 — aggregate bandwidth across all links (GB carried per
//! 5-minute bucket) for the four strategies, plus the total
//! size-weighted hop transfer. The MIP consistently moves fewer bytes.
use vod_bench::comparison::run_comparison;
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let top_k = if s.catalog.len() >= 2000 { 100 } else { 20 };
    let outcomes = run_comparison(&s, &d, top_k);
    let mut table = Table::new(
        "Fig. 6 — aggregate transfer across all links",
        &[
            "strategy",
            "total GB-hop",
            "mean GB / 5 min",
            "peak GB / 5 min",
            "local %",
            "vs MIP",
        ],
    );
    let mip_total = outcomes[0].total_gb_hops;
    for o in &outcomes {
        let mean = o.transfer_series_gb.iter().sum::<f64>() / o.transfer_series_gb.len() as f64;
        let peak = o.transfer_series_gb.iter().cloned().fold(0.0, f64::max);
        table.row(vec![
            o.name.clone(),
            fmt(o.total_gb_hops),
            fmt(mean),
            fmt(peak),
            fmt(o.local_fraction * 100.0),
            format!("{:.2}x", o.total_gb_hops / mip_total),
        ]);
    }
    table.print();
    save_results("fig06_aggregate_transfer", &outcomes);
}
