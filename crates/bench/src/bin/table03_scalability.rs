//! Table III — running time and memory: the EPF decomposition vs the
//! generic dense-simplex LP ("CPLEX" stand-in) as the library grows.
//! The generic solver's time explodes superlinearly and its dense
//! tableau exhausts memory at sizes the decomposition shrugs off.
use std::time::Instant;
use vod_bench::{fmt, save_results, Scale, Table};
use vod_core::{direct::build_direct_lp, solve_fractional, DiskConfig, EpfConfig, MipInstance};
use vod_trace::{synthesize_library, synthetic_demand, LibraryConfig, TraceConfig};

fn instance(n_videos: usize, net: &vod_net::Network, seed: u64) -> MipInstance {
    let days = 7;
    let lib = synthesize_library(&LibraryConfig::default_for(n_videos, days, seed));
    let tc = TraceConfig::default_for(n_videos as f64 * 1.2, days, seed);
    let demand = synthetic_demand(&lib, net, &tc);
    MipInstance::new(
        net.clone(),
        lib,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

fn main() {
    let scale = Scale::from_args();
    let mut table = Table::new(
        "Table III — running time and memory vs library size",
        &[
            "library",
            "simplex time (s)",
            "simplex mem (MB)",
            "EPF time (s)",
            "EPF mem (MB)",
            "speedup",
        ],
    );
    // The generic simplex is only tractable on miniature libraries —
    // that is the point. Run it on a small net so it finishes at all.
    let small_net = vod_net::topologies::mesh_backbone(6, 9, 3);
    let simplex_sizes: &[usize] = match scale {
        Scale::Quick => &[20, 40],
        _ => &[20, 40, 80, 160],
    };
    let mut payload = Vec::new();
    for &n in simplex_sizes {
        let inst = instance(n, &small_net, 3);
        let direct = build_direct_lp(&inst);
        let mem_mb = direct.lp.tableau_bytes() as f64 / 1e6;
        let t0 = Instant::now();
        let res = vod_lp::solve_lp(&direct.lp);
        let simplex_t = t0.elapsed().as_secs_f64();
        assert!(res.is_ok(), "simplex failed on {n} videos");
        let cfg = EpfConfig {
            max_passes: 150,
            seed: 3,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (_, stats) = solve_fractional(&inst, &cfg);
        let epf_t = t0.elapsed().as_secs_f64();
        table.row(vec![
            format!("{n} (6-VHO net)"),
            fmt(simplex_t),
            fmt(mem_mb),
            fmt(epf_t),
            fmt(stats.approx_bytes as f64 / 1e6),
            format!("{:.0}x", simplex_t / epf_t.max(1e-9)),
        ]);
        payload.push((n, simplex_t, mem_mb, epf_t, stats.approx_bytes as f64 / 1e6));
    }
    // The decomposition alone, at scale, on the Rocketfuel nets
    // (geometric mean across the three networks, as in the paper).
    let epf_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1000, 2000],
        Scale::Default => vec![2000, 5000, 10_000, 20_000],
        Scale::Full => vec![5000, 20_000, 50_000, 100_000, 200_000],
    };
    let nets = [
        vod_net::topologies::tiscali(),
        vod_net::topologies::sprint(),
        vod_net::topologies::ebone(),
    ];
    for &n in &epf_sizes {
        let mut times = Vec::new();
        let mut mems = Vec::new();
        for net in &nets {
            let inst = instance(n, net, 3);
            let cfg = EpfConfig {
                max_passes: 60,
                seed: 3,
                ..Default::default()
            };
            let t0 = Instant::now();
            let (_, stats) = solve_fractional(&inst, &cfg);
            times.push(t0.elapsed().as_secs_f64());
            mems.push(stats.approx_bytes as f64 / 1e6);
        }
        let geo = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
        table.row(vec![
            format!("{n} (3 nets, geo-mean)"),
            "-".into(),
            "-".into(),
            fmt(geo(&times)),
            fmt(geo(&mems)),
            "-".into(),
        ]);
        payload.push((n, f64::NAN, f64::NAN, geo(&times), geo(&mems)));
    }
    table.print();
    println!(
        "\npaper's shape: simplex time superlinear with a dense-tableau memory \
         wall; EPF near-linear in library size (their 5K→20K: 894s→5420s CPLEX \
         vs 1.4s→2.6s EPF)"
    );
    save_results("table03_scalability", &payload);
}
