//! Fig. 5 — peak link bandwidth (max over links, per 5-minute bucket)
//! over the evaluation weeks, for MIP vs Random+LRU vs Random+LFU vs
//! Top-K+LRU. The paper's headline: the MIP serves everything with
//! roughly half the peak bandwidth of the caching schemes.
use vod_bench::comparison::run_comparison;
use vod_bench::{fmt, save_results, Defaults, Scale, Scenario, Table};

fn main() {
    let s = Scenario::operational(Scale::from_args(), 2010);
    let d = Defaults::for_scale(s.scale);
    let top_k = if s.catalog.len() >= 2000 { 100 } else { 20 };
    let outcomes = run_comparison(&s, &d, top_k);
    let mut table = Table::new(
        "Fig. 5 — peak link bandwidth over the evaluation period",
        &[
            "strategy",
            "max (Mb/s)",
            "p99 bucket (Mb/s)",
            "median bucket (Mb/s)",
            "vs MIP",
        ],
    );
    let mip_max = outcomes[0].max_link_mbps;
    for o in &outcomes {
        let mut sorted = o.peak_series_mbps.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| sorted[vod_model::narrow::count_usize((sorted.len() - 1) as f64 * p)];
        table.row(vec![
            o.name.clone(),
            fmt(o.max_link_mbps),
            fmt(pct(0.99)),
            fmt(pct(0.5)),
            format!("{:.2}x", o.max_link_mbps / mip_max),
        ]);
    }
    table.print();
    println!(
        "\nMIP peak {} Mb/s vs worst baseline {} Mb/s (paper: 1364 vs 2938 Mb/s) — \
         the link-capacity input to the MIP was {} Mb/s; slight excess over it \
         comes from new-release estimation error absorbed by the 5 % LRU cache",
        fmt(mip_max),
        fmt(outcomes
            .iter()
            .skip(1)
            .map(|o| o.max_link_mbps)
            .fold(0.0, f64::max)),
        fmt(d.link_gbps * 1000.0)
    );
    save_results("fig05_peak_bandwidth", &outcomes);
}
