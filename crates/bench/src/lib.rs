//! Experiment harness shared by every table/figure reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). They all build on the same
//! *operational scenario* — a backbone network, a month-long synthetic
//! trace with the paper's content mix, and the paper's default
//! parameters — at one of three scales selected on the command line:
//!
//! - `--quick`: minutes-long CI scale (small network, small library),
//! - default: the standard reproduction scale,
//! - `--full`: the paper's scale (55-VHO backbone, larger library) —
//!   slower, for final numbers.
//!
//! Results are printed as Markdown tables (mirroring the paper's rows
//! and series) and persisted as JSON under `results/`.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod comparison;
use std::path::PathBuf;
use vod_core::{DiskConfig, EpfConfig};
use vod_json::{obj, ToJson, Value};
use vod_model::{Catalog, SimTime, TimeWindow};
use vod_net::{Network, PathSet};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, Trace, TraceConfig};

/// Experiment scale, parsed from argv.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Default,
    Full,
}

impl Scale {
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }
}

/// The shared operational scenario.
#[derive(Debug)]
pub struct Scenario {
    pub net: Network,
    pub paths: PathSet,
    pub catalog: Catalog,
    pub trace: Trace,
    pub scale: Scale,
    pub seed: u64,
}

/// Paper-default knobs used across experiments.
#[derive(Debug)]
pub struct Defaults {
    /// Fraction of each disk reserved for the complementary LRU cache.
    pub cache_frac: f64,
    /// Aggregate disk as a multiple of the library size.
    pub disk_ratio: f64,
    /// Uniform link capacity in Gb/s.
    pub link_gbps: f64,
    /// Peak-window length (1 h) and count (|T| = 2).
    pub window_secs: u64,
    pub n_windows: usize,
}

impl Default for Defaults {
    fn default() -> Self {
        Self {
            cache_frac: 0.05,
            disk_ratio: 2.0,
            link_gbps: 1.0,
            window_secs: 3600,
            n_windows: 2,
        }
    }
}

impl Defaults {
    /// Link capacity scaled to each scenario's load so that the MIP's
    /// bandwidth constraint actually binds at peak — the regime the
    /// paper evaluates (its 1 Gb/s constraint sat right at the MIP's
    /// 1.36 Gb/s peak). With slack links every placement looks alike.
    pub fn for_scale(scale: Scale) -> Self {
        Self {
            link_gbps: match scale {
                Scale::Quick => 0.035,
                Scale::Default => 0.15,
                Scale::Full => 0.5,
            },
            ..Self::default()
        }
    }
}

impl Scenario {
    /// Build the operational scenario at the given scale.
    ///
    /// Scales (VHOs / library / days / requests-per-day):
    /// quick 10/300/14/4 K, default 24/1200/28/20 K,
    /// full 55/3000/28/60 K (the paper's backbone with a library sized
    /// so the evaluation completes in minutes; Table III separately
    /// scales the *solver* to 100 K+ videos).
    pub fn operational(scale: Scale, seed: u64) -> Self {
        let (net, n_videos, days, rpd) = match scale {
            Scale::Quick => (
                vod_net::topologies::mesh_backbone(10, 16, seed),
                300usize,
                14u64,
                4_000.0,
            ),
            Scale::Default => (
                vod_net::topologies::mesh_backbone(24, 36, seed),
                1200,
                28,
                20_000.0,
            ),
            Scale::Full => (vod_net::topologies::backbone55(), 3000, 28, 60_000.0),
        };
        let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, days, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(rpd, days, seed));
        let paths = PathSet::shortest_paths(&net);
        Self {
            net,
            paths,
            catalog,
            trace,
            scale,
            seed,
        }
    }

    /// EPF configuration appropriate for this scale.
    ///
    /// The solve budget is the deterministic `step_limit` (a global
    /// pass count, identical on every machine and preserved across
    /// checkpoint resume), never `wall_limit`: a wall-clock budget
    /// stops at a machine-speed-dependent pass, so two runs of the
    /// same experiment could publish different (equally valid) rows.
    /// `wall_limit` is for interactive/operational use where latency
    /// matters more than reproducibility.
    pub fn epf_config(&self) -> EpfConfig {
        let passes = match self.scale {
            Scale::Quick => 200,
            Scale::Default => 400,
            Scale::Full => 600,
        };
        EpfConfig {
            max_passes: passes,
            step_limit: Some(passes as u64),
            seed: self.seed,
            ..Default::default()
        }
    }

    /// A faster EPF configuration for feasibility probes (binary
    /// searches run dozens of them). Same deterministic budgeting as
    /// [`Scenario::epf_config`].
    pub fn probe_config(&self) -> EpfConfig {
        let passes = match self.scale {
            Scale::Quick => 80,
            Scale::Default => 120,
            Scale::Full => 150,
        };
        EpfConfig {
            max_passes: passes,
            step_limit: Some(passes as u64),
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Restrict the trace to week `w` (0-based).
    pub fn week(&self, w: u64) -> Trace {
        let secs = 7 * 86_400;
        self.trace.restricted(TimeWindow::new(
            SimTime::new(w * secs),
            SimTime::new((w + 1) * secs),
        ))
    }

    /// Demand input built from week `w`'s requests with the default
    /// peak windows.
    pub fn demand_of_week(&self, w: u64, d: &Defaults) -> vod_trace::DemandInput {
        let week = self.week(w);
        let windows = vod_trace::analysis::select_peak_windows(
            &week,
            &self.catalog,
            d.window_secs,
            d.n_windows,
        );
        vod_trace::DemandInput::from_trace(&week, &self.catalog, self.net.num_nodes(), windows)
    }

    /// The MIP disk config for the placement share of the disks.
    pub fn mip_disk(&self, d: &Defaults) -> DiskConfig {
        DiskConfig::UniformRatio {
            ratio: d.disk_ratio * (1.0 - d.cache_frac),
        }
    }

    /// Full per-VHO disks (placement share + cache share).
    pub fn full_disks(&self, d: &Defaults) -> Vec<vod_model::Gigabytes> {
        DiskConfig::UniformRatio {
            ratio: d.disk_ratio,
        }
        .capacities(&self.net, self.catalog.total_size())
    }
}

/// A Markdown/JSON result table.
#[derive(Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Print as a Markdown table.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        println!("| {} |", self.headers.join(" | "));
        println!(
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            println!("| {} |", r.join(" | "));
        }
    }
}

impl ToJson for Table {
    fn to_value(&self) -> Value {
        obj(vec![
            ("title", self.title.to_value()),
            ("headers", self.headers.to_value()),
            ("rows", self.rows.to_value()),
        ])
    }
}

/// Write an experiment's result tables (plus free-form metadata) to
/// `results/<name>.json`. The write is atomic (temp file + rename) so
/// an interrupted bench never leaves a half-written result behind.
pub fn save_results<T: ToJson + ?Sized>(name: &str, payload: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    vod_json::snapshot::write_atomic(&path, vod_json::to_string_pretty(payload).as_bytes())
        .expect("write results file");
    println!("\n[results written to {}]", path.display());
}

/// `results/` next to the workspace root (or under `CARGO_TARGET_DIR`'s
/// parent if running from elsewhere).
pub fn results_dir() -> PathBuf {
    // The bins run from the workspace root via `cargo run`.
    PathBuf::from(std::env::var("VODPLACE_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

/// Format a float with sensible precision for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_builds() {
        let s = Scenario::operational(Scale::Quick, 1);
        assert_eq!(s.net.num_nodes(), 10);
        assert_eq!(s.catalog.len(), 300);
        assert!(!s.trace.is_empty());
        let wk = s.week(1);
        assert!(wk.len() < s.trace.len());
        let d = Defaults::default();
        let dem = s.demand_of_week(0, &d);
        assert_eq!(dem.windows.len(), 2);
        assert!(dem.aggregate.total() > 0.0);
    }

    #[test]
    fn table_formatting() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(fmt(0.12345), "0.1235");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(1235.6), "1236");
        assert_eq!(fmt(0.0), "0");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
