//! Property coverage of the runtime audit layer
//! (`vod_core::audit`), plus the same-seed determinism regression the
//! whole lint/audit machinery exists to protect: valid solver outputs
//! always pass the audit, perturbed solutions always fail it, and two
//! identical runs produce byte-identical placements.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
use proptest::prelude::*;
use std::sync::OnceLock;
use vod_core::audit;
use vod_core::rounding::round_solution;
use vod_core::solution::INT_TOL;
use vod_core::{DiskConfig, EpfConfig, FractionalSolution, MipInstance};
use vod_model::Mbps;
use vod_net::topologies;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

const N_VIDEOS: usize = 50;

fn instance(seed: u64) -> MipInstance {
    let mut net = topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(N_VIDEOS, 7, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(800.0, 7, seed));
    let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

/// One shared solve: the proptest cases below each perturb a clone of
/// this solution, so the expensive EPF run happens once.
fn solved() -> &'static (MipInstance, FractionalSolution) {
    static SOLVED: OnceLock<(MipInstance, FractionalSolution)> = OnceLock::new();
    SOLVED.get_or_init(|| {
        let inst = instance(41);
        let cfg = EpfConfig {
            max_passes: 60,
            seed: 41,
            ..Default::default()
        };
        let (frac, _) = vod_core::solve_fractional(&inst, &cfg);
        (inst, frac)
    })
}

#[test]
fn valid_solver_output_passes_audit() {
    let (inst, frac) = solved();
    let report = audit::check_fractional(inst, frac, frac.max_violation + INT_TOL);
    assert!(report.is_ok(), "clean solve flagged:\n{report}");

    let (placement, stats) = round_solution(inst, frac, 1.0, vod_core::Kernel::Chunked);
    let report = audit::check_placement(inst, &placement, stats.max_violation + INT_TOL);
    assert!(report.is_ok(), "clean placement flagged:\n{report}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scaling any client's serving distribution breaks Σx = 1 and the
    /// audit must say so, whichever video/client gets hit.
    #[test]
    fn scaled_distribution_fails_audit(video in 0usize..N_VIDEOS, scale in 0.2f64..0.8) {
        let (inst, frac) = solved();
        let mut blocks = frac.blocks.clone();
        // Find a video (starting from `video`, wrapping) with a client.
        let m = (0..N_VIDEOS)
            .map(|k| (video + k) % N_VIDEOS)
            .find(|&m| !blocks[m].x.is_empty())
            .expect("some video has demand");
        for e in blocks[m].x[0].iter_mut() {
            e.1 *= scale;
        }
        let report = audit::check_blocks(inst, &blocks, INT_TOL);
        prop_assert!(
            report.violations.iter().any(|v| matches!(
                v,
                audit::Violation::DistributionMass { .. }
                    | audit::Violation::Dominance { .. }
            )),
            "scale {scale} on video {m} went unnoticed: {report:?}"
        );
    }

    /// Fully replicating a slice of the library blows the 2×-library
    /// disk budget; the audit must flag at least one disk row.
    #[test]
    fn disk_overflow_fails_audit(stride in 1usize..4) {
        let (inst, frac) = solved();
        let mut blocks = frac.blocks.clone();
        for b in blocks.iter_mut().step_by(stride) {
            b.y = inst.network.vho_ids().map(|i| (i, 1.0)).collect();
        }
        let report = audit::check_coupling(inst, &blocks, 0.05);
        prop_assert!(
            report.violations.iter().any(|v| matches!(v, audit::Violation::Disk { .. })),
            "full replication at stride {stride} went unnoticed: {report:?}"
        );
    }
}

/// The determinism regression the lint rules defend: two runs with the
/// same seed (and parallel block solves enabled) must agree bit-for-bit
/// — same objective bits, same violation bits, and a byte-identical
/// debug rendering of the final placement.
#[test]
fn same_seed_placements_are_byte_identical() {
    let inst = instance(52);
    let cfg = EpfConfig {
        max_passes: 40,
        seed: 52,
        threads: 2,
        ..Default::default()
    };
    let (frac_a, _) = vod_core::solve_fractional(&inst, &cfg);
    let (frac_b, _) = vod_core::solve_fractional(&inst, &cfg);
    assert_eq!(frac_a.objective.to_bits(), frac_b.objective.to_bits());
    assert_eq!(
        frac_a.max_violation.to_bits(),
        frac_b.max_violation.to_bits()
    );
    let (pl_a, stats_a) = round_solution(&inst, &frac_a, cfg.gamma, cfg.kernel);
    let (pl_b, stats_b) = round_solution(&inst, &frac_b, cfg.gamma, cfg.kernel);
    assert_eq!(stats_a.objective.to_bits(), stats_b.objective.to_bits());
    assert_eq!(format!("{pl_a:?}"), format!("{pl_b:?}"));
}
