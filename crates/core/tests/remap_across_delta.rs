//! Warm-state remapping across world deltas: a mid-solve checkpoint
//! captured before a *capacity-only* delta is rejected verbatim (the
//! fingerprint moved), remaps cleanly, and resumes deterministically;
//! an *axis-changing* delta (catalog growth) is a typed
//! [`RemapError::AxisChanged`]; and `solve_cycle_fractional` now
//! surfaces the discarded-checkpoint path as `ResumeKind::Rejected`
//! with the validation reason instead of silently cold-solving.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use vod_core::remap::{remap_checkpoint, remap_fractional, RemapError};
use vod_core::{
    solve_cycle_fractional, solve_fractional_resumable, CheckpointSpec, EpfConfig, MipInstance,
    ResumeKind, SolveError, SolverCheckpoint,
};
use vod_core::{DiskConfig, Placement};
use vod_model::{Catalog, LinkId, Mbps, Video, VideoClass, VideoId, VideoKind};
use vod_net::{topologies, DeltaOp, Network, WorldDelta};
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

const SEED: u64 = 31;

fn base_net() -> Network {
    let mut net = topologies::mesh_backbone(6, 9, SEED);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    net
}

fn instance_on(net: Network, extra_videos: usize) -> MipInstance {
    let mut catalog = synthesize_library(&LibraryConfig::default_for(50, 7, SEED));
    // The trace is always generated against the *base* catalog so a
    // grown catalog only appends zero-demand tail videos — exactly the
    // append-only world-delta semantics.
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(500.0, 7, SEED));
    if extra_videos > 0 {
        let mut videos: Vec<Video> = catalog.iter().cloned().collect();
        for k in 0..extra_videos {
            videos.push(Video {
                id: VideoId::from_index(videos.len()),
                class: VideoClass::Show,
                kind: VideoKind::OtherNew,
                release_day: 0,
                weight: 0.5 + k as f64,
            });
        }
        catalog = Catalog::new(videos);
    }
    let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

fn config() -> EpfConfig {
    EpfConfig {
        max_passes: 60,
        seed: SEED,
        ..Default::default()
    }
}

/// A checkpoint captured partway through a solve on the base world.
fn mid_solve_checkpoint(inst: &MipInstance, cfg: &EpfConfig) -> SolverCheckpoint {
    let mut snaps: Vec<Vec<u8>> = Vec::new();
    let mut sink = |ck: SolverCheckpoint| snaps.push(ck.to_bytes());
    let _ = solve_cycle_fractional(
        inst,
        cfg,
        None,
        None,
        Some(CheckpointSpec {
            every: 3,
            sink: &mut sink,
        }),
    )
    .unwrap();
    assert!(!snaps.is_empty(), "solve must emit checkpoints");
    SolverCheckpoint::from_bytes(&snaps[snaps.len() / 2]).unwrap()
}

fn capacity_delta() -> WorldDelta {
    WorldDelta {
        cycle: 0,
        seed: SEED,
        ops: vec![
            DeltaOp::ScaleLink {
                link: LinkId::new(0),
                factor: 0.5,
            },
            DeltaOp::CutLink {
                link: LinkId::new(3),
            },
        ],
    }
}

#[test]
fn capacity_only_delta_remaps_and_resumes() {
    let cfg = config();
    let base = instance_on(base_net(), 0);
    let ckpt = mid_solve_checkpoint(&base, &cfg);

    // Apply a capacity-only delta and rebuild the instance.
    let mut net = base_net();
    let delta = capacity_delta();
    assert!(delta.validate(&net).is_ok() && delta.is_capacity_only());
    delta.apply_links(&mut net);
    let moved = instance_on(net, 0);

    // The raw checkpoint is now foreign: typed rejection, not a panic.
    let err = solve_fractional_resumable(&moved, &cfg, &ckpt, None).expect_err("must reject");
    assert!(
        matches!(err, SolveError::MismatchedCheckpoint { ref what } if what.contains("fingerprint")),
        "{err}"
    );

    // Remapped, it validates and resumes — and the dual bound was
    // dropped to neutral while the primal pass counter survived.
    let remapped = remap_checkpoint(ckpt.clone(), &moved, &cfg).expect("capacity-only must remap");
    assert_eq!(remapped.pass(), ckpt.pass());
    let (frac_a, _, kind) =
        solve_cycle_fractional(&moved, &cfg, Some(&remapped), None, None).unwrap();
    assert_eq!(kind, ResumeKind::Checkpoint, "remap must warm-resume");

    // Determinism: remap + resume twice lands on identical bits.
    let remapped2 = remap_checkpoint(ckpt, &moved, &cfg).unwrap();
    let (frac_b, _, _) =
        solve_cycle_fractional(&moved, &cfg, Some(&remapped2), None, None).unwrap();
    assert_eq!(frac_a.objective.to_bits(), frac_b.objective.to_bits());
    for (a, b) in frac_a.blocks.iter().zip(&frac_b.blocks) {
        assert_eq!(a.y, b.y);
    }
}

#[test]
fn catalog_growth_is_a_typed_axis_invalidation() {
    let cfg = config();
    let base = instance_on(base_net(), 0);
    let ckpt = mid_solve_checkpoint(&base, &cfg);
    let grown = instance_on(base_net(), 5);
    match remap_checkpoint(ckpt, &grown, &cfg) {
        Err(RemapError::AxisChanged { what }) => assert!(what.contains("video axis"), "{what}"),
        other => panic!("expected AxisChanged, got {other:?}"),
    }
}

#[test]
fn fractional_remap_follows_the_same_rules() {
    let cfg = config();
    let base = instance_on(base_net(), 0);
    let (frac, _, _) = solve_cycle_fractional(&base, &cfg, None, None, None).unwrap();

    let mut net = base_net();
    capacity_delta().apply_links(&mut net);
    let moved = instance_on(net, 0);
    let remapped = remap_fractional(frac.clone(), &moved).expect("capacity-only must remap");
    assert_eq!(remapped.lower_bound, 0.0, "stale dual bound must drop");
    assert_eq!(remapped.blocks.len(), frac.blocks.len());

    let grown = instance_on(base_net(), 3);
    match remap_fractional(frac, &grown) {
        Err(RemapError::AxisChanged { what }) => assert!(what.contains("video axis"), "{what}"),
        other => panic!("expected AxisChanged, got {other:?}"),
    }
}

#[test]
fn rejected_checkpoints_surface_their_reason() {
    let cfg = config();
    let base = instance_on(base_net(), 0);
    let ckpt = mid_solve_checkpoint(&base, &cfg);

    let mut net = base_net();
    capacity_delta().apply_links(&mut net);
    let moved = instance_on(net, 0);

    // Foreign checkpoint + no warm placement: falls through to a cold
    // trajectory but reports the typed rejection.
    let (_, _, kind) = solve_cycle_fractional(&moved, &cfg, Some(&ckpt), None, None).unwrap();
    match kind {
        ResumeKind::Rejected { ref reason } => {
            assert!(reason.contains("fingerprint"), "{reason}");
            assert_eq!(kind.name(), "rejected");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // With a warm placement the rejection still wins over WarmStart.
    let warm = Placement::from_stores(
        base.n_vhos(),
        (0..base.n_videos())
            .map(|_| vec![vod_model::VhoId::new(0)])
            .collect(),
    );
    let (_, _, kind) =
        solve_cycle_fractional(&moved, &cfg, Some(&ckpt), Some(&warm), None).unwrap();
    assert!(matches!(kind, ResumeKind::Rejected { .. }));

    // A *shorter* warm placement (append-only growth) is accepted.
    let grown = instance_on(base_net(), 4);
    let (_, _, kind) = solve_cycle_fractional(&grown, &cfg, None, Some(&warm), None).unwrap();
    assert_eq!(kind, ResumeKind::WarmStart);
}
