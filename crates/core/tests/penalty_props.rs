//! Property test for the incremental penalty arena: after **any**
//! sequence of dual perturbations, the incrementally-maintained arena
//! must be bitwise identical to a from-scratch rebuild under the final
//! duals. This is the invariant (`crates/core/src/penalty.rs`: dirty
//! entries are re-summed in path order, never patched with deltas)
//! that lets the EPF hot path reuse one flat arena across tens of
//! thousands of dual snapshots without ever drifting from the
//! reference semantics.
#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;
use std::sync::OnceLock;
use vod_core::penalty::PenaltyArena;
use vod_core::potential::{Duals, RowLayout};
use vod_core::Kernel;
use vod_core::{DiskConfig, MipInstance};
use vod_model::Mbps;
use vod_net::topologies;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

fn setup() -> &'static (MipInstance, RowLayout) {
    static SETUP: OnceLock<(MipInstance, RowLayout)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut net = topologies::mesh_backbone(6, 9, 33);
        net.set_uniform_capacity(Mbps::from_gbps(1.0));
        let catalog = synthesize_library(&LibraryConfig::default_for(40, 7, 33));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 7, 33));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        let inst = MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        );
        let layout = RowLayout {
            n_vhos: inst.n_vhos(),
            n_links: inst.network.num_links(),
            n_windows: inst.n_windows(),
        };
        (inst, layout)
    })
}

fn assert_arena_matches_rebuild(
    inst: &MipInstance,
    layout: &RowLayout,
    arena: &PenaltyArena,
    duals: &Duals,
) {
    // The rebuild deliberately uses the Scalar reference backend while
    // the incremental arena under test ran on Chunked: this pins the
    // rebuild invariant *and* cross-backend bitwise identity at once.
    let fresh = PenaltyArena::for_duals(inst, layout, duals, Kernel::Scalar);
    for t in 0..layout.n_windows {
        let (a, f) = (arena.window(t), fresh.window(t));
        assert_eq!(a.len(), f.len());
        for (k, (x, y)) in a.iter().zip(f).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "window {t} entry {k}: incremental {x} vs rebuild {y}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Apply a random sequence of row perturbations (scales, bumps and
    /// zero-outs on random rows — link and disk alike) and check the
    /// arena against the from-scratch rebuild after every update.
    #[test]
    fn incremental_matches_rebuild_after_random_perturbations(
        init in prop::collection::vec(0.0f64..2.0, 1..2),
        steps in prop::collection::vec(
            (0usize..1000, 0u8..3, 0.25f64..4.0),
            1..12,
        ),
    ) {
        let (inst, layout) = setup();
        let n_rows = layout.n_rows();
        let mut duals = Duals::new(vec![init[0]; n_rows], 1.0);
        let mut arena = PenaltyArena::new(inst, layout);
        arena.update(inst, layout, &duals, Kernel::Chunked);
        assert_arena_matches_rebuild(inst, layout, &arena, &duals);
        for &(raw_row, op, factor) in &steps {
            let row = raw_row % n_rows;
            match op {
                0 => duals.rows[row] *= factor,
                1 => duals.rows[row] += factor,
                _ => duals.rows[row] = 0.0,
            }
            duals.bump_version();
            arena.update(inst, layout, &duals, Kernel::Chunked);
            assert_arena_matches_rebuild(inst, layout, &arena, &duals);
        }
    }

    /// Updating through intermediate snapshots and then jumping back to
    /// an earlier one (values equal, version different) still lands on
    /// the rebuild of that snapshot — path-order re-summing is
    /// history-independent.
    #[test]
    fn arena_state_is_history_independent(scale in 0.5f64..3.0, detour in 1usize..5) {
        let (inst, layout) = setup();
        let n_rows = layout.n_rows();
        let target = Duals::new((0..n_rows).map(|r| scale * (r % 7) as f64).collect(), 1.0);
        // Route A: straight to the target.
        let mut direct = PenaltyArena::new(inst, layout);
        direct.update(inst, layout, &target, Kernel::Scalar);
        // Route B: detour through other snapshots first.
        let mut wandering = PenaltyArena::new(inst, layout);
        for k in 0..detour {
            let mid = Duals::new(
                (0..n_rows).map(|r| (r + k) as f64 * 0.125).collect(),
                1.0,
            );
            wandering.update(inst, layout, &mid, Kernel::Chunked);
        }
        wandering.update(inst, layout, &target, Kernel::Chunked);
        for t in 0..layout.n_windows {
            let (a, b) = (direct.window(t), wandering.window(t));
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
