//! Property tests for the incremental penalty arena: after **any**
//! sequence of dual perturbations, the incrementally-maintained arena
//! must be bitwise identical to a from-scratch rebuild under the final
//! duals — in *every* layout. This is the invariant
//! (`crates/core/src/penalty.rs`: dirty entries are re-summed in path
//! order, never patched with deltas) that lets the EPF hot path reuse
//! one flat arena across tens of thousands of dual snapshots without
//! ever drifting from the reference semantics, and it is what makes
//! [`PenaltyLayout`] a pure memory knob: the sparse arena (and its
//! budget-degraded streaming variant) must read bitwise-equal to the
//! dense one at every `(window, server, client)` triple, on random
//! topologies and random dual trajectories alike.
#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;
use std::sync::OnceLock;
use vod_core::penalty::{PenaltyArena, PenaltyLayout};
use vod_core::potential::{Duals, RowLayout};
use vod_core::Kernel;
use vod_core::{DiskConfig, MipInstance};
use vod_model::Mbps;
use vod_net::topologies;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

fn build_instance(n_vhos: usize, n_videos: usize, seed: u64) -> (MipInstance, RowLayout) {
    let mut net = topologies::mesh_backbone(n_vhos, n_vhos * 3 / 2, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 7, seed));
    let trace = generate_trace(
        &catalog,
        &net,
        &TraceConfig::default_for(n_videos as f64 * 15.0, 7, seed),
    );
    let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    );
    let layout = RowLayout {
        n_vhos: inst.n_vhos(),
        n_links: inst.network.num_links(),
        n_windows: inst.n_windows(),
    };
    (inst, layout)
}

fn setup() -> &'static (MipInstance, RowLayout) {
    static SETUP: OnceLock<(MipInstance, RowLayout)> = OnceLock::new();
    SETUP.get_or_init(|| build_instance(6, 40, 33))
}

/// Every `(t, i, j)` read of `a` and `b` is bitwise identical — the
/// cross-layout equivalence the sparse arena promises.
fn assert_reads_bitwise_equal(layout: &RowLayout, a: &PenaltyArena, b: &PenaltyArena, what: &str) {
    let v = layout.n_vhos;
    for t in 0..layout.n_windows {
        for j in 0..v {
            for i in 0..v {
                let (x, y) = (a.at(t, i, j), b.at(t, i, j));
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{what}: at({t},{i},{j}): {x} vs {y}"
                );
            }
            if a.row_stored(t, j) && b.row_stored(t, j) {
                assert_eq!(
                    a.client_row(t, j),
                    b.client_row(t, j),
                    "{what}: row {t}/{j}"
                );
            }
        }
    }
}

fn assert_arena_matches_rebuild(
    inst: &MipInstance,
    layout: &RowLayout,
    arena: &PenaltyArena,
    duals: &Duals,
) {
    // The rebuild deliberately uses the Scalar reference backend on the
    // *dense* layout while the incremental arena under test ran on
    // Chunked/Sparse: this pins the rebuild invariant, cross-backend
    // bitwise identity, and cross-layout bitwise identity at once.
    let mut fresh = PenaltyArena::with_layout(inst, layout, PenaltyLayout::Dense, None);
    fresh.update(inst, layout, duals, Kernel::Scalar);
    assert_reads_bitwise_equal(layout, arena, &fresh, "incremental vs rebuild");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Apply a random sequence of row perturbations (scales, bumps and
    /// zero-outs on random rows — link and disk alike) and check the
    /// arena against the from-scratch dense rebuild after every update.
    #[test]
    fn incremental_matches_rebuild_after_random_perturbations(
        init in prop::collection::vec(0.0f64..2.0, 1..2),
        steps in prop::collection::vec(
            (0usize..1000, 0u8..3, 0.25f64..4.0),
            1..12,
        ),
    ) {
        let (inst, layout) = setup();
        let n_rows = layout.n_rows();
        let mut duals = Duals::new(vec![init[0]; n_rows], 1.0);
        let mut arena = PenaltyArena::new(inst, layout); // default Sparse
        arena.update(inst, layout, &duals, Kernel::Chunked);
        assert_arena_matches_rebuild(inst, layout, &arena, &duals);
        for &(raw_row, op, factor) in &steps {
            let row = raw_row % n_rows;
            match op {
                0 => duals.rows[row] *= factor,
                1 => duals.rows[row] += factor,
                _ => duals.rows[row] = 0.0,
            }
            duals.bump_version();
            arena.update(inst, layout, &duals, Kernel::Chunked);
            assert_arena_matches_rebuild(inst, layout, &arena, &duals);
        }
    }

    /// Updating through intermediate snapshots and then jumping back to
    /// an earlier one (values equal, version different) still lands on
    /// the rebuild of that snapshot — path-order re-summing is
    /// history-independent, in both layouts.
    #[test]
    fn arena_state_is_history_independent(scale in 0.5f64..3.0, detour in 1usize..5) {
        let (inst, layout) = setup();
        let n_rows = layout.n_rows();
        let target = Duals::new((0..n_rows).map(|r| scale * (r % 7) as f64).collect(), 1.0);
        for mode in [PenaltyLayout::Dense, PenaltyLayout::Sparse] {
            // Route A: straight to the target.
            let mut direct = PenaltyArena::with_layout(inst, layout, mode, None);
            direct.update(inst, layout, &target, Kernel::Scalar);
            // Route B: detour through other snapshots first.
            let mut wandering = PenaltyArena::with_layout(inst, layout, mode, None);
            for k in 0..detour {
                let mid = Duals::new(
                    (0..n_rows).map(|r| (r + k) as f64 * 0.125).collect(),
                    1.0,
                );
                wandering.update(inst, layout, &mid, Kernel::Chunked);
            }
            wandering.update(inst, layout, &target, Kernel::Chunked);
            assert_reads_bitwise_equal(layout, &direct, &wandering, mode.name());
        }
    }

    /// The tentpole equivalence property: on *random topologies* and
    /// random dual trajectories, the sparse arena — with and without
    /// the streaming memory-budget degrade — reads bitwise-identical
    /// to the dense arena at every `(t, i, j)`, on every kernel
    /// backend.
    #[test]
    fn sparse_matches_dense_on_random_topologies(
        dims in (5usize..9, 20usize..40),
        seed in 0u64..500,
        steps in prop::collection::vec((0usize..1000, 0.1f64..3.0), 1..6),
    ) {
        let (n_vhos, n_videos) = dims;
        let (inst, layout) = build_instance(n_vhos, n_videos, seed);
        let n_rows = layout.n_rows();
        for &k in Kernel::all() {
            let mut dense = PenaltyArena::with_layout(&inst, &layout, PenaltyLayout::Dense, None);
            let mut sparse = PenaltyArena::with_layout(&inst, &layout, PenaltyLayout::Sparse, None);
            // A 1-byte budget always degrades to streaming rebuilds.
            let mut streaming =
                PenaltyArena::with_layout(&inst, &layout, PenaltyLayout::Sparse, Some(1));
            prop_assert!(streaming.is_streaming());
            prop_assert!(!sparse.is_streaming());
            prop_assert!(sparse.stored_rows() <= dense.stored_rows());
            prop_assert!(sparse.approx_bytes() <= dense.approx_bytes());
            let mut duals = Duals::new(vec![0.0; n_rows], 1.0);
            for &(raw_row, bump) in &steps {
                duals.rows[raw_row % n_rows] += bump;
                duals.bump_version();
                dense.update(&inst, &layout, &duals, k);
                sparse.update(&inst, &layout, &duals, k);
                streaming.update(&inst, &layout, &duals, k);
                assert_reads_bitwise_equal(&layout, &sparse, &dense, k.name());
                assert_reads_bitwise_equal(&layout, &streaming, &dense, k.name());
            }
        }
    }
}
