//! Property tests for the lane-backend kernel contract
//! (`crates/core/src/kernel.rs`): every backend must be **bitwise
//! identical per element** to the `Scalar` reference on solver-shaped
//! inputs (finite, nonnegative, no `-0.0`), at three levels —
//!
//! 1. the raw kernel ops (`axpy`, `accum`, `accum_relu_sub`,
//!    `row_min`, `headroom_min`, `drain_budget`),
//! 2. whole UFL block solves and dual-ascent bounds
//!    ([`UflProblem::solve_local_search_with_kernel`] /
//!    [`UflProblem::dual_ascent_bound_with_kernel`]), and
//! 3. the batched penalty-arena gather path, whose incremental updates
//!    must be history-independent and land bitwise on a `Scalar`
//!    from-scratch rebuild whatever backend maintained them.
//!
//! With `--features simd` the nightly `std::simd` backend joins the
//! comparison through [`Kernel::all`].
#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;
use std::sync::OnceLock;
use vod_core::block::{UflProblem, UflScratch};
use vod_core::kernel::{self, Kernel};
use vod_core::penalty::{PenaltyArena, PenaltyLayout};
use vod_core::potential::{Duals, RowLayout};
use vod_core::{DiskConfig, MipInstance};
use vod_model::Mbps;
use vod_net::topologies;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

fn setup() -> &'static (MipInstance, RowLayout) {
    static SETUP: OnceLock<(MipInstance, RowLayout)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let mut net = topologies::mesh_backbone(6, 9, 33);
        net.set_uniform_capacity(Mbps::from_gbps(1.0));
        let catalog = synthesize_library(&LibraryConfig::default_for(40, 7, 33));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 7, 33));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        let inst = MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        );
        let layout = RowLayout {
            n_vhos: inst.n_vhos(),
            n_links: inst.network.num_links(),
            n_windows: inst.n_windows(),
        };
        (inst, layout)
    })
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what} entry {k}: scalar {x} vs backend {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw kernel ops: every backend bitwise-matches Scalar on random
    /// solver-shaped vectors (lengths straddle the 8-lane boundary,
    /// values nonnegative with exact zeros mixed in).
    #[test]
    fn kernel_ops_bitwise_match_scalar(
        pairs in prop::collection::vec((0.0f64..1e4, 0.0f64..1e4), 0..70),
        w in 0.0f64..8.0,
        vc in 0.0f64..100.0,
        delta in 0.0f64..50.0,
        zero_every in 2usize..6,
    ) {
        // Unzip into equal-length operands; plant exact zeros so the
        // max(0.0) branches and min ties get exercised.
        let mut a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        for (k, x) in a.iter_mut().enumerate() {
            if k % zero_every == 0 {
                *x = 0.0;
            }
        }
        let scalar_only = [Kernel::Scalar];
        let lanes: Vec<Kernel> = Kernel::all()
            .iter()
            .copied()
            .filter(|k| !matches!(k, Kernel::Scalar))
            .collect();
        prop_assert!(!lanes.is_empty());

        // Reference results on Scalar.
        let reference = |k: Kernel| {
            let mut axpy_acc = a.clone();
            kernel::axpy(k, &mut axpy_acc, w, &b);
            let mut accum_acc = a.clone();
            kernel::accum(k, &mut accum_acc, &b);
            let mut relu_acc = a.clone();
            kernel::accum_relu_sub(k, &mut relu_acc, vc, &b);
            let mut budget = a.clone();
            kernel::drain_budget(k, &mut budget, &b, vc, delta);
            (
                axpy_acc,
                accum_acc,
                relu_acc,
                budget,
                kernel::row_min(k, &b),
                kernel::headroom_min(k, &b, vc, &a),
            )
        };
        let base = reference(scalar_only[0]);
        for &k in &lanes {
            let got = reference(k);
            assert_bits_eq(&base.0, &got.0, "axpy");
            assert_bits_eq(&base.1, &got.1, "accum");
            assert_bits_eq(&base.2, &got.2, "accum_relu_sub");
            assert_bits_eq(&base.3, &got.3, "drain_budget");
            prop_assert_eq!(base.4.to_bits(), got.4.to_bits(), "row_min");
            prop_assert_eq!(base.5.to_bits(), got.5.to_bits(), "headroom_min");
        }
    }

    /// Whole UFL block solves: identical open sets, assignments, costs
    /// and dual-ascent bounds across backends on random instances.
    #[test]
    fn ufl_solves_bitwise_match_scalar(
        n_fac in 1usize..12,
        n_clients in 0usize..10,
        cells in prop::collection::vec((0.0f64..50.0, 0.0f64..400.0), 1..2),
        seed in 0u64..1000,
    ) {
        // Deterministic pseudo-random UFL from (seed, dims): SplitMix64
        // stream, nonnegative costs only.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let (fscale, sscale) = cells[0];
        let facility: Vec<f64> = (0..n_fac).map(|_| next() * fscale).collect();
        let rows: Vec<Vec<f64>> = (0..n_clients)
            .map(|_| (0..n_fac).map(|_| next() * sscale).collect())
            .collect();
        let ufl = UflProblem::from_rows(facility, rows);

        let mut scratch = UflScratch::default();
        let base_sol = ufl.solve_local_search_with_kernel(&mut scratch, Kernel::Scalar);
        let base_fast = ufl.solve_local_search_fast_with_kernel(&mut scratch, Kernel::Scalar);
        let base_bound = ufl.dual_ascent_bound_with_kernel(&mut scratch, Kernel::Scalar);
        for &k in Kernel::all() {
            let sol = ufl.solve_local_search_with_kernel(&mut scratch, k);
            prop_assert_eq!(&sol.open, &base_sol.open, "open set ({})", k.name());
            prop_assert_eq!(&sol.assign, &base_sol.assign, "assignment ({})", k.name());
            prop_assert_eq!(
                ufl.cost(&sol).to_bits(),
                ufl.cost(&base_sol).to_bits(),
                "cost ({})", k.name()
            );
            let fast = ufl.solve_local_search_fast_with_kernel(&mut scratch, k);
            prop_assert_eq!(&fast.open, &base_fast.open, "fast open set ({})", k.name());
            prop_assert_eq!(&fast.assign, &base_fast.assign, "fast assignment ({})", k.name());
            let bound = ufl.dual_ascent_bound_with_kernel(&mut scratch, k);
            prop_assert_eq!(
                bound.to_bits(),
                base_bound.to_bits(),
                "dual ascent bound ({})", k.name()
            );
        }
    }

    /// Batched penalty gather: an arena maintained incrementally on any
    /// lane backend, through an arbitrary detour of snapshots, lands
    /// bitwise on the Scalar from-scratch rebuild of the final duals —
    /// the gather path is history-independent and backend-independent.
    #[test]
    fn penalty_gather_is_history_and_backend_independent(
        scale in 0.25f64..3.0,
        detours in prop::collection::vec((0usize..1000, 0.1f64..2.0), 0..6),
    ) {
        let (inst, layout) = setup();
        let n_rows = layout.n_rows();
        let target = Duals::new((0..n_rows).map(|r| scale * (r % 5) as f64).collect(), 1.0);
        // Dense layout: window() compares whole matrices (the sparse
        // layout's bitwise identity is pinned by penalty_props.rs).
        let mut reference = PenaltyArena::with_layout(inst, layout, PenaltyLayout::Dense, None);
        reference.update(inst, layout, &target, Kernel::Scalar);
        for &k in Kernel::all() {
            let mut arena = PenaltyArena::with_layout(inst, layout, PenaltyLayout::Dense, None);
            let mut duals = Duals::new(vec![0.0; n_rows], 1.0);
            for &(raw_row, bump) in &detours {
                duals.rows[raw_row % n_rows] += bump;
                duals.bump_version();
                arena.update(inst, layout, &duals, k);
            }
            duals.rows.copy_from_slice(&target.rows);
            duals.bump_version();
            arena.update(inst, layout, &duals, k);
            for t in 0..layout.n_windows {
                let (a, b) = (reference.window(t), arena.window(t));
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits(), "backend {}", k.name());
                }
            }
        }
    }
}

/// End-to-end: a full (small) EPF solve must produce bitwise-identical
/// objective, lower bound and step counts on every backend — the same
/// identity the solver benchmark asserts on the Table III ladder.
#[test]
fn full_solve_is_backend_invariant() {
    let (inst, _) = setup();
    let mut reference: Option<(u64, u64, usize, u64)> = None;
    for &k in Kernel::all() {
        let cfg = vod_core::EpfConfig {
            max_passes: 25,
            polish_iters: 10,
            seed: 7,
            threads: 1,
            kernel: k,
            ..Default::default()
        };
        let (frac, stats) = vod_core::solve_fractional(inst, &cfg);
        let key = (
            frac.objective.to_bits(),
            frac.lower_bound.to_bits(),
            stats.passes,
            stats.block_steps,
        );
        match &reference {
            None => reference = Some(key),
            Some(base) => assert_eq!(
                *base,
                key,
                "backend {} diverged from Scalar on the full solve",
                k.name()
            ),
        }
    }
}
