//! Validation of the per-video block solvers against the exact block
//! LP (solved by the generic simplex): the dual-ascent bound must
//! lower-bound the exact LP optimum and stay tight on average, and the
//! local-search integer solution must sit just above it.
#![allow(
    clippy::unwrap_used,
    clippy::float_cmp,
    clippy::cast_possible_truncation
)]
use vod_core::block::UflProblem;
use vod_lp::{Cmp, LinearProgram};

fn exact_ufl_lp(p: &UflProblem) -> f64 {
    let n = p.facility_cost.len();
    let mut lp = LinearProgram::new();
    let ys: Vec<usize> = (0..n)
        .map(|i| lp.add_var(p.facility_cost[i], Some(1.0)))
        .collect();
    for row in p.service_rows() {
        let xv: Vec<usize> = (0..n).map(|i| lp.add_var(row[i], None)).collect();
        lp.add_constraint(xv.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);
        for i in 0..n {
            lp.add_constraint(vec![(xv[i], 1.0), (ys[i], -1.0)], Cmp::Le, 0.0);
        }
    }
    if p.n_clients() == 0 {
        lp.add_constraint(ys.iter().map(|&v| (v, 1.0)).collect(), Cmp::Ge, 1.0);
    }
    vod_lp::solve_lp(&lp).unwrap().objective
}

#[test]
fn block_bounds_sandwich_exact_lp() {
    use rand::Rng;
    let mut rng = vod_model::rng::rng_from_seed(5);
    let mut tot_da = 0.0;
    let mut tot_exact = 0.0;
    let mut tot_ls = 0.0;
    for _ in 0..200 {
        let n = 6;
        let c = rng.gen_range(1..7usize);
        let p = UflProblem::from_rows(
            (0..n).map(|_| rng.gen_range(0.0..3.0f64)).collect(),
            (0..c)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0f64)).collect())
                .collect(),
        );
        let da = p.dual_ascent_bound();
        let ex = exact_ufl_lp(&p);
        let ls = p.cost(&p.solve_local_search());
        assert!(da <= ex + 1e-6, "invalid bound {da} vs exact {ex}");
        tot_da += da;
        tot_exact += ex;
        tot_ls += ls;
    }
    eprintln!("dual ascent {tot_da:.2}  exact LP {tot_exact:.2}  local search {tot_ls:.2}");
    eprintln!(
        "ascent slack {:.3}%  integrality {:.3}%",
        (tot_exact - tot_da) / tot_exact * 100.0,
        (tot_ls - tot_exact) / tot_exact * 100.0
    );
}
