//! Worker-pool determinism regression: the EPF solver must produce
//! **byte-identical** fractional solutions whatever the thread count.
//!
//! The pool's contract (see `crates/core/src/pool.rs`) is that results
//! are reassembled in part order and each part runs the same code as
//! the inline path, so `threads = 1` vs `threads = 4` differ only in
//! wall-clock scheduling — never in a single bit of output. These
//! tests pin that with instances large enough that the parallel
//! dispatch path actually engages (chunks of ≥ 16 blocks).
#![allow(clippy::unwrap_used, clippy::float_cmp)]
use vod_core::{DiskConfig, EpfConfig, FractionalSolution, MipInstance};
use vod_model::Mbps;
use vod_net::topologies;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

fn instance(seed: u64) -> MipInstance {
    let mut net = topologies::mesh_backbone(6, 9, seed);
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(120, 7, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(800.0, 7, seed));
    let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

/// Bitwise equality of two fractional solutions: every `y` and `x`
/// entry (id and f64 bits), plus objective/violation/bound bits.
fn assert_bit_identical(a: &FractionalSolution, b: &FractionalSolution) {
    assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "objective");
    assert_eq!(
        a.max_violation.to_bits(),
        b.max_violation.to_bits(),
        "max_violation"
    );
    assert_eq!(
        a.lower_bound.to_bits(),
        b.lower_bound.to_bits(),
        "lower_bound"
    );
    assert_eq!(a.blocks.len(), b.blocks.len());
    for (m, (ba, bb)) in a.blocks.iter().zip(&b.blocks).enumerate() {
        assert_eq!(ba.y.len(), bb.y.len(), "video {m}: y length");
        for (&(ia, va), &(ib, vb)) in ba.y.iter().zip(&bb.y) {
            assert_eq!(ia, ib, "video {m}: y id");
            assert_eq!(va.to_bits(), vb.to_bits(), "video {m}: y value");
        }
        assert_eq!(ba.x.len(), bb.x.len(), "video {m}: client count");
        for (c, (da, db)) in ba.x.iter().zip(&bb.x).enumerate() {
            assert_eq!(da.len(), db.len(), "video {m} client {c}: x length");
            for (&(ia, va), &(ib, vb)) in da.iter().zip(db) {
                assert_eq!(ia, ib, "video {m} client {c}: x id");
                assert_eq!(va.to_bits(), vb.to_bits(), "video {m} client {c}: x value");
            }
        }
    }
}

#[test]
fn thread_count_is_invisible_in_results() {
    for seed in [11u64, 12] {
        let inst = instance(seed);
        let base = EpfConfig {
            max_passes: 40,
            seed,
            ..Default::default()
        };
        let (serial, serial_stats) = vod_core::solve_fractional(
            &inst,
            &EpfConfig {
                threads: 1,
                ..base.clone()
            },
        );
        let (parallel, parallel_stats) =
            vod_core::solve_fractional(&inst, &EpfConfig { threads: 4, ..base });
        assert_bit_identical(&serial, &parallel);
        assert_eq!(
            serial_stats.block_steps, parallel_stats.block_steps,
            "seed {seed}: step counts diverged"
        );
        assert_eq!(serial_stats.passes, parallel_stats.passes);
    }
}

/// Ladder-scale determinism: more blocks than one [`vod_core::shard`]
/// shard (8 192), on a 100-VHO [`topologies::ladder_mesh`], so the
/// washout reduction and the initial block build take the multi-shard
/// path and the sparse penalty arena carries real row counts. Byte
/// identity between `threads = 1` and `threads = 4` here is the
/// contract the 10⁵–10⁶ scale rows rely on. Release-profile CI runs
/// this via `--ignored` (bench-smoke); it is too slow for the
/// debug-profile default test run.
#[test]
#[ignore = "ladder scale: run with --ignored under --release (CI bench-smoke)"]
fn thread_count_is_invisible_at_multi_shard_scale() {
    use vod_trace::synthetic_demand;
    let n_videos = 9_000; // > one 8 192-block shard
    let mut net = topologies::ladder_mesh(100);
    net.set_uniform_capacity(Mbps::from_gbps(4.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 7, 3));
    let demand = synthetic_demand(
        &catalog,
        &net,
        &TraceConfig::default_for(n_videos as f64 * 1.2, 7, 3),
    );
    let inst = MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    );
    let base = EpfConfig {
        max_passes: 8,
        seed: 3,
        ..Default::default()
    };
    let (serial, serial_stats) = vod_core::solve_fractional(
        &inst,
        &EpfConfig {
            threads: 1,
            ..base.clone()
        },
    );
    let (parallel, parallel_stats) =
        vod_core::solve_fractional(&inst, &EpfConfig { threads: 4, ..base });
    assert_bit_identical(&serial, &parallel);
    assert_eq!(serial_stats.block_steps, parallel_stats.block_steps);
    assert_eq!(serial_stats.passes, parallel_stats.passes);
}

#[test]
fn effective_threads_is_capped_by_block_count() {
    let cfg = EpfConfig {
        threads: 8,
        ..Default::default()
    };
    assert_eq!(cfg.effective_threads(3), 3);
    assert_eq!(cfg.effective_threads(100), 8);
    // Degenerate block counts never yield zero workers.
    assert_eq!(cfg.effective_threads(0), 1);
}
