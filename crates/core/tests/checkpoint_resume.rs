//! Kill-and-resume identity for the EPF solver.
//!
//! A solve interrupted at *any* checkpointed pass boundary and resumed
//! from the serialized checkpoint must produce a final placement
//! bitwise-identical to the uninterrupted run: same holder lists, same
//! objective bits, same pass/step counters. Checkpoint cadence is
//! step-based (global passes), never wall-clock, which is what makes
//! this identity machine-independent.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use proptest::prelude::*;
use std::sync::OnceLock;
use vod_core::{
    solve_placement_checkpointed, solve_resumable, CheckpointSpec, EpfConfig, MipInstance,
    SolveError, SolverCheckpoint,
};
use vod_core::{DiskConfig, PlacementOutput};
use vod_model::Mbps;
use vod_net::topologies;
use vod_trace::{
    analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
};

const SEEDS: [u64; 2] = [11, 23];
const CKPT_EVERY: u64 = 3;

/// Small instance on one of two topologies (mesh vs line), per seed.
fn instance(topology: usize, seed: u64) -> MipInstance {
    let mut net = match topology {
        0 => topologies::mesh_backbone(6, 9, seed),
        _ => topologies::line(5),
    };
    net.set_uniform_capacity(Mbps::from_gbps(1.0));
    let catalog = synthesize_library(&LibraryConfig::default_for(50, 7, seed));
    let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(500.0, 7, seed));
    let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
    let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
    MipInstance::new(
        net,
        catalog,
        demand,
        &DiskConfig::UniformRatio { ratio: 2.0 },
        1.0,
        0.0,
        None,
    )
}

fn config(seed: u64) -> EpfConfig {
    EpfConfig {
        max_passes: 90,
        seed,
        ..Default::default()
    }
}

/// Uninterrupted baseline + every checkpoint it emitted, serialized —
/// the resume tests re-hydrate via `from_bytes` so the container round
/// trip is always on the path under test.
type Baseline = (MipInstance, PlacementOutput, Vec<Vec<u8>>);

fn baselines() -> &'static Vec<Baseline> {
    static CELL: OnceLock<Vec<Baseline>> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut out = Vec::new();
        for topology in 0..2 {
            for &seed in &SEEDS {
                let inst = instance(topology, seed);
                let cfg = config(seed);
                let mut snaps: Vec<Vec<u8>> = Vec::new();
                let mut sink = |ck: SolverCheckpoint| snaps.push(ck.to_bytes());
                let full = solve_placement_checkpointed(
                    &inst,
                    &cfg,
                    CheckpointSpec {
                        every: CKPT_EVERY,
                        sink: &mut sink,
                    },
                )
                .expect("baseline solve");
                assert!(
                    !snaps.is_empty(),
                    "baseline (topology {topology}, seed {seed}) emitted no checkpoints"
                );
                out.push((inst, full, snaps));
            }
        }
        out
    })
}

fn assert_identical(a: &PlacementOutput, b: &PlacementOutput) {
    assert_eq!(
        a.placement.holder_lists(),
        b.placement.holder_lists(),
        "holder lists diverged"
    );
    assert_eq!(
        a.fractional.objective.to_bits(),
        b.fractional.objective.to_bits()
    );
    assert_eq!(
        a.fractional.lower_bound.to_bits(),
        b.fractional.lower_bound.to_bits()
    );
    assert_eq!(
        a.fractional.max_violation.to_bits(),
        b.fractional.max_violation.to_bits()
    );
    assert_eq!(a.epf.passes, b.epf.passes, "pass counters diverged");
    assert_eq!(
        a.epf.block_steps, b.epf.block_steps,
        "step counters diverged"
    );
    assert_eq!(
        a.rounding.objective.to_bits(),
        b.rounding.objective.to_bits()
    );
}

/// Serialize → deserialize → continue equals the continuous run, at
/// 2 seeds × 2 topologies, resuming from a mid-run checkpoint.
#[test]
fn resume_from_mid_checkpoint_matches_continuous_run() {
    for (i, (inst, full, snaps)) in baselines().iter().enumerate() {
        let seed = SEEDS[i % 2];
        let ck = SolverCheckpoint::from_bytes(&snaps[snaps.len() / 2]).expect("decode checkpoint");
        let resumed = solve_resumable(inst, &config(seed), &ck, None).expect("resume solve");
        assert_identical(full, &resumed);
    }
}

/// A checkpoint from one (config, instance) pair must not resume a
/// different one: typed error, not a silently-wrong solve.
#[test]
fn mismatched_checkpoint_is_a_typed_error() {
    let (inst, _, snaps) = &baselines()[0];
    let ck = SolverCheckpoint::from_bytes(&snaps[0]).expect("decode checkpoint");
    let mut other = config(SEEDS[0]);
    other.seed ^= 0x5A5A;
    let err = solve_resumable(inst, &other, &ck, None).expect_err("must reject");
    assert!(
        matches!(err, SolveError::MismatchedCheckpoint { .. }),
        "{err}"
    );
}

/// Truncating a serialized checkpoint yields a typed snapshot error.
#[test]
fn truncated_checkpoint_is_a_typed_error() {
    let (_, _, snaps) = &baselines()[0];
    let bytes = &snaps[0];
    for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            SolverCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill at an arbitrary checkpointed step k, resume, and the final
    /// placement is bitwise-identical — for any k and any of the four
    /// (topology, seed) baselines.
    #[test]
    fn resume_at_any_checkpointed_step_is_identical(
        combo in 0usize..4,
        pick in 0usize..1usize << 16,
    ) {
        let (inst, full, snaps) = &baselines()[combo];
        let seed = SEEDS[combo % 2];
        let ck = SolverCheckpoint::from_bytes(&snaps[pick % snaps.len()]).unwrap();
        let resumed = solve_resumable(inst, &config(seed), &ck, None).unwrap();
        assert_identical(full, &resumed);
    }
}

/// `step_limit` is a deterministic budget: two identical runs stop at
/// the same pass with bit-identical results, and the pass counter never
/// exceeds the limit — unlike `wall_limit`, which is machine-local.
#[test]
fn step_limit_budget_is_deterministic() {
    let inst = instance(0, SEEDS[0]);
    let cfg = EpfConfig {
        step_limit: Some(17),
        ..config(SEEDS[0])
    };
    let a = vod_core::solve_placement(&inst, &cfg).expect("budgeted solve");
    let b = vod_core::solve_placement(&inst, &cfg).expect("budgeted solve");
    assert!(a.epf.passes <= 17, "step budget overrun: {}", a.epf.passes);
    assert_identical(&a, &b);
}

/// A resumed run keeps emitting checkpoints, and those continue the
/// global pass numbering of the interrupted run.
#[test]
fn resumed_runs_keep_checkpointing() {
    let (inst, _, snaps) = &baselines()[1];
    let ck = SolverCheckpoint::from_bytes(&snaps[0]).expect("decode checkpoint");
    let first_pass = ck.pass();
    let mut later: Vec<u64> = Vec::new();
    let mut sink = |c: SolverCheckpoint| later.push(c.pass());
    let spec = CheckpointSpec {
        every: CKPT_EVERY,
        sink: &mut sink,
    };
    solve_resumable(inst, &config(SEEDS[1]), &ck, Some(spec)).expect("resume solve");
    assert!(
        later.iter().all(|&p| p > first_pass),
        "resumed checkpoints must continue the pass numbering"
    );
}
