//! Solution representations: per-video block solutions (possibly
//! fractional) and the final integral [`Placement`].

use crate::block::UflSolution;
use crate::instance::{MipInstance, VideoBlock};
use vod_model::{Catalog, Gigabytes, VhoId, VideoId};

/// Threshold below which y/x components are pruned during convex
/// combination steps (keeps block solutions sparse across passes).
pub const PRUNE_TOL: f64 = 1e-7;

/// Tolerance for calling a value integral.
pub const INT_TOL: f64 = 1e-6;

/// One video's (possibly fractional) solution: its `y_i^m` values and,
/// for each block client (same order as `VideoBlock::clients`), the
/// serving distribution `x_{·j}^m`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSolution {
    /// Sparse `(i, y_i)` with `y_i > 0`, sorted by VHO.
    pub y: Vec<(VhoId, f64)>,
    /// Per client: sparse `(i, x_ij)` summing to 1, sorted by VHO.
    pub x: Vec<Vec<(VhoId, f64)>>,
}

impl BlockSolution {
    /// The all-at-one-facility solution used both as the initial point
    /// and as the shape of every UFL candidate.
    pub fn from_ufl(sol: &UflSolution) -> Self {
        let mut y: Vec<(VhoId, f64)> =
            // lint:allow(raw-index): UFL solutions index facilities densely
            sol.open.iter().map(|&i| (VhoId::from_index(i), 1.0)).collect();
        y.sort_by_key(|&(i, _)| i);
        let x = sol
            .assign
            .iter()
            // lint:allow(raw-index): UFL solutions index facilities densely
            .map(|&i| vec![(VhoId::from_index(i), 1.0)])
            .collect();
        Self { y, x }
    }

    /// `y` value at VHO `i` (0 when absent).
    pub fn y_at(&self, i: VhoId) -> f64 {
        self.y
            .binary_search_by_key(&i, |&(v, _)| v)
            .map(|k| self.y[k].1)
            .unwrap_or(0.0)
    }

    /// Whether all `y` are within `INT_TOL` of {0, 1}.
    pub fn is_integral(&self) -> bool {
        self.y
            .iter()
            .all(|&(_, v)| v <= INT_TOL || (v - 1.0).abs() <= INT_TOL)
    }

    /// VHOs with `y ≈ 1` (the stored copies once integral).
    pub fn stores(&self) -> Vec<VhoId> {
        self.y
            .iter()
            .filter(|&&(_, v)| v >= 0.5)
            .map(|&(i, _)| i)
            .collect()
    }

    /// Convex step `z ← (1−τ)·z + τ·ẑ` with pruning and exact
    /// renormalization of every client distribution. Block-feasibility
    /// (x ≤ y, Σx = 1) is preserved: both endpoints satisfy it and the
    /// prune/renormalize bumps `y` up to cover any renormalized `x`.
    pub fn step_toward(&mut self, hat: &BlockSolution, tau: f64) {
        debug_assert!((0.0..=1.0).contains(&tau));
        if tau == 0.0 {
            return;
        }
        self.y = merge_combine(&self.y, &hat.y, tau, PRUNE_TOL);
        debug_assert_eq!(self.x.len(), hat.x.len());
        for (cur, new) in self.x.iter_mut().zip(&hat.x) {
            let mut combined = merge_combine(cur, new, tau, PRUNE_TOL);
            let total: f64 = combined.iter().map(|&(_, v)| v).sum();
            debug_assert!(total > 0.5, "distribution lost its mass");
            for e in &mut combined {
                e.1 /= total;
            }
            *cur = combined;
        }
        // Re-cover: ensure y_i >= max_j x_ij after pruning noise.
        for dist in &self.x {
            for &(i, v) in dist {
                match self.y.binary_search_by_key(&i, |&(w, _)| w) {
                    Ok(k) => self.y[k].1 = self.y[k].1.max(v),
                    Err(k) => self.y.insert(k, (i, v)),
                }
            }
        }
    }
}

/// Sparse merge of `(1−τ)·a + τ·b`, dropping entries below `tol`.
fn merge_combine(a: &[(VhoId, f64)], b: &[(VhoId, f64)], tau: f64, tol: f64) -> Vec<(VhoId, f64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() || ib < b.len() {
        let (id, val) = match (a.get(ia), b.get(ib)) {
            (Some(&(va, xa)), Some(&(vb, xb))) if va == vb => {
                ia += 1;
                ib += 1;
                (va, (1.0 - tau) * xa + tau * xb)
            }
            (Some(&(va, xa)), Some(&(vb, _))) if va < vb => {
                ia += 1;
                (va, (1.0 - tau) * xa)
            }
            (Some(&(va, xa)), None) => {
                ia += 1;
                (va, (1.0 - tau) * xa)
            }
            (_, Some(&(vb, xb))) => {
                ib += 1;
                (vb, tau * xb)
            }
            (None, None) => unreachable!(), // lint:allow(no-panic-hot-path): loop condition keeps one side Some
        };
        if val > tol {
            out.push((id, val.min(1.0)));
        }
    }
    out
}

/// A complete fractional solution with solver-certified quality data.
#[derive(Debug, Clone)]
pub struct FractionalSolution {
    pub blocks: Vec<BlockSolution>,
    /// Objective value `cz` (original objective (2), plus the eq. (11)
    /// term when enabled).
    pub objective: f64,
    /// Max relative violation of disk/link constraints, `δ_c(z)`.
    pub max_violation: f64,
    /// Lagrangian lower bound on the LP optimum (0 in feasibility-only
    /// runs).
    pub lower_bound: f64,
}

/// The final placement: which VHOs store each video (`y`, integral) and
/// how each VHO's requests are split across the copies (`x`).
/// A fractional serving distribution over source VHOs.
pub type ServingDist = Vec<(VhoId, f64)>;

#[derive(Debug, Clone)]
pub struct Placement {
    n_vhos: usize,
    stores: Vec<Vec<VhoId>>,
    /// Per video: `(client j, serving distribution over servers)`,
    /// sorted by client, only for clients the solve knew about.
    routing: Vec<Vec<(VhoId, ServingDist)>>,
}

impl Placement {
    /// Assemble from integral block solutions.
    pub fn from_blocks(inst: &MipInstance, blocks: &[BlockSolution]) -> Self {
        assert_eq!(blocks.len(), inst.n_videos());
        let mut stores = Vec::with_capacity(blocks.len());
        let mut routing = Vec::with_capacity(blocks.len());
        for (b, data) in blocks.iter().zip(inst.blocks()) {
            let s = b.stores();
            assert!(!s.is_empty(), "video {} has no stored copy", data.video);
            let mut r: Vec<(VhoId, Vec<(VhoId, f64)>)> = data
                .clients
                .iter()
                .zip(&b.x)
                .map(|(c, dist)| (c.j, dist.clone()))
                .collect();
            r.sort_by_key(|&(j, _)| j);
            stores.push(s);
            routing.push(r);
        }
        Self {
            n_vhos: inst.n_vhos(),
            stores,
            routing,
        }
    }

    /// Build a placement directly from per-video holder lists (used by
    /// the baseline strategies: random single copy, top-K replication).
    pub fn from_stores(n_vhos: usize, stores: Vec<Vec<VhoId>>) -> Self {
        let routing = vec![Vec::new(); stores.len()];
        Self {
            n_vhos,
            stores,
            routing,
        }
    }

    #[inline]
    pub fn n_videos(&self) -> usize {
        self.stores.len()
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.n_vhos
    }

    /// The VHOs holding a copy of `m`, sorted.
    #[inline]
    pub fn stores(&self, m: VideoId) -> &[VhoId] {
        &self.stores[m.index()]
    }

    pub fn has_copy(&self, m: VideoId, i: VhoId) -> bool {
        self.stores[m.index()].binary_search(&i).is_ok()
    }

    /// Serving distribution for requests of `m` at `j`, if the solve
    /// produced one (demand clients only).
    pub fn serving_distribution(&self, m: VideoId, j: VhoId) -> Option<&[(VhoId, f64)]> {
        let r = &self.routing[m.index()];
        r.binary_search_by_key(&j, |&(c, _)| c)
            .ok()
            .map(|k| r[k].1.as_slice())
            .filter(|d| !d.is_empty())
    }

    /// Number of copies of each video, in the order of `ids` (e.g.
    /// demand rank order for Fig. 8).
    pub fn copy_counts(&self, ids: &[VideoId]) -> Vec<usize> {
        ids.iter().map(|&m| self.stores[m.index()].len()).collect()
    }

    /// Total copies across the system.
    pub fn total_copies(&self) -> usize {
        self.stores.iter().map(Vec::len).sum()
    }

    /// Disk used at each VHO by the pinned copies.
    pub fn disk_usage(&self, catalog: &Catalog) -> Vec<Gigabytes> {
        let mut use_gb = vec![Gigabytes::ZERO; self.n_vhos];
        for (mi, holders) in self.stores.iter().enumerate() {
            let s = catalog.video(VideoId::from_index(mi)).size();
            for &h in holders {
                use_gb[h.index()] += s;
            }
        }
        use_gb
    }

    /// Fig. 7: per-VHO disk split into (top-100, next 20 %, tail)
    /// popularity classes; `ranked` is the demand-ranked video list.
    pub fn disk_usage_by_popularity(
        &self,
        catalog: &Catalog,
        ranked: &[VideoId],
    ) -> Vec<[Gigabytes; 3]> {
        let mut class = vec![2u8; self.stores.len()];
        let top100 = 100.min(ranked.len());
        let next20 = (ranked.len() / 5 + top100).min(ranked.len());
        for (r, &m) in ranked.iter().enumerate() {
            class[m.index()] = if r < top100 {
                0
            } else if r < next20 {
                1
            } else {
                2
            };
        }
        let mut out = vec![[Gigabytes::ZERO; 3]; self.n_vhos];
        for (mi, holders) in self.stores.iter().enumerate() {
            let s = catalog.video(VideoId::from_index(mi)).size();
            for &h in holders {
                out[h.index()][class[mi] as usize] += s;
            }
        }
        out
    }

    /// Number of (video, VHO) copies present here but not in `prev` —
    /// the transfers a placement update must perform (Section VII-H).
    pub fn migration_copies_from(&self, prev: &Placement) -> usize {
        assert_eq!(self.n_videos(), prev.n_videos());
        self.stores
            .iter()
            .zip(&prev.stores)
            .map(|(now, before)| {
                now.iter()
                    .filter(|i| before.binary_search(i).is_err())
                    .count()
            })
            .sum()
    }

    /// Per-video holder lists (for feeding `PlacementCost::previous`).
    pub fn holder_lists(&self) -> Vec<Vec<VhoId>> {
        self.stores.clone()
    }

    /// The serving-distribution routing, per video (for persistence —
    /// see [`crate::checkpoint::placement_to_value`]).
    pub fn routing_lists(&self) -> &[Vec<(VhoId, ServingDist)>] {
        &self.routing
    }

    /// Rebuild a placement from persisted parts, validating every
    /// index against the declared shape so a corrupt snapshot cannot
    /// produce a placement that panics downstream.
    pub fn from_parts(
        n_vhos: usize,
        stores: Vec<Vec<VhoId>>,
        routing: Vec<Vec<(VhoId, ServingDist)>>,
    ) -> Result<Self, String> {
        if routing.len() != stores.len() {
            return Err(format!(
                "routing covers {} videos, stores cover {}",
                routing.len(),
                stores.len()
            ));
        }
        let in_range = |i: VhoId| i.index() < n_vhos;
        for (m, holders) in stores.iter().enumerate() {
            if holders.is_empty() {
                return Err(format!("video {m} has no stored copy"));
            }
            if !holders.windows(2).all(|w| w[0] < w[1]) || !holders.iter().all(|&i| in_range(i)) {
                return Err(format!("video {m}: holder list unsorted or out of range"));
            }
        }
        for (m, clients) in routing.iter().enumerate() {
            if !clients.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(format!("video {m}: routing clients unsorted"));
            }
            for (j, dist) in clients {
                if !in_range(*j) || !dist.iter().all(|&(i, x)| in_range(i) && x.is_finite()) {
                    return Err(format!("video {m}: routing entry out of range"));
                }
            }
        }
        Ok(Self {
            n_vhos,
            stores,
            routing,
        })
    }

    /// Objective (2) (+ the eq. (11) term if the instance has one) of
    /// this placement under `inst`'s demand, using the stored routing
    /// where available and nearest-copy service otherwise.
    pub fn objective_under(&self, inst: &MipInstance) -> f64 {
        let mut total = 0.0;
        for (data, (holders, routing)) in inst
            .blocks()
            .iter()
            .zip(self.stores.iter().zip(&self.routing))
        {
            if !data.facility_obj_cost.is_empty() {
                for &h in holders {
                    total += data.facility_obj_cost[h.index()];
                }
            }
            for c in &data.clients {
                let dist = routing
                    .binary_search_by_key(&c.j, |&(j, _)| j)
                    .ok()
                    .map(|k| routing[k].1.as_slice());
                match dist {
                    Some(d) if !d.is_empty() => {
                        for &(i, frac) in d {
                            total += c.demand_gb * inst.cost(i, c.j) * frac;
                        }
                    }
                    _ => {
                        // Nearest copy.
                        let best = holders
                            .iter()
                            .map(|&i| inst.cost(i, c.j))
                            .fold(f64::MAX, f64::min);
                        total += c.demand_gb * best;
                    }
                }
            }
        }
        total
    }
}

/// Helper: the initial solution's UFL shape for one block — store at
/// the client with the largest demand (or the cheapest facility when
/// the video has no demand yet), serve everyone from there.
pub fn initial_block(block: &VideoBlock, n_vhos: usize) -> BlockSolution {
    let home = block
        .clients
        .iter()
        .max_by(|a, b| a.demand_gb.total_cmp(&b.demand_gb).then(b.j.cmp(&a.j)))
        .map(|c| c.j)
        .unwrap_or_else(|| {
            if block.facility_obj_cost.is_empty() {
                // lint:allow(raw-index): degenerate block with no clients parks its copy at VHO 0
                VhoId::new(0)
            } else {
                let i = (0..n_vhos)
                    .min_by(|&a, &b| {
                        block.facility_obj_cost[a].total_cmp(&block.facility_obj_cost[b])
                    })
                    .unwrap_or(0);
                // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
                VhoId::from_index(i)
            }
        });
    BlockSolution {
        y: vec![(home, 1.0)],
        x: block.clients.iter().map(|_| vec![(home, 1.0)]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(y: &[(u16, f64)], x: Vec<Vec<(u16, f64)>>) -> BlockSolution {
        BlockSolution {
            y: y.iter().map(|&(i, v)| (VhoId::new(i), v)).collect(),
            x: x.into_iter()
                .map(|d| d.into_iter().map(|(i, v)| (VhoId::new(i), v)).collect())
                .collect(),
        }
    }

    #[test]
    fn integrality_detection() {
        assert!(bs(&[(0, 1.0), (3, 1.0)], vec![]).is_integral());
        assert!(bs(&[(0, 1.0 - 1e-9)], vec![]).is_integral());
        assert!(!bs(&[(0, 0.5)], vec![]).is_integral());
    }

    #[test]
    fn step_combines_and_normalizes() {
        let mut a = bs(&[(0, 1.0)], vec![vec![(0, 1.0)]]);
        let hat = bs(&[(1, 1.0)], vec![vec![(1, 1.0)]]);
        a.step_toward(&hat, 0.25);
        assert_eq!(a.y.len(), 2);
        assert!((a.y_at(VhoId::new(0)) - 0.75).abs() < 1e-12);
        assert!((a.y_at(VhoId::new(1)) - 0.25).abs() < 1e-12);
        let total: f64 = a.x[0].iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // x <= y maintained.
        for dist in &a.x {
            for &(i, v) in dist {
                assert!(v <= a.y_at(i) + 1e-12);
            }
        }
    }

    #[test]
    fn step_prunes_tiny_mass() {
        let mut a = bs(&[(0, 1.0)], vec![vec![(0, 1.0)]]);
        let hat = bs(&[(1, 1.0)], vec![vec![(1, 1.0)]]);
        // Take nearly-full steps repeatedly; VHO 0's share should
        // eventually be pruned.
        for _ in 0..20 {
            a.step_toward(&hat, 0.9);
        }
        assert_eq!(a.y.len(), 1);
        assert_eq!(a.y[0].0, VhoId::new(1));
        assert!((a.x[0][0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_step_replaces() {
        let mut a = bs(&[(0, 0.4), (2, 0.6)], vec![vec![(0, 0.4), (2, 0.6)]]);
        let hat = bs(&[(1, 1.0)], vec![vec![(1, 1.0)]]);
        a.step_toward(&hat, 1.0);
        assert_eq!(a.stores(), vec![VhoId::new(1)]);
        assert!(a.is_integral());
    }

    #[test]
    fn from_ufl_shape() {
        let u = UflSolution {
            open: vec![2, 0],
            assign: vec![0, 2],
        };
        let b = BlockSolution::from_ufl(&u);
        assert_eq!(b.y, vec![(VhoId::new(0), 1.0), (VhoId::new(2), 1.0)]);
        assert_eq!(b.x[0], vec![(VhoId::new(0), 1.0)]);
        assert_eq!(b.x[1], vec![(VhoId::new(2), 1.0)]);
    }

    #[test]
    fn placement_basics() {
        let p = Placement::from_stores(
            3,
            vec![vec![VhoId::new(0), VhoId::new(2)], vec![VhoId::new(1)]],
        );
        assert_eq!(p.n_videos(), 2);
        assert!(p.has_copy(VideoId::new(0), VhoId::new(2)));
        assert!(!p.has_copy(VideoId::new(1), VhoId::new(2)));
        assert_eq!(p.total_copies(), 3);
        assert_eq!(
            p.copy_counts(&[VideoId::new(1), VideoId::new(0)]),
            vec![1, 2]
        );
        assert!(p
            .serving_distribution(VideoId::new(0), VhoId::new(1))
            .is_none());
    }

    #[test]
    fn migration_counts_new_copies_only() {
        let prev = Placement::from_stores(3, vec![vec![VhoId::new(0)], vec![VhoId::new(1)]]);
        let next = Placement::from_stores(
            3,
            vec![
                vec![VhoId::new(0), VhoId::new(1)], // one new copy
                vec![VhoId::new(2)],                // moved: one new copy
            ],
        );
        assert_eq!(next.migration_copies_from(&prev), 2);
        assert_eq!(prev.migration_copies_from(&prev), 0);
    }
}
