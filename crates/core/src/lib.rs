//! `vod-core` — the paper's primary contribution: optimal content
//! placement for a large-scale VoD system.
//!
//! Implements the mixed-integer-program formulation of Section V
//! (objective (2), constraints (3)–(8), optional update-cost objective
//! (11)) and the scalable solution pipeline:
//!
//! 1. **EPF decomposition** ([`epf`]) — the exponential potential
//!    function / Lagrangian relaxation method of the Appendix
//!    (Algorithm 1), decomposing the LP relaxation into one
//!    facility-location block per video ([`block`]), with shuffled
//!    passes, chunked parallel block optimization, exact line searches
//!    ([`potential`]), dual smoothing, and per-pass Lagrangian lower
//!    bounds,
//! 2. **rounding** ([`rounding`]) — the sequential integer
//!    facility-location re-solve of Section V-D, and
//! 3. **feasibility searches** ([`feasibility`]) — the binary-search
//!    wrappers behind the disk/bandwidth trade-off experiments.
//!
//! A *direct* (non-decomposed) formulation ([`direct`]) feeds the
//! generic simplex baseline of `vod-lp`, standing in for CPLEX in the
//! Table III comparison and for exact-optimum validation.

#![cfg_attr(feature = "simd", feature(portable_simd))]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod audit;
pub mod block;
pub mod checkpoint;
pub mod direct;
pub mod epf;
pub mod error;
pub mod feasibility;
pub mod instance;
pub mod kernel;
pub mod penalty;
pub mod pool;
pub mod potential;
pub mod remap;
pub mod repair;
pub mod rounding;
pub mod shard;
pub mod solution;
pub mod solver;

pub use audit::{AuditReport, Violation};
pub use checkpoint::{CheckpointError, SolverCheckpoint};
pub use epf::{solve_fractional, CheckpointSpec, EpfConfig, EpfStats};
pub use error::SolveError;
pub use feasibility::{CapacityOverrides, Scenario};
pub use instance::{DiskConfig, MipInstance, PlacementCost};
pub use kernel::Kernel;
pub use penalty::{PenaltyArena, PenaltyUpdate};
pub use pool::map_ordered;
pub use remap::{remap_checkpoint, remap_fractional, RemapError};
pub use repair::{repair_placement, RepairMove, RepairPlan};
pub use rounding::RoundingStats;
pub use solution::{BlockSolution, FractionalSolution, Placement};
pub use solver::{
    resolve_from, solve_cycle_fractional, solve_fractional_checkpointed,
    solve_fractional_resumable, solve_placement, solve_placement_checkpointed, solve_resumable,
    PlacementOutput, ResumeKind,
};
