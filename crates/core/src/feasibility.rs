//! Feasibility-region searches (Fig. 11, Fig. 13, Tables IV and V).
//!
//! A (disk, link-capacity) operating point is *feasible* when the EPF
//! solver, run in pure feasibility mode, reaches `δ_c(z) ≤ ε` within
//! its pass budget. Binary searches over the disk multiplier or the
//! uniform link capacity trace out the paper's trade-off curves.

use crate::epf::{solve_fractional, EpfConfig};
use crate::instance::{DiskConfig, MipInstance};
use vod_model::Mbps;
use vod_net::Network;
use vod_trace::DemandInput;

/// Whether the given instance admits an ε-feasible fractional solution
/// within the solver's pass budget.
pub fn is_feasible(inst: &MipInstance, cfg: &EpfConfig) -> bool {
    if inst.quick_feasibility_check().is_err() {
        return false;
    }
    let (_, stats) = solve_fractional(inst, &cfg.feasibility());
    stats.converged
}

/// Everything needed to rebuild instances while sweeping one knob.
#[derive(Debug)]
pub struct Scenario<'a> {
    pub network: &'a Network,
    pub catalog: &'a vod_model::Catalog,
    pub demand: &'a DemandInput,
    pub alpha: f64,
    pub beta: f64,
}

impl Scenario<'_> {
    fn instance(&self, disk: &DiskConfig, capacity: Mbps) -> MipInstance {
        let mut net = self.network.clone();
        net.set_uniform_capacity(capacity);
        MipInstance::new(
            net,
            self.catalog.clone(),
            self.demand.clone(),
            disk,
            self.alpha,
            self.beta,
            None,
        )
    }
}

/// Fig. 11: the minimum aggregate-disk multiplier (relative to the
/// library size) at which all requests can be served under the given
/// uniform link capacity. Binary search to `tol` between `lo` and
/// `hi` multipliers; `None` if even `hi` is infeasible.
///
/// `shape` builds a [`DiskConfig`] from a multiplier (uniform or
/// tiered).
pub fn min_disk_ratio(
    scenario: &Scenario<'_>,
    capacity: Mbps,
    shape: impl Fn(f64) -> DiskConfig,
    lo: f64,
    hi: f64,
    tol: f64,
    cfg: &EpfConfig,
) -> Option<f64> {
    assert!(lo > 0.0 && hi > lo && tol > 0.0);
    if !is_feasible(&scenario.instance(&shape(hi), capacity), cfg) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    if is_feasible(&scenario.instance(&shape(lo), capacity), cfg) {
        return Some(lo);
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if is_feasible(&scenario.instance(&shape(mid), capacity), cfg) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Tables IV/V, Fig. 13: the minimum uniform link capacity at which the
/// instance is feasible with the given disk configuration. Binary
/// search between `lo` and `hi` (Mb/s) to relative tolerance `rel_tol`;
/// `None` if even `hi` is infeasible.
pub fn min_link_capacity(
    scenario: &Scenario<'_>,
    disk: &DiskConfig,
    lo: Mbps,
    hi: Mbps,
    rel_tol: f64,
    cfg: &EpfConfig,
) -> Option<Mbps> {
    assert!(lo.value() > 0.0 && hi.value() > lo.value() && rel_tol > 0.0);
    if !is_feasible(&scenario.instance(disk, hi), cfg) {
        return None;
    }
    if is_feasible(&scenario.instance(disk, lo), cfg) {
        return Some(lo);
    }
    let (mut lo, mut hi) = (lo.value(), hi.value());
    while (hi - lo) / hi > rel_tol {
        let mid = 0.5 * (lo + hi);
        if is_feasible(&scenario.instance(disk, Mbps::new(mid)), cfg) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Mbps::new(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_net::topologies;
    use vod_trace::{analysis, generate_trace, synthesize_library, LibraryConfig, TraceConfig};

    struct World {
        net: Network,
        catalog: vod_model::Catalog,
        demand: DemandInput,
    }

    fn world(seed: u64) -> World {
        let net = topologies::mesh_backbone(6, 9, seed);
        let catalog = synthesize_library(&LibraryConfig::default_for(60, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 7, seed));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        World {
            net,
            catalog,
            demand,
        }
    }

    fn cfg(seed: u64) -> EpfConfig {
        EpfConfig {
            max_passes: 60,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn disk_ratio_monotone_in_capacity() {
        let w = world(31);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let shape = |r: f64| DiskConfig::UniformRatio { ratio: r };
        let tight = min_disk_ratio(
            &scenario,
            Mbps::from_gbps(0.05),
            shape,
            1.05,
            12.0,
            0.25,
            &cfg(31),
        );
        let loose = min_disk_ratio(
            &scenario,
            Mbps::from_gbps(2.0),
            shape,
            1.05,
            12.0,
            0.25,
            &cfg(31),
        );
        let loose = loose.expect("ample capacity must be feasible");
        if let Some(tight) = tight {
            assert!(
                tight >= loose - 0.25,
                "smaller links cannot need less disk: tight {tight} loose {loose}"
            );
        }
        // With generous links, close to one copy each suffices.
        assert!(loose < 4.0, "loose-capacity disk need too large: {loose}");
    }

    #[test]
    fn capacity_search_finds_threshold() {
        let w = world(32);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let disk = DiskConfig::UniformRatio { ratio: 2.0 };
        let cap = min_link_capacity(
            &scenario,
            &disk,
            Mbps::new(1.0),
            Mbps::from_gbps(5.0),
            0.2,
            &cfg(32),
        )
        .expect("5 Gb/s must be enough");
        assert!(cap.value() >= 1.0 && cap.value() <= 5000.0);
        // Verify the found point really is feasible.
        let mut net = w.net.clone();
        net.set_uniform_capacity(cap);
        let inst = MipInstance::new(
            net,
            w.catalog.clone(),
            w.demand.clone(),
            &disk,
            1.0,
            0.0,
            None,
        );
        assert!(is_feasible(&inst, &cfg(32)));
    }

    #[test]
    fn infeasible_when_hi_insufficient() {
        let w = world(33);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        // Disk below one library copy can never work.
        assert_eq!(
            min_link_capacity(
                &scenario,
                &DiskConfig::UniformRatio { ratio: 0.5 },
                Mbps::new(1.0),
                Mbps::from_gbps(100.0),
                0.2,
                &cfg(33),
            ),
            None
        );
    }
}
