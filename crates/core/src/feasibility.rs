//! Feasibility-region searches (Fig. 11, Fig. 13, Tables IV and V).
//!
//! A (disk, link-capacity) operating point is *feasible* when the EPF
//! solver, run in pure feasibility mode, reaches `δ_c(z) ≤ ε` within
//! its pass budget. Binary searches over the disk multiplier or the
//! uniform link capacity trace out the paper's trade-off curves.

use crate::epf::{solve_fractional, EpfConfig};
use crate::error::SolveError;
use crate::instance::{DiskConfig, MipInstance};
use vod_model::{Gigabytes, LinkId, Mbps, VhoId};
use vod_net::Network;
use vod_trace::DemandInput;

/// Whether the given instance admits an ε-feasible fractional solution
/// within the solver's pass budget.
pub fn is_feasible(inst: &MipInstance, cfg: &EpfConfig) -> bool {
    if inst.quick_feasibility_check().is_err() {
        return false;
    }
    let (_, stats) = solve_fractional(inst, &cfg.feasibility());
    stats.converged
}

/// Everything needed to rebuild instances while sweeping one knob.
#[derive(Debug)]
pub struct Scenario<'a> {
    pub network: &'a Network,
    pub catalog: &'a vod_model::Catalog,
    pub demand: &'a DemandInput,
    pub alpha: f64,
    pub beta: f64,
}

/// Per-element capacity scales applied on top of a scenario's uniform
/// settings — the solver-side mirror of a fault schedule: a failed VHO
/// is `(vho, 0.0)` disk scale, a cut link `(link, 0.0)`, a brownout
/// `(link, 0.5)`. Scales must be finite and non-negative;
/// [`Scenario::instance_with`] rejects anything else with a typed
/// error instead of letting NaN capacities poison the potential.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacityOverrides {
    /// `(link, scale)`: the link's capacity is multiplied by `scale`.
    pub link_scale: Vec<(LinkId, f64)>,
    /// `(vho, scale)`: the VHO's disk is multiplied by `scale`.
    pub disk_scale: Vec<(VhoId, f64)>,
}

impl CapacityOverrides {
    pub fn is_empty(&self) -> bool {
        self.link_scale.is_empty() && self.disk_scale.is_empty()
    }
}

/// A zero scale must still leave the potential's relative-violation
/// ratios finite, so scaled capacities are floored here: anything
/// placed on a "removed" resource shows up as an astronomical (but
/// finite) violation the solver then steers away from.
const CAPACITY_FLOOR: f64 = 1e-6;

impl Scenario<'_> {
    fn instance(&self, disk: &DiskConfig, capacity: Mbps) -> MipInstance {
        let mut net = self.network.clone();
        net.set_uniform_capacity(capacity);
        MipInstance::new(
            net,
            self.catalog.clone(),
            self.demand.clone(),
            disk,
            self.alpha,
            self.beta,
            None,
        )
    }

    /// Build an instance with validated per-link / per-VHO capacity
    /// overrides applied on top of the uniform settings — the entry
    /// point for fault-repair re-solves (`solver::resolve_from` after
    /// a VHO outage or link cut).
    pub fn instance_with(
        &self,
        disk: &DiskConfig,
        capacity: Mbps,
        overrides: &CapacityOverrides,
    ) -> Result<MipInstance, SolveError> {
        let bad = |what: String| Err(SolveError::InvalidOverride { what });
        if !capacity.value().is_finite() || capacity.value() <= 0.0 {
            return bad(format!(
                "uniform link capacity must be finite and > 0 (got {})",
                capacity.value()
            ));
        }
        let n_links = self.network.num_links();
        let n_vhos = self.network.num_nodes();
        for &(l, s) in &overrides.link_scale {
            if l.index() >= n_links {
                return bad(format!("link {l} out of range (n_links = {n_links})"));
            }
            if !s.is_finite() || s < 0.0 {
                return bad(format!("link {l} scale {s} must be finite and >= 0"));
            }
        }
        for &(v, s) in &overrides.disk_scale {
            if v.index() >= n_vhos {
                return bad(format!("VHO {v} out of range (n_vhos = {n_vhos})"));
            }
            if !s.is_finite() || s < 0.0 {
                return bad(format!("VHO {v} disk scale {s} must be finite and >= 0"));
            }
        }

        let mut net = self.network.clone();
        net.set_uniform_capacity(capacity);
        for &(l, s) in &overrides.link_scale {
            net.set_link_capacity(l, Mbps::new((capacity.value() * s).max(CAPACITY_FLOOR)));
        }
        let mut inst = MipInstance::new(
            net,
            self.catalog.clone(),
            self.demand.clone(),
            disk,
            self.alpha,
            self.beta,
            None,
        );
        for &(v, s) in &overrides.disk_scale {
            let scaled = (inst.disks[v.index()].value() * s).max(CAPACITY_FLOOR);
            inst.disks[v.index()] = Gigabytes::new(scaled);
        }
        Ok(inst)
    }
}

/// Fig. 11: the minimum aggregate-disk multiplier (relative to the
/// library size) at which all requests can be served under the given
/// uniform link capacity. Binary search to `tol` between `lo` and
/// `hi` multipliers; `None` if even `hi` is infeasible.
///
/// `shape` builds a [`DiskConfig`] from a multiplier (uniform or
/// tiered).
pub fn min_disk_ratio(
    scenario: &Scenario<'_>,
    capacity: Mbps,
    shape: impl Fn(f64) -> DiskConfig,
    lo: f64,
    hi: f64,
    tol: f64,
    cfg: &EpfConfig,
) -> Option<f64> {
    assert!(lo > 0.0 && hi > lo && tol > 0.0);
    if !is_feasible(&scenario.instance(&shape(hi), capacity), cfg) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    if is_feasible(&scenario.instance(&shape(lo), capacity), cfg) {
        return Some(lo);
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if is_feasible(&scenario.instance(&shape(mid), capacity), cfg) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Tables IV/V, Fig. 13: the minimum uniform link capacity at which the
/// instance is feasible with the given disk configuration. Binary
/// search between `lo` and `hi` (Mb/s) to relative tolerance `rel_tol`;
/// `None` if even `hi` is infeasible.
pub fn min_link_capacity(
    scenario: &Scenario<'_>,
    disk: &DiskConfig,
    lo: Mbps,
    hi: Mbps,
    rel_tol: f64,
    cfg: &EpfConfig,
) -> Option<Mbps> {
    assert!(lo.value() > 0.0 && hi.value() > lo.value() && rel_tol > 0.0);
    if !is_feasible(&scenario.instance(disk, hi), cfg) {
        return None;
    }
    if is_feasible(&scenario.instance(disk, lo), cfg) {
        return Some(lo);
    }
    let (mut lo, mut hi) = (lo.value(), hi.value());
    while (hi - lo) / hi > rel_tol {
        let mid = 0.5 * (lo + hi);
        if is_feasible(&scenario.instance(disk, Mbps::new(mid)), cfg) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Mbps::new(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_net::topologies;
    use vod_trace::{analysis, generate_trace, synthesize_library, LibraryConfig, TraceConfig};

    struct World {
        net: Network,
        catalog: vod_model::Catalog,
        demand: DemandInput,
    }

    fn world(seed: u64) -> World {
        let net = topologies::mesh_backbone(6, 9, seed);
        let catalog = synthesize_library(&LibraryConfig::default_for(60, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(600.0, 7, seed));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        World {
            net,
            catalog,
            demand,
        }
    }

    fn cfg(seed: u64) -> EpfConfig {
        EpfConfig {
            max_passes: 60,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn disk_ratio_monotone_in_capacity() {
        let w = world(31);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let shape = |r: f64| DiskConfig::UniformRatio { ratio: r };
        let tight = min_disk_ratio(
            &scenario,
            Mbps::from_gbps(0.05),
            shape,
            1.05,
            12.0,
            0.25,
            &cfg(31),
        );
        let loose = min_disk_ratio(
            &scenario,
            Mbps::from_gbps(2.0),
            shape,
            1.05,
            12.0,
            0.25,
            &cfg(31),
        );
        let loose = loose.expect("ample capacity must be feasible");
        if let Some(tight) = tight {
            assert!(
                tight >= loose - 0.25,
                "smaller links cannot need less disk: tight {tight} loose {loose}"
            );
        }
        // With generous links, close to one copy each suffices.
        assert!(loose < 4.0, "loose-capacity disk need too large: {loose}");
    }

    #[test]
    fn capacity_search_finds_threshold() {
        let w = world(32);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let disk = DiskConfig::UniformRatio { ratio: 2.0 };
        let cap = min_link_capacity(
            &scenario,
            &disk,
            Mbps::new(1.0),
            Mbps::from_gbps(5.0),
            0.2,
            &cfg(32),
        )
        .expect("5 Gb/s must be enough");
        assert!(cap.value() >= 1.0 && cap.value() <= 5000.0);
        // Verify the found point really is feasible.
        let mut net = w.net.clone();
        net.set_uniform_capacity(cap);
        let inst = MipInstance::new(
            net,
            w.catalog.clone(),
            w.demand.clone(),
            &disk,
            1.0,
            0.0,
            None,
        );
        assert!(is_feasible(&inst, &cfg(32)));
    }

    #[test]
    fn overrides_validate_and_apply() {
        let w = world(34);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let disk = DiskConfig::UniformRatio { ratio: 2.0 };
        let cap = Mbps::from_gbps(1.0);

        // Empty overrides reproduce the plain instance exactly.
        let plain = scenario.instance(&disk, cap);
        let same = scenario
            .instance_with(&disk, cap, &CapacityOverrides::default())
            .expect("empty overrides are valid");
        assert_eq!(plain.disks, same.disks);
        assert_eq!(plain.network.links(), same.network.links());

        // A degraded link and a halved disk show up scaled.
        let ov = CapacityOverrides {
            link_scale: vec![(LinkId::new(0), 0.25)],
            disk_scale: vec![(VhoId::new(1), 0.5)],
        };
        let inst = scenario.instance_with(&disk, cap, &ov).expect("valid");
        assert!((inst.network.link(LinkId::new(0)).capacity.value() - 250.0).abs() < 1e-9);
        assert!((inst.disks[1].value() - 0.5 * plain.disks[1].value()).abs() < 1e-9);

        // A zero scale is floored, never zero (the potential divides
        // by capacities).
        let cut = CapacityOverrides {
            link_scale: vec![(LinkId::new(2), 0.0)],
            disk_scale: vec![(VhoId::new(0), 0.0)],
        };
        let inst = scenario.instance_with(&disk, cap, &cut).expect("valid");
        assert!(inst.network.link(LinkId::new(2)).capacity.value() > 0.0);
        assert!(inst.disks[0].value() > 0.0);
    }

    #[test]
    fn overrides_reject_bad_inputs() {
        let w = world(35);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        let disk = DiskConfig::UniformRatio { ratio: 2.0 };
        let cap = Mbps::from_gbps(1.0);
        let is_invalid = |r: Result<MipInstance, SolveError>| {
            matches!(r, Err(SolveError::InvalidOverride { .. }))
        };
        let link = |l: usize, s: f64| CapacityOverrides {
            link_scale: vec![(LinkId::from_index(l), s)],
            disk_scale: vec![],
        };
        let vho = |v: usize, s: f64| CapacityOverrides {
            link_scale: vec![],
            disk_scale: vec![(VhoId::from_index(v), s)],
        };
        assert!(is_invalid(scenario.instance_with(
            &disk,
            cap,
            &link(0, -0.5)
        )));
        assert!(is_invalid(scenario.instance_with(
            &disk,
            cap,
            &link(0, f64::NAN)
        )));
        assert!(is_invalid(scenario.instance_with(
            &disk,
            cap,
            &link(w.net.num_links(), 1.0)
        )));
        assert!(is_invalid(scenario.instance_with(
            &disk,
            cap,
            &vho(0, -1.0)
        )));
        assert!(is_invalid(scenario.instance_with(
            &disk,
            cap,
            &vho(0, f64::INFINITY)
        )));
        assert!(is_invalid(scenario.instance_with(
            &disk,
            cap,
            &vho(w.net.num_nodes(), 1.0)
        )));
        assert!(is_invalid(scenario.instance_with(
            &disk,
            Mbps::new(0.0),
            &CapacityOverrides::default()
        )));
    }

    #[test]
    fn infeasible_when_hi_insufficient() {
        let w = world(33);
        let scenario = Scenario {
            network: &w.net,
            catalog: &w.catalog,
            demand: &w.demand,
            alpha: 1.0,
            beta: 0.0,
        };
        // Disk below one library copy can never work.
        assert_eq!(
            min_link_capacity(
                &scenario,
                &DiskConfig::UniformRatio { ratio: 0.5 },
                Mbps::new(1.0),
                Mbps::from_gbps(100.0),
                0.2,
                &cfg(33),
            ),
            None
        );
    }
}
