//! Typed failure modes of the placement pipeline.
//!
//! The solver entry points ([`crate::solver::solve_placement`],
//! [`crate::solver::resolve_from`], the [`crate::feasibility`]
//! scenario builders) return these instead of panicking: an
//! operational system re-solving placements after a fault cannot
//! afford an abort, and a typed error distinguishes "your inputs are
//! wrong" from "the instance genuinely has no feasible placement".
//! A solve that runs out of budget is *not* an error — it returns the
//! best incumbent with `converged = false` and its feasibility/
//! optimality gaps reported in the stats.

use std::fmt;

/// Why a placement solve could not even start (or provably cannot
/// succeed). Degraded-but-usable outcomes are reported through
/// `EpfStats`/`RoundingStats`, never through this enum.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The instance has no videos — nothing to place.
    EmptyInstance,
    /// A solver parameter is out of its documented domain.
    InvalidConfig { what: String },
    /// The instance fails a necessary feasibility condition (e.g.
    /// aggregate disk below library size): no placement can exist.
    Infeasible { reason: String },
    /// A scenario capacity override is malformed (NaN/negative scale,
    /// unknown link or VHO).
    InvalidOverride { what: String },
    /// A warm-start placement does not match the instance shape.
    MismatchedWarmStart {
        prev_videos: usize,
        instance_videos: usize,
    },
    /// A solver checkpoint cannot resume this (instance, config) pair:
    /// fingerprint mismatch, wrong shapes, or internally inconsistent
    /// state (see [`crate::checkpoint::SolverCheckpoint::validate_for`]).
    MismatchedCheckpoint { what: String },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyInstance => write!(f, "instance has no videos"),
            Self::InvalidConfig { what } => write!(f, "invalid solver config: {what}"),
            Self::Infeasible { reason } => write!(f, "instance is infeasible: {reason}"),
            Self::InvalidOverride { what } => write!(f, "invalid capacity override: {what}"),
            Self::MismatchedWarmStart {
                prev_videos,
                instance_videos,
            } => write!(
                f,
                "warm-start placement covers {prev_videos} videos but the instance has {instance_videos}"
            ),
            Self::MismatchedCheckpoint { what } => {
                write!(f, "checkpoint does not match this solve: {what}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let cases: Vec<(SolveError, &str)> = vec![
            (SolveError::EmptyInstance, "no videos"),
            (
                SolveError::InvalidConfig {
                    what: "epsilon must be > 0 (got -1)".into(),
                },
                "epsilon",
            ),
            (
                SolveError::Infeasible {
                    reason: "aggregate disk below library size".into(),
                },
                "infeasible",
            ),
            (
                SolveError::InvalidOverride {
                    what: "link 3 scale is NaN".into(),
                },
                "override",
            ),
            (
                SolveError::MismatchedWarmStart {
                    prev_videos: 10,
                    instance_videos: 20,
                },
                "10",
            ),
            (
                SolveError::MismatchedCheckpoint {
                    what: "config fingerprint mismatch".into(),
                },
                "fingerprint",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
