//! The end-to-end placement pipeline: EPF fractional solve + rounding.

use crate::epf::{solve_fractional, EpfConfig, EpfStats};
use crate::instance::MipInstance;
use crate::rounding::{round_solution, RoundingStats};
use crate::solution::{FractionalSolution, Placement};

/// Result of a complete placement computation.
#[derive(Debug, Clone)]
pub struct PlacementOutput {
    pub placement: Placement,
    pub fractional: FractionalSolution,
    pub epf: EpfStats,
    pub rounding: RoundingStats,
}

/// Solve the placement MIP end-to-end: LP relaxation via the EPF
/// decomposition (Section V-C), then the sequential integer rounding
/// pass (Section V-D).
pub fn solve_placement(inst: &MipInstance, cfg: &EpfConfig) -> PlacementOutput {
    let (fractional, epf) = solve_fractional(inst, cfg);
    let (placement, rounding) = round_solution(inst, &fractional, cfg.gamma);
    PlacementOutput {
        placement,
        fractional,
        epf,
        rounding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{DiskConfig, PlacementCost};
    use vod_model::{Mbps, VhoId};
    use vod_net::topologies;
    use vod_trace::{
        analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
    };

    fn pipeline(seed: u64, pc: Option<&PlacementCost>) -> (MipInstance, PlacementOutput) {
        let mut net = topologies::mesh_backbone(6, 9, seed);
        net.set_uniform_capacity(Mbps::from_gbps(1.0));
        let catalog = synthesize_library(&LibraryConfig::default_for(70, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(700.0, 7, seed));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        let inst = MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            pc,
        );
        let out = solve_placement(
            &inst,
            &EpfConfig {
                max_passes: 100,
                seed,
                ..Default::default()
            },
        );
        (inst, out)
    }

    #[test]
    fn end_to_end_pipeline() {
        let (inst, out) = pipeline(41, None);
        assert_eq!(out.placement.n_videos(), inst.n_videos());
        // Disk usage respects capacities up to the reported violation.
        let usage = out.placement.disk_usage(&inst.catalog);
        for (u, d) in usage.iter().zip(&inst.disks) {
            assert!(
                u.value() <= d.value() * (1.0 + out.rounding.max_violation + 1e-6),
                "disk blown: {u} vs {d}"
            );
        }
        // The reported objective matches an independent recomputation.
        let recomputed = out.placement.objective_under(&inst);
        assert!(
            (recomputed - out.rounding.objective).abs() / recomputed.max(1.0) < 1e-6,
            "objective mismatch: {recomputed} vs {}",
            out.rounding.objective
        );
    }

    #[test]
    fn update_cost_term_discourages_migration() {
        // First solve without history.
        let (inst, base) = pipeline(42, None);
        let prev = base.placement.holder_lists();
        // Re-solve with a strong stay-where-you-are incentive.
        let pc = PlacementCost {
            weight: 50.0,
            previous: Some(prev.clone()),
            origin: VhoId::new(0),
        };
        let demand = inst.demand.clone();
        let inst2 = MipInstance::new(
            inst.network.clone(),
            inst.catalog.clone(),
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            Some(&pc),
        );
        let out2 = solve_placement(
            &inst2,
            &EpfConfig {
                max_passes: 100,
                seed: 42,
                ..Default::default()
            },
        );
        // And with no incentive (weight 0 ≡ None) — same seed.
        let out_free = solve_placement(
            &inst2_without_cost(&inst),
            &EpfConfig {
                max_passes: 100,
                seed: 43,
                ..Default::default()
            },
        );
        let prev_p = crate::solution::Placement::from_stores(inst.n_vhos(), prev);
        let moved_with = out2.placement.migration_copies_from(&prev_p);
        let moved_free = out_free.placement.migration_copies_from(&prev_p);
        assert!(
            moved_with <= moved_free,
            "update-cost term should reduce migration: {moved_with} vs {moved_free}"
        );
    }

    fn inst2_without_cost(inst: &MipInstance) -> MipInstance {
        MipInstance::new(
            inst.network.clone(),
            inst.catalog.clone(),
            inst.demand.clone(),
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        )
    }
}
