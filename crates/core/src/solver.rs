//! The end-to-end placement pipeline: EPF fractional solve + rounding.
//!
//! Both entry points return `Result` with a typed [`SolveError`]:
//! malformed configs and provably-infeasible instances are rejected up
//! front, while budget-limited solves come back `Ok` with
//! `epf.converged == false` and honest gap statistics — an operational
//! re-solve loop must never abort. [`resolve_from`] warm-starts from a
//! previous placement, modeling the paper's incremental placement
//! updates (Section VII-H / eq. (11)) after a fault or demand shift.

use crate::checkpoint::SolverCheckpoint;
use crate::epf::{
    solve_fractional_driven, solve_fractional_seeded, CheckpointSpec, EpfConfig, EpfStats,
};
use crate::error::SolveError;
use crate::instance::MipInstance;
use crate::rounding::{round_solution, RoundingStats};
use crate::solution::{FractionalSolution, Placement};

/// Result of a complete placement computation.
#[derive(Debug, Clone)]
pub struct PlacementOutput {
    pub placement: Placement,
    pub fractional: FractionalSolution,
    pub epf: EpfStats,
    pub rounding: RoundingStats,
}

impl PlacementOutput {
    /// Whether the ε-criteria were met within the budgets. A `false`
    /// here is a *degraded incumbent*, not a failure: the placement is
    /// usable and its gaps are reported.
    pub fn converged(&self) -> bool {
        self.epf.converged
    }

    /// Worst relative coupling-constraint violation of the integer
    /// placement (0 = fully feasible).
    pub fn feasibility_gap(&self) -> f64 {
        self.rounding.max_violation
    }

    /// Relative gap between the integer objective and the certified
    /// Lagrangian lower bound (`None` when the run produced no bound,
    /// e.g. a budget-truncated solve that never priced one).
    pub fn optimality_gap(&self) -> Option<f64> {
        self.rounding.optimality_gap
    }
}

/// Reject out-of-domain solver parameters before any work happens.
fn validate(inst: &MipInstance, cfg: &EpfConfig) -> Result<(), SolveError> {
    if inst.n_videos() == 0 {
        return Err(SolveError::EmptyInstance);
    }
    let bad = |what: String| Err(SolveError::InvalidConfig { what });
    if !cfg.epsilon.is_finite() || cfg.epsilon <= 0.0 {
        return bad(format!(
            "epsilon must be finite and > 0 (got {})",
            cfg.epsilon
        ));
    }
    if !cfg.gamma.is_finite() || cfg.gamma <= 0.0 {
        return bad(format!("gamma must be finite and > 0 (got {})", cfg.gamma));
    }
    if !cfg.rho.is_finite() || !(0.0..1.0).contains(&cfg.rho) {
        return bad(format!("rho must be in [0, 1) (got {})", cfg.rho));
    }
    if cfg.lb_every == 0 {
        return bad("lb_every must be >= 1".to_string());
    }
    if cfg.max_passes == 0 {
        return bad("max_passes must be >= 1".to_string());
    }
    inst.quick_feasibility_check()
        .map_err(|reason| SolveError::Infeasible { reason })
}

/// Solve the placement MIP end-to-end: LP relaxation via the EPF
/// decomposition (Section V-C), then the sequential integer rounding
/// pass (Section V-D).
pub fn solve_placement(inst: &MipInstance, cfg: &EpfConfig) -> Result<PlacementOutput, SolveError> {
    validate(inst, cfg)?;
    let (fractional, epf) = solve_fractional_seeded(inst, cfg, None);
    let (placement, rounding) = round_solution(inst, &fractional, cfg.gamma, cfg.kernel);
    Ok(PlacementOutput {
        placement,
        fractional,
        epf,
        rounding,
    })
}

/// Re-solve after the world changed (a fault, a demand shift, a new
/// library week), warm-starting from `prev`: every video's block opens
/// at its previous holders and the EPF passes repair from there, so
/// mild perturbations converge in far fewer passes than a cold solve.
/// Pair with a [`crate::instance::PlacementCost`]-carrying instance to
/// also *charge* for migrations (eq. (11)).
pub fn resolve_from(
    inst: &MipInstance,
    prev: &Placement,
    cfg: &EpfConfig,
) -> Result<PlacementOutput, SolveError> {
    validate(inst, cfg)?;
    if prev.n_videos() != inst.n_videos() {
        return Err(SolveError::MismatchedWarmStart {
            prev_videos: prev.n_videos(),
            instance_videos: inst.n_videos(),
        });
    }
    let (fractional, epf) = solve_fractional_seeded(inst, cfg, Some(prev));
    let (placement, rounding) = round_solution(inst, &fractional, cfg.gamma, cfg.kernel);
    Ok(PlacementOutput {
        placement,
        fractional,
        epf,
        rounding,
    })
}

/// [`solve_placement`] with periodic [`SolverCheckpoint`] emission:
/// every `spec.every` global passes that survive a pass boundary, the
/// complete resumable solver state is handed to `spec.sink`. Feed the
/// last such checkpoint to [`solve_resumable`] after a crash and the
/// final placement is bitwise-identical to the uninterrupted run.
pub fn solve_placement_checkpointed(
    inst: &MipInstance,
    cfg: &EpfConfig,
    spec: CheckpointSpec<'_>,
) -> Result<PlacementOutput, SolveError> {
    validate(inst, cfg)?;
    let (fractional, epf) = solve_fractional_driven(inst, cfg, None, None, Some(spec));
    let (placement, rounding) = round_solution(inst, &fractional, cfg.gamma, cfg.kernel);
    Ok(PlacementOutput {
        placement,
        fractional,
        epf,
        rounding,
    })
}

/// Continue an interrupted solve from a checkpoint. The checkpoint is
/// validated against this (instance, config) pair first — a stale or
/// mismatched one is a typed [`SolveError::MismatchedCheckpoint`],
/// never a corrupt resume. Optionally keeps emitting new checkpoints.
pub fn solve_resumable(
    inst: &MipInstance,
    cfg: &EpfConfig,
    ckpt: &SolverCheckpoint,
    spec: Option<CheckpointSpec<'_>>,
) -> Result<PlacementOutput, SolveError> {
    validate(inst, cfg)?;
    ckpt.validate_for(inst, cfg)
        .map_err(|what| SolveError::MismatchedCheckpoint { what })?;
    let (fractional, epf) = solve_fractional_driven(inst, cfg, None, Some(ckpt), spec);
    let (placement, rounding) = round_solution(inst, &fractional, cfg.gamma, cfg.kernel);
    Ok(PlacementOutput {
        placement,
        fractional,
        epf,
        rounding,
    })
}

/// Fractional-only variant of [`solve_placement_checkpointed`] for
/// pipelines that round in a separate (separately checkpointed) stage.
/// `warm` optionally seeds the blocks from a previous placement, as in
/// [`resolve_from`].
pub fn solve_fractional_checkpointed(
    inst: &MipInstance,
    cfg: &EpfConfig,
    warm: Option<&Placement>,
    spec: CheckpointSpec<'_>,
) -> Result<(FractionalSolution, EpfStats), SolveError> {
    validate(inst, cfg)?;
    if let Some(prev) = warm {
        if prev.n_videos() != inst.n_videos() {
            return Err(SolveError::MismatchedWarmStart {
                prev_videos: prev.n_videos(),
                instance_videos: inst.n_videos(),
            });
        }
    }
    Ok(solve_fractional_driven(inst, cfg, warm, None, Some(spec)))
}

/// How a cycle's fractional solve actually started — reported by
/// [`solve_cycle_fractional`] so a supervising service loop can log
/// its recovery action instead of guessing from side effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeKind {
    /// A validated mid-solve checkpoint was resumed.
    Checkpoint,
    /// Cold trajectory seeded from a previous placement (warm start).
    WarmStart,
    /// Cold trajectory with no prior information.
    Cold,
    /// A prior checkpoint was presented but failed validation and was
    /// discarded; the solve fell through to the warm/cold trajectory.
    /// `reason` is the typed validation message, so callers can
    /// distinguish a *foreign* artifact (fingerprint mismatch) from a
    /// *remap-eligible* one (axes intact, capacities moved) instead of
    /// losing the evidence to a silent discard.
    Rejected { reason: String },
}

impl ResumeKind {
    pub fn name(&self) -> &'static str {
        match self {
            ResumeKind::Checkpoint => "checkpoint",
            ResumeKind::WarmStart => "warm-start",
            ResumeKind::Cold => "cold",
            ResumeKind::Rejected { .. } => "rejected",
        }
    }
}

/// One service-cycle fractional solve with the warm-resume ladder
/// folded in: a validated `prior` checkpoint resumes mid-solve; a
/// stale or mismatched one is *discarded* (the caller deletes the
/// durable file when the returned kind is not
/// [`ResumeKind::Checkpoint`]), the typed validation reason is
/// surfaced as [`ResumeKind::Rejected`], and the solve falls through
/// to a cold trajectory seeded from `warm` — never a hard error,
/// because the resume contract guarantees both legs land on the same
/// bits as the uninterrupted run.
///
/// A `warm` placement *shorter* than the instance's video axis is
/// accepted: the world's catalog is append-only, so the missing tail
/// videos simply open at their initial blocks (no history to carry).
/// A warm placement *longer* than the instance is a genuine shape
/// mismatch and is rejected.
pub fn solve_cycle_fractional(
    inst: &MipInstance,
    cfg: &EpfConfig,
    prior: Option<&SolverCheckpoint>,
    warm: Option<&Placement>,
    spec: Option<CheckpointSpec<'_>>,
) -> Result<(FractionalSolution, EpfStats, ResumeKind), SolveError> {
    validate(inst, cfg)?;
    let mut rejected: Option<String> = None;
    if let Some(ckpt) = prior {
        match ckpt.validate_for(inst, cfg) {
            Ok(()) => {
                let (frac, epf) = solve_fractional_driven(inst, cfg, None, Some(ckpt), spec);
                return Ok((frac, epf, ResumeKind::Checkpoint));
            }
            Err(reason) => rejected = Some(reason),
        }
    }
    if let Some(prev) = warm {
        if prev.n_videos() > inst.n_videos() {
            return Err(SolveError::MismatchedWarmStart {
                prev_videos: prev.n_videos(),
                instance_videos: inst.n_videos(),
            });
        }
        let (frac, epf) = solve_fractional_driven(inst, cfg, Some(prev), None, spec);
        let kind = match rejected {
            Some(reason) => ResumeKind::Rejected { reason },
            None => ResumeKind::WarmStart,
        };
        return Ok((frac, epf, kind));
    }
    let (frac, epf) = solve_fractional_driven(inst, cfg, None, None, spec);
    let kind = match rejected {
        Some(reason) => ResumeKind::Rejected { reason },
        None => ResumeKind::Cold,
    };
    Ok((frac, epf, kind))
}

/// Fractional-only variant of [`solve_resumable`]. The checkpoint
/// already carries the warm-started blocks, so no `warm` is taken.
pub fn solve_fractional_resumable(
    inst: &MipInstance,
    cfg: &EpfConfig,
    ckpt: &SolverCheckpoint,
    spec: Option<CheckpointSpec<'_>>,
) -> Result<(FractionalSolution, EpfStats), SolveError> {
    validate(inst, cfg)?;
    ckpt.validate_for(inst, cfg)
        .map_err(|what| SolveError::MismatchedCheckpoint { what })?;
    Ok(solve_fractional_driven(inst, cfg, None, Some(ckpt), spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{DiskConfig, PlacementCost};
    use vod_model::{Mbps, VhoId};
    use vod_net::topologies;
    use vod_trace::{
        analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
    };

    fn pipeline(seed: u64, pc: Option<&PlacementCost>) -> (MipInstance, PlacementOutput) {
        let mut net = topologies::mesh_backbone(6, 9, seed);
        net.set_uniform_capacity(Mbps::from_gbps(1.0));
        let catalog = synthesize_library(&LibraryConfig::default_for(70, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(700.0, 7, seed));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        let inst = MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            pc,
        );
        let out = solve_placement(
            &inst,
            &EpfConfig {
                max_passes: 100,
                seed,
                ..Default::default()
            },
        )
        .expect("pipeline instance is well-formed");
        (inst, out)
    }

    #[test]
    fn end_to_end_pipeline() {
        let (inst, out) = pipeline(41, None);
        assert_eq!(out.placement.n_videos(), inst.n_videos());
        // Disk usage respects capacities up to the reported violation.
        let usage = out.placement.disk_usage(&inst.catalog);
        for (u, d) in usage.iter().zip(&inst.disks) {
            assert!(
                u.value() <= d.value() * (1.0 + out.rounding.max_violation + 1e-6),
                "disk blown: {u} vs {d}"
            );
        }
        // The reported objective matches an independent recomputation.
        let recomputed = out.placement.objective_under(&inst);
        assert!(
            (recomputed - out.rounding.objective).abs() / recomputed.max(1.0) < 1e-6,
            "objective mismatch: {recomputed} vs {}",
            out.rounding.objective
        );
    }

    #[test]
    fn update_cost_term_discourages_migration() {
        // First solve without history.
        let (inst, base) = pipeline(42, None);
        let prev = base.placement.holder_lists();
        // Re-solve with a strong stay-where-you-are incentive.
        let pc = PlacementCost {
            weight: 50.0,
            previous: Some(prev.clone()),
            origin: VhoId::new(0),
        };
        let demand = inst.demand.clone();
        let inst2 = MipInstance::new(
            inst.network.clone(),
            inst.catalog.clone(),
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            Some(&pc),
        );
        let out2 = solve_placement(
            &inst2,
            &EpfConfig {
                max_passes: 100,
                seed: 42,
                ..Default::default()
            },
        )
        .expect("update-cost instance is well-formed");
        // And with no incentive (weight 0 ≡ None) — same seed.
        let out_free = solve_placement(
            &inst2_without_cost(&inst),
            &EpfConfig {
                max_passes: 100,
                seed: 43,
                ..Default::default()
            },
        )
        .expect("cost-free instance is well-formed");
        let prev_p = crate::solution::Placement::from_stores(inst.n_vhos(), prev);
        let moved_with = out2.placement.migration_copies_from(&prev_p);
        let moved_free = out_free.placement.migration_copies_from(&prev_p);
        assert!(
            moved_with <= moved_free,
            "update-cost term should reduce migration: {moved_with} vs {moved_free}"
        );
    }

    fn inst2_without_cost(inst: &MipInstance) -> MipInstance {
        MipInstance::new(
            inst.network.clone(),
            inst.catalog.clone(),
            inst.demand.clone(),
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        )
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let (inst, _) = pipeline(44, None);
        let cases = [
            EpfConfig {
                epsilon: 0.0,
                ..Default::default()
            },
            EpfConfig {
                epsilon: f64::NAN,
                ..Default::default()
            },
            EpfConfig {
                gamma: -1.0,
                ..Default::default()
            },
            EpfConfig {
                rho: 1.0,
                ..Default::default()
            },
            EpfConfig {
                lb_every: 0,
                ..Default::default()
            },
            EpfConfig {
                max_passes: 0,
                ..Default::default()
            },
        ];
        for cfg in cases {
            let err = solve_placement(&inst, &cfg).expect_err("must reject");
            assert!(
                matches!(err, crate::error::SolveError::InvalidConfig { .. }),
                "{err}"
            );
        }
    }

    #[test]
    fn infeasible_instance_is_a_typed_error() {
        let (inst, _) = pipeline(45, None);
        // Shrink disks below one library copy: provably no placement.
        let starved = MipInstance::new(
            inst.network.clone(),
            inst.catalog.clone(),
            inst.demand.clone(),
            &DiskConfig::UniformRatio { ratio: 0.5 },
            1.0,
            0.0,
            None,
        );
        let err = solve_placement(&starved, &EpfConfig::default()).expect_err("must reject");
        assert!(
            matches!(err, crate::error::SolveError::Infeasible { .. }),
            "{err}"
        );
    }

    #[test]
    fn resolve_from_repairs_a_previous_placement() {
        let (inst, base) = pipeline(46, None);
        let cfg = EpfConfig {
            max_passes: 100,
            seed: 46,
            ..Default::default()
        };
        // Warm re-solve of the *same* instance: must succeed and stay
        // close to the previous placement (the warm blocks start
        // there), with quality no worse than a fresh solve's tolerance.
        let out = resolve_from(&inst, &base.placement, &cfg).expect("warm re-solve");
        assert_eq!(out.placement.n_videos(), inst.n_videos());
        assert!(out.feasibility_gap() <= base.feasibility_gap() + 0.05);
        let moved = out.placement.migration_copies_from(&base.placement);
        let total: usize = (0..inst.n_videos())
            .map(|m| {
                out.placement
                    .stores(vod_model::VideoId::new(m as u32))
                    .len()
            })
            .sum();
        assert!(
            moved <= total,
            "warm start should not churn more copies than exist ({moved} vs {total})"
        );
    }

    #[test]
    fn resolve_from_rejects_mismatched_shapes() {
        let (inst, base) = pipeline(47, None);
        let tiny = Placement::from_stores(inst.n_vhos(), vec![vec![vod_model::VhoId::new(0)]; 3]);
        let err = resolve_from(&inst, &tiny, &EpfConfig::default()).expect_err("must reject");
        assert!(
            matches!(err, crate::error::SolveError::MismatchedWarmStart { .. }),
            "{err}"
        );
        let _ = base;
    }

    #[test]
    fn wall_budget_returns_degraded_incumbent() {
        let (inst, _) = pipeline(48, None);
        // A zero wall budget stops the solver at the first pass
        // boundary: the result must still be a complete, usable
        // placement with honest gap statistics — never an abort.
        let out = solve_placement(
            &inst,
            &EpfConfig {
                wall_limit: Some(std::time::Duration::ZERO),
                seed: 48,
                ..Default::default()
            },
        )
        .expect("budget exhaustion is not an error");
        assert!(!out.converged());
        assert_eq!(out.placement.n_videos(), inst.n_videos());
        assert!(out.feasibility_gap().is_finite());
        if let Some(gap) = out.optimality_gap() {
            assert!(gap.is_finite());
        }
    }
}
