//! Persistent worker pool for the EPF block solves.
//!
//! The solver used to spawn a fresh `std::thread::scope` (and fresh
//! per-block allocations) for every chunk — tens of thousands of times
//! per run. [`WorkerPool`] instead keeps `threads` long-lived workers
//! for the whole solve: jobs (index lists) go out over per-worker
//! channels, results come back over one shared channel, and every
//! worker owns a [`BlockScratch`] (a reusable [`UflProblem`] buffer
//! plus [`UflScratch`]) so the steady state allocates nothing.
//!
//! **Determinism contract.** Results are reassembled *in part order*
//! (part `k` = the `k`-th contiguous slice of the request), and the
//! per-part work — `exec_job` — is the exact code the inline
//! single-threaded path runs. Whichever worker finishes first, the
//! caller observes the same `Vec` of outputs in the same order, built
//! from the same [`PenaltyArena`] snapshot; `threads = 1` and
//! `threads = N` are therefore byte-identical by construction (pinned
//! by the `determinism` integration test).
//!
//! The penalty arena is shared through an `RwLock`: the main thread
//! write-locks between dispatches ([`WorkerPool::update_penalty`]),
//! workers read-lock for the duration of one job. The lock is never
//! contended in the write path because the pool's callers only update
//! duals while no jobs are in flight.

use crate::block::{UflProblem, UflScratch, UflSolution};
use crate::epf::{block_delta, build_ufl_into};
use crate::instance::MipInstance;
use crate::kernel::Kernel;
use crate::penalty::{PenaltyArena, PenaltyUpdate};
use crate::potential::{Duals, RowLayout};
use crate::solution::BlockSolution;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{RwLock, RwLockReadGuard};

/// Below this many items a dispatch runs inline on the calling thread:
/// channel round-trips cost more than tiny chunks save.
const PARALLEL_MIN: usize = 16;

/// Fan `f` over `items` on up to `threads` scoped workers and return
/// the results **in item order** — the pool's determinism contract
/// generalized to arbitrary independent jobs (used by `vod-sim`'s
/// batch runner). Each result lands at its item's index, so
/// `threads = 1` and `threads = N` produce the same `Vec` whatever the
/// completion order; with `threads <= 1` (or a single item) the
/// closure runs inline on the caller.
///
/// Work is pulled from a shared atomic counter rather than pre-chunked
/// so a slow item (a big scenario) does not leave workers idle.
pub fn map_ordered<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let n = items.len();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || tx.send((i, f(&items[i]))).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, r) = rx.recv().expect("map_ordered worker hung up"); // lint:allow(no-panic-hot-path): hangup implies a worker panic; re-raise it
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("map_ordered item missing")) // lint:allow(no-panic-hot-path): every index sent exactly once above
            .collect()
    })
}

/// What to do with each block index of a job.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobKind {
    /// Lagrangized UFL heuristic minimizer (the Frank-Wolfe direction).
    Solve,
    /// Per-block lower bound: dual ascent, or the exact block LP
    /// (`exact: true` — the polish's hybrid certification subset).
    DualBound { exact: bool },
    /// Polish sweep: valid bound + heuristic minimizer's resource usage.
    Polish { exact: bool },
}

struct Job {
    kind: JobKind,
    part: usize,
    items: Vec<usize>,
}

enum JobOutput {
    Solutions(Vec<UflSolution>),
    Bounds(Vec<f64>),
    Polish(Vec<(f64, Vec<(usize, f64)>)>),
}

/// Per-worker reusable state: one UFL build buffer + solver scratch.
#[derive(Default)]
struct BlockScratch {
    ufl: UflProblem,
    search: UflScratch,
}

/// A pool of long-lived block-solver workers tied to one solve.
pub(crate) struct WorkerPool<'env> {
    inst: &'env MipInstance,
    layout: RowLayout,
    arena: &'env RwLock<PenaltyArena>,
    kernel: Kernel,
    txs: Vec<mpsc::Sender<Job>>,
    rx: mpsc::Receiver<(usize, JobOutput)>,
    /// Scratch for the inline (small-dispatch / single-thread) path.
    inline: RefCell<BlockScratch>,
}

impl<'env> WorkerPool<'env> {
    /// Spawn `threads` workers on `scope` (none when `threads <= 1`;
    /// the inline path then handles every dispatch). Workers exit when
    /// the pool is dropped (their job channels close), which must
    /// happen before the scope ends.
    pub(crate) fn new<'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
        inst: &'env MipInstance,
        layout: RowLayout,
        arena: &'env RwLock<PenaltyArena>,
        kernel: Kernel,
    ) -> Self {
        let (res_tx, rx) = mpsc::channel();
        let mut txs = Vec::new();
        if threads > 1 {
            for _ in 0..threads {
                let (tx, job_rx) = mpsc::channel::<Job>();
                let res_tx = res_tx.clone();
                scope.spawn(move || worker_loop(inst, layout, arena, kernel, &job_rx, &res_tx));
                txs.push(tx);
            }
        }
        Self {
            inst,
            layout,
            arena,
            kernel,
            txs,
            rx,
            inline: RefCell::new(BlockScratch::default()),
        }
    }

    /// Bring the shared penalty arena up to date with `duals` (between
    /// dispatches only; see the module-level lock discipline).
    pub(crate) fn update_penalty(&self, duals: &Duals) -> PenaltyUpdate {
        self.arena
            .write()
            .expect("penalty arena lock poisoned") // lint:allow(no-panic-hot-path): poisoned lock implies a worker panic; re-raise it
            .update(self.inst, &self.layout, duals, self.kernel)
    }

    /// Read access to the current penalty arena (callers must drop the
    /// guard before the next [`WorkerPool::update_penalty`]).
    pub(crate) fn penalty(&self) -> RwLockReadGuard<'_, PenaltyArena> {
        self.arena.read().expect("penalty arena lock poisoned") // lint:allow(no-panic-hot-path): poisoned lock implies a worker panic; re-raise it
    }

    /// Heuristic UFL minimizers for `items`, in item order.
    pub(crate) fn solve(&self, items: &[usize]) -> Vec<UflSolution> {
        self.run(items, JobKind::Solve)
            .into_iter()
            .flat_map(|o| match o {
                JobOutput::Solutions(v) => v,
                _ => unreachable!("Solve job returned a non-Solutions output"), // lint:allow(no-panic-hot-path): exec_job pairs Solve with Solutions
            })
            .collect()
    }

    /// Per-block dual-ascent bounds for `items`, in item order.
    pub(crate) fn dual_bounds(&self, items: &[usize]) -> Vec<f64> {
        self.run(items, JobKind::DualBound { exact: false })
            .into_iter()
            .flat_map(|o| match o {
                JobOutput::Bounds(v) => v,
                _ => unreachable!("DualBound job returned a non-Bounds output"), // lint:allow(no-panic-hot-path): exec_job pairs DualBound with Bounds
            })
            .collect()
    }

    /// Exact per-block LP bounds for `items`, in item order — the
    /// polish's hybrid certification path (orders of magnitude more
    /// expensive per block than [`WorkerPool::dual_bounds`]; callers
    /// restrict `items` to the calibrated loose subset).
    pub(crate) fn exact_bounds(&self, items: &[usize]) -> Vec<f64> {
        self.run(items, JobKind::DualBound { exact: true })
            .into_iter()
            .flat_map(|o| match o {
                JobOutput::Bounds(v) => v,
                _ => unreachable!("DualBound job returned a non-Bounds output"), // lint:allow(no-panic-hot-path): exec_job pairs DualBound with Bounds
            })
            .collect()
    }

    /// Polish sweep: `(valid bound, minimizer resource usage)` per item.
    pub(crate) fn polish_sweep(
        &self,
        items: &[usize],
        exact: bool,
    ) -> Vec<(f64, Vec<(usize, f64)>)> {
        self.run(items, JobKind::Polish { exact })
            .into_iter()
            .flat_map(|o| match o {
                JobOutput::Polish(v) => v,
                _ => unreachable!("Polish job returned a non-Polish output"), // lint:allow(no-panic-hot-path): exec_job pairs Polish with Polish
            })
            .collect()
    }

    /// Dispatch `items` (split into contiguous parts, one per worker)
    /// and return the part outputs **in part order** — the determinism
    /// contract's reassembly step.
    fn run(&self, items: &[usize], kind: JobKind) -> Vec<JobOutput> {
        if self.txs.is_empty() || items.len() < PARALLEL_MIN {
            let arena = self.penalty();
            let mut scratch = self.inline.borrow_mut();
            return vec![exec_job(
                self.inst,
                &self.layout,
                &arena,
                self.kernel,
                kind,
                items,
                &mut scratch,
            )];
        }
        let per = items.len().div_ceil(self.txs.len());
        let mut n_parts = 0usize;
        for (part, (slice, tx)) in items.chunks(per).zip(&self.txs).enumerate() {
            tx.send(Job {
                kind,
                part,
                items: slice.to_vec(),
            })
            .expect("solver worker hung up"); // lint:allow(no-panic-hot-path): hangup implies a worker panic; re-raise it
            n_parts += 1;
        }
        let mut out: Vec<Option<JobOutput>> = (0..n_parts).map(|_| None).collect();
        for _ in 0..n_parts {
            let (part, o) = self.rx.recv().expect("solver worker hung up"); // lint:allow(no-panic-hot-path): hangup implies a worker panic; re-raise it
            out[part] = Some(o);
        }
        out.into_iter()
            .map(|o| o.expect("worker part missing")) // lint:allow(no-panic-hot-path): every part sent exactly once above
            .collect()
    }
}

fn worker_loop(
    inst: &MipInstance,
    layout: RowLayout,
    arena: &RwLock<PenaltyArena>,
    kernel: Kernel,
    jobs: &mpsc::Receiver<Job>,
    results: &mpsc::Sender<(usize, JobOutput)>,
) {
    let mut scratch = BlockScratch::default();
    while let Ok(job) = jobs.recv() {
        let out = {
            let arena = arena.read().expect("penalty arena lock poisoned"); // lint:allow(no-panic-hot-path): poisoned lock implies a worker panic; re-raise it
            exec_job(
                inst,
                &layout,
                &arena,
                kernel,
                job.kind,
                &job.items,
                &mut scratch,
            )
        };
        if results.send((job.part, out)).is_err() {
            return; // pool gone; nothing left to report to
        }
    }
}

/// The single shared job body — run identically by workers and by the
/// inline path, which is what makes thread count invisible to results.
fn exec_job(
    inst: &MipInstance,
    layout: &RowLayout,
    arena: &PenaltyArena,
    kernel: Kernel,
    kind: JobKind,
    items: &[usize],
    scratch: &mut BlockScratch,
) -> JobOutput {
    match kind {
        JobKind::Solve => JobOutput::Solutions(
            items
                .iter()
                .map(|&m| {
                    build_ufl_into(
                        inst,
                        layout,
                        &inst.blocks()[m],
                        arena.duals(),
                        arena,
                        &mut scratch.ufl,
                        kernel,
                    );
                    scratch
                        .ufl
                        .solve_local_search_fast_with_kernel(&mut scratch.search, kernel)
                })
                .collect(),
        ),
        JobKind::DualBound { exact } => JobOutput::Bounds(
            items
                .iter()
                .map(|&m| {
                    build_ufl_into(
                        inst,
                        layout,
                        &inst.blocks()[m],
                        arena.duals(),
                        arena,
                        &mut scratch.ufl,
                        kernel,
                    );
                    if exact {
                        crate::direct::exact_block_lp(&scratch.ufl)
                    } else {
                        scratch
                            .ufl
                            .dual_ascent_bound_with_kernel(&mut scratch.search, kernel)
                    }
                })
                .collect(),
        ),
        JobKind::Polish { exact } => JobOutput::Polish(
            items
                .iter()
                .map(|&m| {
                    let data = &inst.blocks()[m];
                    build_ufl_into(
                        inst,
                        layout,
                        data,
                        arena.duals(),
                        arena,
                        &mut scratch.ufl,
                        kernel,
                    );
                    // Both solvers run on this build: fuse their
                    // seeding passes (column sums + row minima).
                    scratch.ufl.precompute_lane_aux(kernel);
                    let empty = BlockSolution {
                        y: Vec::new(),
                        x: vec![Vec::new(); data.clients.len()],
                    };
                    // Exact mode wants the LP *minimizer's* usage, not
                    // the heuristic's: the pair (exact bound, exact
                    // argmin) is what makes the polish's certification
                    // direction a true subgradient of the Lagrangian
                    // dual.
                    if exact {
                        if let Some((lb, hat)) =
                            crate::direct::exact_block_lp_solution(&scratch.ufl)
                        {
                            let (usage, _dobj) = block_delta(inst, layout, data, &empty, &hat);
                            return (lb, usage);
                        }
                    }
                    let lb = if exact {
                        crate::direct::exact_block_lp(&scratch.ufl)
                    } else {
                        scratch
                            .ufl
                            .dual_ascent_bound_with_kernel(&mut scratch.search, kernel)
                    };
                    let sol = scratch
                        .ufl
                        .solve_local_search_fast_with_kernel(&mut scratch.search, kernel);
                    let hat = BlockSolution::from_ufl(&sol);
                    let (usage, _dobj) = block_delta(inst, layout, data, &empty, &hat);
                    (lb, usage)
                })
                .collect(),
        ),
    }
}
