//! Snapshottable solver state: [`SolverCheckpoint`] captures the EPF
//! loop's complete numeric and control state at a pass boundary, so an
//! interrupted solve can resume **bitwise-identically** to an
//! uninterrupted one.
//!
//! What must be captured (and why):
//!
//! - the per-video block solutions and the incumbent `z*`,
//! - the coupling state: usage totals, objective value, target `B`,
//!   and the scale `δ` (whose update is monotone and therefore
//!   history-dependent),
//! - the smoothed duals (an exponential moving average — pure history),
//! - the visit `order` vector (shuffled **in place** each pass, so its
//!   current permutation is the accumulated product of all shuffles),
//! - the pass counters and the in-run control state (`RunState`).
//!
//! What need *not* be captured: the RNG — each pass derives its shuffle
//! stream from `(seed, global_pass)`, so the counter alone pins it; the
//! penalty arena and worker pool — rebuilt fresh on resume, which is
//! bitwise-equal to the incremental updates by the arena's own
//! invariant (see `crates/core/tests/penalty_props.rs`); and the
//! wall-clock — `wall_limit` budgets deliberately restart on resume
//! (only `step_limit` is part of the deterministic contract).
//!
//! Serialization is JSON via `vod-json`, with every `f64` and `u64`
//! encoded as its exact bit pattern in hex ([`vod_json::snapshot`]) —
//! a decimal float round-trip would break bit-identity. Decoding never
//! panics: every malformed field is a typed [`CheckpointError`], and
//! [`SolverCheckpoint::validate_for`] cross-checks the state against
//! the instance and config before the solver will touch it.

use crate::epf::{EpfConfig, RunState};
use crate::instance::MipInstance;
use crate::solution::{BlockSolution, FractionalSolution, Placement};
use std::fmt;
use vod_json::snapshot::{
    f64_bits_value, f64_from_bits_value, u64_bits_value, u64_from_bits_value,
};
use vod_json::Value;
use vod_model::VhoId;

/// Snapshot-container kind tag for solver checkpoints.
pub const CHECKPOINT_KIND: &str = "solver-checkpoint";
/// Payload format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A malformed checkpoint payload. Always recoverable: callers fall
/// back to a cold solve (which, being deterministic, still reproduces
/// the uninterrupted result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    pub what: String,
}

impl CheckpointError {
    fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed solver checkpoint: {}", self.what)
    }
}

impl std::error::Error for CheckpointError {}

/// Complete EPF solver state at a pass boundary.
#[derive(Debug, Clone)]
pub struct SolverCheckpoint {
    /// FNV of the solver config + instance shape this state belongs to;
    /// resuming under any other config/instance is rejected.
    pub(crate) fingerprint: u64,
    pub(crate) global_pass: u64,
    pub(crate) passes_done: usize,
    pub(crate) block_steps: u64,
    pub(crate) lb: f64,
    pub(crate) ub: f64,
    pub(crate) lo: f64,
    /// Coupling objective target `B` (`None` during phase 1).
    pub(crate) target: Option<f64>,
    /// Coupling scale `δ` (monotone — cannot be recomputed).
    pub(crate) delta: f64,
    pub(crate) usage: Vec<f64>,
    pub(crate) obj: f64,
    pub(crate) smoothed_rows: Vec<f64>,
    pub(crate) smoothed_obj: f64,
    pub(crate) order: Vec<usize>,
    pub(crate) run: RunState,
    pub(crate) blocks: Vec<BlockSolution>,
    pub(crate) zstar: Vec<BlockSolution>,
}

impl SolverCheckpoint {
    /// The global pass counter at capture time (the "step" of the
    /// step-based checkpoint cadence).
    #[must_use]
    pub fn pass(&self) -> u64 {
        self.global_pass
    }

    /// Whether the solve was in the phase-2 target bisection.
    #[must_use]
    pub fn in_phase2(&self) -> bool {
        self.target.is_some()
    }

    /// Serialize to the checkpoint payload (wrap in a
    /// `vod_json::snapshot` container for on-disk durability).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_value().to_string_pretty().into_bytes()
    }

    /// Deserialize a checkpoint payload. Structural problems come back
    /// as typed errors — never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| CheckpointError::new("payload is not UTF-8"))?;
        let value = Value::parse(text)
            .map_err(|e| CheckpointError::new(format!("payload is not valid JSON: {e}")))?;
        Self::from_value(&value)
    }

    fn to_value(&self) -> Value {
        let f64_arr = |xs: &[f64]| Value::Arr(xs.iter().map(|&x| f64_bits_value(x)).collect());
        let num = |x: usize| Value::Num(x as f64);
        let blocks_v = |bs: &[BlockSolution]| Value::Arr(bs.iter().map(block_to_value).collect());
        Value::Obj(vec![
            ("fingerprint".into(), u64_bits_value(self.fingerprint)),
            ("global_pass".into(), u64_bits_value(self.global_pass)),
            ("passes_done".into(), num(self.passes_done)),
            ("block_steps".into(), u64_bits_value(self.block_steps)),
            ("lb".into(), f64_bits_value(self.lb)),
            ("ub".into(), f64_bits_value(self.ub)),
            ("lo".into(), f64_bits_value(self.lo)),
            (
                "target".into(),
                match self.target {
                    Some(b) => f64_bits_value(b),
                    None => Value::Null,
                },
            ),
            ("delta".into(), f64_bits_value(self.delta)),
            ("usage".into(), f64_arr(&self.usage)),
            ("obj".into(), f64_bits_value(self.obj)),
            ("smoothed_rows".into(), f64_arr(&self.smoothed_rows)),
            ("smoothed_obj".into(), f64_bits_value(self.smoothed_obj)),
            (
                "order".into(),
                Value::Arr(self.order.iter().map(|&i| num(i)).collect()),
            ),
            (
                "run".into(),
                Value::Obj(vec![
                    ("local_pass".into(), num(self.run.local_pass)),
                    ("budget".into(), num(self.run.budget)),
                    ("snap_delta".into(), f64_bits_value(self.run.snap_delta)),
                    ("track_lb".into(), Value::Bool(self.run.track_lb)),
                    ("lb_run".into(), f64_bits_value(self.run.lb_run)),
                ]),
            ),
            ("blocks".into(), blocks_v(&self.blocks)),
            ("zstar".into(), blocks_v(&self.zstar)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| CheckpointError::new(format!("missing field {key:?}")))
        };
        let f = |key: &str| -> Result<f64, CheckpointError> {
            f64_from_bits_value(field(key)?, key).map_err(|e| CheckpointError::new(e.to_string()))
        };
        let u = |key: &str| -> Result<u64, CheckpointError> {
            u64_from_bits_value(field(key)?, key).map_err(|e| CheckpointError::new(e.to_string()))
        };
        let n = |key: &str| -> Result<usize, CheckpointError> {
            field(key)?
                .as_usize()
                .ok_or_else(|| CheckpointError::new(format!("{key}: expected an integer")))
        };
        let f64_vec = |key: &str| -> Result<Vec<f64>, CheckpointError> {
            field(key)?
                .as_arr()
                .ok_or_else(|| CheckpointError::new(format!("{key}: expected an array")))?
                .iter()
                .map(|x| {
                    f64_from_bits_value(x, key).map_err(|e| CheckpointError::new(e.to_string()))
                })
                .collect()
        };
        let target = match field("target")? {
            Value::Null => None,
            other => Some(
                f64_from_bits_value(other, "target")
                    .map_err(|e| CheckpointError::new(e.to_string()))?,
            ),
        };
        let order = field("order")?
            .as_arr()
            .ok_or_else(|| CheckpointError::new("order: expected an array"))?
            .iter()
            .map(|x| {
                x.as_usize()
                    .ok_or_else(|| CheckpointError::new("order: expected integers"))
            })
            .collect::<Result<Vec<usize>, _>>()?;
        let run_v = field("run")?;
        let run_field = |key: &str| {
            run_v
                .get(key)
                .ok_or_else(|| CheckpointError::new(format!("missing field run.{key}")))
        };
        let run = RunState {
            local_pass: run_field("local_pass")?
                .as_usize()
                .ok_or_else(|| CheckpointError::new("run.local_pass: expected an integer"))?,
            budget: run_field("budget")?
                .as_usize()
                .ok_or_else(|| CheckpointError::new("run.budget: expected an integer"))?,
            snap_delta: f64_from_bits_value(run_field("snap_delta")?, "run.snap_delta")
                .map_err(|e| CheckpointError::new(e.to_string()))?,
            track_lb: run_field("track_lb")?
                .as_bool()
                .ok_or_else(|| CheckpointError::new("run.track_lb: expected a bool"))?,
            lb_run: f64_from_bits_value(run_field("lb_run")?, "run.lb_run")
                .map_err(|e| CheckpointError::new(e.to_string()))?,
        };
        Ok(Self {
            fingerprint: u("fingerprint")?,
            global_pass: u("global_pass")?,
            passes_done: n("passes_done")?,
            block_steps: u("block_steps")?,
            lb: f("lb")?,
            ub: f("ub")?,
            lo: f("lo")?,
            target,
            delta: f("delta")?,
            usage: f64_vec("usage")?,
            obj: f("obj")?,
            smoothed_rows: f64_vec("smoothed_rows")?,
            smoothed_obj: f("smoothed_obj")?,
            order,
            run,
            blocks: blocks_from_value(field("blocks")?, "blocks")?,
            zstar: blocks_from_value(field("zstar")?, "zstar")?,
        })
    }

    /// Public form of [`Self::validate_for`]: would this checkpoint
    /// drive a solve of `(inst, cfg)`? Supervisors use it to decide
    /// between resuming verbatim, remapping ([`crate::remap`]) and
    /// discarding, without paying for a rejected solve attempt.
    pub fn validate_against(&self, inst: &MipInstance, cfg: &EpfConfig) -> Result<(), String> {
        self.validate_for(inst, cfg)
    }

    /// Cross-check this checkpoint against the instance and config it
    /// is about to drive. Everything the solver would otherwise index
    /// with is validated here, so a hostile payload cannot panic it.
    pub(crate) fn validate_for(&self, inst: &MipInstance, cfg: &EpfConfig) -> Result<(), String> {
        let expect = config_fingerprint(cfg, inst);
        if self.fingerprint != expect {
            return Err(format!(
                "config/instance fingerprint mismatch: checkpoint {:#018x}, current {expect:#018x}",
                self.fingerprint
            ));
        }
        let layout = crate::epf::layout_of(inst);
        let (n, n_rows, n_vhos) = (inst.n_videos(), layout.n_rows(), inst.n_vhos());
        if self.usage.len() != n_rows || self.smoothed_rows.len() != n_rows {
            return Err(format!(
                "row count mismatch: usage {}, smoothed {}, instance {n_rows}",
                self.usage.len(),
                self.smoothed_rows.len()
            ));
        }
        if !self.delta.is_finite() || self.delta <= 0.0 {
            return Err(format!(
                "scale delta must be finite and > 0, got {}",
                self.delta
            ));
        }
        if let Some(b) = self.target {
            if !b.is_finite() || b <= 0.0 {
                return Err(format!("target must be finite and > 0, got {b}"));
            }
        }
        if self.run.budget == 0 {
            return Err("run budget must be >= 1".to_string());
        }
        // `order` must be a permutation of 0..n: it indexes blocks.
        if self.order.len() != n {
            return Err(format!(
                "order covers {} videos, instance has {n}",
                self.order.len()
            ));
        }
        let mut seen = vec![false; n];
        for &m in &self.order {
            if m >= n || seen[m] {
                return Err(format!("order is not a permutation of 0..{n}"));
            }
            seen[m] = true;
        }
        validate_blocks(&self.blocks, "blocks", inst, n_vhos)?;
        if !self.zstar.is_empty() {
            validate_blocks(&self.zstar, "zstar", inst, n_vhos)?;
        }
        Ok(())
    }
}

/// Shape-check a block-solution vector against the instance so later
/// dense row indexing cannot go out of bounds.
fn validate_blocks(
    blocks: &[BlockSolution],
    what: &str,
    inst: &MipInstance,
    n_vhos: usize,
) -> Result<(), String> {
    if blocks.len() != inst.n_videos() {
        return Err(format!(
            "{what} holds {} videos, instance has {}",
            blocks.len(),
            inst.n_videos()
        ));
    }
    let sorted_in_range = |pairs: &[(VhoId, f64)]| -> bool {
        pairs.windows(2).all(|w| w[0].0 < w[1].0)
            && pairs
                .iter()
                .all(|&(i, x)| i.index() < n_vhos && x.is_finite())
    };
    for (m, (b, data)) in blocks.iter().zip(inst.blocks()).enumerate() {
        if b.y.is_empty() || !sorted_in_range(&b.y) {
            return Err(format!("{what}[{m}].y is empty, unsorted, or out of range"));
        }
        if b.x.len() != data.clients.len() {
            return Err(format!(
                "{what}[{m}] has {} client rows, instance block has {}",
                b.x.len(),
                data.clients.len()
            ));
        }
        for dist in &b.x {
            if !sorted_in_range(dist) {
                return Err(format!("{what}[{m}].x is unsorted or out of range"));
            }
        }
    }
    Ok(())
}

fn block_to_value(b: &BlockSolution) -> Value {
    let pairs = |ps: &[(VhoId, f64)]| {
        Value::Arr(
            ps.iter()
                .map(|&(i, x)| Value::Arr(vec![Value::Num(i.index() as f64), f64_bits_value(x)]))
                .collect(),
        )
    };
    Value::Obj(vec![
        ("y".into(), pairs(&b.y)),
        (
            "x".into(),
            Value::Arr(b.x.iter().map(|d| pairs(d)).collect()),
        ),
    ])
}

fn pairs_from_value(v: &Value, what: &str) -> Result<Vec<(VhoId, f64)>, CheckpointError> {
    v.as_arr()
        .ok_or_else(|| CheckpointError::new(format!("{what}: expected an array")))?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                CheckpointError::new(format!("{what}: expected [id, bits] pairs"))
            })?;
            let idx = items[0]
                .as_usize()
                .filter(|&i| u16::try_from(i).is_ok())
                .ok_or_else(|| CheckpointError::new(format!("{what}: VHO id out of range")))?;
            let x = f64_from_bits_value(&items[1], what)
                .map_err(|e| CheckpointError::new(e.to_string()))?;
            // lint:allow(raw-index): deserializing persisted VHO ids, range-checked above
            Ok((VhoId::from_index(idx), x))
        })
        .collect()
}

fn blocks_from_value(v: &Value, what: &str) -> Result<Vec<BlockSolution>, CheckpointError> {
    v.as_arr()
        .ok_or_else(|| CheckpointError::new(format!("{what}: expected an array")))?
        .iter()
        .map(|bv| {
            let y = pairs_from_value(
                bv.get("y")
                    .ok_or_else(|| CheckpointError::new(format!("{what}: block missing y")))?,
                what,
            )?;
            let x = bv
                .get("x")
                .and_then(Value::as_arr)
                .ok_or_else(|| CheckpointError::new(format!("{what}: block missing x")))?
                .iter()
                .map(|d| pairs_from_value(d, what))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(BlockSolution { y, x })
        })
        .collect()
}

/// Serialize a fractional solution — the solve→round stage boundary of
/// a supervised pipeline, persisted so a crash between the two stages
/// does not force a re-solve.
#[must_use]
pub fn fractional_to_value(f: &FractionalSolution) -> Value {
    Value::Obj(vec![
        (
            "blocks".into(),
            Value::Arr(f.blocks.iter().map(block_to_value).collect()),
        ),
        ("objective".into(), f64_bits_value(f.objective)),
        ("max_violation".into(), f64_bits_value(f.max_violation)),
        ("lower_bound".into(), f64_bits_value(f.lower_bound)),
    ])
}

/// Decode a persisted fractional solution, shape-validated against the
/// instance it is about to be rounded for.
pub fn fractional_from_value(
    v: &Value,
    inst: &MipInstance,
) -> Result<FractionalSolution, CheckpointError> {
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| CheckpointError::new(format!("missing field {key:?}")))
    };
    let f = |key: &str| -> Result<f64, CheckpointError> {
        f64_from_bits_value(field(key)?, key).map_err(|e| CheckpointError::new(e.to_string()))
    };
    let blocks = blocks_from_value(field("blocks")?, "blocks")?;
    validate_blocks(&blocks, "blocks", inst, inst.n_vhos()).map_err(CheckpointError::new)?;
    Ok(FractionalSolution {
        blocks,
        objective: f("objective")?,
        max_violation: f("max_violation")?,
        lower_bound: f("lower_bound")?,
    })
}

/// Serialize a (rounded, integral) placement including its serving
/// routing, so a restored placement drives the simulator identically.
#[must_use]
pub fn placement_to_value(p: &Placement) -> Value {
    let ids = |holders: &[VhoId]| {
        Value::Arr(
            holders
                .iter()
                .map(|i| Value::Num(i.index() as f64))
                .collect(),
        )
    };
    let pairs = |ps: &[(VhoId, f64)]| {
        Value::Arr(
            ps.iter()
                .map(|&(i, x)| Value::Arr(vec![Value::Num(i.index() as f64), f64_bits_value(x)]))
                .collect(),
        )
    };
    let routing = p
        .routing_lists()
        .iter()
        .map(|clients| {
            Value::Arr(
                clients
                    .iter()
                    .map(|(j, dist)| Value::Arr(vec![Value::Num(j.index() as f64), pairs(dist)]))
                    .collect(),
            )
        })
        .collect();
    Value::Obj(vec![
        ("n_vhos".into(), Value::Num(p.n_vhos() as f64)),
        (
            "stores".into(),
            Value::Arr(p.holder_lists().iter().map(|h| ids(h)).collect()),
        ),
        ("routing".into(), Value::Arr(routing)),
    ])
}

/// Decode a persisted placement. Every index is validated against the
/// declared shape; malformed payloads are typed errors.
pub fn placement_from_value(v: &Value) -> Result<Placement, CheckpointError> {
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| CheckpointError::new(format!("missing field {key:?}")))
    };
    let n_vhos = field("n_vhos")?
        .as_usize()
        .filter(|&n| n > 0 && u16::try_from(n).is_ok())
        .ok_or_else(|| CheckpointError::new("n_vhos: expected a u16-ranged integer"))?;
    let vho = |x: &Value, what: &str| -> Result<VhoId, CheckpointError> {
        x.as_usize()
            .filter(|&i| u16::try_from(i).is_ok())
            // lint:allow(raw-index): deserializing persisted VHO ids, range-checked above
            .map(VhoId::from_index)
            .ok_or_else(|| CheckpointError::new(format!("{what}: VHO id out of range")))
    };
    let stores = field("stores")?
        .as_arr()
        .ok_or_else(|| CheckpointError::new("stores: expected an array"))?
        .iter()
        .map(|hv| {
            hv.as_arr()
                .ok_or_else(|| CheckpointError::new("stores: expected id arrays"))?
                .iter()
                .map(|x| vho(x, "stores"))
                .collect::<Result<Vec<VhoId>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let routing = field("routing")?
        .as_arr()
        .ok_or_else(|| CheckpointError::new("routing: expected an array"))?
        .iter()
        .map(|cv| {
            cv.as_arr()
                .ok_or_else(|| CheckpointError::new("routing: expected client arrays"))?
                .iter()
                .map(|entry| {
                    let items = entry.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        CheckpointError::new("routing: expected [client, dist] pairs")
                    })?;
                    Ok((
                        vho(&items[0], "routing")?,
                        pairs_from_value(&items[1], "routing")?,
                    ))
                })
                .collect::<Result<Vec<_>, CheckpointError>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Placement::from_parts(n_vhos, stores, routing).map_err(CheckpointError::new)
}

/// Fingerprint of every config field and instance dimension that
/// shapes the solve trajectory. `threads` is deliberately excluded
/// (results are thread-count-invariant by the pool's determinism
/// contract) and so is `wall_limit` (a machine-local latency cap that
/// restarts on resume); `step_limit` IS included — resuming under a
/// different deterministic budget would diverge from the uninterrupted
/// run the identity guarantee is stated against.
pub(crate) fn config_fingerprint(cfg: &EpfConfig, inst: &MipInstance) -> u64 {
    let layout = crate::epf::layout_of(inst);
    let mut buf = Vec::with_capacity(14 * 8);
    let mut push = |x: u64| buf.extend_from_slice(&x.to_le_bytes());
    push(cfg.epsilon.to_bits());
    push(cfg.gamma.to_bits());
    push(cfg.rho.to_bits());
    push(cfg.chunk_size as u64);
    push(cfg.max_passes as u64);
    push(cfg.lb_every as u64);
    push(cfg.polish_iters as u64);
    push(cfg.seed);
    push(u64::from(cfg.feasibility_only));
    push(cfg.step_limit.map_or(u64::MAX, |s| s));
    // The kernel backend is bitwise-neutral by the kernel module's
    // contract, but a resume mixing backends would still be a run no
    // single-backend execution can reproduce pass-for-pass in its
    // BENCH provenance — refuse the mismatch.
    push(cfg.kernel.tag());
    // Same rationale for the penalty layout (bitwise-neutral reads)
    // and the memory budget (value-neutral streaming degrade); the
    // certification knobs shape the final bound, so they are
    // trajectory-relevant outright.
    push(cfg.layout.tag());
    push(cfg.memory_budget_mb.map_or(u64::MAX, |m| m as u64));
    push(cfg.gap_limit.map_or(u64::MAX, f64::to_bits));
    push(cfg.exact_cert as u64);
    push(inst.n_videos() as u64);
    push(inst.n_vhos() as u64);
    push(layout.n_rows() as u64);
    // Instance *content*, not just shape: a supervised pipeline
    // re-solves the same-shaped instance every cycle with different
    // demand and capacities, and a stale checkpoint from cycle k must
    // not pass for cycle k+1.
    for m in 0..inst.n_videos() {
        push(
            inst.demand
                .aggregate
                .video_total(vod_model::VideoId::from_index(m))
                .to_bits(),
        );
    }
    for cap in crate::epf::caps_of(inst, &layout) {
        push(cap.to_bits());
    }
    vod_json::snapshot::fnv1a64(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolverCheckpoint {
        let block = |ids: &[u16]| BlockSolution {
            y: ids.iter().map(|&i| (VhoId::new(i), 0.75)).collect(),
            x: vec![ids.iter().map(|&i| (VhoId::new(i), 0.5)).collect()],
        };
        SolverCheckpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            global_pass: 42,
            passes_done: 40,
            block_steps: 1234,
            lb: 17.25,
            ub: f64::INFINITY,
            lo: 1e-300,
            target: Some(19.5),
            delta: 0.125,
            usage: vec![0.1, f64::MAX, -0.0],
            obj: 21.0,
            smoothed_rows: vec![1.0, 2.0, 3.0],
            smoothed_obj: 0.5,
            order: vec![1, 0],
            run: RunState {
                local_pass: 3,
                budget: 50,
                snap_delta: f64::INFINITY,
                track_lb: true,
                lb_run: 17.25,
            },
            blocks: vec![block(&[0, 2]), block(&[1])],
            zstar: vec![block(&[0]), block(&[3])],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ck = sample();
        let back = SolverCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.global_pass, ck.global_pass);
        assert_eq!(back.passes_done, ck.passes_done);
        assert_eq!(back.block_steps, ck.block_steps);
        assert_eq!(back.lb.to_bits(), ck.lb.to_bits());
        assert_eq!(back.ub.to_bits(), ck.ub.to_bits());
        assert_eq!(back.lo.to_bits(), ck.lo.to_bits());
        assert_eq!(back.target.map(f64::to_bits), ck.target.map(f64::to_bits));
        assert_eq!(back.delta.to_bits(), ck.delta.to_bits());
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.usage), bits(&ck.usage));
        assert_eq!(bits(&back.smoothed_rows), bits(&ck.smoothed_rows));
        assert_eq!(back.smoothed_obj.to_bits(), ck.smoothed_obj.to_bits());
        assert_eq!(back.order, ck.order);
        assert_eq!(back.run.local_pass, ck.run.local_pass);
        assert_eq!(back.run.budget, ck.run.budget);
        assert_eq!(back.run.snap_delta.to_bits(), ck.run.snap_delta.to_bits());
        assert_eq!(back.run.track_lb, ck.run.track_lb);
        assert_eq!(back.run.lb_run.to_bits(), ck.run.lb_run.to_bits());
        // Double round trip is byte-stable.
        assert_eq!(back.to_bytes(), ck.to_bytes());
    }

    #[test]
    fn none_target_round_trips() {
        let mut ck = sample();
        ck.target = None;
        ck.zstar = Vec::new();
        let back = SolverCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(back.target.is_none());
        assert!(back.zstar.is_empty());
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(SolverCheckpoint::from_bytes(b"").is_err());
        assert!(SolverCheckpoint::from_bytes(b"not json").is_err());
        assert!(SolverCheckpoint::from_bytes(b"{}").is_err());
        assert!(SolverCheckpoint::from_bytes(&[0xFF, 0xFE]).is_err());
        // Valid JSON, wrong field type.
        let mut ck = sample().to_value();
        if let Value::Obj(fields) = &mut ck {
            for (k, v) in fields.iter_mut() {
                if k == "delta" {
                    *v = Value::Num(1.0);
                }
            }
        }
        let err = SolverCheckpoint::from_value(&ck).unwrap_err();
        assert!(err.to_string().contains("delta"), "{err}");
    }
}
