//! The rounding pass (Section V-D): convert the ε-optimal fractional
//! solution into an integral placement.
//!
//! Videos whose `y` values are already integral are kept as-is
//! (including any fractional `x` over their stored copies — `x` is
//! continuous in the MIP). Every other video is re-solved sequentially
//! as an *integer* facility-location problem against the live potential
//! (its fractional contribution is removed from the aggregates first,
//! and the Lagrange multipliers are refreshed as rounding proceeds, so
//! later videos see the load committed by earlier ones). The
//! Charikar–Guha-style local search of [`crate::block`] provides the
//! provably-good-in-practice integer block solutions the paper uses.

use crate::block::{UflProblem, UflScratch};
use crate::epf::{block_delta, build_ufl_into, caps_of, compute_state, layout_of};
use crate::instance::MipInstance;
use crate::kernel::Kernel;
use crate::penalty::PenaltyArena;
use crate::potential::Coupling;
use crate::solution::{BlockSolution, FractionalSolution, Placement};

/// Statistics of one rounding pass.
#[derive(Debug, Clone)]
pub struct RoundingStats {
    /// Videos whose block had to be re-solved integrally.
    pub videos_rounded: usize,
    /// Objective of the final integral solution (original objective).
    pub objective: f64,
    /// Max relative disk/link violation of the integral solution.
    pub max_violation: f64,
    /// `(objective − LB)/LB` against the solver's Lagrangian bound
    /// (`None` when the fractional run had no bound, e.g. feasibility
    /// mode).
    pub optimality_gap: Option<f64>,
}

/// Round a fractional solution into a [`Placement`].
pub fn round_solution(
    inst: &MipInstance,
    fractional: &FractionalSolution,
    gamma: f64,
    kernel: Kernel,
) -> (Placement, RoundingStats) {
    let layout = layout_of(inst);
    let mut blocks: Vec<BlockSolution> = fractional.blocks.clone();
    let (usage, obj) = compute_state(inst, &layout, &blocks);
    // The rounding potential keeps the objective row, targeting the
    // fractional objective: rounding should not degrade cost more than
    // necessary while repairing integrality.
    let target = Some(fractional.objective.max(1e-9));
    let mut coupling = Coupling::new(layout, caps_of(inst, &layout), gamma, target);
    coupling.set_state(usage, obj);
    coupling.init_scale(0.01);

    let mut rounded = 0usize;
    // The penalty arena and UFL buffers are reused across all rounded
    // videos (same flat hot path as the EPF loop; see crate::penalty).
    let mut arena = PenaltyArena::new(inst, &layout);
    let mut ufl = UflProblem::default();
    let mut scratch = UflScratch::default();
    // `m` indexes `inst.blocks()` and `blocks` (mutated below) in
    // lockstep, so a range loop is the honest shape here.
    #[allow(clippy::needless_range_loop)]
    for m in 0..inst.n_videos() {
        if blocks[m].is_integral() {
            continue;
        }
        rounded += 1;
        // Fresh multipliers for every committed video: later videos
        // must see the load the earlier roundings committed. Link
        // penalties are priced *before* this block's own contribution
        // is removed (incremental: only rows the previous rounding
        // touched get re-summed).
        arena.update(inst, &layout, &coupling.duals(), kernel);
        let data = &inst.blocks()[m];
        // Remove this block's fractional contribution so the UFL sees
        // the load of everyone else.
        let empty = BlockSolution {
            y: Vec::new(),
            x: vec![Vec::new(); data.clients.len()],
        };
        let (deltas_out, dobj_out) = block_delta(inst, &layout, data, &blocks[m], &empty);
        coupling.apply(&deltas_out, dobj_out, 1.0);

        let duals_now = coupling.duals();
        build_ufl_into(inst, &layout, data, &duals_now, &arena, &mut ufl, kernel);
        let cand = ufl.solve_local_search_with_kernel(&mut scratch, kernel);
        let hat = BlockSolution::from_ufl(&cand);
        let (deltas_in, dobj_in) = block_delta(inst, &layout, data, &empty, &hat);
        coupling.apply(&deltas_in, dobj_in, 1.0);
        blocks[m] = hat;
    }

    // Snap near-integral y values exactly and drop zero entries.
    for b in &mut blocks {
        for e in &mut b.y {
            e.1 = if e.1 >= 0.5 { 1.0 } else { 0.0 };
        }
        b.y.retain(|&(_, v)| v > 0.0);
    }

    repair_disks(inst, &mut blocks);

    // Final routing sweep: with the copy sets fixed (integral y),
    // re-route every client to its cheapest holder under the
    // post-repair congestion duals — the repair's ad-hoc reassignments
    // and the dual-inflated costs used mid-rounding both leave easy
    // routing wins on the table.
    {
        let (usage, obj) = compute_state(inst, &layout, &blocks);
        coupling.set_state(usage, obj);
        arena.update(inst, &layout, &coupling.duals(), kernel);
        let mut costs = Vec::new();
        for (m, data) in inst.blocks().iter().enumerate() {
            let better = crate::epf::greedy_x_given_y(inst, data, &blocks[m].y, &arena, &mut costs);
            blocks[m].x = better.x;
        }
    }

    let (usage, objective) = compute_state(inst, &layout, &blocks);
    coupling.set_state(usage, objective);
    let max_violation = coupling.delta_c().max(0.0);
    let optimality_gap = (fractional.lower_bound > 0.0)
        .then(|| (objective - fractional.lower_bound) / fractional.lower_bound);

    let placement = Placement::from_blocks(inst, &blocks);
    // Rounded blocks must be exactly block-feasible and the assembled
    // placement must stay within the violation the stats report.
    #[cfg(feature = "audit")]
    {
        crate::audit::check_blocks(inst, &blocks, crate::solution::INT_TOL)
            .assert_ok("rounded block invariants");
        crate::audit::check_placement(inst, &placement, max_violation + crate::solution::INT_TOL)
            .assert_ok("rounded placement audit");
    }
    (
        placement,
        RoundingStats {
            videos_rounded: rounded,
            objective,
            max_violation,
            optimality_gap,
        },
    )
}

/// Greedy disk-repair pass: integral placements are lumpy (a 2 GB
/// movie on a small disk is several percent of it), so after rounding
/// some disks can exceed capacity. While any VHO is overfull, drop (or
/// move) the copy whose removal costs least: a multi-copy video's copy
/// is dropped and its clients reassigned to the cheapest remaining
/// holder; a single-copy video is moved to the most-underfull VHO that
/// fits. Bounded number of moves; link loads are re-derived afterwards
/// by the caller's `compute_state`.
fn repair_disks(inst: &MipInstance, blocks: &mut [BlockSolution]) {
    let n_vhos = inst.n_vhos();
    let mut usage = vec![0.0f64; n_vhos];
    // holders[i] = videos pinned at i.
    let mut held: Vec<Vec<usize>> = vec![Vec::new(); n_vhos];
    for (mi, b) in blocks.iter().enumerate() {
        for &(i, yv) in &b.y {
            if yv >= 0.5 {
                usage[i.index()] += inst.blocks()[mi].size_gb;
                held[i.index()].push(mi);
            }
        }
    }
    let caps: Vec<f64> = inst.disks.iter().map(|d| d.value()).collect();

    // Reassign the clients of video `mi` that were served by `from`
    // onto the cheapest remaining holder.
    let reassign = |blocks: &mut [BlockSolution], mi: usize, from: vod_model::VhoId| {
        let stores: Vec<vod_model::VhoId> = blocks[mi].stores();
        let data = &inst.blocks()[mi];
        for (c_idx, client) in data.clients.iter().enumerate() {
            let dist = &mut blocks[mi].x[c_idx];
            let moved: f64 = dist
                .iter()
                .filter(|&&(i, _)| i == from)
                .map(|&(_, v)| v)
                .sum();
            if moved > 0.0 {
                let Some(target) = stores.iter().copied().min_by(|&a, &b| {
                    inst.cost(a, client.j)
                        .total_cmp(&inst.cost(b, client.j))
                        .then(a.cmp(&b))
                }) else {
                    // Callers only drop a copy when another holder
                    // survives; if that invariant ever slips, keep the
                    // old routing rather than dropping served demand.
                    continue;
                };
                dist.retain(|&(i, _)| i != from);
                match dist.binary_search_by_key(&target, |&(i, _)| i) {
                    Ok(k) => dist[k].1 += moved,
                    Err(k) => dist.insert(k, (target, moved)),
                }
            }
        }
    };

    let max_moves = 4 * n_vhos * 4 + 64;
    for _ in 0..max_moves {
        // Most-overfull VHO.
        let Some(over) = (0..n_vhos)
            .filter(|&i| usage[i] > caps[i] * (1.0 + 1e-9))
            .max_by(|&a, &b| (usage[a] / caps[a]).total_cmp(&(usage[b] / caps[b])))
        else {
            break;
        };
        // lint:allow(raw-index): disk-usage vectors are dense over VHO indices
        let over_id = vod_model::VhoId::from_index(over);
        // Candidate 1: drop a multi-copy video (smallest demand served
        // from here first — approximates least removal cost).
        let drop_candidate = held[over]
            .iter()
            .copied()
            .filter(|&mi| blocks[mi].stores().len() >= 2)
            .min_by(|&a, &b| {
                let served = |mi: usize| -> f64 {
                    inst.blocks()[mi]
                        .clients
                        .iter()
                        .zip(&blocks[mi].x)
                        .map(|(c, dist)| {
                            dist.iter()
                                .filter(|&&(i, _)| i == over_id)
                                .map(|&(_, v)| v * c.demand_gb)
                                .sum::<f64>()
                        })
                        .sum()
                };
                served(a).total_cmp(&served(b)).then(a.cmp(&b))
            });
        if let Some(mi) = drop_candidate {
            blocks[mi].y.retain(|&(i, _)| i != over_id);
            reassign(blocks, mi, over_id);
            usage[over] -= inst.blocks()[mi].size_gb;
            held[over].retain(|&m| m != mi);
            continue;
        }
        // Candidate 2: move a single-copy video to the most-underfull
        // VHO with room.
        let Some(&mi) = held[over].iter().min_by(|&&a, &&b| {
            inst.blocks()[a]
                .size_gb
                .total_cmp(&inst.blocks()[b].size_gb)
                .then(a.cmp(&b))
        }) else {
            break;
        };
        let size = inst.blocks()[mi].size_gb;
        let Some(target) = (0..n_vhos)
            .filter(|&i| i != over && usage[i] + size <= caps[i])
            .min_by(|&a, &b| (usage[a] / caps[a]).total_cmp(&(usage[b] / caps[b])))
        else {
            break; // nowhere to put it — give up on this VHO
        };
        // lint:allow(raw-index): disk-usage vectors are dense over VHO indices
        let target_id = vod_model::VhoId::from_index(target);
        blocks[mi].y.retain(|&(i, _)| i != over_id);
        match blocks[mi].y.binary_search_by_key(&target_id, |&(i, _)| i) {
            Ok(_) => {}
            Err(k) => blocks[mi].y.insert(k, (target_id, 1.0)),
        }
        reassign(blocks, mi, over_id);
        usage[over] -= size;
        usage[target] += size;
        held[over].retain(|&m| m != mi);
        held[target].push(mi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::{solve_fractional, EpfConfig};
    use crate::instance::DiskConfig;
    use vod_model::{Mbps, VideoId};
    use vod_net::topologies;
    use vod_trace::{
        analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
    };

    fn instance(seed: u64) -> MipInstance {
        let mut net = topologies::mesh_backbone(6, 9, seed);
        net.set_uniform_capacity(Mbps::from_gbps(1.0));
        let catalog = synthesize_library(&LibraryConfig::default_for(80, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(800.0, 7, seed));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        )
    }

    #[test]
    fn rounding_produces_integral_covering_placement() {
        let inst = instance(21);
        let cfg = EpfConfig {
            max_passes: 100,
            seed: 21,
            ..Default::default()
        };
        let (frac, _) = solve_fractional(&inst, &cfg);
        let (placement, stats) = round_solution(&inst, &frac, cfg.gamma, cfg.kernel);
        assert_eq!(placement.n_videos(), inst.n_videos());
        for m in inst.catalog.ids() {
            assert!(
                !placement.stores(m).is_empty(),
                "video {m} lost its last copy"
            );
        }
        // Rounding should keep violations small (paper: a few percent).
        assert!(
            stats.max_violation < 0.25,
            "violation too large: {}",
            stats.max_violation
        );
        // Objective within a reasonable factor of the fractional one.
        assert!(stats.objective <= frac.objective * 1.5 + 1e-6);
    }

    #[test]
    fn optimality_gap_reported() {
        let inst = instance(22);
        let cfg = EpfConfig {
            max_passes: 120,
            seed: 22,
            ..Default::default()
        };
        let (frac, stats) = solve_fractional(&inst, &cfg);
        let (_, rstats) = round_solution(&inst, &frac, cfg.gamma, cfg.kernel);
        if stats.converged {
            let gap = rstats.optimality_gap.expect("bound exists");
            assert!(gap >= -1e-6, "objective below a valid lower bound: {gap}");
            assert!(gap < 0.30, "gap suspiciously large: {gap}");
        }
    }

    #[test]
    fn integral_blocks_mostly_untouched() {
        let inst = instance(23);
        let cfg = EpfConfig {
            max_passes: 100,
            seed: 23,
            ..Default::default()
        };
        let (frac, _) = solve_fractional(&inst, &cfg);
        let pre: Vec<Vec<vod_model::VhoId>> = frac
            .blocks
            .iter()
            .map(|b| {
                if b.is_integral() {
                    b.stores()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let (placement, _) = round_solution(&inst, &frac, cfg.gamma, cfg.kernel);
        // The integer re-solve must not touch already-integral videos;
        // only the final disk-repair pass may *shrink or move* their
        // copy sets (never below one copy). So: each pre-integral
        // video either keeps a subset of its stores, or was moved
        // (single-copy) — and is always still stored somewhere.
        let mut changed = 0usize;
        for (mi, stores) in pre.iter().enumerate() {
            if stores.is_empty() {
                continue;
            }
            let now = placement.stores(VideoId::from_index(mi));
            assert!(!now.is_empty(), "video {mi} lost its last copy");
            let subset = now.iter().all(|i| stores.contains(i));
            let moved = stores.len() == 1 && now.len() == 1;
            assert!(
                subset || moved,
                "video {mi}: stores grew beyond repair semantics: {stores:?} -> {now:?}"
            );
            if now != stores.as_slice() {
                changed += 1;
            }
        }
        // Repair is a touch-up, not a re-solve.
        assert!(
            changed * 4 <= pre.iter().filter(|s| !s.is_empty()).count().max(4),
            "repair modified too many integral videos: {changed}"
        );
    }

    #[test]
    fn repair_eliminates_disk_overflows() {
        let inst = instance(24);
        let cfg = EpfConfig {
            max_passes: 100,
            seed: 24,
            ..Default::default()
        };
        let (frac, _) = solve_fractional(&inst, &cfg);
        let (placement, stats) = round_solution(&inst, &frac, cfg.gamma, cfg.kernel);
        // After the repair pass, disk violations specifically should be
        // (close to) zero; remaining violation, if any, is on links.
        let usage = placement.disk_usage(&inst.catalog);
        for (u, cap) in usage.iter().zip(&inst.disks) {
            assert!(
                u.value() <= cap.value() * 1.02 + 1e-9,
                "disk still overfull after repair: {u} vs {cap} (stats {stats:?})"
            );
        }
    }
}
