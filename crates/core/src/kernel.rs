//! Pluggable lane backends for the EPF inner loops — the penalty
//! re-sum and the UFL row evaluation (ROADMAP item 2: SIMD now,
//! GPU-shaped later).
//!
//! Three backends compute **bitwise-identical** results per element:
//!
//! - [`Kernel::Scalar`] — the original loop shapes, kept verbatim at
//!   the call sites as the reference implementation (and the baseline
//!   the bench's `speedup_vs_scalar` is measured against).
//! - [`Kernel::Chunked`] — `[f64; 8]` lane accumulators over
//!   `chunks_exact`, written so stable rustc autovectorizes the lane
//!   loops (no `unsafe`, no intrinsics).
//! - [`Kernel::Simd`] — `std::simd::f64x8`, feature-gated behind
//!   `--features simd` (nightly only; `portable_simd`).
//!
//! **Determinism contract.** Identity across backends holds because
//! every operation here is either (a) purely elementwise (`axpy`,
//! `drain_budget`) — the lanes never interact, so lane width is
//! invisible; (b) a *striped accumulation* (`accum`,
//! `accum_relu_sub`) where element `i` of the accumulator receives its
//! addends in exactly the source order — per-element addition order is
//! the scalar order, only the interleaving across independent elements
//! changes; or (c) a `min` reduction (`row_min`, `headroom_min`),
//! which is exactly reorderable for the value sets the solver feeds
//! it: no NaNs (inputs are finite by `UflProblem::assert_valid`) and
//! no `-0.0` (every candidate is a sum/product of nonnegative terms,
//! or an `x - y` with `x >= y` under round-to-nearest, both of which
//! yield `+0.0` at zero) — so `min` is associative and commutative
//! *bitwise*, not just numerically. Sum reductions are **never**
//! reordered: the penalty re-sum ([`gather_sum`]) stays sequential in
//! path order in every backend (the arena's rebuild invariant), and no
//! backend uses `mul_add` (FMA changes rounding).
//!
//! The kernel proptests (`tests/kernel_props.rs`) pin all of this:
//! scalar == chunked (== std::simd under the feature) bitwise on
//! random nonnegative inputs, and the batched gather path of
//! [`crate::penalty`] is history-independent.

/// Lane width of the chunked and `std::simd` backends. Eight `f64`
/// lanes = one AVX-512 register or two AVX2 ops — wide enough to
/// saturate stable autovectorization, narrow enough that the remainder
/// loop stays cheap on the solver's `V ≈ 50` rows.
pub const LANES: usize = 8;

/// Backend selector for the EPF inner-loop kernels. Carried in
/// [`crate::EpfConfig`] and recorded in checkpoint fingerprints:
/// resuming under a different backend is refused (the trajectories are
/// bitwise-identical by contract, but a fingerprint that over-rejects
/// is safer than one that under-describes the config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Reference backend: the original scalar loop shapes.
    Scalar,
    /// `[f64; 8]` lane accumulators on stable — the default.
    #[default]
    Chunked,
    /// `std::simd::f64x8` (nightly, `--features simd`).
    #[cfg(feature = "simd")]
    Simd,
}

impl Kernel {
    /// Parse a backend name (the bench's `--kernel` flag).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(Self::Scalar),
            "chunked" => Some(Self::Chunked),
            #[cfg(feature = "simd")]
            "simd" => Some(Self::Simd),
            _ => None,
        }
    }

    /// Stable display / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Chunked => "chunked",
            #[cfg(feature = "simd")]
            Self::Simd => "simd",
        }
    }

    /// Fingerprint tag (stable across builds and features).
    pub fn tag(self) -> u64 {
        match self {
            Self::Scalar => 0,
            Self::Chunked => 1,
            #[cfg(feature = "simd")]
            Self::Simd => 2,
        }
    }

    /// Every backend compiled into this build.
    pub fn all() -> &'static [Kernel] {
        #[cfg(feature = "simd")]
        {
            &[Self::Scalar, Self::Chunked, Self::Simd]
        }
        #[cfg(not(feature = "simd"))]
        {
            &[Self::Scalar, Self::Chunked]
        }
    }
}

// ---------------------------------------------------------------------------
// Elementwise ops (lane width invisible by construction).
// ---------------------------------------------------------------------------

/// `acc[i] += w · src[i]` — the penalty-row accumulation of
/// `build_ufl_into` (one call per nonzero demand window, streaming the
/// arena's contiguous client row).
#[inline]
pub fn axpy(kernel: Kernel, acc: &mut [f64], w: f64, src: &[f64]) {
    debug_assert_eq!(acc.len(), src.len());
    match kernel {
        Kernel::Scalar => {
            for (a, &s) in acc.iter_mut().zip(src) {
                *a += w * s;
            }
        }
        Kernel::Chunked => {
            let mut ac = acc.chunks_exact_mut(LANES);
            let mut sc = src.chunks_exact(LANES);
            for (a, s) in (&mut ac).zip(&mut sc) {
                for l in 0..LANES {
                    a[l] += w * s[l];
                }
            }
            for (a, &s) in ac.into_remainder().iter_mut().zip(sc.remainder()) {
                *a += w * s;
            }
        }
        #[cfg(feature = "simd")]
        Kernel::Simd => simd::axpy(acc, w, src),
    }
}

/// `budget[i] -= (vc + delta − max(row[i], vc))⁺` — the dual-ascent
/// budget drain. Elementwise; `vc + delta` is computed once (the same
/// rounding the scalar loop performs every iteration).
#[inline]
pub fn drain_budget(kernel: Kernel, budget: &mut [f64], row: &[f64], vc: f64, delta: f64) {
    debug_assert_eq!(budget.len(), row.len());
    let s = vc + delta;
    match kernel {
        Kernel::Scalar => {
            for (b, &r) in budget.iter_mut().zip(row) {
                *b -= (s - r.max(vc)).max(0.0);
            }
        }
        Kernel::Chunked => {
            let mut bc = budget.chunks_exact_mut(LANES);
            let mut rc = row.chunks_exact(LANES);
            for (b, r) in (&mut bc).zip(&mut rc) {
                for l in 0..LANES {
                    b[l] -= (s - r[l].max(vc)).max(0.0);
                }
            }
            for (b, &r) in bc.into_remainder().iter_mut().zip(rc.remainder()) {
                *b -= (s - r.max(vc)).max(0.0);
            }
        }
        #[cfg(feature = "simd")]
        Kernel::Simd => simd::drain_budget(budget, row, vc, delta),
    }
}

// ---------------------------------------------------------------------------
// Striped accumulations (per-element addend order = scalar order).
// ---------------------------------------------------------------------------

/// `acc[i] += row[i]` — one client row folded into per-facility
/// totals. Streaming this over all rows computes the same per-facility
/// sums as the scalar strided pass, in the same per-element order.
#[inline]
pub fn accum(kernel: Kernel, acc: &mut [f64], row: &[f64]) {
    debug_assert_eq!(acc.len(), row.len());
    match kernel {
        Kernel::Scalar => {
            for (a, &r) in acc.iter_mut().zip(row) {
                *a += r;
            }
        }
        Kernel::Chunked => {
            let mut ac = acc.chunks_exact_mut(LANES);
            let mut rc = row.chunks_exact(LANES);
            for (a, r) in (&mut ac).zip(&mut rc) {
                for l in 0..LANES {
                    a[l] += r[l];
                }
            }
            for (a, &r) in ac.into_remainder().iter_mut().zip(rc.remainder()) {
                *a += r;
            }
        }
        #[cfg(feature = "simd")]
        Kernel::Simd => simd::accum(acc, row),
    }
}

/// `acc[i] += (s − row[i])⁺` — the ADD-move gain screen and the
/// dual-ascent budget initialization, streamed one client row at a
/// time against that client's scalar `s` (current cost, or `v_c`).
#[inline]
pub fn accum_relu_sub(kernel: Kernel, acc: &mut [f64], s: f64, row: &[f64]) {
    debug_assert_eq!(acc.len(), row.len());
    match kernel {
        Kernel::Scalar => {
            for (a, &r) in acc.iter_mut().zip(row) {
                *a += (s - r).max(0.0);
            }
        }
        Kernel::Chunked => {
            let mut ac = acc.chunks_exact_mut(LANES);
            let mut rc = row.chunks_exact(LANES);
            for (a, r) in (&mut ac).zip(&mut rc) {
                for l in 0..LANES {
                    a[l] += (s - r[l]).max(0.0);
                }
            }
            for (a, &r) in ac.into_remainder().iter_mut().zip(rc.remainder()) {
                *a += (s - r).max(0.0);
            }
        }
        #[cfg(feature = "simd")]
        Kernel::Simd => simd::accum_relu_sub(acc, s, row),
    }
}

// ---------------------------------------------------------------------------
// Min reductions (exactly reorderable: no NaN, no -0.0 — see module doc).
// ---------------------------------------------------------------------------

/// `min_i row[i]` (`f64::MAX` on an empty row) — the dual-ascent `v_c`
/// initialization.
#[inline]
pub fn row_min(kernel: Kernel, row: &[f64]) -> f64 {
    match kernel {
        Kernel::Scalar => row.iter().cloned().fold(f64::MAX, f64::min),
        Kernel::Chunked => {
            let mut lanes = [f64::MAX; LANES];
            let mut rc = row.chunks_exact(LANES);
            for r in &mut rc {
                for l in 0..LANES {
                    lanes[l] = lanes[l].min(r[l]);
                }
            }
            let mut m = f64::MAX;
            for &lane in &lanes {
                m = m.min(lane);
            }
            for &r in rc.remainder() {
                m = m.min(r);
            }
            m
        }
        #[cfg(feature = "simd")]
        Kernel::Simd => simd::row_min(row),
    }
}

/// `min_i ((row[i] − vc)⁺ + budget[i]⁺)` — the dual-ascent raise
/// headroom of one client over all facilities.
#[inline]
pub fn headroom_min(kernel: Kernel, row: &[f64], vc: f64, budget: &[f64]) -> f64 {
    debug_assert_eq!(budget.len(), row.len());
    match kernel {
        Kernel::Scalar => {
            let mut delta = f64::MAX;
            for (&r, &b) in row.iter().zip(budget) {
                delta = delta.min((r - vc).max(0.0) + b.max(0.0));
            }
            delta
        }
        Kernel::Chunked => {
            let mut lanes = [f64::MAX; LANES];
            let mut rc = row.chunks_exact(LANES);
            let mut bc = budget.chunks_exact(LANES);
            for (r, b) in (&mut rc).zip(&mut bc) {
                for l in 0..LANES {
                    lanes[l] = lanes[l].min((r[l] - vc).max(0.0) + b[l].max(0.0));
                }
            }
            let mut m = f64::MAX;
            for &lane in &lanes {
                m = m.min(lane);
            }
            for (&r, &b) in rc.remainder().iter().zip(bc.remainder()) {
                m = m.min((r - vc).max(0.0) + b.max(0.0));
            }
            m
        }
        #[cfg(feature = "simd")]
        Kernel::Simd => simd::headroom_min(row, vc, budget),
    }
}

// ---------------------------------------------------------------------------
// Gather sum (sequential in every backend — path order is the invariant).
// ---------------------------------------------------------------------------

/// `Σ_k w[idx[k]]` in index order. The penalty re-sum: `idx` is one
/// pair's path (as link indices into the window's contiguous dual
/// slice `w`). Deliberately sequential in **every** backend — the
/// arena's rebuild invariant fixes the addition order to path order,
/// and paths are short (a handful of links); the lane win for the
/// batched update comes from gathering `w` once per window and
/// streaming dirty pairs through this, not from reordering the sum.
#[inline]
pub fn gather_sum(idx: &[u32], w: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &l in idx {
        sum += w[l as usize];
    }
    sum
}

#[cfg(feature = "simd")]
mod simd {
    //! `std::simd` backend (nightly, `portable_simd`). Each op mirrors
    //! the chunked backend exactly: same lane width, same sequential
    //! lane combination (`to_array` then lane 0..8 in order), same
    //! remainder handling — so the bitwise contract is inherited
    //! rather than re-proven.
    use super::LANES;
    use std::simd::f64x8;
    use std::simd::num::SimdFloat;

    #[inline]
    pub(super) fn axpy(acc: &mut [f64], w: f64, src: &[f64]) {
        let ws = f64x8::splat(w);
        let mut ac = acc.chunks_exact_mut(LANES);
        let mut sc = src.chunks_exact(LANES);
        for (a, s) in (&mut ac).zip(&mut sc) {
            let v = f64x8::from_slice(a) + ws * f64x8::from_slice(s);
            v.copy_to_slice(a);
        }
        for (a, &s) in ac.into_remainder().iter_mut().zip(sc.remainder()) {
            *a += w * s;
        }
    }

    #[inline]
    pub(super) fn drain_budget(budget: &mut [f64], row: &[f64], vc: f64, delta: f64) {
        let s = vc + delta;
        let (sv, vcv, zero) = (f64x8::splat(s), f64x8::splat(vc), f64x8::splat(0.0));
        let mut bc = budget.chunks_exact_mut(LANES);
        let mut rc = row.chunks_exact(LANES);
        for (b, r) in (&mut bc).zip(&mut rc) {
            let inc = (sv - f64x8::from_slice(r).simd_max(vcv)).simd_max(zero);
            (f64x8::from_slice(b) - inc).copy_to_slice(b);
        }
        for (b, &r) in bc.into_remainder().iter_mut().zip(rc.remainder()) {
            *b -= (s - r.max(vc)).max(0.0);
        }
    }

    #[inline]
    pub(super) fn accum(acc: &mut [f64], row: &[f64]) {
        let mut ac = acc.chunks_exact_mut(LANES);
        let mut rc = row.chunks_exact(LANES);
        for (a, r) in (&mut ac).zip(&mut rc) {
            (f64x8::from_slice(a) + f64x8::from_slice(r)).copy_to_slice(a);
        }
        for (a, &r) in ac.into_remainder().iter_mut().zip(rc.remainder()) {
            *a += r;
        }
    }

    #[inline]
    pub(super) fn accum_relu_sub(acc: &mut [f64], s: f64, row: &[f64]) {
        let (sv, zero) = (f64x8::splat(s), f64x8::splat(0.0));
        let mut ac = acc.chunks_exact_mut(LANES);
        let mut rc = row.chunks_exact(LANES);
        for (a, r) in (&mut ac).zip(&mut rc) {
            let term = (sv - f64x8::from_slice(r)).simd_max(zero);
            (f64x8::from_slice(a) + term).copy_to_slice(a);
        }
        for (a, &r) in ac.into_remainder().iter_mut().zip(rc.remainder()) {
            *a += (s - r).max(0.0);
        }
    }

    #[inline]
    pub(super) fn row_min(row: &[f64]) -> f64 {
        let mut lanes = f64x8::splat(f64::MAX);
        let mut rc = row.chunks_exact(LANES);
        for r in &mut rc {
            lanes = lanes.simd_min(f64x8::from_slice(r));
        }
        let arr = lanes.to_array();
        let mut m = f64::MAX;
        for &lane in &arr {
            m = m.min(lane);
        }
        for &r in rc.remainder() {
            m = m.min(r);
        }
        m
    }

    #[inline]
    pub(super) fn headroom_min(row: &[f64], vc: f64, budget: &[f64]) -> f64 {
        let (vcv, zero) = (f64x8::splat(vc), f64x8::splat(0.0));
        let mut lanes = f64x8::splat(f64::MAX);
        let mut rc = row.chunks_exact(LANES);
        let mut bc = budget.chunks_exact(LANES);
        for (r, b) in (&mut rc).zip(&mut bc) {
            let head =
                (f64x8::from_slice(r) - vcv).simd_max(zero) + f64x8::from_slice(b).simd_max(zero);
            lanes = lanes.simd_min(head);
        }
        let arr = lanes.to_array();
        let mut m = f64::MAX;
        for &lane in &arr {
            m = m.min(lane);
        }
        for (&r, &b) in rc.remainder().iter().zip(bc.remainder()) {
            m = m.min((r - vc).max(0.0) + b.max(0.0));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic nonnegative values with a few exact zeros and
        // ties (the contract's edge cases), no -0.0, no NaN.
        (0..n)
            .map(|k| {
                let h = (seed ^ k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                match h % 7 {
                    0 => 0.0,
                    1 => 1.5,
                    _ => (h % 1000) as f64 / 64.0,
                }
            })
            .collect()
    }

    fn for_all_lens(f: impl Fn(usize)) {
        // Cover sub-lane, exact-lane and lane+remainder lengths.
        for n in [0, 1, 3, 7, 8, 9, 16, 17, 50, 64, 100] {
            f(n);
        }
    }

    #[test]
    fn backends_agree_axpy() {
        for_all_lens(|n| {
            let src = vals(n, 11);
            for k in Kernel::all() {
                let mut acc = vals(n, 22);
                axpy(*k, &mut acc, 0.375, &src);
                let mut want = vals(n, 22);
                axpy(Kernel::Scalar, &mut want, 0.375, &src);
                assert_eq!(
                    acc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{} axpy n={n}",
                    k.name()
                );
            }
        });
    }

    #[test]
    fn backends_agree_accum_and_relu() {
        for_all_lens(|n| {
            let row = vals(n, 33);
            for k in Kernel::all() {
                let (mut a, mut b) = (vals(n, 44), vals(n, 44));
                accum(*k, &mut a, &row);
                accum(Kernel::Scalar, &mut b, &row);
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
                let (mut a, mut b) = (vals(n, 55), vals(n, 55));
                accum_relu_sub(*k, &mut a, 4.5, &row);
                accum_relu_sub(Kernel::Scalar, &mut b, 4.5, &row);
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        });
    }

    #[test]
    fn backends_agree_mins() {
        for_all_lens(|n| {
            let row = vals(n, 66);
            let budget = vals(n, 77);
            for k in Kernel::all() {
                assert_eq!(
                    row_min(*k, &row).to_bits(),
                    row_min(Kernel::Scalar, &row).to_bits(),
                    "{} row_min n={n}",
                    k.name()
                );
                assert_eq!(
                    headroom_min(*k, &row, 2.25, &budget).to_bits(),
                    headroom_min(Kernel::Scalar, &row, 2.25, &budget).to_bits(),
                    "{} headroom n={n}",
                    k.name()
                );
            }
        });
    }

    #[test]
    fn backends_agree_drain() {
        for_all_lens(|n| {
            let row = vals(n, 88);
            for k in Kernel::all() {
                let (mut a, mut b) = (vals(n, 99), vals(n, 99));
                drain_budget(*k, &mut a, &row, 1.25, 0.5);
                drain_budget(Kernel::Scalar, &mut b, &row, 1.25, 0.5);
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        });
    }

    #[test]
    fn gather_sum_matches_path_order_fold() {
        let w = vals(20, 7);
        let idx = [3u32, 0, 19, 7, 3];
        let want: f64 = idx.iter().map(|&l| w[l as usize]).sum();
        assert_eq!(gather_sum(&idx, &w).to_bits(), want.to_bits());
        assert_eq!(gather_sum(&[], &w).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn names_round_trip() {
        for k in Kernel::all() {
            assert_eq!(Kernel::from_name(k.name()), Some(*k));
        }
        assert_eq!(Kernel::from_name("gpu"), None);
        assert_eq!(Kernel::default(), Kernel::Chunked);
        assert_eq!(Kernel::Scalar.tag(), 0);
        assert_eq!(Kernel::Chunked.tag(), 1);
    }
}
