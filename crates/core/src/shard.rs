//! Deterministic sharding of per-video-block reductions.
//!
//! At 10⁵–10⁶ videos the two serial per-block sweeps left in the EPF
//! solver — the drift-washout state recomputation and the initial
//! block construction — become measurable fractions of a pass. This
//! module fans both over the [`crate::pool::map_ordered`] scoped
//! workers, with one hard rule: **the work partition is a function of
//! the data, never of the thread count.** Blocks are cut into
//! fixed-size shards of [`SHARD_SIZE`]; each shard reduces its own
//! `(usage, objective)` partial in block order, and the partials are
//! folded in shard order on the caller. The floating-point summation
//! tree is therefore identical for `threads = 1` and `threads = N` —
//! the same bitwise-determinism contract the block sweeps already get
//! from `map_ordered`'s index-ordered results.
//!
//! Instances below `SHARD_SIZE` blocks take the single-shard path,
//! which is the exact historical serial loop — every Table III row
//! (1 000–5 000 videos) reproduces its pre-sharding objectives
//! bitwise; only the new 10⁵⁺ ladder rows see a multi-shard
//! summation tree (and then the same one at every thread count).

use std::ops::Range;

use crate::instance::MipInstance;
use crate::pool::map_ordered;
use crate::potential::RowLayout;
use crate::solution::BlockSolution;

/// Fixed shard width (blocks). A data constant, not a tuning knob: it
/// defines the summation tree, so changing it changes low-order bits
/// of every multi-shard reduction.
pub const SHARD_SIZE: usize = 8192;

/// The fixed partition of `n` blocks into `SHARD_SIZE`-wide ranges
/// (last shard ragged).
pub fn shard_ranges(n: usize, shard_size: usize) -> Vec<Range<usize>> {
    debug_assert!(shard_size > 0);
    (0..n.div_ceil(shard_size))
        .map(|s| s * shard_size..((s + 1) * shard_size).min(n))
        .collect()
}

/// One shard's `(usage, objective)` partial, accumulated in block
/// order — the exact loop the serial `compute_state` ran over the full
/// range.
fn partial_state(
    inst: &MipInstance,
    layout: &RowLayout,
    blocks: &[BlockSolution],
    range: Range<usize>,
) -> (Vec<f64>, f64) {
    let mut usage = vec![0.0; layout.n_rows()];
    let mut obj = 0.0;
    for (b, data) in blocks[range.clone()].iter().zip(&inst.blocks()[range]) {
        for &(i, yv) in &b.y {
            usage[layout.disk_row(i)] += data.size_gb * yv;
            if let Some(&fo) = data.facility_obj_cost.get(i.index()) {
                obj += fo * yv;
            }
        }
        for (client, dist) in data.clients.iter().zip(&b.x) {
            for &(i, xv) in dist {
                obj += client.demand_gb * inst.cost(i, client.j) * xv;
                for (t, &rate) in client.rate.iter().enumerate() {
                    if rate != 0.0 {
                        for &l in inst.paths.path(i, client.j) {
                            usage[layout.link_row(l, t)] += rate * xv;
                        }
                    }
                }
            }
        }
    }
    (usage, obj)
}

/// Sharded drift-washout state recomputation: coupling usage and
/// objective from scratch, partitioned by [`SHARD_SIZE`] and folded in
/// shard order (see module docs for the determinism argument).
pub(crate) fn state(
    inst: &MipInstance,
    layout: &RowLayout,
    blocks: &[BlockSolution],
    threads: usize,
) -> (Vec<f64>, f64) {
    state_with(inst, layout, blocks, threads, SHARD_SIZE)
}

/// [`state`] with an explicit shard width — the test seam that lets
/// the determinism property run multi-shard on small instances.
pub(crate) fn state_with(
    inst: &MipInstance,
    layout: &RowLayout,
    blocks: &[BlockSolution],
    threads: usize,
    shard_size: usize,
) -> (Vec<f64>, f64) {
    let shards = shard_ranges(blocks.len(), shard_size);
    if shards.len() <= 1 {
        // Single shard: the historical serial loop, bit for bit.
        return partial_state(inst, layout, blocks, 0..blocks.len());
    }
    let parts = map_ordered(threads, &shards, |r| {
        partial_state(inst, layout, blocks, r.clone())
    });
    let mut usage = vec![0.0; layout.n_rows()];
    let mut obj = 0.0;
    for (pu, po) in parts {
        for (acc, v) in usage.iter_mut().zip(&pu) {
            *acc += v;
        }
        obj += po;
    }
    (usage, obj)
}

/// Sharded per-block construction: `build(m)` for every block index in
/// order, fanned over shards. Each block is built independently, so
/// thread-count invariance here is structural; sharding only amortizes
/// the ordered-collection bookkeeping over `SHARD_SIZE`-wide chunks.
pub(crate) fn build_blocks<F>(threads: usize, n: usize, build: F) -> Vec<BlockSolution>
where
    F: Fn(usize) -> BlockSolution + Sync,
{
    let shards = shard_ranges(n, SHARD_SIZE);
    if shards.len() <= 1 {
        return (0..n).map(build).collect();
    }
    map_ordered(threads, &shards, |r| {
        r.clone().map(&build).collect::<Vec<BlockSolution>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::tests::small_instance;
    use crate::epf::{compute_state, layout_of};
    use crate::solution::initial_block;

    fn setup(n_videos: usize) -> (MipInstance, RowLayout, Vec<BlockSolution>) {
        let inst = small_instance(n_videos, 2.0, 1.0, 42);
        let layout = layout_of(&inst);
        let blocks: Vec<BlockSolution> = inst
            .blocks()
            .iter()
            .map(|b| initial_block(b, inst.n_vhos()))
            .collect();
        (inst, layout, blocks)
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for (n, w) in [
            (0usize, 5usize),
            (1, 5),
            (5, 5),
            (6, 5),
            (17, 4),
            (8192, 8192),
        ] {
            let shards = shard_ranges(n, w);
            let mut next = 0;
            for r in &shards {
                assert_eq!(r.start, next, "n={n} w={w}");
                assert!(r.end > r.start || n == 0);
                assert!(r.end - r.start <= w);
                next = r.end;
            }
            assert_eq!(next, n, "n={n} w={w}");
        }
    }

    /// `threads = 1` and `threads = N` fold the same shard partials in
    /// the same order: bitwise-identical usage and objective, even
    /// when the instance spans many (ragged) shards.
    #[test]
    fn multi_shard_state_is_thread_invariant() {
        let (inst, layout, blocks) = setup(61);
        for shard_size in [3usize, 7, 16] {
            let (u1, o1) = state_with(&inst, &layout, &blocks, 1, shard_size);
            for threads in [2usize, 3, 8] {
                let (un, on) = state_with(&inst, &layout, &blocks, threads, shard_size);
                assert_eq!(o1.to_bits(), on.to_bits(), "obj @ shard={shard_size}");
                for (a, b) in u1.iter().zip(&un) {
                    assert_eq!(a.to_bits(), b.to_bits(), "usage @ shard={shard_size}");
                }
            }
        }
    }

    /// The single-shard path is the serial reference loop bit for bit
    /// (what pins every historical Table III objective), and the
    /// multi-shard fold stays within float-reassociation distance.
    #[test]
    fn single_shard_matches_serial_reference_bitwise() {
        let (inst, layout, blocks) = setup(40);
        let (us, os) = compute_state(&inst, &layout, &blocks);
        let (u1, o1) = state_with(&inst, &layout, &blocks, 4, usize::MAX);
        assert_eq!(os.to_bits(), o1.to_bits());
        for (a, b) in us.iter().zip(&u1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (um, om) = state_with(&inst, &layout, &blocks, 4, 6);
        assert!((om - os).abs() <= os.abs() * 1e-12);
        for (a, b) in us.iter().zip(&um) {
            assert!((a - b).abs() <= a.abs().max(1.0) * 1e-12);
        }
    }

    #[test]
    fn build_blocks_preserves_order_across_threads() {
        let (inst, _, _) = setup(25);
        let build = |m: usize| initial_block(&inst.blocks()[m], inst.n_vhos());
        let serial: Vec<BlockSolution> = (0..inst.n_videos()).map(build).collect();
        for threads in [1usize, 2, 5] {
            let sharded = build_blocks(threads, inst.n_videos(), build);
            assert_eq!(serial, sharded, "threads={threads}");
        }
    }
}
