//! Runtime invariant auditing of solver outputs.
//!
//! Validators that re-check solutions against the MIP's constraints
//! from first principles — independently of the incremental bookkeeping
//! the solver itself maintains:
//!
//! - **distribution mass** (constraint (3)): every client's serving
//!   distribution `x_{·j}^m` sums to 1,
//! - **dominance** (constraint (4)): no client draws more of a video
//!   from a VHO than the fraction stored there, `x_ij^m ≤ y_i^m`,
//! - **disk budgets** (constraint (5)) and **link capacities**
//!   (constraint (6)): aggregate usage stays within capacity up to a
//!   caller-supplied *relative* tolerance — the EPF solver is
//!   ε-feasible by design, so its outputs legitimately carry a small
//!   violation which they must themselves report correctly.
//!
//! The validators are always compiled and callable (tests and tools use
//! them directly); the `audit` cargo feature only switches on the
//! solver-internal assertions inside the EPF pass loop
//! ([`crate::epf`]) and after rounding ([`crate::rounding`]).

use crate::epf::{compute_state, layout_of};
use crate::instance::MipInstance;
use crate::solution::{BlockSolution, FractionalSolution, Placement, INT_TOL};
use std::fmt;

/// One invariant violation. VHOs, links and videos are reported as
/// dense indices (not id newtypes) — these are diagnostics, not handles
/// to route further work through.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A block's `x` rows don't line up with the instance's clients.
    ClientCount {
        video: usize,
        got: usize,
        want: usize,
    },
    /// A stored fraction `y_i^m` outside `[0, 1]` (beyond tolerance).
    StoreRange { video: usize, vho: usize, y: f64 },
    /// A negative serving share `x_ij^m`.
    NegativeShare {
        video: usize,
        client: usize,
        vho: usize,
        x: f64,
    },
    /// A client's serving distribution does not sum to 1.
    DistributionMass {
        video: usize,
        client: usize,
        total: f64,
    },
    /// A client draws more from a VHO than is stored there (x > y).
    Dominance {
        video: usize,
        client: usize,
        vho: usize,
        x: f64,
        y: f64,
    },
    /// An integral solution stores no copy of a video at all.
    NoCopy { video: usize },
    /// A placement routes a client to a VHO that holds no copy.
    ForeignServer {
        video: usize,
        client: usize,
        vho: usize,
    },
    /// Disk usage at a VHO exceeds its capacity beyond tolerance.
    Disk {
        vho: usize,
        used_gb: f64,
        cap_gb: f64,
    },
    /// Link load in a window exceeds capacity beyond tolerance.
    Link {
        link: usize,
        window: usize,
        used_mbps: f64,
        cap_mbps: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::ClientCount { video, got, want } => write!(
                f,
                "video {video}: {got} serving distributions for {want} clients"
            ),
            Violation::StoreRange { video, vho, y } => {
                write!(f, "video {video}: y at VHO {vho} out of range: {y}")
            }
            Violation::NegativeShare {
                video,
                client,
                vho,
                x,
            } => write!(
                f,
                "video {video} client {client}: negative share {x} from VHO {vho}"
            ),
            Violation::DistributionMass {
                video,
                client,
                total,
            } => write!(
                f,
                "video {video} client {client}: serving shares sum to {total}, not 1"
            ),
            Violation::Dominance {
                video,
                client,
                vho,
                x,
                y,
            } => write!(
                f,
                "video {video} client {client}: x={x} from VHO {vho} exceeds stored y={y}"
            ),
            Violation::NoCopy { video } => {
                write!(f, "video {video}: no stored copy anywhere")
            }
            Violation::ForeignServer { video, client, vho } => write!(
                f,
                "video {video} client {client}: routed to VHO {vho} which holds no copy"
            ),
            Violation::Disk {
                vho,
                used_gb,
                cap_gb,
            } => write!(
                f,
                "VHO {vho}: disk used {used_gb:.3} GB exceeds capacity {cap_gb:.3} GB"
            ),
            Violation::Link {
                link,
                window,
                used_mbps,
                cap_mbps,
            } => write!(
                f,
                "link {link} window {window}: load {used_mbps:.3} Mb/s exceeds \
                 capacity {cap_mbps:.3} Mb/s"
            ),
        }
    }
}

/// The outcome of an audit: empty means every checked invariant holds.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    pub violations: Vec<Violation>,
}

impl AuditReport {
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn merge(&mut self, other: AuditReport) {
        self.violations.extend(other.violations);
    }

    /// Panic with a readable listing when any violation was found.
    /// `context` names the checkpoint (e.g. `"EPF pass invariants"`).
    pub fn assert_ok(&self, context: &str) {
        assert!(self.is_ok(), "audit failed at {context}:\n{self}");
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 12;
        for v in self.violations.iter().take(SHOWN) {
            writeln!(f, "  - {v}")?;
        }
        if self.violations.len() > SHOWN {
            writeln!(f, "  … and {} more", self.violations.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// Check the block-local constraints (3)/(4) of every video: serving
/// distributions sum to 1, shares are nonnegative and dominated by the
/// stored fractions, stored fractions lie in `[0, 1]`. `tol` is an
/// absolute tolerance (use [`INT_TOL`] for solver outputs).
pub fn check_blocks(inst: &MipInstance, blocks: &[BlockSolution], tol: f64) -> AuditReport {
    let mut violations = Vec::new();
    for (b, data) in blocks.iter().zip(inst.blocks()) {
        let video = data.video.index();
        if b.x.len() != data.clients.len() {
            violations.push(Violation::ClientCount {
                video,
                got: b.x.len(),
                want: data.clients.len(),
            });
            continue;
        }
        for &(i, y) in &b.y {
            if !(-tol..=1.0 + tol).contains(&y) {
                violations.push(Violation::StoreRange {
                    video,
                    vho: i.index(),
                    y,
                });
            }
        }
        for (client, dist) in b.x.iter().enumerate() {
            let mut total = 0.0;
            for &(i, x) in dist {
                total += x;
                if x < -tol {
                    violations.push(Violation::NegativeShare {
                        video,
                        client,
                        vho: i.index(),
                        x,
                    });
                }
                let y = b.y_at(i);
                if x > y + tol {
                    violations.push(Violation::Dominance {
                        video,
                        client,
                        vho: i.index(),
                        x,
                        y,
                    });
                }
            }
            if (total - 1.0).abs() > tol {
                violations.push(Violation::DistributionMass {
                    video,
                    client,
                    total,
                });
            }
        }
    }
    AuditReport { violations }
}

/// Check the coupling constraints (5)/(6): recompute disk and link
/// usage from scratch and compare against capacity. A row passes when
/// `used ≤ cap · (1 + rel_tol) + 1e-9` — pass the solution's own
/// reported `max_violation` (plus [`INT_TOL`]) as `rel_tol` to verify
/// it is honest about its infeasibility.
pub fn check_coupling(inst: &MipInstance, blocks: &[BlockSolution], rel_tol: f64) -> AuditReport {
    let layout = layout_of(inst);
    let (usage, _obj) = compute_state(inst, &layout, blocks);
    let mut violations = Vec::new();
    for (i, (&used, cap)) in usage[..layout.n_vhos].iter().zip(&inst.disks).enumerate() {
        if used > cap.value() * (1.0 + rel_tol) + 1e-9 {
            violations.push(Violation::Disk {
                vho: i,
                used_gb: used,
                cap_gb: cap.value(),
            });
        }
    }
    for t in 0..layout.n_windows {
        for (l, link) in inst.network.links().iter().enumerate() {
            let used = usage[layout.n_vhos + t * layout.n_links + l];
            if used > link.capacity.value() * (1.0 + rel_tol) + 1e-9 {
                violations.push(Violation::Link {
                    link: l,
                    window: t,
                    used_mbps: used,
                    cap_mbps: link.capacity.value(),
                });
            }
        }
    }
    AuditReport { violations }
}

/// Full audit of a fractional solution: block-local constraints exactly
/// (within [`INT_TOL`]) plus coupling rows within `rel_tol`.
pub fn check_fractional(
    inst: &MipInstance,
    frac: &FractionalSolution,
    rel_tol: f64,
) -> AuditReport {
    let mut report = check_blocks(inst, &frac.blocks, INT_TOL);
    report.merge(check_coupling(inst, &frac.blocks, rel_tol));
    report
}

/// Full audit of an integral [`Placement`]: every video has a copy, the
/// stored routing only uses holders and sums to 1 per client, disk
/// usage and link loads (stored routing where present, nearest-copy
/// otherwise — the same service model as
/// [`Placement::objective_under`]) stay within `rel_tol`.
pub fn check_placement(inst: &MipInstance, placement: &Placement, rel_tol: f64) -> AuditReport {
    let mut violations = Vec::new();
    let layout = layout_of(inst);
    let mut link_load = vec![0.0f64; layout.n_links * layout.n_windows];
    for data in inst.blocks() {
        let m = data.video;
        let holders = placement.stores(m);
        if holders.is_empty() {
            violations.push(Violation::NoCopy { video: m.index() });
            continue;
        }
        for (client, c) in data.clients.iter().enumerate() {
            let dist = placement.serving_distribution(m, c.j);
            if let Some(dist) = dist {
                let mut total = 0.0;
                for &(i, x) in dist {
                    total += x;
                    if x < -INT_TOL {
                        violations.push(Violation::NegativeShare {
                            video: m.index(),
                            client,
                            vho: i.index(),
                            x,
                        });
                    }
                    if !placement.has_copy(m, i) {
                        violations.push(Violation::ForeignServer {
                            video: m.index(),
                            client,
                            vho: i.index(),
                        });
                    }
                    for (t, &rate) in c.rate.iter().enumerate() {
                        if rate != 0.0 {
                            for &l in inst.paths.path(i, c.j) {
                                link_load[t * layout.n_links + l.index()] += rate * x;
                            }
                        }
                    }
                }
                if (total - 1.0).abs() > INT_TOL {
                    violations.push(Violation::DistributionMass {
                        video: m.index(),
                        client,
                        total,
                    });
                }
            } else {
                // Nearest-copy service, as in `objective_under`.
                let near = holders
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        inst.cost(a, c.j)
                            .total_cmp(&inst.cost(b, c.j))
                            .then(a.cmp(&b))
                    })
                    // lint:allow(no-panic-hot-path): this branch is
                    // only taken when `holders` was checked non-empty.
                    .expect("holders is non-empty");
                for (t, &rate) in c.rate.iter().enumerate() {
                    if rate != 0.0 {
                        for &l in inst.paths.path(near, c.j) {
                            link_load[t * layout.n_links + l.index()] += rate;
                        }
                    }
                }
            }
        }
    }
    for (i, (used, cap)) in placement
        .disk_usage(&inst.catalog)
        .iter()
        .zip(&inst.disks)
        .enumerate()
    {
        if used.value() > cap.value() * (1.0 + rel_tol) + 1e-9 {
            violations.push(Violation::Disk {
                vho: i,
                used_gb: used.value(),
                cap_gb: cap.value(),
            });
        }
    }
    for t in 0..layout.n_windows {
        for (l, link) in inst.network.links().iter().enumerate() {
            let used = link_load[t * layout.n_links + l];
            if used > link.capacity.value() * (1.0 + rel_tol) + 1e-9 {
                violations.push(Violation::Link {
                    link: l,
                    window: t,
                    used_mbps: used,
                    cap_mbps: link.capacity.value(),
                });
            }
        }
    }
    AuditReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::tests::small_instance;
    use crate::epf::{solve_fractional, EpfConfig};
    use crate::rounding::round_solution;

    fn solved() -> (MipInstance, FractionalSolution, f64) {
        let inst = small_instance(50, 2.0, 1.0, 31);
        let cfg = EpfConfig {
            max_passes: 60,
            seed: 31,
            ..Default::default()
        };
        let (frac, _) = solve_fractional(&inst, &cfg);
        let gamma = cfg.gamma;
        (inst, frac, gamma)
    }

    #[test]
    fn solver_output_passes_audit() {
        let (inst, frac, gamma) = solved();
        let report = check_fractional(&inst, &frac, frac.max_violation + INT_TOL);
        assert!(report.is_ok(), "clean solve flagged:\n{report}");
        let (placement, stats) =
            round_solution(&inst, &frac, gamma, crate::kernel::Kernel::Chunked);
        let report = check_placement(&inst, &placement, stats.max_violation + INT_TOL);
        assert!(report.is_ok(), "clean placement flagged:\n{report}");
    }

    #[test]
    fn broken_distribution_mass_is_flagged() {
        let (inst, mut frac, _) = solved();
        let dist = frac
            .blocks
            .iter_mut()
            .flat_map(|b| b.x.iter_mut())
            .find(|d| !d.is_empty())
            .expect("some client exists");
        for e in dist.iter_mut() {
            e.1 *= 0.5;
        }
        let report = check_blocks(&inst, &frac.blocks, INT_TOL);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DistributionMass { .. })));
    }

    #[test]
    fn broken_dominance_is_flagged() {
        let (inst, mut frac, _) = solved();
        let b = &mut frac.blocks[0];
        let (i, _) = b.x[0][0];
        // Route everything through one VHO while capping its y below.
        b.x[0] = vec![(i, 1.0)];
        if let Ok(k) = b.y.binary_search_by_key(&i, |&(v, _)| v) {
            b.y[k].1 = 0.25;
        }
        let report = check_blocks(&inst, &frac.blocks, INT_TOL);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Dominance { .. })));
    }

    #[test]
    fn disk_overflow_is_flagged() {
        let (inst, mut frac, _) = solved();
        // Full replication blows through a 2×-library disk budget.
        for b in &mut frac.blocks {
            b.y = inst.network.vho_ids().map(|i| (i, 1.0)).collect();
        }
        let report = check_coupling(&inst, &frac.blocks, 0.05);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Disk { .. })));
    }

    #[test]
    fn lost_copy_is_flagged() {
        let (inst, frac, gamma) = solved();
        let (placement, _) = round_solution(&inst, &frac, gamma, crate::kernel::Kernel::Chunked);
        let mut stores = placement.holder_lists();
        stores[0].clear();
        let broken = Placement::from_stores(inst.n_vhos(), stores);
        let report = check_placement(&inst, &broken, 1.0);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NoCopy { video: 0 })));
    }

    #[test]
    fn report_display_is_readable() {
        let report = AuditReport {
            violations: vec![Violation::Disk {
                vho: 3,
                used_gb: 12.5,
                cap_gb: 10.0,
            }],
        };
        let text = format!("{report}");
        assert!(text.contains("VHO 3"), "{text}");
        assert!(!report.is_ok());
    }
}
