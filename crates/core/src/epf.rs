//! The exponential-potential-function (EPF) decomposition solver —
//! Algorithm 1 of the paper's Appendix.
//!
//! The LP relaxation of the placement MIP is decomposed into one
//! uncapacitated-facility-location block per video; the coupling disk
//! and link constraints are replaced by the exponential potential of
//! [`crate::potential`]. Each *pass* visits every block in a fresh
//! random order (the shuffling alone speeds convergence by a large
//! factor, per the paper), in chunks: a chunk snapshots the current
//! Lagrange multipliers, solves its blocks' UFLs **in parallel**
//! (scoped threads), then applies the resulting directions
//! sequentially, each with an exact 1-D line search against the live
//! potential. After each pass the scale `δ` shrinks to the current
//! max infeasibility, the smoothed duals are updated, and a Lagrangian
//! lower-bound pass (per-block dual ascent) both certifies quality and
//! raises the objective target `B` of `FEAS(B)`.

use crate::block::{UflProblem, UflSolution};
use crate::checkpoint::SolverCheckpoint;
use crate::instance::{MipInstance, VideoBlock};
use crate::kernel::{self, Kernel};
use crate::penalty::PenaltyArena;
use crate::pool::WorkerPool;
use crate::potential::{Coupling, Duals, RowLayout};
use crate::solution::{initial_block, BlockSolution, FractionalSolution, Placement};
use rand::seq::SliceRandom;
use std::sync::RwLock;
use std::time::{Duration, Instant};
use vod_model::rng::derive_rng;

/// Solver parameters (Algorithm 1 line 1).
#[derive(Debug, Clone)]
pub struct EpfConfig {
    /// Approximation tolerance ε: the solver stops once the solution
    /// violates constraints by at most ε and is within ε of the lower
    /// bound (the paper uses 1 %).
    pub epsilon: f64,
    /// Exponent factor γ ≈ 1.
    pub gamma: f64,
    /// Dual smoothing ρ ∈ [0, 1).
    pub rho: f64,
    /// Blocks per chunk (one dual snapshot / parallel batch per chunk).
    pub chunk_size: usize,
    /// Hard cap on passes.
    pub max_passes: usize,
    /// Worker threads for chunk optimization; 0 = all available cores.
    pub threads: usize,
    /// Pure feasibility mode: ignore the objective, stop as soon as
    /// `δ_c(z) ≤ ε` (used by the feasibility-region searches).
    pub feasibility_only: bool,
    /// Compute the Lagrangian lower bound every this many passes.
    pub lb_every: usize,
    /// Iterations of the final subgradient polish of the lower bound
    /// (0 disables it).
    pub polish_iters: usize,
    pub seed: u64,
    /// Optional wall-clock budget. When exceeded, the solver stops at
    /// the next pass boundary and returns its best incumbent with
    /// `converged = false` and honest gap statistics — it never
    /// aborts. **Determinism caveat:** where the cutoff lands depends
    /// on machine speed, so two runs with the same seed may return
    /// different (equally valid) incumbents; leave this `None` (the
    /// default) for byte-reproducible experiments. On a checkpoint
    /// resume the clock restarts: `wall_limit` is an operational
    /// latency cap for *this* process, never part of the deterministic
    /// resume contract. Use [`EpfConfig::step_limit`] for budgets that
    /// must land in the same place on every machine.
    pub wall_limit: Option<Duration>,
    /// Deterministic budget in *global passes*: the solver stops at the
    /// pass boundary once this many passes have completed, returning
    /// the best incumbent exactly like `wall_limit` does — but the
    /// cutoff lands on the same pass on every machine and survives
    /// checkpoint/resume (the pass counter is checkpointed), so
    /// budgeted runs stay byte-reproducible. When both limits are set,
    /// whichever trips first wins. Benchmarks use `step_limit`;
    /// `wall_limit` is for latency-capped operation.
    pub step_limit: Option<u64>,
    /// Lane backend for the hot penalty/UFL kernels
    /// ([`crate::kernel`]). Every backend is bitwise-identical per
    /// element, so this is a pure speed knob — but it is still part of
    /// the checkpoint fingerprint, so resumes refuse a mismatch rather
    /// than silently mixing code paths.
    pub kernel: Kernel,
    /// Certified-gap early stop: the solver reports `converged = true`
    /// (and stops bisecting) once `ub ≤ (1 + gap_limit)·lb`. `None`
    /// uses `epsilon` for both the per-run feasibility tolerance and
    /// the certificate — the historical behavior. Setting it looser
    /// than `epsilon` lets tight runs stop at a coarser certificate;
    /// it never loosens per-run feasibility.
    pub gap_limit: Option<f64>,
    /// Iteration budget of the *exact certification* stage of the
    /// final lower-bound polish: each iteration evaluates the
    /// Lagrangian with exact per-block LPs ([`crate::direct`]) on the
    /// calibrated loose-block subset (plus one full exact calibration
    /// sweep), ascending from the best heuristic multipliers. 0
    /// disables the stage (heuristic dual-ascent bounds only — the
    /// right choice above ~10⁴ blocks, where block LPs dominate wall
    /// time).
    pub exact_cert: usize,
    /// Penalty arena layout ([`crate::penalty::PenaltyLayout`]):
    /// `Sparse` (default) stores only the client rows active in each
    /// window; `Dense` is the historical full `T·V²` arena. Reads are
    /// bitwise-identical across layouts, so trajectories match — the
    /// knob is memory/speed only, but fingerprinted like `kernel`.
    pub layout: crate::penalty::PenaltyLayout,
    /// Optional working-set budget in MiB. When the projected solver
    /// working set exceeds it, the sparse arena degrades to streaming
    /// window rebuilds (dropping its reverse index) instead of
    /// growing; values stay bitwise-identical (the rebuild invariant),
    /// only wall time is traded for memory. `None` = never degrade.
    pub memory_budget_mb: Option<usize>,
}

impl Default for EpfConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.01,
            gamma: 1.0,
            rho: 0.5,
            chunk_size: 32,
            max_passes: 1500,
            threads: 0,
            feasibility_only: false,
            lb_every: 1,
            polish_iters: 120,
            seed: 0,
            wall_limit: None,
            step_limit: None,
            kernel: Kernel::default(),
            gap_limit: None,
            exact_cert: 0,
            layout: crate::penalty::PenaltyLayout::default(),
            memory_budget_mb: None,
        }
    }
}

impl EpfConfig {
    /// A feasibility-only variant of this configuration.
    pub fn feasibility(&self) -> Self {
        Self {
            feasibility_only: true,
            ..self.clone()
        }
    }

    /// This configuration with a deterministic per-cycle pass budget:
    /// the service loop re-solves every cycle under a bounded number
    /// of global passes so one hard cycle can never starve the next.
    /// An existing (tighter) `step_limit` is kept — the budget only
    /// ever shrinks the work, and in passes (not wall time) so the
    /// cutoff lands on the same pass on every machine.
    pub fn budgeted(&self, steps: u64) -> Self {
        Self {
            step_limit: Some(self.step_limit.map_or(steps, |s| s.min(steps))),
            ..self.clone()
        }
    }

    /// Worker threads for a solve over `n_blocks` video blocks: the
    /// configured (or available) count, capped at the block count —
    /// an extra worker could never receive a chunk part, it would only
    /// idle on a channel for the whole solve.
    pub fn effective_threads(&self, n_blocks: usize) -> usize {
        let base = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        base.min(n_blocks.max(1))
    }
}

/// Solver statistics (also used for the Table III reproduction).
#[derive(Debug, Clone)]
pub struct EpfStats {
    pub passes: usize,
    pub block_steps: u64,
    pub lower_bound: f64,
    pub objective: f64,
    pub max_violation: f64,
    /// True iff the ε-criteria were met before `max_passes`.
    pub converged: bool,
    pub wall: Duration,
    /// Approximate peak working-set bytes of solver state (block
    /// solutions + instance block data + potential rows).
    pub approx_bytes: usize,
}

// ---------------------------------------------------------------------------
// Shared engine pieces (also used by the rounding pass).
// ---------------------------------------------------------------------------

/// Row layout of an instance's coupling constraints.
pub(crate) fn layout_of(inst: &MipInstance) -> RowLayout {
    RowLayout {
        n_vhos: inst.n_vhos(),
        n_links: inst.network.num_links(),
        n_windows: inst.n_windows(),
    }
}

/// Capacity vector aligned with [`layout_of`]: disk GB then link Mb/s
/// per window.
pub(crate) fn caps_of(inst: &MipInstance, layout: &RowLayout) -> Vec<f64> {
    let mut caps = Vec::with_capacity(layout.n_rows());
    caps.extend(inst.disks.iter().map(|d| d.value()));
    caps.extend(
        (0..layout.n_windows)
            .flat_map(|_t| inst.network.links().iter().map(|l| l.capacity.value())),
    );
    caps
}

/// Recompute coupling usage and objective from scratch (drift washout).
/// Serial entry point — the solver's own call sites go through
/// [`crate::shard::state`], which shards the same loop over the worker
/// pool with a thread-count-invariant summation tree.
pub(crate) fn compute_state(
    inst: &MipInstance,
    layout: &RowLayout,
    blocks: &[BlockSolution],
) -> (Vec<f64>, f64) {
    crate::shard::state(inst, layout, blocks, 1)
}

/// Sparse merge iterator over two sorted `(VhoId, f64)` lists yielding
/// `(i, old, new)` for every id present in either.
fn merge_sparse<'a>(
    a: &'a [(vod_model::VhoId, f64)],
    b: &'a [(vod_model::VhoId, f64)],
) -> impl Iterator<Item = (vod_model::VhoId, f64, f64)> + 'a {
    let mut ia = 0;
    let mut ib = 0;
    std::iter::from_fn(move || match (a.get(ia), b.get(ib)) {
        (Some(&(va, xa)), Some(&(vb, xb))) => {
            if va == vb {
                ia += 1;
                ib += 1;
                Some((va, xa, xb))
            } else if va < vb {
                ia += 1;
                Some((va, xa, 0.0))
            } else {
                ib += 1;
                Some((vb, 0.0, xb))
            }
        }
        (Some(&(va, xa)), None) => {
            ia += 1;
            Some((va, xa, 0.0))
        }
        (None, Some(&(vb, xb))) => {
            ib += 1;
            Some((vb, 0.0, xb))
        }
        (None, None) => None,
    })
}

/// Full-step resource/objective delta of replacing `cur` by `hat` in
/// block `data` (scaled by τ at application time).
pub(crate) fn block_delta(
    inst: &MipInstance,
    layout: &RowLayout,
    data: &VideoBlock,
    cur: &BlockSolution,
    hat: &BlockSolution,
) -> (Vec<(usize, f64)>, f64) {
    // Row-sorted sparse accumulator, kept as reusable scratch: a block
    // delta touches a handful of rows, so binary-search insertion into
    // a flat vec beats a fresh BTreeMap (node allocation per row) while
    // keeping the exact same per-row accumulation order (scan order)
    // and the exact same row-ascending output order.
    thread_local! {
        static ACC: std::cell::RefCell<Vec<(usize, f64)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    ACC.with(|cell| {
        let acc = &mut *cell.borrow_mut();
        acc.clear();
        let bump = |acc: &mut Vec<(usize, f64)>, row: usize, val: f64| {
            match acc.binary_search_by_key(&row, |e| e.0) {
                Ok(pos) => acc[pos].1 += val,
                // `0.0 + val`, not `val`: the BTreeMap this replaces
                // seeded entries with `or_insert(0.0) += val`, and the
                // two differ bitwise at `val == -0.0`.
                Err(pos) => acc.insert(pos, (row, 0.0 + val)),
            }
        };
        let mut dobj = 0.0;
        for (i, old, new) in merge_sparse(&cur.y, &hat.y) {
            let d = new - old;
            if d != 0.0 {
                bump(acc, layout.disk_row(i), data.size_gb * d);
                if let Some(&fo) = data.facility_obj_cost.get(i.index()) {
                    dobj += fo * d;
                }
            }
        }
        for (c_idx, client) in data.clients.iter().enumerate() {
            for (i, old, new) in merge_sparse(&cur.x[c_idx], &hat.x[c_idx]) {
                let d = new - old;
                if d == 0.0 {
                    continue;
                }
                dobj += client.demand_gb * inst.cost(i, client.j) * d;
                for (t, &rate) in client.rate.iter().enumerate() {
                    if rate != 0.0 {
                        for &l in inst.paths.path(i, client.j) {
                            bump(acc, layout.link_row(l, t), rate * d);
                        }
                    }
                }
            }
        }
        (acc.clone(), dobj)
    })
}

/// Build the Lagrangized UFL for one block, in the *scaled* form
/// `π_0·c + π·A` (same argmin as `c(π) = c + π·A/π_0`, but finite in
/// feasibility mode where `π_0 = 0`), into a reusable buffer.
///
/// `duals` prices the objective and disk rows; the link-row part comes
/// from `arena` ([`crate::penalty`]), which may deliberately reflect a
/// *different* (earlier) snapshot — the rounding pass builds its UFLs
/// against post-removal disk duals but pre-removal link penalties.
pub(crate) fn build_ufl_into(
    inst: &MipInstance,
    layout: &RowLayout,
    data: &VideoBlock,
    duals: &Duals,
    arena: &PenaltyArena,
    out: &mut UflProblem,
    kernel: Kernel,
) {
    let v = inst.n_vhos();
    out.reset();
    out.facility_cost.extend((0..v).map(|i| {
        let fo = data.facility_obj_cost.get(i).copied().unwrap_or(0.0);
        // lint:allow(raw-index): dual/penalty rows are dense over VHO indices
        let disk_dual = duals.rows[layout.disk_row(vod_model::VhoId::from_index(i))];
        duals.obj * fo + disk_dual * data.size_gb
    }));
    for client in &data.clients {
        let j = client.j.index();
        match kernel {
            Kernel::Scalar => out.push_service_row((0..v).map(|i| {
                // lint:allow(raw-index): dual/penalty rows are dense over VHO indices
                let iv = vod_model::VhoId::from_index(i);
                let mut cost = duals.obj * client.demand_gb * inst.cost(iv, client.j);
                for (t, &rate) in client.rate.iter().enumerate() {
                    if rate != 0.0 {
                        cost += rate * arena.at(t, i, j);
                    }
                }
                cost
            })),
            // Lane backends stream the arena's contiguous client-major
            // rows: base objective cost elementwise, then one axpy per
            // active window (t-ascending per element — the exact addend
            // order of the scalar closure above).
            _ => {
                let row = out.push_service_row_zeroed();
                for (iv, slot) in inst.network.vho_ids().zip(row.iter_mut()) {
                    *slot = duals.obj * client.demand_gb * inst.cost(iv, client.j);
                }
                for (t, &rate) in client.rate.iter().enumerate() {
                    if rate != 0.0 {
                        kernel::axpy(kernel, row, rate, arena.client_row(t, j));
                    }
                }
            }
        }
    }
}

/// Corrective direction: keep the block's `y` as-is and re-route every
/// client's `x` optimally within it — each client greedily fills the
/// cheapest facilities (w.r.t. the current Lagrangized service costs)
/// up to their `y_i` capacities. This is the exact block optimum over
/// `x` for fixed `y`; adding it as a second line-searched direction
/// turns the slow vertex-only Frank-Wolfe into a (partially)
/// corrective variant and speeds up objective convergence markedly.
/// Prices come from the arena's own dual snapshot (`arena.duals()`);
/// `costs` is caller-owned scratch reused across blocks.
pub(crate) fn greedy_x_given_y(
    inst: &MipInstance,
    data: &VideoBlock,
    y: &[(vod_model::VhoId, f64)],
    arena: &PenaltyArena,
    costs: &mut Vec<(f64, vod_model::VhoId, f64)>,
) -> BlockSolution {
    let duals = arena.duals();
    let x = data
        .clients
        .iter()
        .map(|client| {
            let j = client.j.index();
            costs.clear();
            costs.extend(y.iter().filter(|&&(_, yv)| yv > 0.0).map(|&(i, yv)| {
                let mut cost = duals.obj * client.demand_gb * inst.cost(i, client.j);
                for (t, &rate) in client.rate.iter().enumerate() {
                    if rate != 0.0 {
                        cost += rate * arena.at(t, i.index(), j);
                    }
                }
                (cost, i, yv)
            }));
            costs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut remaining = 1.0f64;
            // +1: the residue-dump below may add one extra entry.
            let mut dist: Vec<(vod_model::VhoId, f64)> = Vec::with_capacity(costs.len() + 1);
            for &(_, i, yv) in costs.iter() {
                if remaining <= 0.0 {
                    break;
                }
                let take = yv.min(remaining);
                if take > 0.0 {
                    dist.push((i, take));
                    remaining -= take;
                }
            }
            // The y-mass can dip fractionally below 1 from pruning
            // noise; dump the residue on the cheapest facility.
            if remaining > 1e-12 {
                if let Some(&(_, fi, _)) = costs.first() {
                    if let Some(e) = dist.iter_mut().find(|e| e.0 == fi) {
                        e.1 += remaining;
                    } else {
                        dist.push((fi, remaining));
                    }
                }
            }
            dist.sort_by_key(|&(i, _)| i);
            dist
        })
        .collect();
    BlockSolution { y: y.to_vec(), x }
}

/// Lagrangian lower bound `LR(λ̄)` with the smoothed duals (Appendix,
/// eq. (13)): per-block dual-ascent bounds in scaled units, then
/// `LR = (Σ_k scaledLB_k − Σ_rows π̄_r·b_r) / π̄_0`.
///
/// Retargets the shared penalty arena at `smoothed`; when the smoothed
/// duals are version-identical to the arena's snapshot (nothing moved
/// since the last bound), the rebuild is skipped outright.
fn lagrangian_bound(
    layout: &RowLayout,
    coupling: &Coupling,
    smoothed: &Duals,
    pool: &WorkerPool<'_>,
    idx_all: &[usize],
) -> Option<f64> {
    if smoothed.obj <= 0.0 {
        return None;
    }
    pool.update_penalty(smoothed);
    let bounds = pool.dual_bounds(idx_all);
    let scaled_sum: f64 = bounds.iter().sum();
    let penalty_mass: f64 = (0..layout.n_rows())
        .map(|r| smoothed.rows[r] * coupling.cap(r))
        .sum();
    Some((scaled_sum - penalty_mass) / smoothed.obj)
}

/// Exact-certified Lagrangian bound at the smoothed duals: as
/// [`lagrangian_bound`], but every block bound is
/// `max(dual-ascent, exact block LP)` — both valid per-block bounds,
/// so the mix is valid. This is the certificate that converts a failed
/// `FEAS(B)` run's *uncertified* `lo` lift into a certified lower
/// bound: the run's own terminal duals typically prove a bound within
/// a fraction of a percent of the infeasible target `B`, which is what
/// lets the bisection close a ≤2 % certified gap instead of reporting
/// `converged: false` with a loose heuristic bound.
fn exact_lagrangian(
    layout: &RowLayout,
    coupling: &Coupling,
    smoothed: &Duals,
    pool: &WorkerPool<'_>,
    idx_all: &[usize],
) -> Option<f64> {
    if smoothed.obj <= 0.0 {
        return None;
    }
    pool.update_penalty(smoothed);
    let heur = pool.dual_bounds(idx_all);
    let exact = pool.exact_bounds(idx_all);
    let scaled_sum: f64 = heur.iter().zip(&exact).map(|(&h, &e)| h.max(e)).sum();
    let penalty_mass: f64 = (0..layout.n_rows())
        .map(|r| smoothed.rows[r] * coupling.cap(r))
        .sum();
    Some((scaled_sum - penalty_mass) / smoothed.obj)
}

/// One evaluation of the Lagrangian dual at capacity-normalized
/// multipliers `ν` (`ν_r = μ_r·b_r`): retargets the arena, runs one
/// parallel block sweep, and returns `g(ν) = Σ_k bound_k − Σ_r ν_r`
/// while filling `rel` with the ν-space subgradient (the dimensionless
/// relative violation of each row under the block minimizers).
///
/// `exact_set` lists blocks whose heuristic dual-ascent bound is
/// additionally replaced by `max(heuristic, exact block LP)` — both
/// are valid per-block lower bounds, so the mix is a valid global
/// bound at any subset (the hybrid certification trick: exact LPs only
/// where the heuristic is loose).
#[allow(clippy::too_many_arguments)]
fn polish_eval(
    coupling: &Coupling,
    pool: &WorkerPool<'_>,
    idx_all: &[usize],
    nu: &[f64],
    exact_set: &[usize],
    duals: &mut Duals,
    rel: &mut [f64],
    per: &mut [f64],
) -> f64 {
    for (r, d) in duals.rows.iter_mut().enumerate() {
        *d = nu[r] / coupling.cap(r);
    }
    duals.bump_version();
    pool.update_penalty(duals);
    // A full exact set upgrades the whole sweep: exact bounds *and*
    // exact-minimizer usage, so the returned `rel` is a true
    // subgradient of the Lagrangian dual rather than the heuristic
    // minimizer's approximation of it.
    let full_exact = exact_set.len() == idx_all.len();
    let results = pool.polish_sweep(idx_all, full_exact);
    for (slot, (lb, _)) in per.iter_mut().zip(&results) {
        *slot = *lb;
    }
    if !full_exact && !exact_set.is_empty() {
        let exact = pool.exact_bounds(exact_set);
        for (&m, &e) in exact_set.iter().zip(&exact) {
            if e > per[m] {
                per[m] = e;
            }
        }
    }
    rel.fill(-1.0); // gradient in ν-space
    for (_, usage) in &results {
        for &(row, u) in usage {
            rel[row] += u / coupling.cap(row);
        }
    }
    per.iter().sum::<f64>() - nu.iter().sum::<f64>()
}

/// Final lower-bound polish: monotone-guarded subgradient ascent on the
/// Lagrangian dual `g(μ) = Σ_k min_{z∈F^k} (c + μA)z − μ·b` over
/// `μ ≥ 0`, seeded with the smoothed duals the EPF loop ended on.
///
/// The ascent works in *capacity-normalized* coordinates `ν_r = μ_r·b_r`
/// with exponentiated-gradient steps (multiplicative updates adapt
/// price magnitudes geometrically, which matters because the EPF seed
/// can be off by orders of magnitude). Unlike a free-running
/// subgradient scheme, the iterate is leashed to the best point seen:
/// any step that loses more than 3 % of the best value — or sustained
/// non-improvement — resets to the best iterate with a smaller step, so
/// the returned bound can never fall below the seed's own evaluation
/// (the failure mode that used to throw away a good seed entirely).
///
/// Two stages: `cfg.polish_iters` iterations with the cheap per-block
/// dual-ascent bounds, then — when `cfg.exact_cert > 0` — an exact
/// certification stage: one full exact-block-LP sweep calibrates which
/// blocks the heuristic underestimates, and `exact_cert` further ascent
/// iterations evaluate exact LPs on that subset only (valid at any
/// subset, see [`polish_eval`]). Every iterate's value is a valid
/// global bound, so the best value seen is returned.
fn polish_bound(
    layout: &RowLayout,
    coupling: &Coupling,
    start: &Duals,
    cfg: &EpfConfig,
    pool: &WorkerPool<'_>,
    idx_all: &[usize],
) -> f64 {
    if start.obj <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let n_rows = layout.n_rows();
    let trace = std::env::var_os("EPF_TRACE").is_some();
    // Normalized multipliers ν_r = (π_r/π_0)·b_r.
    let seed_nu: Vec<f64> = (0..n_rows)
        .map(|r| (start.rows[r] / start.obj) * coupling.cap(r))
        .collect();
    // Iteration-invariant buffers: the trial duals (rows mutated in
    // place, version bumped so the arena never skips the retarget),
    // the ν-space gradient, and the per-block bound scratch.
    let mut duals = Duals::new(vec![0.0; n_rows], 1.0);
    let mut rel = vec![-1.0f64; n_rows];
    let mut per = vec![0.0f64; idx_all.len()];

    let mut nu = seed_nu.clone();
    let mut best = polish_eval(
        coupling,
        pool,
        idx_all,
        &nu,
        &[],
        &mut duals,
        &mut rel,
        &mut per,
    );
    let mut best_nu = nu.clone();
    let mut best_rel = rel.clone();

    // The shared ascent step: exponentiated gradient with a small
    // additive floor so zero rows can revive.
    let step = |nu: &mut [f64], rel: &[f64], theta: f64| {
        let floor = nu.iter().cloned().fold(0.0f64, f64::max) * 1e-9 + 1e-15;
        for (v, &g) in nu.iter_mut().zip(rel) {
            let x = g.clamp(-1.0, 1.0);
            *v = (*v + floor) * (theta * x).exp();
        }
    };

    for stage in 0..2 {
        let (iters, exact_set): (usize, &[usize]) = if stage == 0 {
            (cfg.polish_iters, &[])
        } else {
            if cfg.exact_cert == 0 {
                break;
            }
            // Certification stage: evaluate with exact block LPs on
            // *every* block. On hard instances the heuristic
            // dual-ascent bounds can undershoot the true block minima
            // by tens of percent, which buries any dual progress in
            // evaluation noise — no calibrated subset survives that,
            // so the certification wander pays for the full sweep. The
            // first full-exact evaluation at the best point itself
            // lifts `best` (it can only raise per-block bounds).
            nu.copy_from_slice(&best_nu);
            best = polish_eval(
                coupling, pool, idx_all, &nu, idx_all, &mut duals, &mut rel, &mut per,
            )
            .max(best);
            if trace {
                eprintln!(
                    "polish: exact stage on all {} blocks (best={best:.2})",
                    idx_all.len()
                );
            }
            best_rel.copy_from_slice(&rel);
            (cfg.exact_cert, idx_all)
        };
        nu.copy_from_slice(&best_nu);
        rel.copy_from_slice(&best_rel);
        // Non-monotone diminishing-step subgradient ascent. The dual is
        // concave but kinked: at a kink the subgradient direction can
        // *decrease* g, so a monotone line-search style loop just
        // shrinks its step to nothing at the seed. The classic scheme —
        // let the iterate wander with θ_k = θ₀/√k and keep the best
        // value seen (every iterate is a valid bound) — climbs through
        // the kinks instead. One leash only: a catastrophic drop (>15 %
        // of best) restarts the wander from the best point.
        let theta0 = if stage == 0 { 0.2f64 } else { 0.05f64 };
        for it in 0..iters {
            let theta = theta0 / ((it + 1) as f64).sqrt();
            step(&mut nu, &rel, theta);
            let g = polish_eval(
                coupling, pool, idx_all, &nu, exact_set, &mut duals, &mut rel, &mut per,
            );
            if trace {
                eprintln!("polish[{stage}]: g={g:.2} best={best:.2} theta={theta:.4}");
            }
            if g > best {
                best = g;
                best_nu.copy_from_slice(&nu);
                best_rel.copy_from_slice(&rel);
            } else if g < best * 0.85 {
                nu.copy_from_slice(&best_nu);
                rel.copy_from_slice(&best_rel);
            }
        }
    }
    best
}

/// Approximate solver working-set bytes (reported in Table III):
/// block solutions + instance block data + potential rows + the flat
/// penalty arena + per-worker UFL build/search scratch.
fn approx_bytes(
    inst: &MipInstance,
    blocks: &[BlockSolution],
    layout: &RowLayout,
    arena_bytes: usize,
    threads: usize,
) -> usize {
    let tuple = std::mem::size_of::<(vod_model::VhoId, f64)>();
    let sol: usize = blocks
        .iter()
        .map(|b| {
            (b.y.len() + b.x.iter().map(Vec::len).sum::<usize>()) * tuple
                + b.x.len() * std::mem::size_of::<Vec<()>>()
        })
        .sum();
    let data: usize = inst
        .blocks()
        .iter()
        .map(|d| {
            d.clients.len()
                * (std::mem::size_of::<crate::instance::BlockClient>()
                    + d.clients.first().map_or(0, |c| c.rate.len()) * 8)
                + d.facility_obj_cost.len() * 8
        })
        .sum();
    let v = layout.n_vhos;
    let max_clients = inst
        .blocks()
        .iter()
        .map(|d| d.clients.len())
        .max()
        .unwrap_or(0);
    // One reusable flat UFL (facility row + service matrix) and solver
    // scratch per worker, plus the inline path's copy.
    let per_scratch = (max_clients * v + v) * 8 + (2 * v + 3 * max_clients) * 8 + 2 * v;
    sol + data + layout.n_rows() * 16 + arena_bytes + (threads + 1) * per_scratch
}

/// Solve the LP relaxation with the EPF method (Algorithm 1), returning
/// the ε-feasible, ε-optimal fractional solution and statistics.
pub fn solve_fractional(inst: &MipInstance, cfg: &EpfConfig) -> (FractionalSolution, EpfStats) {
    solve_fractional_seeded(inst, cfg, None)
}

/// As [`solve_fractional`], but optionally warm-started from a
/// previous placement: each video's block begins at its old holders
/// (greedily re-routed) instead of the cold single-copy start. Used by
/// `solver::resolve_from` to repair a placement after a fault.
pub(crate) fn solve_fractional_seeded(
    inst: &MipInstance,
    cfg: &EpfConfig,
    warm: Option<&Placement>,
) -> (FractionalSolution, EpfStats) {
    solve_fractional_driven(inst, cfg, warm, None, None)
}

/// Loop state of one fixed-target FEAS run — the control-flow half of
/// the checkpointable solver state (the numeric half lives in the
/// coupling, the smoothed duals, and the block vectors; see
/// [`crate::checkpoint`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunState {
    /// Passes completed within the current run.
    pub(crate) local_pass: usize,
    /// Pass budget of the current run.
    pub(crate) budget: usize,
    /// `δ(z)` at the last stall-window boundary.
    pub(crate) snap_delta: f64,
    /// Whether to sample the Lagrangian bound (phase 2 only — phase 1
    /// has no objective row, so `LR` needs `π_0 > 0`).
    pub(crate) track_lb: bool,
    /// Best bound seen within this run.
    pub(crate) lb_run: f64,
}

/// Periodic checkpoint emission: every `every` completed global passes
/// the solver hands a [`SolverCheckpoint`] to `sink`. Emission happens
/// at *pass boundaries* only — mid-chunk state is not serializable —
/// and only while a FEAS run is in flight; the inter-run transition
/// logic is a pure function of the checkpointed state and replays
/// identically on resume.
pub struct CheckpointSpec<'a> {
    /// Checkpoint cadence in global passes (0 disables emission).
    pub every: u64,
    /// Receiver for each captured checkpoint (typically: serialize and
    /// write atomically via `vod_json::snapshot`).
    pub sink: &'a mut dyn FnMut(SolverCheckpoint),
}

impl std::fmt::Debug for CheckpointSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSpec")
            .field("every", &self.every)
            .field("sink", &"<fn>")
            .finish()
    }
}

/// The full-control entry: warm start, checkpoint resume, and periodic
/// checkpoint emission. `resume` must have been validated against
/// `(inst, cfg)` by the caller (`solver::solve_resumable` does); the
/// solver itself only debug-asserts shapes.
pub(crate) fn solve_fractional_driven(
    inst: &MipInstance,
    cfg: &EpfConfig,
    warm: Option<&Placement>,
    resume: Option<&SolverCheckpoint>,
    ckpt: Option<CheckpointSpec<'_>>,
) -> (FractionalSolution, EpfStats) {
    // lint:allow(wall-clock): solver wall time is reported in EpfStats
    // and never feeds back into the optimization, so it cannot break
    // run-to-run determinism of the placement itself.
    let start = Instant::now();
    let n = inst.n_videos();
    assert!(n > 0, "instance has no videos");
    assert!(cfg.epsilon > 0.0 && cfg.rho < 1.0 && cfg.lb_every > 0);
    let layout = layout_of(inst);
    let threads = cfg.effective_threads(n);
    // The penalty arena and the worker pool live for the whole solve:
    // workers borrow both the instance and the arena, so the arena is
    // created first and the pool inside one scope wrapping the solver
    // body (see `crate::pool` for the determinism contract). On resume
    // the arena starts fresh and is rebuilt at the first chunk's dual
    // snapshot — bitwise-equal to the incremental updates it replaces,
    // by the arena's rebuild invariant (`tests/penalty_props.rs`).
    // Under a memory budget, the arena gets the bytes left after the
    // fixed working set (block data + solutions + potential rows +
    // scratch) — exceeding it degrades the sparse arena to streaming
    // window rebuilds instead of OOM-ing.
    let arena_budget = cfg.memory_budget_mb.map(|mb| {
        let fixed = approx_bytes(inst, &[], &layout, 0, threads);
        (mb << 20).saturating_sub(fixed)
    });
    let arena = RwLock::new(PenaltyArena::with_layout(
        inst,
        &layout,
        cfg.layout,
        arena_budget,
    ));
    std::thread::scope(|scope| {
        let pool = WorkerPool::new(scope, threads, inst, layout, &arena, cfg.kernel);
        solve_with_pool(inst, cfg, layout, &pool, start, warm, resume, ckpt)
    })
}

/// Warm-start block for one video: open every surviving previous
/// holder and route each client to its cheapest one. Falls back to the
/// cold start when the previous placement held no copy.
fn warm_block(
    inst: &MipInstance,
    b: &crate::instance::VideoBlock,
    prev: &[vod_model::VhoId],
    n_vhos: usize,
) -> BlockSolution {
    let holders: Vec<vod_model::VhoId> = prev
        .iter()
        .copied()
        .filter(|h| h.index() < n_vhos)
        .collect();
    if holders.is_empty() {
        return initial_block(b, n_vhos);
    }
    let fallback = holders[0];
    let x = b
        .clients
        .iter()
        .map(|c| {
            let best = holders
                .iter()
                .copied()
                .min_by(|&a, &bb| {
                    inst.cost(a, c.j)
                        .total_cmp(&inst.cost(bb, c.j))
                        .then(a.cmp(&bb))
                })
                .unwrap_or(fallback);
            vec![(best, 1.0)]
        })
        .collect();
    BlockSolution {
        y: holders.into_iter().map(|h| (h, 1.0)).collect(),
        x,
    }
}

/// The EPF solve as an explicit state machine over pass boundaries.
///
/// The solver's control flow — phase 1 feasibility, the phase-2 target
/// bisection, and the FEAS runs inside each — is flattened into a
/// `Phase` loop whose complete state at any `Phase::Run` boundary is
/// `(blocks, zstar, coupling, smoothed, order, counters, lb/ub/lo,
/// RunState)`. That is exactly what [`SolverCheckpoint`] captures, so a
/// kill-and-resume at any checkpointed pass replays the remaining
/// passes bitwise-identically: the shuffle RNG re-derives from
/// `(seed, global_pass)`, the penalty arena rebuild equals its
/// incremental updates, and every inter-run transition is a pure
/// function of the captured state.
// One extra arg over clippy's threshold: the resume/checkpoint pair
// belongs at this lowest level, where the loop state lives.
#[allow(clippy::too_many_arguments)]
fn solve_with_pool(
    inst: &MipInstance,
    cfg: &EpfConfig,
    layout: RowLayout,
    pool: &WorkerPool<'_>,
    start: Instant,
    warm: Option<&Placement>,
    resume: Option<&SolverCheckpoint>,
    mut ckpt: Option<CheckpointSpec<'_>>,
) -> (FractionalSolution, EpfStats) {
    let n = inst.n_videos();
    let threads = cfg.effective_threads(n);
    let idx_all: Vec<usize> = (0..n).collect();
    let chunk_size = cfg.chunk_size.clamp(1, n.max(1));
    let fingerprint = crate::checkpoint::config_fingerprint(cfg, inst);

    /// Outcome of one fixed-target FEAS run.
    #[derive(PartialEq, Clone, Copy, Debug)]
    enum RunOutcome {
        /// δ(z) ≤ ε reached.
        Reached,
        /// No measurable progress over a stall window.
        Stalled,
        /// Pass budget exhausted.
        Budget,
    }

    /// Control state between ticks of the solver loop. Only `Run` is
    /// ever checkpointed; the other states are transient transitions.
    enum Phase {
        /// One FEAS run in flight: minimize Φ for the coupling's
        /// *current* objective target until δ(z) ≤ ε, progress stalls,
        /// or the budget runs out. With the target fixed, Φ is a
        /// well-defined convex function, so the per-block Frank-Wolfe
        /// steps genuinely converge — unlike any scheme that retargets
        /// B every pass (see DESIGN.md §4).
        Run(RunState),
        /// A run just ended; fold its outcome into lb/ub/lo. Carries
        /// the ended run's pass budget so the next run's budget can
        /// adapt from checkpointed state only (resume-safe).
        RunDone {
            outcome: RunOutcome,
            lb_run: f64,
            budget: usize,
        },
        /// Phase 2 steering: converged/budget checks, next target B.
        PickTarget,
    }

    // --- State init: cold/warm start, or restored from a checkpoint ---
    let (
        mut blocks,
        mut zstar,
        mut coupling,
        mut smoothed,
        mut order,
        mut global_pass,
        mut passes_done,
        mut block_steps,
        mut lb,
        mut ub,
        mut lo,
        run0,
    ) = match resume {
        None => {
            // Initial solution: warm-started from a previous placement
            // when given, otherwise each video at its biggest client.
            // Per-block independent, so the sharded build is
            // thread-count invariant by construction.
            let blocks: Vec<BlockSolution> = crate::shard::build_blocks(threads, n, |m| {
                let b = &inst.blocks()[m];
                match warm {
                    // A warm placement may be *shorter* than the
                    // instance (append-only catalog growth): tail
                    // videos have no history and open cold.
                    Some(prev) if b.video.index() < prev.n_videos() => {
                        warm_block(inst, b, prev.stores(b.video), inst.n_vhos())
                    }
                    _ => initial_block(b, inst.n_vhos()),
                }
            });

            // Trivial lower bound LR(0): per-block dual ascent with
            // zero multipliers (pure objective UFL). The fresh arena is
            // already the zero-dual penalty, so the update only
            // retargets its snapshot.
            let zero_duals = Duals::new(vec![0.0; layout.n_rows()], 1.0);
            pool.update_penalty(&zero_duals);
            let lb0: f64 = pool.dual_bounds(&idx_all).iter().sum();

            let (usage, obj0) = crate::shard::state(inst, &layout, &blocks, threads);
            let mut coupling = Coupling::new(layout, caps_of(inst, &layout), cfg.gamma, None);
            coupling.set_state(usage, obj0);
            coupling.init_scale(cfg.epsilon);
            let smoothed = coupling.duals();

            // --- Phase 1: pure feasibility (no objective row). ---
            let phase1_budget = if cfg.feasibility_only {
                cfg.max_passes
            } else {
                (cfg.max_passes / 3).max(50)
            };
            (
                blocks,
                Vec::new(),
                coupling,
                smoothed,
                (0..n).collect::<Vec<usize>>(),
                0u64,
                0usize,
                0u64,
                lb0,
                f64::INFINITY,
                0.0f64,
                RunState {
                    local_pass: 0,
                    budget: phase1_budget,
                    snap_delta: f64::INFINITY,
                    track_lb: false,
                    lb_run: lb0,
                },
            )
        }
        Some(ck) => {
            debug_assert_eq!(ck.fingerprint, fingerprint, "unvalidated checkpoint");
            // The coupling is reconstructed exactly as the cold path
            // built it — `new` with `target: None` (so `γ·ln(m+1)`
            // uses the same m), then the checkpointed target, usage,
            // objective and scale are restored on top.
            let mut coupling = Coupling::new(layout, caps_of(inst, &layout), cfg.gamma, None);
            coupling.set_state(ck.usage.clone(), ck.obj);
            if let Some(b) = ck.target {
                coupling.set_target(b);
            }
            coupling.restore_scale(ck.delta);
            (
                ck.blocks.clone(),
                ck.zstar.clone(),
                coupling,
                Duals::new(ck.smoothed_rows.clone(), ck.smoothed_obj),
                ck.order.clone(),
                ck.global_pass,
                ck.passes_done,
                ck.block_steps,
                ck.lb,
                ck.ub,
                ck.lo,
                ck.run,
            )
        }
    };

    const STALL_WINDOW: usize = 25;
    let run_budget = (cfg.max_passes / 6).clamp(25, 400);
    // Next phase-2 run's pass budget; always (re)set by a `RunDone`
    // before any `PickTarget` consumes it, and derived only from the
    // checkpointed `RunState.budget`, so it needs no checkpoint field.
    let mut next_budget = run_budget;
    // Opt-in budgets, both checked at pass boundaries only: the wall
    // clock restarts on resume (operational latency cap), the step
    // budget is the checkpointed pass counter (deterministic).
    let over_wall = || cfg.wall_limit.is_some_and(|w| start.elapsed() >= w);
    let over_steps = |gp: u64| cfg.step_limit.is_some_and(|s| gp >= s);
    // Greedy-rerouting cost scratch, reused across all chunks.
    let mut greedy_costs: Vec<(f64, vod_model::VhoId, f64)> = Vec::new();

    let finish = |blocks: Vec<BlockSolution>,
                  lb: f64,
                  converged: bool,
                  passes_done: usize,
                  block_steps: u64| {
        let mut coupling_final = Coupling::new(layout, caps_of(inst, &layout), cfg.gamma, None);
        let (usage, objective) = crate::shard::state(inst, &layout, &blocks, threads);
        coupling_final.set_state(usage, objective);
        let max_violation = coupling_final.delta_c().max(0.0);
        let bytes = approx_bytes(
            inst,
            &blocks,
            &layout,
            pool.penalty().approx_bytes(),
            threads,
        );
        let frac = FractionalSolution {
            blocks,
            objective,
            max_violation,
            lower_bound: lb,
        };
        // The returned solution must be block-feasible exactly and
        // honest about the coupling violation it reports.
        #[cfg(feature = "audit")]
        crate::audit::check_fractional(inst, &frac, max_violation + crate::solution::INT_TOL)
            .assert_ok("fractional solution audit");
        (
            frac,
            EpfStats {
                passes: passes_done,
                block_steps,
                lower_bound: lb,
                objective,
                max_violation,
                converged,
                wall: start.elapsed(),
                approx_bytes: bytes,
            },
        )
    };

    let mut phase = Phase::Run(run0);
    loop {
        phase = match phase {
            Phase::Run(mut run) => {
                if run.local_pass >= run.budget || over_wall() || over_steps(global_pass) {
                    Phase::RunDone {
                        outcome: RunOutcome::Budget,
                        lb_run: run.lb_run,
                        budget: run.budget,
                    }
                } else {
                    run.local_pass += 1;
                    global_pass += 1;
                    passes_done += 1;
                    let mut rng = derive_rng(cfg.seed, 0xE9F ^ global_pass);
                    order.shuffle(&mut rng);

                    for chunk in order.chunks(chunk_size) {
                        // Retarget the shared arena at this chunk's
                        // snapshot — incremental: only dual rows the
                        // previous chunk's applied steps touched get
                        // re-summed.
                        pool.update_penalty(&coupling.duals());
                        let candidates: Vec<UflSolution> = pool.solve(chunk);
                        let arena = pool.penalty();
                        for (&m, cand) in chunk.iter().zip(&candidates) {
                            let hat = BlockSolution::from_ufl(cand);
                            let (deltas, dobj) =
                                block_delta(inst, &layout, &inst.blocks()[m], &blocks[m], &hat);
                            let tau = coupling.line_search(&deltas, dobj);
                            if tau > 0.0 {
                                coupling.apply(&deltas, dobj, tau);
                                blocks[m].step_toward(&hat, tau);
                                block_steps += 1;
                            }
                            // Corrective step: optimal x within the
                            // current y.
                            let corrective = greedy_x_given_y(
                                inst,
                                &inst.blocks()[m],
                                &blocks[m].y,
                                &arena,
                                &mut greedy_costs,
                            );
                            let (deltas, dobj) = block_delta(
                                inst,
                                &layout,
                                &inst.blocks()[m],
                                &blocks[m],
                                &corrective,
                            );
                            let tau = coupling.line_search(&deltas, dobj);
                            if tau > 0.0 {
                                coupling.apply(&deltas, dobj, tau);
                                blocks[m].step_toward(&corrective, tau);
                                block_steps += 1;
                            }
                        }
                        // Drop the read guard before the next update.
                        drop(arena);
                    }

                    // Drift washout.
                    if run.local_pass % 25 == 0 {
                        let (usage, obj) = crate::shard::state(inst, &layout, &blocks, threads);
                        coupling.set_state(usage, obj);
                    }
                    coupling.update_scale(cfg.epsilon);

                    // Runtime invariant audit: every pass must preserve
                    // block-local feasibility (Σ_i x_ij = 1, x ≤ y).
                    // Coupling rows are *not* asserted here — violating
                    // them mid-run is exactly what the potential is
                    // busy minimizing.
                    #[cfg(feature = "audit")]
                    crate::audit::check_blocks(inst, &blocks, crate::solution::INT_TOL)
                        .assert_ok("EPF pass block invariants");

                    // Smooth the duals (Algorithm 1 step 14). The
                    // in-place mutation invalidates the snapshot
                    // identity, so stamp a fresh version for the
                    // arena's skip logic.
                    let cur = coupling.duals();
                    for (sm, c) in smoothed.rows.iter_mut().zip(&cur.rows) {
                        *sm = cfg.rho * *sm + (1.0 - cfg.rho) * c;
                    }
                    smoothed.obj = cfg.rho * smoothed.obj + (1.0 - cfg.rho) * cur.obj;
                    smoothed.bump_version();

                    // Sample the Lagrangian bound along the trajectory
                    // — the duals wander, and the best bound often
                    // shows up mid-run.
                    if run.track_lb && run.local_pass % cfg.lb_every.max(1) == 0 {
                        if let Some(lr) =
                            lagrangian_bound(&layout, &coupling, &smoothed, pool, &idx_all)
                        {
                            if lr > run.lb_run {
                                run.lb_run = lr;
                            }
                        }
                    }

                    let dz = coupling.delta_z().max(coupling.delta_c());
                    if std::env::var_os("EPF_TRACE").is_some() {
                        eprintln!(
                            "pass {}: viol={:.5} r0={:.5} obj={:.2} B={:?} steps={}",
                            global_pass,
                            coupling.delta_c(),
                            coupling.r0(),
                            coupling.objective(),
                            coupling.target(),
                            block_steps
                        );
                    }
                    if dz <= cfg.epsilon {
                        Phase::RunDone {
                            outcome: RunOutcome::Reached,
                            lb_run: run.lb_run,
                            budget: run.budget,
                        }
                    } else if run.local_pass % STALL_WINDOW == 0 && {
                        // Gap-based early stop: a window with next to no
                        // progress is a stall (the historical rule), and
                        // so is a window whose progress rate — even
                        // extrapolated over the *whole* remaining budget
                        // — cannot bring δ down to ε. Long runs on an
                        // infeasible target asymptote above ε with a
                        // slow, steady creep; projecting the creep stops
                        // them at the next window boundary instead of
                        // letting them drain the global pass budget.
                        let progress = run.snap_delta - dz;
                        let windows_left =
                            run.budget.saturating_sub(run.local_pass) as f64 / STALL_WINDOW as f64;
                        progress < 1e-4 || dz - progress * windows_left > cfg.epsilon
                    } {
                        Phase::RunDone {
                            outcome: RunOutcome::Stalled,
                            lb_run: run.lb_run,
                            budget: run.budget,
                        }
                    } else {
                        if run.local_pass % STALL_WINDOW == 0 {
                            run.snap_delta = dz;
                        }
                        // The run survives this pass boundary: emit a
                        // checkpoint if the cadence says so. Runs that
                        // just ended are not checkpointed — the
                        // transition logic below is a pure function of
                        // the last in-run checkpoint and replays.
                        if let Some(spec) = ckpt.as_mut() {
                            if spec.every > 0 && global_pass % spec.every == 0 {
                                (spec.sink)(SolverCheckpoint {
                                    fingerprint,
                                    global_pass,
                                    passes_done,
                                    block_steps,
                                    lb,
                                    ub,
                                    lo,
                                    target: coupling.target(),
                                    delta: coupling.delta(),
                                    usage: coupling.usage_all().to_vec(),
                                    obj: coupling.objective(),
                                    smoothed_rows: smoothed.rows.clone(),
                                    smoothed_obj: smoothed.obj,
                                    order: order.clone(),
                                    run,
                                    blocks: blocks.clone(),
                                    zstar: zstar.clone(),
                                });
                            }
                        }
                        Phase::Run(run)
                    }
                }
            }

            Phase::RunDone {
                outcome,
                lb_run,
                budget,
            } => {
                if std::env::var_os("EPF_TRACE").is_some() {
                    eprintln!(
                        "run done: outcome={outcome:?} budget={budget} B={:?} ub={ub:.2} lb={lb:.2} lo={lo:.2} pass={global_pass}",
                        coupling.target()
                    );
                }
                if coupling.target().is_none() {
                    // Phase 1 ended (`lb_run` tracked nothing: no
                    // objective row means LR is unavailable).
                    if cfg.feasibility_only {
                        return finish(
                            blocks,
                            0.0,
                            outcome == RunOutcome::Reached,
                            passes_done,
                            block_steps,
                        );
                    }
                    if let Some(lr) =
                        lagrangian_bound(&layout, &coupling, &smoothed, pool, &idx_all)
                    {
                        lb = lb.max(lr);
                    }
                    if outcome != RunOutcome::Reached {
                        // Couldn't even reach ε-feasibility: certify
                        // what we have.
                        if cfg.polish_iters > 0 {
                            lb = lb.max(polish_bound(
                                &layout, &coupling, &smoothed, cfg, pool, &idx_all,
                            ));
                        }
                        return finish(blocks, lb, false, passes_done, block_steps);
                    }
                    // --- Enter phase 2: bisection on the target B. ---
                    ub = coupling.objective();
                    zstar = blocks.clone();
                    // `lo` steers the bisection: certified lb, raised
                    // (uncertified) on failed FEAS(B) runs.
                    lo = lb.max(ub * 1e-3).max(1e-12);
                    next_budget = run_budget;
                    Phase::PickTarget
                } else {
                    if lb_run > lb {
                        lb = lb_run;
                        lo = lo.max(lb);
                    }
                    match outcome {
                        RunOutcome::Reached => {
                            let obj = coupling.objective();
                            if obj < ub {
                                ub = obj;
                                zstar = blocks.clone();
                            }
                            next_budget = budget;
                        }
                        RunOutcome::Stalled | RunOutcome::Budget => {
                            // The *target row* still violates ε, but
                            // the terminal iterate may already be
                            // ε-feasible in the real coupling rows (the
                            // target row is only the bisection device,
                            // and it is exactly the real-row violation
                            // that the returned solution's
                            // `max_violation` reports). Harvest it when
                            // it beats the incumbent — FEAS(B) runs
                            // that *nearly* reach a low target often
                            // end on better points than the last run
                            // that fully converged.
                            // Only *stalled* endpoints are harvested:
                            // they are descent fixed points, so their
                            // blocks are as settled as a Reached
                            // iterate's. A Budget endpoint is an
                            // arbitrary mid-descent snapshot — often
                            // lower-objective but much more fractional,
                            // which the rounding pass pays for.
                            let obj = coupling.objective();
                            if outcome == RunOutcome::Stalled
                                && coupling.delta_c() <= cfg.epsilon
                                && obj < ub
                            {
                                ub = obj;
                                zstar = blocks.clone();
                            }
                            // FEAS(B) looks infeasible at this target:
                            // steer the bisection up (not a certified
                            // bound).
                            if let Some(b) = coupling.target() {
                                lo = lo.max(b);
                            }
                            // With exact certification enabled, convert
                            // the failure into a *certified* bound: the
                            // exact-block-LP Lagrangian at the run's own
                            // smoothed duals lands close to the
                            // infeasible target.
                            if cfg.exact_cert > 0 {
                                if let Some(lr) =
                                    exact_lagrangian(&layout, &coupling, &smoothed, pool, &idx_all)
                                {
                                    if lr > lb {
                                        lb = lr;
                                    }
                                }
                            }
                            // Adaptive patience: a run that ran out of
                            // budget might only have needed more
                            // passes; give the next run 1.5×. Derived
                            // from the checkpointed `RunState.budget`
                            // alone, so resume replays identically.
                            next_budget = if outcome == RunOutcome::Budget {
                                (budget.saturating_mul(3) / 2).min(1200)
                            } else {
                                budget
                            };
                        }
                    }
                    Phase::PickTarget
                }
            }

            Phase::PickTarget => {
                // Certification tolerance: `gap_limit` when set (the
                // gap-based early stop), `epsilon` otherwise.
                let cert = cfg.gap_limit.unwrap_or(cfg.epsilon);
                let mut converged = ub <= (1.0 + cert) * lb + 1e-9;
                let out_of_budget =
                    passes_done >= cfg.max_passes || over_wall() || over_steps(global_pass);
                // Pinched: B cannot move meaningfully anymore.
                let pinched = ub <= lo * (1.0 + cert);
                if converged || out_of_budget || pinched {
                    // Certification polish: tighten the Lagrangian
                    // bound by monotone subgradient ascent from the
                    // (now well-tuned) EPF duals.
                    if !converged && cfg.polish_iters > 0 {
                        let polished =
                            polish_bound(&layout, &coupling, &smoothed, cfg, pool, &idx_all);
                        lb = lb.max(polished);
                        converged = ub <= (1.0 + cert) * lb + 1e-9;
                    }
                    return finish(zstar, lb, converged, passes_done, block_steps);
                }
                let b = (lo * ub).sqrt().min(ub / (1.0 + 1.5 * cfg.epsilon)).max(lo);
                coupling.set_target(b);
                coupling.init_scale(cfg.epsilon); // re-scale δ for the new target
                let budget = next_budget.min(cfg.max_passes.saturating_sub(passes_done).max(1));
                Phase::Run(RunState {
                    local_pass: 0,
                    budget,
                    snap_delta: f64::INFINITY,
                    track_lb: true,
                    lb_run: lb,
                })
            }
        };
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::instance::DiskConfig;
    use vod_model::Mbps;
    use vod_net::topologies;
    use vod_trace::{
        analysis, generate_trace, synthesize_library, DemandInput, LibraryConfig, TraceConfig,
    };

    pub(crate) fn small_instance(
        n_videos: usize,
        ratio: f64,
        capacity_gbps: f64,
        seed: u64,
    ) -> MipInstance {
        let mut net = topologies::mesh_backbone(6, 9, seed);
        net.set_uniform_capacity(Mbps::from_gbps(capacity_gbps));
        let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(800.0, 7, seed));
        let windows = analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio },
            1.0,
            0.0,
            None,
        )
    }

    #[test]
    fn converges_on_small_instance() {
        // Tiny instances have proportionally coarse granularity (one
        // video is a sizable share of a VHO's disk), so — exactly as
        // the paper observes for its smallest libraries (Section V-D:
        // 4.1 % at 5 K videos vs 1.0 % at 200 K) — the certified gap
        // tolerance is looser here than the 1 % production default.
        let inst = small_instance(160, 2.0, 1.0, 5);
        let cfg = EpfConfig {
            epsilon: 0.05,
            max_passes: 600,
            seed: 5,
            ..Default::default()
        };
        let (frac, stats) = solve_fractional(&inst, &cfg);
        assert!(stats.converged, "no convergence: {stats:?}");
        assert!(frac.max_violation <= cfg.epsilon + 1e-9);
        assert!(frac.objective <= (1.0 + cfg.epsilon) * frac.lower_bound + 1e-6);
        assert!(frac.lower_bound > 0.0);
    }

    #[test]
    fn blocks_satisfy_local_constraints() {
        let inst = small_instance(60, 2.0, 1.0, 6);
        let (frac, _) = solve_fractional(
            &inst,
            &EpfConfig {
                max_passes: 80,
                seed: 6,
                ..Default::default()
            },
        );
        for (b, data) in frac.blocks.iter().zip(inst.blocks()) {
            assert!(!b.y.is_empty(), "every video must be stored somewhere");
            assert_eq!(b.x.len(), data.clients.len());
            for dist in &b.x {
                let total: f64 = dist.iter().map(|&(_, v)| v).sum();
                assert!((total - 1.0).abs() < 1e-6, "x must sum to 1: {total}");
                for &(i, v) in dist {
                    assert!(v <= b.y_at(i) + 1e-6, "x_ij={v} exceeds y_i={}", b.y_at(i));
                }
            }
            for &(_, yv) in &b.y {
                assert!((0.0..=1.0 + 1e-9).contains(&yv));
            }
        }
    }

    #[test]
    fn feasibility_mode_detects_feasible_and_infeasible() {
        // Plenty of everything → feasible.
        let inst = small_instance(60, 3.0, 2.0, 7);
        let cfg = EpfConfig {
            max_passes: 120,
            seed: 7,
            ..Default::default()
        }
        .feasibility();
        let (frac, stats) = solve_fractional(&inst, &cfg);
        assert!(stats.converged);
        assert!(frac.max_violation <= cfg.epsilon + 1e-9);

        // Starved disk (just above 1 copy each, tiny links) → cannot
        // reach ε-feasibility in the pass budget.
        let starved = small_instance(60, 1.02, 0.002, 7);
        let cfg2 = EpfConfig {
            max_passes: 40,
            seed: 7,
            ..Default::default()
        }
        .feasibility();
        let (_, stats2) = solve_fractional(&starved, &cfg2);
        assert!(!stats2.converged);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = small_instance(50, 2.0, 1.0, 8);
        let cfg = EpfConfig {
            max_passes: 30,
            seed: 8,
            threads: 2,
            ..Default::default()
        };
        let (a, _) = solve_fractional(&inst, &cfg);
        let (b, _) = solve_fractional(&inst, &cfg);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.max_violation, b.max_violation);
    }

    #[test]
    fn lower_bound_is_sane() {
        // The Lagrangian bound must never exceed the achieved
        // objective once ε-feasible (up to the ε slack).
        let inst = small_instance(70, 2.5, 1.5, 9);
        let cfg = EpfConfig {
            max_passes: 150,
            seed: 9,
            ..Default::default()
        };
        let (frac, stats) = solve_fractional(&inst, &cfg);
        if stats.converged {
            assert!(frac.lower_bound <= frac.objective * (1.0 + 0.05));
        }
        assert!(frac.lower_bound >= 0.0);
    }

    #[test]
    fn popular_videos_get_more_copies() {
        let inst = small_instance(100, 2.0, 1.0, 10);
        let (frac, _) = solve_fractional(
            &inst,
            &EpfConfig {
                max_passes: 120,
                seed: 10,
                ..Default::default()
            },
        );
        let ranked = inst.demand.aggregate.rank_videos();
        let mass = |m: vod_model::VideoId| -> f64 {
            frac.blocks[m.index()].y.iter().map(|&(_, v)| v).sum()
        };
        let top: f64 = ranked[..10].iter().map(|&m| mass(m)).sum();
        let bottom: f64 = ranked[ranked.len() - 10..].iter().map(|&m| mass(m)).sum();
        assert!(
            top > bottom,
            "popular videos should hold more copy mass: top {top} vs bottom {bottom}"
        );
    }
}
