//! The MIP instance: parameters of Table I plus derived per-video
//! block data used by the decomposition solver.
//!
//! An instance bundles the network (`V`, `L`, `P_ij`, `B_l`), the
//! catalog (`M`, `s^m`, `r^m`), the demand input (`a_j^m`, `T`,
//! `f_j^m(t)`), the per-VHO disk capacities `D_i`, the transfer-cost
//! coefficients `α`, `β` of eq. (1), and optionally the
//! placement-transfer cost term of eq. (11).

use vod_model::{Catalog, Gigabytes, VhoId, VideoId};
use vod_net::{Network, PathSet};
use vod_trace::DemandInput;

/// How disk is apportioned across VHOs (Section VII-A / Fig. 11).
#[derive(Debug, Clone)]
pub enum DiskConfig {
    /// Every VHO gets the same capacity; total = `ratio` × library size.
    UniformRatio { ratio: f64 },
    /// Three VHO tiers by subscriber population: `n_large` biggest
    /// metros get 4 shares, `n_medium` get 2, the rest 1 (a large VHO
    /// has twice the disk of a medium, which has twice a small —
    /// Fig. 11's nonuniform case). Total = `ratio` × library size.
    Tiered {
        ratio: f64,
        n_large: usize,
        n_medium: usize,
    },
    /// Explicit capacities, one per VHO.
    Explicit(Vec<Gigabytes>),
}

impl DiskConfig {
    /// The paper's nonuniform split for the 55-VHO backbone: 12 large,
    /// 19 medium, 24 small.
    pub fn tiered_55(ratio: f64) -> Self {
        DiskConfig::Tiered {
            ratio,
            n_large: 12,
            n_medium: 19,
        }
    }

    /// Materialize per-VHO capacities.
    pub fn capacities(&self, net: &Network, library_size: Gigabytes) -> Vec<Gigabytes> {
        let n = net.num_nodes();
        match self {
            DiskConfig::UniformRatio { ratio } => {
                assert!(*ratio > 0.0, "disk ratio must be positive");
                let per = library_size * *ratio / n as f64;
                vec![per; n]
            }
            DiskConfig::Tiered {
                ratio,
                n_large,
                n_medium,
            } => {
                assert!(*ratio > 0.0, "disk ratio must be positive");
                assert!(n_large + n_medium <= n, "tier counts exceed VHO count");
                // Rank VHOs by population (desc, deterministic ties).
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    net.nodes()[b]
                        .population
                        .total_cmp(&net.nodes()[a].population)
                        .then(a.cmp(&b))
                });
                let mut shares = vec![1.0f64; n];
                for (rank, &v) in order.iter().enumerate() {
                    shares[v] = if rank < *n_large {
                        4.0
                    } else if rank < n_large + n_medium {
                        2.0
                    } else {
                        1.0
                    };
                }
                let total_shares: f64 = shares.iter().sum();
                let total = library_size * *ratio;
                shares
                    .into_iter()
                    .map(|s| total * (s / total_shares))
                    .collect()
            }
            DiskConfig::Explicit(caps) => {
                assert_eq!(caps.len(), n, "capacity list length mismatch");
                caps.clone()
            }
        }
    }
}

/// Optional placement-transfer cost of eq. (11): storing video `m` at
/// VHO `i` additionally costs `w · s^m · c(source→i)` where the source
/// is the nearest previous holder of `m` (for incremental updates) or
/// a fixed origin VHO (for initial population).
#[derive(Debug, Clone)]
pub struct PlacementCost {
    /// The weight `w` of eq. (11); 0 disables the term.
    pub weight: f64,
    /// Previous placement: per video, sorted list of holders. Videos
    /// absent (or with no holders) fall back to `origin`.
    pub previous: Option<Vec<Vec<VhoId>>>,
    /// The origin VHO `o` for videos with no previous copy.
    pub origin: VhoId,
}

/// Per-client data of one video's block: the client VHO `j`, its
/// objective weight `s^m · a_j^m`, and its active-stream counts
/// `f_j^m(t)` for every enforced window.
#[derive(Debug, Clone)]
pub struct BlockClient {
    pub j: VhoId,
    /// `s^m · a_j^m` — multiplied by `c_ij` in the objective.
    pub demand_gb: f64,
    /// `r^m · f_j^m(t)` per window (Mb/s drawn on every link of the
    /// serving path during window `t`).
    pub rate: Vec<f64>,
}

/// Precomputed block data for one video.
#[derive(Debug, Clone)]
pub struct VideoBlock {
    pub video: VideoId,
    pub size_gb: f64,
    /// Clients with nonzero demand (aggregate or active); the MIP's
    /// constraint (3) for zero-demand clients is satisfied implicitly
    /// by assigning them to any stored copy at zero cost.
    pub clients: Vec<BlockClient>,
    /// Extra objective cost of opening each facility (the eq. (11)
    /// term `w · s^m · c_{oi}`); empty when the term is disabled.
    pub facility_obj_cost: Vec<f64>,
}

/// A complete placement MIP instance.
#[derive(Debug)]
pub struct MipInstance {
    pub network: Network,
    pub paths: PathSet,
    pub catalog: Catalog,
    pub demand: DemandInput,
    pub disks: Vec<Gigabytes>,
    /// Transfer-cost coefficients of eq. (1).
    pub alpha: f64,
    pub beta: f64,
    blocks: Vec<VideoBlock>,
}

impl MipInstance {
    /// Build an instance. Validates capacities and precomputes block
    /// data.
    pub fn new(
        network: Network,
        catalog: Catalog,
        demand: DemandInput,
        disk: &DiskConfig,
        alpha: f64,
        beta: f64,
        placement_cost: Option<&PlacementCost>,
    ) -> Self {
        assert!(alpha > 0.0, "alpha must be positive (Proposition 5.1)");
        assert!(beta >= 0.0, "beta must be nonnegative");
        assert_eq!(
            demand.n_videos(),
            catalog.len(),
            "demand matrix and catalog disagree on |M|"
        );
        assert_eq!(
            demand.n_vhos(),
            network.num_nodes(),
            "demand matrix and network disagree on |V|"
        );
        for l in network.links() {
            assert!(
                l.capacity.value() > 0.0,
                "link {} has nonpositive capacity",
                l.id
            );
        }
        let paths = PathSet::shortest_paths(&network);
        let disks = disk.capacities(&network, catalog.total_size());
        assert!(disks.iter().all(|d| d.value() > 0.0), "zero disk at a VHO");
        let max_size = catalog
            .iter()
            .map(|v| v.size().value())
            .fold(0.0f64, f64::max);
        assert!(
            disks.iter().any(|d| d.value() >= max_size),
            "no VHO can store the largest video"
        );

        let n_windows = demand.windows.len();
        let mut blocks = Vec::with_capacity(catalog.len());
        for v in catalog.iter() {
            let size_gb = v.size().value();
            let rate_mbps = v.bitrate().value();
            // Union the client sets of the aggregate and active rows.
            let mut clients: std::collections::BTreeMap<VhoId, BlockClient> = Default::default();
            for &(j, a) in demand.aggregate.row(v.id) {
                clients.insert(
                    j,
                    BlockClient {
                        j,
                        demand_gb: size_gb * a,
                        rate: vec![0.0; n_windows],
                    },
                );
            }
            for (t, active) in demand.active.iter().enumerate() {
                for &(j, f) in active.row(v.id) {
                    let entry = clients.entry(j).or_insert_with(|| BlockClient {
                        j,
                        demand_gb: 0.0,
                        rate: vec![0.0; n_windows],
                    });
                    entry.rate[t] = rate_mbps * f;
                }
            }
            let facility_obj_cost = match placement_cost {
                Some(pc) if pc.weight > 0.0 => {
                    let n = network.num_nodes();
                    let holders: &[VhoId] = pc
                        .previous
                        .as_ref()
                        .and_then(|prev| prev.get(v.id.index()))
                        .map(Vec::as_slice)
                        .filter(|h| !h.is_empty())
                        .unwrap_or(std::slice::from_ref(&pc.origin));
                    (0..n)
                        .map(|i| {
                            // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
                            let iv = VhoId::from_index(i);
                            let min_cost = holders
                                .iter()
                                .map(|&h| paths.cost(h, iv, alpha, beta))
                                .fold(f64::MAX, f64::min);
                            // A VHO already holding the video pays β
                            // (its own c_ii); charge only the marginal
                            // network part so "keep the copy" is free.
                            pc.weight * size_gb * (min_cost - beta).max(0.0)
                        })
                        .collect()
                }
                _ => Vec::new(),
            };
            blocks.push(VideoBlock {
                video: v.id,
                size_gb,
                clients: clients.into_values().collect(),
                facility_obj_cost,
            });
        }

        Self {
            network,
            paths,
            catalog,
            demand,
            disks,
            alpha,
            beta,
            blocks,
        }
    }

    #[inline]
    pub fn n_videos(&self) -> usize {
        self.blocks.len()
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.network.num_nodes()
    }

    #[inline]
    pub fn n_windows(&self) -> usize {
        self.demand.windows.len()
    }

    #[inline]
    pub fn blocks(&self) -> &[VideoBlock] {
        &self.blocks
    }

    #[inline]
    pub fn block(&self, m: VideoId) -> &VideoBlock {
        &self.blocks[m.index()]
    }

    /// Transfer cost `c_ij` of eq. (1).
    #[inline]
    pub fn cost(&self, server: VhoId, client: VhoId) -> f64 {
        self.paths.cost(server, client, self.alpha, self.beta)
    }

    /// Aggregate disk across all VHOs.
    pub fn total_disk(&self) -> Gigabytes {
        self.disks.iter().copied().sum()
    }

    /// Quick necessary feasibility conditions (Section VII-C): the
    /// aggregate disk must hold at least one copy of every video, and
    /// every video must fit somewhere. Returns a human-readable reason
    /// when violated.
    pub fn quick_feasibility_check(&self) -> Result<(), String> {
        let lib = self.catalog.total_size();
        let disk = self.total_disk();
        if disk.value() < lib.value() {
            return Err(format!("aggregate disk {disk} is below library size {lib}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{Mbps, SimTime, TimeWindow};
    use vod_net::topologies;
    use vod_trace::{synthesize_library, DemandInput, LibraryConfig};

    fn tiny_instance(ratio: f64) -> MipInstance {
        let net = topologies::mesh_backbone(5, 7, 1);
        let catalog = synthesize_library(&LibraryConfig::default_for(60, 7, 1));
        let trace = vod_trace::generate_trace(
            &catalog,
            &net,
            &vod_trace::TraceConfig::default_for(500.0, 7, 1),
        );
        let windows = vod_trace::analysis::select_peak_windows(&trace, &catalog, 3600, 2);
        let demand = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), windows);
        MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio },
            1.0,
            0.0,
            None,
        )
    }

    #[test]
    fn uniform_disks_sum_to_ratio() {
        let inst = tiny_instance(2.0);
        let lib = inst.catalog.total_size();
        assert!((inst.total_disk().value() - 2.0 * lib.value()).abs() < 1e-6);
        let d0 = inst.disks[0];
        assert!(inst
            .disks
            .iter()
            .all(|&d| (d.value() - d0.value()).abs() < 1e-12));
    }

    #[test]
    fn tiered_disks_follow_population() {
        let net = topologies::mesh_backbone(10, 15, 2);
        let lib = Gigabytes::new(100.0);
        let caps = DiskConfig::Tiered {
            ratio: 3.0,
            n_large: 2,
            n_medium: 3,
        }
        .capacities(&net, lib);
        assert!((caps.iter().map(|c| c.value()).sum::<f64>() - 300.0).abs() < 1e-9);
        // The largest-population VHO has 4x the disk of the smallest.
        let mut by_pop: Vec<usize> = (0..10).collect();
        by_pop.sort_by(|&a, &b| {
            net.nodes()[b]
                .population
                .total_cmp(&net.nodes()[a].population)
        });
        let big = caps[by_pop[0]].value();
        let small = caps[by_pop[9]].value();
        assert!((big / small - 4.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_cover_demand() {
        let inst = tiny_instance(2.0);
        let mut total_gb = 0.0;
        for b in inst.blocks() {
            for c in &b.clients {
                total_gb += c.demand_gb;
                assert_eq!(c.rate.len(), inst.n_windows());
            }
        }
        // Σ s^m a_j^m = Σ over trace of sizes.
        let expect: f64 = inst
            .catalog
            .ids()
            .map(|m| inst.demand.aggregate.video_total(m) * inst.catalog.video(m).size().value())
            .sum();
        assert!((total_gb - expect).abs() < 1e-6);
    }

    #[test]
    fn cost_matches_paths() {
        let inst = tiny_instance(2.0);
        let i = VhoId::new(0);
        let j = VhoId::new(3);
        assert_eq!(
            inst.cost(i, j),
            inst.paths.hops(i, j) as f64 * inst.alpha + inst.beta
        );
        assert_eq!(inst.cost(j, j), inst.beta);
    }

    #[test]
    fn quick_check_flags_insufficient_disk() {
        let inst = tiny_instance(0.5);
        assert!(inst.quick_feasibility_check().is_err());
        assert!(tiny_instance(1.5).quick_feasibility_check().is_ok());
    }

    #[test]
    fn placement_cost_term_built() {
        let net = topologies::mesh_backbone(5, 7, 1);
        let catalog = synthesize_library(&LibraryConfig::default_for(30, 7, 1));
        let n = catalog.len();
        let demand = DemandInput {
            aggregate: vod_trace::DemandMatrix::zeros(n, 5),
            windows: vec![TimeWindow::of_len(SimTime::ZERO, 3600)],
            active: vec![vod_trace::DemandMatrix::zeros(n, 5)],
        };
        let pc = PlacementCost {
            weight: 1.0,
            previous: None,
            origin: VhoId::new(0),
        };
        let inst = MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            Some(&pc),
        );
        let b = &inst.blocks()[0];
        assert_eq!(b.facility_obj_cost.len(), 5);
        // Free to "place" at the origin itself; costly elsewhere.
        assert_eq!(b.facility_obj_cost[0], 0.0);
        assert!(b.facility_obj_cost[1..].iter().any(|&c| c > 0.0));
    }

    #[test]
    #[should_panic(expected = "nonpositive capacity")]
    fn zero_capacity_link_rejected() {
        let mut net = topologies::mesh_backbone(5, 7, 1);
        net.set_uniform_capacity(Mbps::new(0.0));
        let catalog = synthesize_library(&LibraryConfig::default_for(30, 7, 1));
        let n = catalog.len();
        let demand = DemandInput {
            aggregate: vod_trace::DemandMatrix::zeros(n, 5),
            windows: vec![],
            active: vec![],
        };
        let _ = MipInstance::new(
            net,
            catalog,
            demand,
            &DiskConfig::UniformRatio { ratio: 2.0 },
            1.0,
            0.0,
            None,
        );
    }
}
