//! Flat, incrementally-maintained link-dual penalty matrices — the
//! innermost data structure of the EPF hot path.
//!
//! Every UFL block build needs `D_t(i, j) = Σ_{l ∈ P_ij} π_{(l,t)}`:
//! the link-dual cost of serving client `j` from server `i` during
//! window `t`. The solver used to rebuild these matrices from scratch
//! (O(windows·V²·path-length), one nested `Vec<Vec<f64>>` per chunk)
//! on every dual snapshot. [`PenaltyArena`] instead keeps all windows
//! in one flat `Vec<f64>` arena and updates it *incrementally*: a
//! link → list-of-`(i,j)` reverse index over `inst.paths` (CSR, built
//! once per solve) maps each changed dual row to exactly the entries
//! it feeds, and only those entries are recomputed.
//!
//! The arena is stored **client-major** — `data[t·V² + j·V + i]` — so
//! one client's penalties over all servers form a contiguous slice
//! ([`PenaltyArena::client_row`]) that `build_ufl_into` streams
//! through the lane kernels of [`crate::kernel`] (gather once, stream,
//! scatter: the GPU-shaped call site of ROADMAP item 2).
//!
//! **Invariant:** a dirty entry is *re-summed from scratch in path
//! order*, never patched with a `+=` delta — so the arena is always
//! bitwise identical to a full rebuild under the same duals, whatever
//! update sequence produced it, and whatever [`Kernel`] backend ran
//! the batched re-sum (every backend sums each path sequentially; see
//! `crate::kernel::gather_sum`). The `penalty_incremental_matches_rebuild`
//! property test (and the determinism contract of [`crate::pool`])
//! leans on exactly this.

use crate::instance::MipInstance;
use crate::kernel::{self, Kernel};
use crate::potential::{Duals, RowLayout};
use vod_model::LinkId;

/// Outcome of a [`PenaltyArena::update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PenaltyUpdate {
    /// The snapshot is version-identical to the previous one (a clone
    /// of the same `Duals`): nothing was compared or touched.
    SkippedVersion,
    /// Rows were compared bitwise; `resummed` entries recomputed.
    Applied {
        changed_rows: usize,
        resummed: usize,
    },
}

/// Per-window penalty matrices `D_t` in a single flat arena, plus the
/// machinery to update them incrementally from dual snapshots.
#[derive(Debug, Clone)]
pub struct PenaltyArena {
    n_vhos: usize,
    n_links: usize,
    n_windows: usize,
    /// `data[t·V² + j·V + i] = Σ_{l ∈ P_ij} π_{(l,t)}` (client-major).
    data: Vec<f64>,
    /// Reverse routing index (CSR): for link `l`, the packed `j·V + i`
    /// pairs whose path `P_ij` traverses `l` are
    /// `rev_pairs[rev_off[l]..rev_off[l+1]]`.
    rev_off: Vec<u32>,
    rev_pairs: Vec<u32>,
    /// Forward routing index (CSR): for packed pair `j·V + i`, the link
    /// indices of `P_ij` *in path order* are
    /// `plinks[plinks_off[pair]..plinks_off[pair+1]]` — the batched
    /// re-sum streams these against the window's contiguous dual slice.
    plinks_off: Vec<u32>,
    plinks: Vec<u32>,
    /// The dual snapshot the arena currently reflects. Starts as the
    /// all-zero snapshot (version 0, `obj = 1`), matching the zeroed
    /// `data`.
    last: Duals,
    /// Epoch stamps (one per packed `j·V + i` pair) deduplicating dirty
    /// pairs fed by several changed links within one window.
    stamp: Vec<u32>,
    epoch: u32,
    /// Reusable dirty-pair buffer for the current window (capacity V²,
    /// the live prefix length is local to each update — no push, no
    /// steady-state allocation).
    dirty: Vec<u32>,
}

impl PenaltyArena {
    /// Build the routing indexes and a zeroed arena (which is exactly
    /// the penalty of the all-zero dual snapshot).
    pub fn new(inst: &MipInstance, layout: &RowLayout) -> Self {
        let v = inst.n_vhos();
        assert_eq!(v, layout.n_vhos, "layout does not match instance");
        let n_links = layout.n_links;
        // Two-pass CSR build: count, prefix-sum, cursor-fill — no
        // nested Vec, no push in the pair loop.
        let mut rev_off = vec![0u32; n_links + 1];
        let mut plinks_off = vec![0u32; v * v + 1];
        for i in inst.network.vho_ids() {
            for j in inst.network.vho_ids() {
                if i != j {
                    let pair = j.index() * v + i.index();
                    let path = inst.paths.path(i, j);
                    plinks_off[pair + 1] =
                        u32::try_from(path.len()).expect("path length exceeds u32"); // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                    for &l in path {
                        rev_off[l.index() + 1] += 1;
                    }
                }
            }
        }
        for l in 0..n_links {
            rev_off[l + 1] += rev_off[l];
        }
        for pair in 0..v * v {
            plinks_off[pair + 1] += plinks_off[pair];
        }
        let mut rev_pairs = vec![0u32; rev_off[n_links] as usize];
        let mut plinks = vec![0u32; plinks_off[v * v] as usize];
        let mut cursor = rev_off.clone();
        for i in inst.network.vho_ids() {
            for j in inst.network.vho_ids() {
                if i != j {
                    let pair = u32::try_from(j.index() * v + i.index())
                        .expect("VHO pair index exceeds u32"); // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                    let base = plinks_off[pair as usize] as usize;
                    for (k, &l) in inst.paths.path(i, j).iter().enumerate() {
                        let slot = cursor[l.index()] as usize;
                        rev_pairs[slot] = pair;
                        cursor[l.index()] += 1;
                        let link = u32::try_from(l.index()).expect("link index exceeds u32"); // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                        plinks[base + k] = link;
                    }
                }
            }
        }
        Self {
            n_vhos: v,
            n_links,
            n_windows: layout.n_windows,
            data: vec![0.0; layout.n_windows * v * v],
            rev_off,
            rev_pairs,
            plinks_off,
            plinks,
            last: Duals::new(vec![0.0; layout.n_rows()], 1.0),
            stamp: vec![0; v * v],
            epoch: 0,
            dirty: vec![0; v * v],
        }
    }

    /// An arena already reflecting `duals` (from-scratch rebuild; the
    /// reference point the incremental path must match bitwise).
    pub fn for_duals(
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
        kernel: Kernel,
    ) -> Self {
        let mut arena = Self::new(inst, layout);
        arena.update(inst, layout, duals, kernel);
        arena
    }

    /// Bring the arena up to date with `duals`.
    ///
    /// Fast paths, in order: (1) same snapshot version as the last
    /// applied update → return immediately; (2) per-(link, window)
    /// bitwise row comparison → only rows whose dual actually changed
    /// mark entries dirty. Dirty entries are re-summed from scratch in
    /// path order (see the module invariant): the scalar backend walks
    /// `inst.paths` with per-link row lookups (the reference shape),
    /// the lane backends stream the CSR link lists against the
    /// window's contiguous dual slice — same additions, same order,
    /// batched memory access.
    pub fn update(
        &mut self,
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
        kernel: Kernel,
    ) -> PenaltyUpdate {
        assert_eq!(duals.rows.len(), layout.n_rows(), "dual row count mismatch");
        if duals.version() != 0 && duals.version() == self.last.version() {
            return PenaltyUpdate::SkippedVersion;
        }
        let v = self.n_vhos;
        let mut changed_rows = 0usize;
        let mut resummed = 0usize;
        for t in 0..self.n_windows {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                // u32 wrap-around: reset stamps so stale epochs cannot
                // collide (unreachable in practice, cheap to guard).
                self.stamp.fill(0);
                self.epoch = 1;
            }
            let mut dirty_len = 0usize;
            for l in 0..self.n_links {
                let row = layout.link_row(LinkId::from_index(l), t);
                if duals.rows[row].to_bits() == self.last.rows[row].to_bits() {
                    continue;
                }
                changed_rows += 1;
                let (s, e) = (self.rev_off[l] as usize, self.rev_off[l + 1] as usize);
                for &pair in &self.rev_pairs[s..e] {
                    if self.stamp[pair as usize] != self.epoch {
                        self.stamp[pair as usize] = self.epoch;
                        self.dirty[dirty_len] = pair;
                        dirty_len += 1;
                    }
                }
            }
            let base = t * v * v;
            match kernel {
                Kernel::Scalar => {
                    for &pair in &self.dirty[..dirty_len] {
                        let (j, i) = (pair as usize / v, pair as usize % v);
                        // lint:allow(raw-index): the packed pair index is dense
                        // over VHO indices by construction of the reverse index
                        let iv = vod_model::VhoId::from_index(i);
                        // lint:allow(raw-index): same dense-pair decoding
                        let jv = vod_model::VhoId::from_index(j);
                        let sum: f64 = inst
                            .paths
                            .path(iv, jv)
                            .iter()
                            .map(|&l| duals.rows[layout.link_row(l, t)])
                            .sum();
                        self.data[base + pair as usize] = sum;
                    }
                }
                _ => {
                    // Gather once: the window's link-dual rows are one
                    // contiguous slice of the dual vector
                    // (`link_row(l, t) = disk_rows + t·L + l`). Stream
                    // every dirty pair's path through it and scatter
                    // the sums back — `w[l]` is bitwise the same value
                    // the scalar path reads via `link_row`, summed in
                    // the same path order.
                    let w0 = layout.link_row(LinkId::from_index(0), t);
                    let w = &duals.rows[w0..w0 + self.n_links];
                    for &pair in &self.dirty[..dirty_len] {
                        let (s, e) = (
                            self.plinks_off[pair as usize] as usize,
                            self.plinks_off[pair as usize + 1] as usize,
                        );
                        self.data[base + pair as usize] = kernel::gather_sum(&self.plinks[s..e], w);
                    }
                }
            }
            resummed += dirty_len;
        }
        // Carry the caller's version so a later update with a clone of
        // the same snapshot hits the version fast path.
        self.last.copy_from(duals);
        PenaltyUpdate::Applied {
            changed_rows,
            resummed,
        }
    }

    /// Penalty of serving client `j` from server `i` in window `t`.
    #[inline]
    pub fn at(&self, t: usize, i: usize, j: usize) -> f64 {
        self.data[t * self.n_vhos * self.n_vhos + j * self.n_vhos + i]
    }

    /// Client `j`'s contiguous penalty row over all servers in window
    /// `t` — the slice `build_ufl_into` streams through the kernels.
    #[inline]
    pub fn client_row(&self, t: usize, j: usize) -> &[f64] {
        let v = self.n_vhos;
        let base = t * v * v + j * v;
        &self.data[base..base + v]
    }

    /// The flat `V×V` matrix of one window, **client-major**:
    /// `window(t)[j·V + i]` is the penalty of serving `j` from `i`.
    #[inline]
    pub fn window(&self, t: usize) -> &[f64] {
        let v2 = self.n_vhos * self.n_vhos;
        &self.data[t * v2..(t + 1) * v2]
    }

    /// The dual snapshot the arena currently reflects — the one every
    /// consumer of the arena's entries must price against.
    #[inline]
    pub fn duals(&self) -> &Duals {
        &self.last
    }

    #[inline]
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.n_vhos
    }

    /// Approximate heap bytes held by the arena (reported through
    /// `EpfStats::approx_bytes`).
    pub fn approx_bytes(&self) -> usize {
        self.data.capacity() * 8
            + (self.rev_off.capacity()
                + self.rev_pairs.capacity()
                + self.plinks_off.capacity()
                + self.plinks.capacity())
                * 4
            + self.last.rows.capacity() * 8
            + self.stamp.capacity() * 4
            + self.dirty.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::tests::small_instance;
    use crate::epf::{caps_of, compute_state, layout_of};
    use crate::potential::Coupling;
    use crate::solution::initial_block;

    fn setup() -> (MipInstance, RowLayout, Duals) {
        let inst = small_instance(30, 2.0, 1.0, 42);
        let layout = layout_of(&inst);
        let blocks: Vec<_> = inst
            .blocks()
            .iter()
            .map(|b| initial_block(b, inst.n_vhos()))
            .collect();
        let (usage, obj) = compute_state(&inst, &layout, &blocks);
        let mut coupling = Coupling::new(layout, caps_of(&inst, &layout), 1.0, None);
        coupling.set_state(usage, obj);
        coupling.init_scale(0.01);
        let duals = coupling.duals();
        (inst, layout, duals)
    }

    /// Reference implementation: the old from-scratch nested rebuild
    /// (transposed here to the arena's client-major packing).
    fn reference_matrices(inst: &MipInstance, layout: &RowLayout, duals: &Duals) -> Vec<Vec<f64>> {
        let v = inst.n_vhos();
        (0..layout.n_windows)
            .map(|t| {
                let mut mat = vec![0.0; v * v];
                for i in inst.network.vho_ids() {
                    for j in inst.network.vho_ids() {
                        if i != j {
                            let sum: f64 = inst
                                .paths
                                .path(i, j)
                                .iter()
                                .map(|&l| duals.rows[layout.link_row(l, t)])
                                .sum();
                            mat[j.index() * v + i.index()] = sum;
                        }
                    }
                }
                mat
            })
            .collect()
    }

    #[test]
    fn rebuild_matches_reference() {
        let (inst, layout, duals) = setup();
        for &k in Kernel::all() {
            let arena = PenaltyArena::for_duals(&inst, &layout, &duals, k);
            let reference = reference_matrices(&inst, &layout, &duals);
            for (t, want) in reference.iter().enumerate() {
                assert_eq!(
                    arena.window(t),
                    want.as_slice(),
                    "window {t} ({})",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn at_and_client_row_agree() {
        let (inst, layout, duals) = setup();
        let arena = PenaltyArena::for_duals(&inst, &layout, &duals, Kernel::Chunked);
        let v = inst.n_vhos();
        for t in 0..layout.n_windows {
            for j in 0..v {
                let row = arena.client_row(t, j);
                assert_eq!(row.len(), v);
                for (i, &x) in row.iter().enumerate() {
                    assert_eq!(x.to_bits(), arena.at(t, i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn version_skip_on_same_snapshot() {
        let (inst, layout, duals) = setup();
        let mut arena = PenaltyArena::new(&inst, &layout);
        let first = arena.update(&inst, &layout, &duals, Kernel::Chunked);
        assert!(matches!(first, PenaltyUpdate::Applied { .. }));
        // Same snapshot (clone): skipped without any row comparison.
        let again = arena.update(&inst, &layout, &duals.clone(), Kernel::Chunked);
        assert_eq!(again, PenaltyUpdate::SkippedVersion);
        // A bumped clone with identical values is re-compared but
        // resums nothing.
        let mut bumped = duals.clone();
        bumped.bump_version();
        match arena.update(&inst, &layout, &bumped, Kernel::Chunked) {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                assert_eq!(changed_rows, 0);
                assert_eq!(resummed, 0);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn incremental_update_matches_rebuild_after_row_change() {
        let (inst, layout, duals) = setup();
        for &k in Kernel::all() {
            let mut arena = PenaltyArena::for_duals(&inst, &layout, &duals, k);
            // Perturb a couple of link rows (and one disk row, which must
            // not affect penalties at all).
            let mut perturbed = duals.clone();
            perturbed.rows[0] *= 3.0; // disk row
            let link_row0 = layout.link_row(LinkId::new(0), 0);
            perturbed.rows[link_row0] += 0.125;
            if layout.n_windows > 1 {
                let r = layout.link_row(LinkId::new(1), 1);
                perturbed.rows[r] *= 0.5;
            }
            perturbed.bump_version();
            let upd = arena.update(&inst, &layout, &perturbed, k);
            let fresh = PenaltyArena::for_duals(&inst, &layout, &perturbed, k);
            for t in 0..layout.n_windows {
                assert_eq!(
                    arena.window(t),
                    fresh.window(t),
                    "window {t} ({})",
                    k.name()
                );
            }
            match upd {
                PenaltyUpdate::Applied {
                    changed_rows,
                    resummed,
                } => {
                    // Only the touched link rows count; the resummed pairs
                    // are exactly those routed over the changed links.
                    assert!((1..=2).contains(&changed_rows), "{changed_rows}");
                    assert!(resummed > 0);
                    let total_entries = layout.n_windows * inst.n_vhos() * inst.n_vhos();
                    assert!(
                        resummed < total_entries,
                        "incremental update resummed everything ({resummed}/{total_entries})"
                    );
                }
                other => panic!("expected Applied, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_arena_reflects_zero_duals() {
        let (inst, layout, _) = setup();
        let mut arena = PenaltyArena::new(&inst, &layout);
        assert!(arena.window(0).iter().all(|&x| x == 0.0));
        assert_eq!(arena.duals().obj, 1.0);
        // Updating with an explicit zero snapshot compares equal
        // everywhere and resums nothing.
        let zeros = Duals::new(vec![0.0; layout.n_rows()], 1.0);
        match arena.update(&inst, &layout, &zeros, Kernel::Chunked) {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                assert_eq!((changed_rows, resummed), (0, 0));
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn approx_bytes_counts_arena() {
        let (inst, layout, duals) = setup();
        let arena = PenaltyArena::for_duals(&inst, &layout, &duals, Kernel::Chunked);
        let v = inst.n_vhos();
        assert!(arena.approx_bytes() >= layout.n_windows * v * v * 8);
    }
}
