//! Flat, incrementally-maintained link-dual penalty matrices — the
//! innermost data structure of the EPF hot path.
//!
//! Every UFL block build needs `D_t(i, j) = Σ_{l ∈ P_ij} π_{(l,t)}`:
//! the link-dual cost of serving client `j` from server `i` during
//! window `t`. The solver used to rebuild these matrices from scratch
//! (O(windows·V²·path-length), one nested `Vec<Vec<f64>>` per chunk)
//! on every dual snapshot. [`PenaltyArena`] instead keeps the stored
//! rows in one flat `Vec<f64>` arena and updates them *incrementally*:
//! a link → list-of-`(i,j)` reverse index over `inst.paths` (CSR,
//! built once per solve) maps each changed dual row to exactly the
//! entries it feeds, and only those entries are recomputed.
//!
//! **Layouts** ([`PenaltyLayout`]). The arena is addressed through a
//! per-`(window, client)` *row slot* table:
//!
//! - [`PenaltyLayout::Dense`] stores every `(t, j)` row — the
//!   historical full `T·V²` arena (slot = `t·V + j`).
//! - [`PenaltyLayout::Sparse`] (default) stores only the rows that are
//!   *active* — client VHO `j` has nonzero demand rate in window `t`
//!   in at least one block. Every hot read is gated by exactly that
//!   predicate (`rate != 0.0` in `build_ufl_into`, the greedy
//!   correctives, and the rounding pass), so the dropped rows are
//!   never streamed; a stray [`PenaltyArena::at`] on an inactive row
//!   recomputes the sum on demand from the forward CSR — the same
//!   links in the same order, hence bitwise the value the dense arena
//!   stores. Reads are therefore **bitwise identical across layouts**
//!   (pinned by `tests/penalty_props.rs`), making the layout a pure
//!   memory knob that cannot move a solve trajectory.
//!
//! **Streaming degrade.** Under a memory budget
//! ([`PenaltyArena::with_layout`]), the sparse arena drops its reverse
//! index and epoch stamps entirely: an update then re-sums *every*
//! active row of each window whose dual slice changed, instead of only
//! the entries behind changed links. Same from-scratch sums in the
//! same path order — values stay bitwise identical, the budget only
//! trades update time for memory.
//!
//! **Invariant:** a dirty entry is *re-summed from scratch in path
//! order*, never patched with a `+=` delta — so the arena is always
//! bitwise identical to a full rebuild under the same duals, whatever
//! update sequence produced it, and whatever [`Kernel`] backend ran
//! the batched re-sum (every backend sums each path sequentially; see
//! `crate::kernel::gather_sum`). The `penalty_incremental_matches_rebuild`
//! property test (and the determinism contract of [`crate::pool`])
//! leans on exactly this.

use crate::instance::MipInstance;
use crate::kernel::{self, Kernel};
use crate::potential::{Duals, RowLayout};
use vod_model::LinkId;

/// Row-slot sentinel: the `(t, j)` row is not stored.
const NO_ROW: u32 = u32::MAX;

/// Storage layout of the penalty arena — carried in
/// [`crate::EpfConfig`] and fingerprinted like the kernel backend.
/// Reads are bitwise-identical across layouts (see the module docs),
/// so this is a memory/speed knob only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PenaltyLayout {
    /// Every `(window, client)` row (`T·V²` floats).
    Dense,
    /// Only demand-active `(window, client)` rows, CSR-indexed.
    #[default]
    Sparse,
}

impl PenaltyLayout {
    /// Parse a layout name (the bench's `--layout` flag).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "dense" => Some(Self::Dense),
            "sparse" => Some(Self::Sparse),
            _ => None,
        }
    }

    /// Stable display / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dense => "dense",
            Self::Sparse => "sparse",
        }
    }

    /// Fingerprint tag (stable across builds).
    pub fn tag(self) -> u64 {
        match self {
            Self::Dense => 0,
            Self::Sparse => 1,
        }
    }
}

/// Outcome of a [`PenaltyArena::update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PenaltyUpdate {
    /// The snapshot is version-identical to the previous one (a clone
    /// of the same `Duals`): nothing was compared or touched.
    SkippedVersion,
    /// Rows were compared bitwise; `resummed` entries recomputed.
    Applied {
        changed_rows: usize,
        resummed: usize,
    },
}

/// Per-window penalty matrices `D_t` in a single flat arena, plus the
/// machinery to update them incrementally from dual snapshots.
#[derive(Debug, Clone)]
pub struct PenaltyArena {
    n_vhos: usize,
    n_links: usize,
    n_windows: usize,
    mode: PenaltyLayout,
    /// Whether the reverse index was dropped for the memory budget
    /// (updates then stream whole windows; see the module docs).
    streaming: bool,
    /// `data[slot·V + i] = Σ_{l ∈ P_ij} π_{(l,t)}` where
    /// `slot = row_slot[t·V + j]` (client-major rows; dense layout
    /// makes `slot = t·V + j`, recovering the historical packing).
    data: Vec<f64>,
    /// Row-slot table: `row_slot[t·V + j]` is the stored slot of the
    /// `(t, j)` client row, or [`NO_ROW`].
    row_slot: Vec<u32>,
    /// Slot → packed `j` (per stored row), used by streaming rebuilds
    /// and whole-window walks.
    slot_client: Vec<u32>,
    /// First stored slot of each window (CSR over windows): window
    /// `t`'s rows are slots `row_off[t]..row_off[t+1]`.
    row_off: Vec<u32>,
    /// Reverse routing index (CSR): for link `l`, the packed `j·V + i`
    /// pairs whose path `P_ij` traverses `l` are
    /// `rev_pairs[rev_off[l]..rev_off[l+1]]`. Empty in streaming mode.
    rev_off: Vec<u32>,
    rev_pairs: Vec<u32>,
    /// Forward routing index (CSR): for packed pair `j·V + i`, the link
    /// indices of `P_ij` *in path order* are
    /// `plinks[plinks_off[pair]..plinks_off[pair+1]]` — the batched
    /// re-sum streams these against the window's contiguous dual slice.
    plinks_off: Vec<u32>,
    plinks: Vec<u32>,
    /// The dual snapshot the arena currently reflects. Starts as the
    /// all-zero snapshot (version 0, `obj = 1`), matching the zeroed
    /// `data`.
    last: Duals,
    /// Epoch stamps (one per packed `j·V + i` pair) deduplicating dirty
    /// pairs fed by several changed links within one window. Empty in
    /// streaming mode.
    stamp: Vec<u32>,
    epoch: u32,
    /// Reusable dirty-pair buffer for the current window (capacity V²,
    /// the live prefix length is local to each update — no push, no
    /// steady-state allocation). Empty in streaming mode.
    dirty: Vec<u32>,
}

impl PenaltyArena {
    /// Build the routing indexes and a zeroed arena (which is exactly
    /// the penalty of the all-zero dual snapshot) in the default
    /// layout, with no memory budget.
    pub fn new(inst: &MipInstance, layout: &RowLayout) -> Self {
        Self::with_layout(inst, layout, PenaltyLayout::default(), None)
    }

    /// As [`PenaltyArena::new`] with an explicit layout and an optional
    /// byte budget for the arena's own structures. A sparse arena whose
    /// projected size exceeds the budget degrades to streaming mode
    /// (drops the reverse index and stamps — values stay bitwise
    /// identical, updates re-sum whole changed windows). A dense arena
    /// ignores the budget: its size is fixed by the layout choice.
    pub fn with_layout(
        inst: &MipInstance,
        layout: &RowLayout,
        mode: PenaltyLayout,
        budget_bytes: Option<usize>,
    ) -> Self {
        let v = inst.n_vhos();
        assert_eq!(v, layout.n_vhos, "layout does not match instance");
        let n_links = layout.n_links;
        let n_windows = layout.n_windows;

        // Forward CSR over pairs (both layouts need it). Two-pass
        // build: count, prefix-sum, cursor-fill — no nested Vec, no
        // push in the pair loop.
        let mut plinks_off = vec![0u32; v * v + 1];
        for i in inst.network.vho_ids() {
            for j in inst.network.vho_ids() {
                if i != j {
                    let pair = j.index() * v + i.index();
                    let path = inst.paths.path(i, j);
                    // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                    let len = u32::try_from(path.len()).expect("path length exceeds u32");
                    plinks_off[pair + 1] = len;
                }
            }
        }
        for pair in 0..v * v {
            plinks_off[pair + 1] += plinks_off[pair];
        }
        let mut plinks = vec![0u32; plinks_off[v * v] as usize];
        for i in inst.network.vho_ids() {
            for j in inst.network.vho_ids() {
                if i != j {
                    let base = plinks_off[j.index() * v + i.index()] as usize;
                    for (k, &l) in inst.paths.path(i, j).iter().enumerate() {
                        // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                        let li = u32::try_from(l.index()).expect("link index exceeds u32");
                        plinks[base + k] = li;
                    }
                }
            }
        }

        // Row-slot table. Dense: identity over (t, j). Sparse: rows
        // with any nonzero demand rate — exactly the gate every hot
        // read applies before touching the arena.
        let mut row_slot = vec![NO_ROW; n_windows * v];
        match mode {
            PenaltyLayout::Dense => {
                for (s, slot) in row_slot.iter_mut().enumerate() {
                    // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                    *slot = u32::try_from(s).expect("dense row slot exceeds u32");
                }
            }
            PenaltyLayout::Sparse => {
                for b in inst.blocks() {
                    for c in &b.clients {
                        for (t, &rate) in c.rate.iter().enumerate() {
                            if rate != 0.0 {
                                row_slot[t * v + c.j.index()] = 0; // mark active
                            }
                        }
                    }
                }
                let mut next = 0u32;
                for slot in row_slot.iter_mut() {
                    if *slot != NO_ROW {
                        *slot = next;
                        next += 1;
                    }
                }
            }
        }
        let mut row_off = vec![0u32; n_windows + 1];
        let mut slot_client = Vec::with_capacity(row_slot.len());
        for t in 0..n_windows {
            for j in 0..v {
                if row_slot[t * v + j] != NO_ROW {
                    // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                    // lint:allow(alloc-in-hot-loop): one-time CSR build per instance, capacity reserved above
                    slot_client.push(u32::try_from(j).expect("client index exceeds u32"));
                }
            }
            // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
            row_off[t + 1] = u32::try_from(slot_client.len()).expect("row count exceeds u32");
        }
        let n_rows_stored = slot_client.len();

        // Memory projection: does the full incremental index fit the
        // budget? (Dense mode keeps its historical structures either
        // way — the budget is a *sparse-arena* degrade knob.)
        let full_bytes = n_rows_stored * v * 8 // data
            + (row_slot.len() + slot_client.len() + row_off.len()) * 4
            + (plinks_off.len() + plinks.len()) * 4
            + plinks.len() * 4 // rev_pairs mirrors plinks entry-for-entry
            + (n_links + 1) * 4 // rev_off
            + 2 * v * v * 4 // stamp + dirty
            + layout.n_rows() * 8; // last snapshot
        let streaming =
            mode == PenaltyLayout::Sparse && budget_bytes.is_some_and(|budget| full_bytes > budget);

        // Reverse CSR (skipped entirely in streaming mode).
        let (mut rev_off, mut rev_pairs) = (Vec::new(), Vec::new());
        if !streaming {
            rev_off = vec![0u32; n_links + 1];
            for i in inst.network.vho_ids() {
                for j in inst.network.vho_ids() {
                    if i != j {
                        for &l in inst.paths.path(i, j) {
                            rev_off[l.index() + 1] += 1;
                        }
                    }
                }
            }
            for l in 0..n_links {
                rev_off[l + 1] += rev_off[l];
            }
            rev_pairs = vec![0u32; rev_off[n_links] as usize];
            let mut cursor = rev_off.clone();
            for i in inst.network.vho_ids() {
                for j in inst.network.vho_ids() {
                    if i != j {
                        let pair = u32::try_from(j.index() * v + i.index())
                            .expect("VHO pair index exceeds u32"); // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                        for &l in inst.paths.path(i, j) {
                            let slot = cursor[l.index()] as usize;
                            rev_pairs[slot] = pair;
                            cursor[l.index()] += 1;
                        }
                    }
                }
            }
        }

        Self {
            n_vhos: v,
            n_links,
            n_windows,
            mode,
            streaming,
            data: vec![0.0; n_rows_stored * v],
            row_slot,
            slot_client,
            row_off,
            rev_off,
            rev_pairs,
            plinks_off,
            plinks,
            last: Duals::new(vec![0.0; layout.n_rows()], 1.0),
            stamp: if streaming {
                Vec::new()
            } else {
                vec![0; v * v]
            },
            epoch: 0,
            dirty: if streaming {
                Vec::new()
            } else {
                vec![0; v * v]
            },
        }
    }

    /// An arena already reflecting `duals` (from-scratch rebuild; the
    /// reference point the incremental path must match bitwise).
    pub fn for_duals(
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
        kernel: Kernel,
    ) -> Self {
        let mut arena = Self::new(inst, layout);
        arena.update(inst, layout, duals, kernel);
        arena
    }

    /// Bring the arena up to date with `duals`.
    ///
    /// Fast paths, in order: (1) same snapshot version as the last
    /// applied update → return immediately; (2) per-(link, window)
    /// bitwise row comparison → only rows whose dual actually changed
    /// mark entries dirty (incremental mode) or trigger their window's
    /// streaming rebuild. Dirty entries are re-summed from scratch in
    /// path order (see the module invariant): the scalar backend walks
    /// `inst.paths` with per-link row lookups (the reference shape),
    /// the lane backends stream the CSR link lists against the
    /// window's contiguous dual slice — same additions, same order,
    /// batched memory access.
    pub fn update(
        &mut self,
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
        kernel: Kernel,
    ) -> PenaltyUpdate {
        assert_eq!(duals.rows.len(), layout.n_rows(), "dual row count mismatch");
        if duals.version() != 0 && duals.version() == self.last.version() {
            return PenaltyUpdate::SkippedVersion;
        }
        let v = self.n_vhos;
        let mut changed_rows = 0usize;
        let mut resummed = 0usize;
        for t in 0..self.n_windows {
            if self.streaming {
                // Budget-degraded path: one bitwise scan of the
                // window's dual slice; any change re-sums every stored
                // row of the window (same from-scratch path-order sums
                // as the incremental path — bitwise identical values).
                let mut any = false;
                for l in 0..self.n_links {
                    let row = layout.link_row(LinkId::from_index(l), t);
                    if duals.rows[row].to_bits() != self.last.rows[row].to_bits() {
                        changed_rows += 1;
                        any = true;
                    }
                }
                if any {
                    resummed += self.resum_window(inst, layout, duals, kernel, t);
                }
                continue;
            }
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                // u32 wrap-around: reset stamps so stale epochs cannot
                // collide (unreachable in practice, cheap to guard).
                self.stamp.fill(0);
                self.epoch = 1;
            }
            let mut dirty_len = 0usize;
            for l in 0..self.n_links {
                let row = layout.link_row(LinkId::from_index(l), t);
                if duals.rows[row].to_bits() == self.last.rows[row].to_bits() {
                    continue;
                }
                changed_rows += 1;
                let (s, e) = (self.rev_off[l] as usize, self.rev_off[l + 1] as usize);
                for &pair in &self.rev_pairs[s..e] {
                    // Skip pairs whose client row is not stored (sparse
                    // layout): nothing to maintain, reads recompute.
                    if self.row_slot[t * v + pair as usize / v] == NO_ROW {
                        continue;
                    }
                    if self.stamp[pair as usize] != self.epoch {
                        self.stamp[pair as usize] = self.epoch;
                        self.dirty[dirty_len] = pair;
                        dirty_len += 1;
                    }
                }
            }
            match kernel {
                Kernel::Scalar => {
                    for &pair in &self.dirty[..dirty_len] {
                        let (j, i) = (pair as usize / v, pair as usize % v);
                        let slot = self.row_slot[t * v + j] as usize;
                        // lint:allow(raw-index): the packed pair index is dense
                        // over VHO indices by construction of the reverse index
                        let iv = vod_model::VhoId::from_index(i);
                        // lint:allow(raw-index): same dense-pair decoding
                        let jv = vod_model::VhoId::from_index(j);
                        let sum: f64 = inst
                            .paths
                            .path(iv, jv)
                            .iter()
                            .map(|&l| duals.rows[layout.link_row(l, t)])
                            .sum();
                        self.data[slot * v + i] = sum;
                    }
                }
                _ => {
                    // Gather once: the window's link-dual rows are one
                    // contiguous slice of the dual vector
                    // (`link_row(l, t) = disk_rows + t·L + l`). Stream
                    // every dirty pair's path through it and scatter
                    // the sums back — `w[l]` is bitwise the same value
                    // the scalar path reads via `link_row`, summed in
                    // the same path order.
                    let w0 = layout.link_row(LinkId::from_index(0), t);
                    let w = &duals.rows[w0..w0 + self.n_links];
                    for &pair in &self.dirty[..dirty_len] {
                        let (j, i) = (pair as usize / v, pair as usize % v);
                        let slot = self.row_slot[t * v + j] as usize;
                        let (s, e) = (
                            self.plinks_off[pair as usize] as usize,
                            self.plinks_off[pair as usize + 1] as usize,
                        );
                        self.data[slot * v + i] = kernel::gather_sum(&self.plinks[s..e], w);
                    }
                }
            }
            resummed += dirty_len;
        }
        // Carry the caller's version so a later update with a clone of
        // the same snapshot hits the version fast path.
        self.last.copy_from(duals);
        PenaltyUpdate::Applied {
            changed_rows,
            resummed,
        }
    }

    /// Streaming rebuild of one window: re-sum every stored row from
    /// scratch in path order. Returns the number of entries resummed.
    fn resum_window(
        &mut self,
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
        kernel: Kernel,
        t: usize,
    ) -> usize {
        let v = self.n_vhos;
        let (lo, hi) = (self.row_off[t] as usize, self.row_off[t + 1] as usize);
        match kernel {
            Kernel::Scalar => {
                for slot in lo..hi {
                    let j = self.slot_client[slot] as usize;
                    // lint:allow(raw-index): slot_client stores dense VHO indices
                    let jv = vod_model::VhoId::from_index(j);
                    for i in 0..v {
                        if i == j {
                            continue;
                        }
                        // lint:allow(raw-index): dense VHO decoding as above
                        let iv = vod_model::VhoId::from_index(i);
                        let sum: f64 = inst
                            .paths
                            .path(iv, jv)
                            .iter()
                            .map(|&l| duals.rows[layout.link_row(l, t)])
                            .sum();
                        self.data[slot * v + i] = sum;
                    }
                }
            }
            _ => {
                let w0 = layout.link_row(LinkId::from_index(0), t);
                let w = &duals.rows[w0..w0 + self.n_links];
                for slot in lo..hi {
                    let j = self.slot_client[slot] as usize;
                    for i in 0..v {
                        if i == j {
                            continue;
                        }
                        let pair = j * v + i;
                        let (s, e) = (
                            self.plinks_off[pair] as usize,
                            self.plinks_off[pair + 1] as usize,
                        );
                        self.data[slot * v + i] = kernel::gather_sum(&self.plinks[s..e], w);
                    }
                }
            }
        }
        (hi - lo) * v
    }

    /// Penalty of serving client `j` from server `i` in window `t`.
    /// Stored rows read the arena; an inactive `(t, j)` row (sparse
    /// layout only) recomputes the same path-order sum on demand from
    /// the current snapshot — bitwise the value a dense arena stores.
    #[inline]
    pub fn at(&self, t: usize, i: usize, j: usize) -> f64 {
        let v = self.n_vhos;
        let slot = self.row_slot[t * v + j];
        if slot == NO_ROW {
            if i == j {
                return 0.0;
            }
            let pair = j * v + i;
            let (s, e) = (
                self.plinks_off[pair] as usize,
                self.plinks_off[pair + 1] as usize,
            );
            let w0 = v + t * self.n_links; // RowLayout::link_row(0, t)
            let w = &self.last.rows[w0..w0 + self.n_links];
            return kernel::gather_sum(&self.plinks[s..e], w);
        }
        self.data[slot as usize * v + i]
    }

    /// Client `j`'s contiguous penalty row over all servers in window
    /// `t` — the slice `build_ufl_into` streams through the kernels.
    /// The row must be stored: always true in the dense layout, and
    /// true for every demand-active `(t, j)` in the sparse layout —
    /// which is every row the hot paths read.
    #[inline]
    pub fn client_row(&self, t: usize, j: usize) -> &[f64] {
        let v = self.n_vhos;
        let slot = self.row_slot[t * v + j];
        debug_assert!(
            slot != NO_ROW,
            "client_row({t}, {j}) on a row the sparse arena does not store"
        );
        let base = slot as usize * v;
        &self.data[base..base + v]
    }

    /// Whether the `(t, j)` client row is stored in the arena.
    #[inline]
    pub fn row_stored(&self, t: usize, j: usize) -> bool {
        self.row_slot[t * self.n_vhos + j] != NO_ROW
    }

    /// The flat `V×V` matrix of one window, **client-major**:
    /// `window(t)[j·V + i]` is the penalty of serving `j` from `i`.
    /// Dense layout only (sparse arenas do not store a contiguous
    /// window) — test/validation surface, not a hot path.
    #[inline]
    pub fn window(&self, t: usize) -> &[f64] {
        assert_eq!(
            self.mode,
            PenaltyLayout::Dense,
            "window() requires the dense layout"
        );
        let v2 = self.n_vhos * self.n_vhos;
        &self.data[t * v2..(t + 1) * v2]
    }

    /// The dual snapshot the arena currently reflects — the one every
    /// consumer of the arena's entries must price against.
    #[inline]
    pub fn duals(&self) -> &Duals {
        &self.last
    }

    #[inline]
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.n_vhos
    }

    /// The configured layout.
    #[inline]
    pub fn layout_mode(&self) -> PenaltyLayout {
        self.mode
    }

    /// Whether the memory budget degraded this arena to streaming
    /// window rebuilds (reverse index dropped).
    #[inline]
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Stored rows (≤ `T·V`; equal to it in the dense layout).
    #[inline]
    pub fn stored_rows(&self) -> usize {
        self.slot_client.len()
    }

    /// Approximate heap bytes held by the arena (reported through
    /// `EpfStats::approx_bytes`) — every sparse structure included.
    pub fn approx_bytes(&self) -> usize {
        self.data.capacity() * 8
            + (self.rev_off.capacity()
                + self.rev_pairs.capacity()
                + self.plinks_off.capacity()
                + self.plinks.capacity()
                + self.row_slot.capacity()
                + self.slot_client.capacity()
                + self.row_off.capacity())
                * 4
            + self.last.rows.capacity() * 8
            + self.stamp.capacity() * 4
            + self.dirty.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::tests::small_instance;
    use crate::epf::{caps_of, compute_state, layout_of};
    use crate::potential::Coupling;
    use crate::solution::initial_block;

    fn setup() -> (MipInstance, RowLayout, Duals) {
        let inst = small_instance(30, 2.0, 1.0, 42);
        let layout = layout_of(&inst);
        let blocks: Vec<_> = inst
            .blocks()
            .iter()
            .map(|b| initial_block(b, inst.n_vhos()))
            .collect();
        let (usage, obj) = compute_state(&inst, &layout, &blocks);
        let mut coupling = Coupling::new(layout, caps_of(&inst, &layout), 1.0, None);
        coupling.set_state(usage, obj);
        coupling.init_scale(0.01);
        let duals = coupling.duals();
        (inst, layout, duals)
    }

    fn arena_with(
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
        mode: PenaltyLayout,
        kernel: Kernel,
        budget: Option<usize>,
    ) -> PenaltyArena {
        let mut arena = PenaltyArena::with_layout(inst, layout, mode, budget);
        arena.update(inst, layout, duals, kernel);
        arena
    }

    /// Reference implementation: the old from-scratch nested rebuild
    /// (transposed here to the arena's client-major packing).
    fn reference_matrices(inst: &MipInstance, layout: &RowLayout, duals: &Duals) -> Vec<Vec<f64>> {
        let v = inst.n_vhos();
        (0..layout.n_windows)
            .map(|t| {
                let mut mat = vec![0.0; v * v];
                for i in inst.network.vho_ids() {
                    for j in inst.network.vho_ids() {
                        if i != j {
                            let sum: f64 = inst
                                .paths
                                .path(i, j)
                                .iter()
                                .map(|&l| duals.rows[layout.link_row(l, t)])
                                .sum();
                            mat[j.index() * v + i.index()] = sum;
                        }
                    }
                }
                mat
            })
            .collect()
    }

    #[test]
    fn rebuild_matches_reference() {
        let (inst, layout, duals) = setup();
        for &k in Kernel::all() {
            let arena = arena_with(&inst, &layout, &duals, PenaltyLayout::Dense, k, None);
            let reference = reference_matrices(&inst, &layout, &duals);
            for (t, want) in reference.iter().enumerate() {
                assert_eq!(
                    arena.window(t),
                    want.as_slice(),
                    "window {t} ({})",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn sparse_reads_match_dense_bitwise() {
        let (inst, layout, duals) = setup();
        let v = inst.n_vhos();
        for &k in Kernel::all() {
            let dense = arena_with(&inst, &layout, &duals, PenaltyLayout::Dense, k, None);
            let sparse = arena_with(&inst, &layout, &duals, PenaltyLayout::Sparse, k, None);
            assert!(sparse.stored_rows() <= dense.stored_rows());
            for t in 0..layout.n_windows {
                for j in 0..v {
                    for i in 0..v {
                        assert_eq!(
                            dense.at(t, i, j).to_bits(),
                            sparse.at(t, i, j).to_bits(),
                            "at({t},{i},{j}) ({})",
                            k.name()
                        );
                    }
                    if sparse.row_stored(t, j) {
                        assert_eq!(dense.client_row(t, j), sparse.client_row(t, j));
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_degrade_matches_incremental_bitwise() {
        let (inst, layout, duals) = setup();
        // A 1-byte budget forces the streaming degrade.
        let streaming = arena_with(
            &inst,
            &layout,
            &duals,
            PenaltyLayout::Sparse,
            Kernel::Chunked,
            Some(1),
        );
        assert!(streaming.is_streaming());
        let full = arena_with(
            &inst,
            &layout,
            &duals,
            PenaltyLayout::Sparse,
            Kernel::Chunked,
            None,
        );
        assert!(!full.is_streaming());
        assert!(streaming.approx_bytes() < full.approx_bytes());
        let v = inst.n_vhos();
        for t in 0..layout.n_windows {
            for j in 0..v {
                for i in 0..v {
                    assert_eq!(
                        streaming.at(t, i, j).to_bits(),
                        full.at(t, i, j).to_bits(),
                        "at({t},{i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn at_and_client_row_agree() {
        let (inst, layout, duals) = setup();
        for mode in [PenaltyLayout::Dense, PenaltyLayout::Sparse] {
            let arena = arena_with(&inst, &layout, &duals, mode, Kernel::Chunked, None);
            let v = inst.n_vhos();
            for t in 0..layout.n_windows {
                for j in 0..v {
                    if !arena.row_stored(t, j) {
                        continue;
                    }
                    let row = arena.client_row(t, j);
                    assert_eq!(row.len(), v);
                    for (i, &x) in row.iter().enumerate() {
                        assert_eq!(x.to_bits(), arena.at(t, i, j).to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn version_skip_on_same_snapshot() {
        let (inst, layout, duals) = setup();
        let mut arena = PenaltyArena::new(&inst, &layout);
        let first = arena.update(&inst, &layout, &duals, Kernel::Chunked);
        assert!(matches!(first, PenaltyUpdate::Applied { .. }));
        // Same snapshot (clone): skipped without any row comparison.
        let again = arena.update(&inst, &layout, &duals.clone(), Kernel::Chunked);
        assert_eq!(again, PenaltyUpdate::SkippedVersion);
        // A bumped clone with identical values is re-compared but
        // resums nothing.
        let mut bumped = duals.clone();
        bumped.bump_version();
        match arena.update(&inst, &layout, &bumped, Kernel::Chunked) {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                assert_eq!(changed_rows, 0);
                assert_eq!(resummed, 0);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn incremental_update_matches_rebuild_after_row_change() {
        let (inst, layout, duals) = setup();
        for mode in [PenaltyLayout::Dense, PenaltyLayout::Sparse] {
            for &k in Kernel::all() {
                let mut arena = arena_with(&inst, &layout, &duals, mode, k, None);
                // Perturb a couple of link rows (and one disk row, which
                // must not affect penalties at all).
                let mut perturbed = duals.clone();
                perturbed.rows[0] *= 3.0; // disk row
                let link_row0 = layout.link_row(LinkId::new(0), 0);
                perturbed.rows[link_row0] += 0.125;
                if layout.n_windows > 1 {
                    let r = layout.link_row(LinkId::new(1), 1);
                    perturbed.rows[r] *= 0.5;
                }
                perturbed.bump_version();
                let upd = arena.update(&inst, &layout, &perturbed, k);
                let fresh = arena_with(&inst, &layout, &perturbed, mode, k, None);
                let v = inst.n_vhos();
                for t in 0..layout.n_windows {
                    for j in 0..v {
                        if !arena.row_stored(t, j) {
                            continue;
                        }
                        assert_eq!(
                            arena.client_row(t, j),
                            fresh.client_row(t, j),
                            "window {t} client {j} ({}, {:?})",
                            k.name(),
                            mode
                        );
                    }
                }
                match upd {
                    PenaltyUpdate::Applied {
                        changed_rows,
                        resummed,
                    } => {
                        // Only the touched link rows count; the resummed
                        // pairs are exactly those routed over the changed
                        // links (and stored).
                        assert!((1..=2).contains(&changed_rows), "{changed_rows}");
                        assert!(resummed > 0);
                        let total_entries = layout.n_windows * inst.n_vhos() * inst.n_vhos();
                        assert!(
                            resummed < total_entries,
                            "incremental update resummed everything ({resummed}/{total_entries})"
                        );
                    }
                    other => panic!("expected Applied, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn zero_arena_reflects_zero_duals() {
        let (inst, layout, _) = setup();
        let mut arena = PenaltyArena::with_layout(&inst, &layout, PenaltyLayout::Dense, None);
        assert!(arena.window(0).iter().all(|&x| x == 0.0));
        assert_eq!(arena.duals().obj, 1.0);
        // Updating with an explicit zero snapshot compares equal
        // everywhere and resums nothing.
        let zeros = Duals::new(vec![0.0; layout.n_rows()], 1.0);
        match arena.update(&inst, &layout, &zeros, Kernel::Chunked) {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                assert_eq!((changed_rows, resummed), (0, 0));
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn layout_names_round_trip() {
        for mode in [PenaltyLayout::Dense, PenaltyLayout::Sparse] {
            assert_eq!(PenaltyLayout::from_name(mode.name()), Some(mode));
        }
        assert_eq!(PenaltyLayout::from_name("bogus"), None);
        assert_ne!(
            PenaltyLayout::Dense.tag(),
            PenaltyLayout::Sparse.tag(),
            "fingerprint tags must differ"
        );
    }

    #[test]
    fn approx_bytes_counts_arena() {
        let (inst, layout, duals) = setup();
        let arena = arena_with(
            &inst,
            &layout,
            &duals,
            PenaltyLayout::Dense,
            Kernel::Chunked,
            None,
        );
        let v = inst.n_vhos();
        assert!(arena.approx_bytes() >= layout.n_windows * v * v * 8);
        let sparse = arena_with(
            &inst,
            &layout,
            &duals,
            PenaltyLayout::Sparse,
            Kernel::Chunked,
            None,
        );
        assert!(sparse.approx_bytes() >= sparse.stored_rows() * v * 8);
    }
}
