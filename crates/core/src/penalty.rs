//! Flat, incrementally-maintained link-dual penalty matrices — the
//! innermost data structure of the EPF hot path.
//!
//! Every UFL block build needs `D_t[i·V + j] = Σ_{l ∈ P_ij} π_{(l,t)}`:
//! the link-dual cost of serving client `j` from server `i` during
//! window `t`. The solver used to rebuild these matrices from scratch
//! (O(windows·V²·path-length), one nested `Vec<Vec<f64>>` per chunk)
//! on every dual snapshot. [`PenaltyArena`] instead keeps all windows
//! in one flat `Vec<f64>` arena and updates it *incrementally*: a
//! link → list-of-`(i,j)` reverse index over `inst.paths` (built once
//! per solve) maps each changed dual row to exactly the entries it
//! feeds, and only those entries are recomputed.
//!
//! **Invariant:** a dirty entry is *re-summed from scratch in path
//! order*, never patched with a `+=` delta — so the arena is always
//! bitwise identical to a full rebuild under the same duals, whatever
//! update sequence produced it. The `penalty_incremental_matches_rebuild`
//! property test (and the determinism contract of [`crate::pool`])
//! leans on exactly this.

use crate::instance::MipInstance;
use crate::potential::{Duals, RowLayout};
use vod_model::LinkId;

/// Outcome of a [`PenaltyArena::update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PenaltyUpdate {
    /// The snapshot is version-identical to the previous one (a clone
    /// of the same `Duals`): nothing was compared or touched.
    SkippedVersion,
    /// Rows were compared bitwise; `resummed` entries recomputed.
    Applied {
        changed_rows: usize,
        resummed: usize,
    },
}

/// Per-window penalty matrices `D_t` in a single flat arena, plus the
/// machinery to update them incrementally from dual snapshots.
#[derive(Debug, Clone)]
pub struct PenaltyArena {
    n_vhos: usize,
    n_links: usize,
    n_windows: usize,
    /// `data[t·V² + i·V + j] = Σ_{l ∈ P_ij} π_{(l,t)}`.
    data: Vec<f64>,
    /// Reverse routing index: for every link `l`, the packed `i·V + j`
    /// pairs whose path `P_ij` traverses `l`.
    rev: Vec<Vec<u32>>,
    /// The dual snapshot the arena currently reflects. Starts as the
    /// all-zero snapshot (version 0, `obj = 1`), matching the zeroed
    /// `data`.
    last: Duals,
    /// Epoch stamps (one per packed `i·V + j` pair) deduplicating dirty
    /// pairs fed by several changed links within one window.
    stamp: Vec<u32>,
    epoch: u32,
    /// Reusable dirty-pair list for the current window.
    dirty: Vec<u32>,
}

impl PenaltyArena {
    /// Build the reverse index and a zeroed arena (which is exactly the
    /// penalty of the all-zero dual snapshot).
    pub fn new(inst: &MipInstance, layout: &RowLayout) -> Self {
        let v = inst.n_vhos();
        assert_eq!(v, layout.n_vhos, "layout does not match instance");
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); layout.n_links];
        for i in inst.network.vho_ids() {
            for j in inst.network.vho_ids() {
                if i != j {
                    let pair = u32::try_from(i.index() * v + j.index())
                        .expect("VHO pair index exceeds u32"); // lint:allow(no-panic-hot-path): constructor-only size guard, once per instance
                    for &l in inst.paths.path(i, j) {
                        rev[l.index()].push(pair);
                    }
                }
            }
        }
        Self {
            n_vhos: v,
            n_links: layout.n_links,
            n_windows: layout.n_windows,
            data: vec![0.0; layout.n_windows * v * v],
            rev,
            last: Duals::new(vec![0.0; layout.n_rows()], 1.0),
            stamp: vec![0; v * v],
            epoch: 0,
            dirty: Vec::new(),
        }
    }

    /// An arena already reflecting `duals` (from-scratch rebuild; the
    /// reference point the incremental path must match bitwise).
    pub fn for_duals(inst: &MipInstance, layout: &RowLayout, duals: &Duals) -> Self {
        let mut arena = Self::new(inst, layout);
        arena.update(inst, layout, duals);
        arena
    }

    /// Bring the arena up to date with `duals`.
    ///
    /// Fast paths, in order: (1) same snapshot version as the last
    /// applied update → return immediately; (2) per-(link, window)
    /// bitwise row comparison → only rows whose dual actually changed
    /// mark entries dirty. Dirty entries are re-summed from scratch in
    /// path order (see the module invariant).
    pub fn update(
        &mut self,
        inst: &MipInstance,
        layout: &RowLayout,
        duals: &Duals,
    ) -> PenaltyUpdate {
        assert_eq!(duals.rows.len(), layout.n_rows(), "dual row count mismatch");
        if duals.version() != 0 && duals.version() == self.last.version() {
            return PenaltyUpdate::SkippedVersion;
        }
        let v = self.n_vhos;
        let mut changed_rows = 0usize;
        let mut resummed = 0usize;
        for t in 0..self.n_windows {
            self.epoch = self.epoch.wrapping_add(1);
            if self.epoch == 0 {
                // u32 wrap-around: reset stamps so stale epochs cannot
                // collide (unreachable in practice, cheap to guard).
                self.stamp.fill(0);
                self.epoch = 1;
            }
            self.dirty.clear();
            for l in 0..self.n_links {
                let row = layout.link_row(LinkId::from_index(l), t);
                if duals.rows[row].to_bits() == self.last.rows[row].to_bits() {
                    continue;
                }
                changed_rows += 1;
                for &pair in &self.rev[l] {
                    if self.stamp[pair as usize] != self.epoch {
                        self.stamp[pair as usize] = self.epoch;
                        self.dirty.push(pair);
                    }
                }
            }
            let base = t * v * v;
            for &pair in &self.dirty {
                let (i, j) = (pair as usize / v, pair as usize % v);
                // lint:allow(raw-index): the packed pair index is dense
                // over VHO indices by construction of the reverse index
                let iv = vod_model::VhoId::from_index(i);
                // lint:allow(raw-index): same dense-pair decoding
                let jv = vod_model::VhoId::from_index(j);
                let sum: f64 = inst
                    .paths
                    .path(iv, jv)
                    .iter()
                    .map(|&l| duals.rows[layout.link_row(l, t)])
                    .sum();
                self.data[base + pair as usize] = sum;
            }
            resummed += self.dirty.len();
        }
        // Carry the caller's version so a later update with a clone of
        // the same snapshot hits the version fast path.
        self.last.copy_from(duals);
        PenaltyUpdate::Applied {
            changed_rows,
            resummed,
        }
    }

    /// Penalty of serving client `j` from server `i` in window `t`.
    #[inline]
    pub fn at(&self, t: usize, i: usize, j: usize) -> f64 {
        self.data[t * self.n_vhos * self.n_vhos + i * self.n_vhos + j]
    }

    /// The flat `V×V` matrix of one window.
    #[inline]
    pub fn window(&self, t: usize) -> &[f64] {
        let v2 = self.n_vhos * self.n_vhos;
        &self.data[t * v2..(t + 1) * v2]
    }

    /// The dual snapshot the arena currently reflects — the one every
    /// consumer of the arena's entries must price against.
    #[inline]
    pub fn duals(&self) -> &Duals {
        &self.last
    }

    #[inline]
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.n_vhos
    }

    /// Approximate heap bytes held by the arena (reported through
    /// `EpfStats::approx_bytes`).
    pub fn approx_bytes(&self) -> usize {
        let rev: usize = self
            .rev
            .iter()
            .map(|p| p.capacity() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum();
        self.data.capacity() * 8
            + rev
            + self.last.rows.capacity() * 8
            + self.stamp.capacity() * 4
            + self.dirty.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::tests::small_instance;
    use crate::epf::{caps_of, compute_state, layout_of};
    use crate::potential::Coupling;
    use crate::solution::initial_block;

    fn setup() -> (MipInstance, RowLayout, Duals) {
        let inst = small_instance(30, 2.0, 1.0, 42);
        let layout = layout_of(&inst);
        let blocks: Vec<_> = inst
            .blocks()
            .iter()
            .map(|b| initial_block(b, inst.n_vhos()))
            .collect();
        let (usage, obj) = compute_state(&inst, &layout, &blocks);
        let mut coupling = Coupling::new(layout, caps_of(&inst, &layout), 1.0, None);
        coupling.set_state(usage, obj);
        coupling.init_scale(0.01);
        let duals = coupling.duals();
        (inst, layout, duals)
    }

    /// Reference implementation: the old from-scratch nested rebuild.
    fn reference_matrices(inst: &MipInstance, layout: &RowLayout, duals: &Duals) -> Vec<Vec<f64>> {
        let v = inst.n_vhos();
        (0..layout.n_windows)
            .map(|t| {
                let mut mat = vec![0.0; v * v];
                for i in inst.network.vho_ids() {
                    for j in inst.network.vho_ids() {
                        if i != j {
                            let sum: f64 = inst
                                .paths
                                .path(i, j)
                                .iter()
                                .map(|&l| duals.rows[layout.link_row(l, t)])
                                .sum();
                            mat[i.index() * v + j.index()] = sum;
                        }
                    }
                }
                mat
            })
            .collect()
    }

    #[test]
    fn rebuild_matches_reference() {
        let (inst, layout, duals) = setup();
        let arena = PenaltyArena::for_duals(&inst, &layout, &duals);
        let reference = reference_matrices(&inst, &layout, &duals);
        for (t, want) in reference.iter().enumerate() {
            assert_eq!(arena.window(t), want.as_slice(), "window {t}");
        }
    }

    #[test]
    fn version_skip_on_same_snapshot() {
        let (inst, layout, duals) = setup();
        let mut arena = PenaltyArena::new(&inst, &layout);
        let first = arena.update(&inst, &layout, &duals);
        assert!(matches!(first, PenaltyUpdate::Applied { .. }));
        // Same snapshot (clone): skipped without any row comparison.
        let again = arena.update(&inst, &layout, &duals.clone());
        assert_eq!(again, PenaltyUpdate::SkippedVersion);
        // A bumped clone with identical values is re-compared but
        // resums nothing.
        let mut bumped = duals.clone();
        bumped.bump_version();
        match arena.update(&inst, &layout, &bumped) {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                assert_eq!(changed_rows, 0);
                assert_eq!(resummed, 0);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn incremental_update_matches_rebuild_after_row_change() {
        let (inst, layout, duals) = setup();
        let mut arena = PenaltyArena::for_duals(&inst, &layout, &duals);
        // Perturb a couple of link rows (and one disk row, which must
        // not affect penalties at all).
        let mut perturbed = duals.clone();
        perturbed.rows[0] *= 3.0; // disk row
        let link_row0 = layout.link_row(LinkId::new(0), 0);
        perturbed.rows[link_row0] += 0.125;
        if layout.n_windows > 1 {
            let r = layout.link_row(LinkId::new(1), 1);
            perturbed.rows[r] *= 0.5;
        }
        perturbed.bump_version();
        let upd = arena.update(&inst, &layout, &perturbed);
        let fresh = PenaltyArena::for_duals(&inst, &layout, &perturbed);
        for t in 0..layout.n_windows {
            assert_eq!(arena.window(t), fresh.window(t), "window {t}");
        }
        match upd {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                // Only the touched link rows count; the resummed pairs
                // are exactly those routed over the changed links.
                assert!((1..=2).contains(&changed_rows), "{changed_rows}");
                assert!(resummed > 0);
                let total_entries = layout.n_windows * inst.n_vhos() * inst.n_vhos();
                assert!(
                    resummed < total_entries,
                    "incremental update resummed everything ({resummed}/{total_entries})"
                );
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn zero_arena_reflects_zero_duals() {
        let (inst, layout, _) = setup();
        let mut arena = PenaltyArena::new(&inst, &layout);
        assert!(arena.window(0).iter().all(|&x| x == 0.0));
        assert_eq!(arena.duals().obj, 1.0);
        // Updating with an explicit zero snapshot compares equal
        // everywhere and resums nothing.
        let zeros = Duals::new(vec![0.0; layout.n_rows()], 1.0);
        match arena.update(&inst, &layout, &zeros) {
            PenaltyUpdate::Applied {
                changed_rows,
                resummed,
            } => {
                assert_eq!((changed_rows, resummed), (0, 0));
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn approx_bytes_counts_arena() {
        let (inst, layout, duals) = setup();
        let arena = PenaltyArena::for_duals(&inst, &layout, &duals);
        let v = inst.n_vhos();
        assert!(arena.approx_bytes() >= layout.n_windows * v * v * 8);
    }
}
