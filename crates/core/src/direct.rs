//! The *direct* (non-decomposed) LP/MIP formulation, fed to the generic
//! simplex of `vod-lp`.
//!
//! This materializes the full model of Section V-B — one `y_i^m` per
//! (VHO, video) and one `x_{ij}^m` per (server, demand client, video),
//! with all constraints (3)–(8) as explicit rows — exactly the way one
//! would hand the problem to CPLEX. It exists (a) to validate the EPF
//! solver against exact optima on small instances and (b) as the
//! baseline of the Table III scalability comparison.

use crate::instance::MipInstance;
use vod_lp::{Cmp, LinearProgram};

/// The direct formulation plus the variable index maps needed to read
/// a solution back.
#[derive(Debug)]
pub struct DirectLp {
    pub lp: LinearProgram,
    /// `y_vars[m][i]` — index of `y_i^m`.
    pub y_vars: Vec<Vec<usize>>,
    /// `x_vars[m][c][i]` — index of `x_{i, client c}^m` (clients in the
    /// block's order).
    pub x_vars: Vec<Vec<Vec<usize>>>,
}

impl DirectLp {
    /// All `y` variable indices (the MIP's integer variables).
    pub fn integer_vars(&self) -> Vec<usize> {
        self.y_vars.iter().flatten().copied().collect()
    }
}

/// Build the direct LP (the relaxation; pass [`DirectLp::integer_vars`]
/// to `vod_lp::solve_mip` for the exact MIP).
pub fn build_direct_lp(inst: &MipInstance) -> DirectLp {
    let v = inst.n_vhos();
    let mut lp = LinearProgram::new();

    // Variables.
    let mut y_vars = Vec::with_capacity(inst.n_videos());
    let mut x_vars = Vec::with_capacity(inst.n_videos());
    for data in inst.blocks() {
        let ys: Vec<usize> = (0..v)
            .map(|i| {
                let fo = data.facility_obj_cost.get(i).copied().unwrap_or(0.0);
                lp.add_var(fo, Some(1.0))
            })
            .collect();
        let xs: Vec<Vec<usize>> = data
            .clients
            .iter()
            .map(|c| {
                (0..v)
                    .map(|i| {
                        let cost = c.demand_gb
                            // lint:allow(raw-index): LP columns are dense over VHO indices
                            * inst.cost(vod_model::VhoId::from_index(i), c.j);
                        lp.add_var(cost, None)
                    })
                    .collect()
            })
            .collect();
        y_vars.push(ys);
        x_vars.push(xs);
    }

    // (3) Σ_i x_ij = 1 and (4) x_ij <= y_i, per video and demand client.
    for (m, data) in inst.blocks().iter().enumerate() {
        for (c_idx, _client) in data.clients.iter().enumerate() {
            lp.add_constraint(
                (0..v).map(|i| (x_vars[m][c_idx][i], 1.0)).collect(),
                Cmp::Eq,
                1.0,
            );
            for i in 0..v {
                lp.add_constraint(
                    vec![(x_vars[m][c_idx][i], 1.0), (y_vars[m][i], -1.0)],
                    Cmp::Le,
                    0.0,
                );
            }
        }
        // Every video must be stored somewhere even without demand
        // (implied by (3)+(4) when clients exist; explicit otherwise).
        if data.clients.is_empty() {
            lp.add_constraint((0..v).map(|i| (y_vars[m][i], 1.0)).collect(), Cmp::Ge, 1.0);
        }
    }

    // (5) disk capacity per VHO.
    for (i, disk) in inst.disks.iter().enumerate() {
        let terms: Vec<(usize, f64)> = inst
            .blocks()
            .iter()
            .enumerate()
            .map(|(m, data)| (y_vars[m][i], data.size_gb))
            .collect();
        lp.add_constraint(terms, Cmp::Le, disk.value());
    }

    // (6) link bandwidth per (link, window).
    for t in 0..inst.n_windows() {
        for link in inst.network.links() {
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for (m, data) in inst.blocks().iter().enumerate() {
                for (c_idx, client) in data.clients.iter().enumerate() {
                    let rate = client.rate[t];
                    if rate == 0.0 {
                        continue;
                    }
                    for (i, &xv) in x_vars[m][c_idx].iter().enumerate() {
                        // lint:allow(raw-index): LP columns are dense over VHO indices
                        let iv = vod_model::VhoId::from_index(i);
                        if inst.paths.path(iv, client.j).contains(&link.id) {
                            terms.push((xv, rate));
                        }
                    }
                }
            }
            if !terms.is_empty() {
                lp.add_constraint(terms, Cmp::Le, link.capacity.value());
            }
        }
    }

    DirectLp { lp, y_vars, x_vars }
}

/// Exact LP optimum of a single UFL block (tiny dense simplex) — used
/// to validate/tighten the per-block dual-ascent bounds on small
/// networks.
pub fn exact_block_lp(p: &crate::block::UflProblem) -> f64 {
    let n = p.facility_cost.len();
    let mut lp = LinearProgram::new();
    let ys: Vec<usize> = (0..n)
        .map(|i| lp.add_var(p.facility_cost[i], Some(1.0)))
        .collect();
    for row in p.service_rows() {
        let xv: Vec<usize> = (0..n).map(|i| lp.add_var(row[i], None)).collect();
        lp.add_constraint(xv.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);
        for i in 0..n {
            lp.add_constraint(vec![(xv[i], 1.0), (ys[i], -1.0)], Cmp::Le, 0.0);
        }
    }
    if p.n_clients() == 0 {
        lp.add_constraint(ys.iter().map(|&v| (v, 1.0)).collect(), Cmp::Ge, 1.0);
    }
    match vod_lp::solve_lp(&lp) {
        Ok(s) => s.objective,
        // Fall back to the always-valid combinatorial bound.
        Err(_) => p.dual_ascent_bound(),
    }
}

/// As [`exact_block_lp`], but also recovers the LP *minimizer*
/// (fractional `y`/`x`), so callers can form exact subgradients of the
/// Lagrangian dual instead of approximating them with the heuristic
/// minimizer's usage — at a dual kink the two can disagree badly
/// enough that ascent on the heuristic direction goes downhill.
/// Returns `None` when the simplex fails; callers fall back to the
/// heuristic bound/minimizer pair.
pub fn exact_block_lp_solution(
    p: &crate::block::UflProblem,
) -> Option<(f64, crate::solution::BlockSolution)> {
    let n = p.facility_cost.len();
    let mut lp = LinearProgram::new();
    let ys: Vec<usize> = (0..n)
        .map(|i| lp.add_var(p.facility_cost[i], Some(1.0)))
        .collect();
    for row in p.service_rows() {
        let xv: Vec<usize> = (0..n).map(|i| lp.add_var(row[i], None)).collect();
        lp.add_constraint(xv.iter().map(|&v| (v, 1.0)).collect(), Cmp::Eq, 1.0);
        for i in 0..n {
            lp.add_constraint(vec![(xv[i], 1.0), (ys[i], -1.0)], Cmp::Le, 0.0);
        }
    }
    if p.n_clients() == 0 {
        lp.add_constraint(ys.iter().map(|&v| (v, 1.0)).collect(), Cmp::Ge, 1.0);
    }
    let s = vod_lp::solve_lp(&lp).ok()?;
    // Variable order mirrors the build above: `y` first, then one
    // dense VHO-row of `x` per client.
    let y: Vec<(vod_model::VhoId, f64)> = (0..n)
        .filter(|&i| s.x[i] > 1e-12)
        // lint:allow(raw-index): LP columns are dense over VHO indices
        .map(|i| (vod_model::VhoId::from_index(i), s.x[i]))
        .collect();
    let x: Vec<Vec<(vod_model::VhoId, f64)>> = (0..p.n_clients())
        .map(|c| {
            (0..n)
                .filter_map(|i| {
                    let v = s.x[n * (c + 1) + i];
                    // lint:allow(raw-index): same dense column order
                    (v > 1e-12).then(|| (vod_model::VhoId::from_index(i), v))
                })
                .collect()
        })
        .collect();
    Some((s.objective, crate::solution::BlockSolution { y, x }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epf::{solve_fractional, EpfConfig};
    use crate::instance::DiskConfig;
    use crate::rounding::round_solution;
    use vod_model::{Mbps, SimTime, TimeWindow, VhoId, VideoId};
    use vod_net::topologies;
    use vod_trace::{DemandInput, DemandMatrix};

    /// A hand-sized instance: 3 VHOs on a line, 4 videos.
    fn mini() -> MipInstance {
        use vod_model::{Catalog, Video, VideoClass, VideoKind};
        let mut net = topologies::line(3);
        net.set_uniform_capacity(Mbps::new(100.0));
        let videos: Vec<Video> = (0..4)
            .map(|i| Video {
                id: VideoId::new(i),
                class: VideoClass::Show, // 1 GB
                kind: VideoKind::Catalog,
                release_day: 0,
                weight: 1.0,
            })
            .collect();
        let catalog = Catalog::new(videos);
        // Demand: video 0 popular everywhere, others at single sites.
        let agg = DemandMatrix::from_rows(
            3,
            vec![
                vec![
                    (VhoId::new(0), 10.0),
                    (VhoId::new(1), 10.0),
                    (VhoId::new(2), 10.0),
                ],
                vec![(VhoId::new(0), 5.0)],
                vec![(VhoId::new(1), 4.0)],
                vec![(VhoId::new(2), 3.0)],
            ],
        );
        let windows = vec![TimeWindow::of_len(SimTime::ZERO, 3600)];
        let active = vec![agg.clone()];
        let demand = DemandInput {
            aggregate: agg,
            windows,
            active,
        };
        MipInstance::new(
            net,
            catalog,
            demand,
            // 2 GB per VHO: room for 2 videos each, 6 slots for 4
            // videos → placement matters.
            &DiskConfig::Explicit(vec![vod_model::Gigabytes::new(2.0); 3]),
            1.0,
            0.0,
            None,
        )
    }

    #[test]
    fn lp_relaxation_matches_epf_bound_direction() {
        let inst = mini();
        let direct = build_direct_lp(&inst);
        let exact = vod_lp::solve_lp(&direct.lp).expect("mini LP solvable");
        let cfg = EpfConfig {
            max_passes: 200,
            seed: 1,
            ..Default::default()
        };
        let (frac, _) = solve_fractional(&inst, &cfg);
        // EPF's Lagrangian bound must lower-bound the true LP optimum,
        // and its (ε-feasible) objective must be near it.
        assert!(
            frac.lower_bound <= exact.objective * (1.0 + 1e-6) + 1e-9,
            "LB {} exceeds LP optimum {}",
            frac.lower_bound,
            exact.objective
        );
        assert!(
            frac.objective >= exact.objective * (1.0 - 0.02) - 1e-9,
            "EPF objective {} below LP optimum {} (impossible beyond ε-violation slack)",
            frac.objective,
            exact.objective
        );
        assert!(
            frac.objective <= exact.objective * 1.10 + 1e-9,
            "EPF objective {} strays too far above LP optimum {}",
            frac.objective,
            exact.objective
        );
    }

    #[test]
    fn rounding_near_exact_mip() {
        let inst = mini();
        let direct = build_direct_lp(&inst);
        let mip = vod_lp::solve_mip(&direct.lp, &direct.integer_vars(), 20_000)
            .expect("mini MIP solvable");
        assert!(mip.proven_optimal);
        let cfg = EpfConfig {
            max_passes: 200,
            seed: 2,
            ..Default::default()
        };
        let (frac, _) = solve_fractional(&inst, &cfg);
        let (placement, rstats) = round_solution(&inst, &frac, cfg.gamma, cfg.kernel);
        // The heuristic pipeline must be close to the exact optimum
        // (paper: 1–4 % gaps; allow slack on this tiny instance).
        assert!(
            rstats.objective <= mip.solution.objective * 1.25 + 1e-6,
            "rounded {} vs exact MIP {}",
            rstats.objective,
            mip.solution.objective
        );
        // And its violation must stay small.
        assert!(rstats.max_violation < 0.25);
        // Popular video 0 should be replicated more than tail videos.
        let copies0 = placement.stores(VideoId::new(0)).len();
        let copies3 = placement.stores(VideoId::new(3)).len();
        assert!(copies0 >= copies3);
    }

    #[test]
    fn variable_counts_blow_up_with_library() {
        // The direct formulation's size is what breaks generic solvers
        // (Table III): verify the counts scale as |M|·(|V|² + |V|).
        let inst = mini();
        let direct = build_direct_lp(&inst);
        let v = inst.n_vhos();
        let expected_y = inst.n_videos() * v;
        let expected_x: usize = inst.blocks().iter().map(|b| b.clients.len() * v).sum();
        assert_eq!(direct.lp.num_vars(), expected_y + expected_x);
        assert!(direct.lp.num_constraints() > expected_x);
    }
}
