//! Warm-state remapping across compatible world deltas.
//!
//! A [`SolverCheckpoint`] (and the fractional snapshot the service
//! hands from its solve stage to its round stage) is fingerprinted
//! against the exact `(config, instance)` it was captured under, so
//! *any* world change — even one that leaves every id axis intact —
//! makes resume validation reject it and forces a cold solve. For the
//! live-reconfiguration story that is too conservative: a link
//! capacity rescale or cut changes only the *right-hand sides* of the
//! coupling rows, not a single index the checkpoint stores.
//!
//! This module implements the documented remap rules:
//!
//! - **Remap-eligible (capacity-only deltas).** Every id axis (video,
//!   VHO, constraint row) is unchanged. The primal iterate (block
//!   solutions, incumbent `z*`, visit order, pass counters, coupling
//!   scale) survives verbatim; the checkpoint's fingerprint is
//!   recomputed against the post-delta world and the state fully
//!   revalidated. The Lagrangian lower bound is **reset to the neutral
//!   0**: dual certificates price the *old* capacities and do not
//!   survive a right-hand-side change (a capacity increase can only
//!   lower the optimum, so a stale positive bound could over-claim).
//! - **Invalidating (axis-changing deltas).** Catalog growth changes
//!   the video axis; any change to the number of VHOs or constraint
//!   rows changes dense indexing. These return a typed
//!   [`RemapError::AxisChanged`] and the caller must cold-solve (still
//!   warm-*started* from the deployed placement where shapes permit).
//!
//! Remapping is deterministic and pure: both chaos twins remap the
//! same bytes to the same bytes, preserving the byte-identical
//! recovery contract.

use crate::checkpoint::{config_fingerprint, SolverCheckpoint};
use crate::epf::EpfConfig;
use crate::instance::MipInstance;
use crate::solution::FractionalSolution;
use std::fmt;

/// Why a piece of warm state could not be carried across a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemapError {
    /// An id axis changed size: the state's dense indexing no longer
    /// matches the world. Not recoverable by remapping.
    AxisChanged { what: String },
    /// Axes match but the remapped state failed revalidation against
    /// the post-delta world (corrupt or internally inconsistent).
    Invalid { reason: String },
}

impl fmt::Display for RemapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemapError::AxisChanged { what } => write!(f, "axis changed: {what}"),
            RemapError::Invalid { reason } => write!(f, "remapped state invalid: {reason}"),
        }
    }
}

impl std::error::Error for RemapError {}

/// Carry a mid-solve checkpoint across a capacity-only delta: keep the
/// primal iterate and control counters, re-fingerprint against the
/// post-delta `(inst, cfg)`, reset the dual lower bound, and revalidate
/// everything the solver would index with.
pub fn remap_checkpoint(
    mut ckpt: SolverCheckpoint,
    inst: &MipInstance,
    cfg: &EpfConfig,
) -> Result<SolverCheckpoint, RemapError> {
    if ckpt.blocks.len() != inst.n_videos() {
        return Err(RemapError::AxisChanged {
            what: format!(
                "video axis: checkpoint holds {}, instance has {}",
                ckpt.blocks.len(),
                inst.n_videos()
            ),
        });
    }
    let n_rows = crate::epf::layout_of(inst).n_rows();
    if ckpt.usage.len() != n_rows {
        return Err(RemapError::AxisChanged {
            what: format!(
                "constraint-row axis: checkpoint has {}, instance has {n_rows}",
                ckpt.usage.len()
            ),
        });
    }
    ckpt.fingerprint = config_fingerprint(cfg, inst);
    // Dual certificates price the old right-hand sides; the primal
    // iterate is kept, the bound restarts from neutral.
    ckpt.lb = 0.0;
    ckpt.validate_for(inst, cfg)
        .map_err(|reason| RemapError::Invalid { reason })?;
    Ok(ckpt)
}

/// Carry a fractional solution (the solve→round hand-off artifact)
/// across a capacity-only delta. Same rules as [`remap_checkpoint`]:
/// id axes must be unchanged, the solution is shape-revalidated, and
/// the stale Lagrangian bound is dropped to the neutral 0.
pub fn remap_fractional(
    mut frac: FractionalSolution,
    inst: &MipInstance,
) -> Result<FractionalSolution, RemapError> {
    if frac.blocks.len() != inst.n_videos() {
        return Err(RemapError::AxisChanged {
            what: format!(
                "video axis: fractional holds {}, instance has {}",
                frac.blocks.len(),
                inst.n_videos()
            ),
        });
    }
    let n_vhos = inst.n_vhos();
    for (m, (b, data)) in frac.blocks.iter().zip(inst.blocks()).enumerate() {
        if b.x.len() != data.clients.len() {
            return Err(RemapError::AxisChanged {
                what: format!(
                    "client axis of video {m}: fractional has {}, instance block has {}",
                    b.x.len(),
                    data.clients.len()
                ),
            });
        }
        let ok = |pairs: &[(vod_model::VhoId, f64)]| {
            pairs
                .iter()
                .all(|&(i, x)| i.index() < n_vhos && x.is_finite())
        };
        if b.y.is_empty() || !ok(&b.y) || b.x.iter().any(|d| !ok(d)) {
            return Err(RemapError::Invalid {
                reason: format!("video {m}: y/x out of range or non-finite"),
            });
        }
    }
    frac.lower_bound = 0.0;
    Ok(frac)
}
