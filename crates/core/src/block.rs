//! The per-video block subproblem: (fractional) uncapacitated facility
//! location.
//!
//! Section V-C: after Lagrangizing the coupling constraints, each
//! video's subproblem over `F^m = {Σ_i x_ij = 1, x_ij ≤ y_i, x, y ≥ 0}`
//! is an uncapacitated facility-location problem (UFL) with facility
//! costs from the disk duals and service costs from the objective plus
//! link duals. Two solvers are provided:
//!
//! - [`UflProblem::solve_local_search`]: a Charikar–Guha-style
//!   add/drop/swap local search over *integral* solutions (Section V-D
//!   cites [11]); an integral solution is a vertex of `F^m`, so it is a
//!   valid gradient-descent direction and, in the rounding pass, a
//!   valid integer assignment.
//! - [`UflProblem::dual_ascent_bound`]: an Erlenkotter-style dual
//!   ascent producing a *feasible dual* solution, i.e. a valid lower
//!   bound on the fractional block optimum. The Lagrangian bound
//!   `LR(λ)` of the Appendix needs the exact block minimum; a feasible
//!   dual lower-bounds it, so summing these keeps the global bound
//!   valid (see DESIGN.md §4).
//!
//! The EPF loop solves hundreds of thousands of these tiny instances
//! per run, so the service matrix is a single flat row-major buffer
//! (not a `Vec<Vec<f64>>`) and both solvers take an optional
//! [`UflScratch`] so a long-lived worker re-solves blocks with zero
//! steady-state allocations (see DESIGN.md "Solver performance
//! architecture").
//!
//! Both solvers are backed by the lane kernels of [`crate::kernel`]:
//! the `_with_kernel` entry points accept a [`Kernel`] and, for the
//! lane backends, replace the facility-major strided scans with
//! client-row streaming passes (per-element addition order unchanged,
//! so the trajectory is bitwise-identical to the scalar reference —
//! pinned by `tests/kernel_props.rs`). The kernel-less entry points
//! run [`Kernel::Scalar`], i.e. the original loops verbatim.

use crate::kernel::{self, Kernel};

/// A (small) UFL instance: `n` candidate facilities (the VHOs), a
/// nonnegative opening cost per facility, and for every client a dense
/// row of nonnegative service costs, stored row-major in one flat
/// buffer.
#[derive(Debug, Clone, Default)]
pub struct UflProblem {
    pub facility_cost: Vec<f64>,
    /// `service[c·n + i]` = cost of serving client `c` from facility
    /// `i`. Private so the row-major layout stays an implementation
    /// detail; build via [`UflProblem::from_rows`]/[`UflProblem::from_flat`]
    /// or rebuild in place through [`UflProblem::reset`]/[`UflProblem::push_service`].
    service: Vec<f64>,
    n_clients: usize,
    /// Lane-only fused precompute ([`UflProblem::precompute_lane_aux`]):
    /// per-facility service column sums and per-client row minima,
    /// shared by the dual-ascent and local-search seeds when both run
    /// on the same build. Empty (= absent) unless the owning worker
    /// opted in; cleared by [`UflProblem::reset`].
    col_sums: Vec<f64>,
    row_mins: Vec<f64>,
}

/// An integral UFL solution.
#[derive(Debug, Clone, PartialEq)]
pub struct UflSolution {
    /// Open facilities, sorted ascending.
    pub open: Vec<usize>,
    /// `assign[c]` = the open facility serving client `c`.
    pub assign: Vec<usize>,
}

/// Reusable scratch buffers for the UFL solvers. One per worker thread;
/// contents are fully overwritten by each solve, so reuse can never
/// leak state between blocks (the determinism tests pin this down).
#[derive(Debug, Clone, Default)]
pub struct UflScratch {
    open: Vec<bool>,
    assign: Vec<usize>,
    new_assign: Vec<usize>,
    used: Vec<bool>,
    // Dual-ascent state.
    v: Vec<f64>,
    budget: Vec<f64>,
    order: Vec<usize>,
    // Lane-kernel accumulators: per-facility (facc) and per-client
    // (cacc) — gain screens, column sums, current-assignment costs.
    facc: Vec<f64>,
    cacc: Vec<f64>,
    // DROP-screen state: per-client best / second-best open service
    // (values + indices), maintained incrementally across the whole
    // local-search call — O(C) insert per ADD, rescan-affected per
    // DROP (`cidx`/`cb2i` say who is affected).
    cidx: Vec<usize>,
    calt: Vec<f64>,
    cbest: Vec<f64>,
    cb2i: Vec<usize>,
}

impl UflScratch {
    /// Approximate heap bytes currently held.
    pub fn approx_bytes(&self) -> usize {
        self.open.capacity()
            + self.used.capacity()
            + (self.assign.capacity()
                + self.new_assign.capacity()
                + self.order.capacity()
                + self.cidx.capacity()
                + self.cb2i.capacity())
                * 8
            + (self.v.capacity()
                + self.budget.capacity()
                + self.facc.capacity()
                + self.cacc.capacity()
                + self.calt.capacity()
                + self.cbest.capacity())
                * 8
    }
}

const TOL: f64 = 1e-12;

impl UflProblem {
    /// Build from per-client service rows (convenience for tests,
    /// benches and property harnesses; the hot path uses
    /// [`UflProblem::reset`] + [`UflProblem::push_service`] instead).
    // lint:allow(vec-vec-f64): boundary constructor that immediately
    // flattens the nested rows into the row-major buffer
    pub fn from_rows(facility_cost: Vec<f64>, rows: Vec<Vec<f64>>) -> Self {
        let n = facility_cost.len();
        let n_clients = rows.len();
        let mut service = Vec::with_capacity(n * n_clients);
        for row in rows {
            assert_eq!(row.len(), n, "service row width must match facilities");
            service.extend(row);
        }
        Self {
            facility_cost,
            service,
            n_clients,
            col_sums: Vec::new(),
            row_mins: Vec::new(),
        }
    }

    /// Build from an already-flat row-major service buffer.
    pub fn from_flat(facility_cost: Vec<f64>, service: Vec<f64>) -> Self {
        let n = facility_cost.len();
        assert!(n > 0, "UFL needs at least one facility");
        assert_eq!(service.len() % n, 0, "flat service buffer must be c·n long");
        let n_clients = service.len() / n;
        Self {
            facility_cost,
            service,
            n_clients,
            col_sums: Vec::new(),
            row_mins: Vec::new(),
        }
    }

    /// Clear for in-place rebuilding, keeping both buffers' capacity.
    pub fn reset(&mut self) {
        self.facility_cost.clear();
        self.service.clear();
        self.n_clients = 0;
        self.col_sums.clear();
        self.row_mins.clear();
    }

    /// One fused sweep over the freshly built service matrix filling
    /// `col_sums` (per-facility column sums, the best-single seed) and
    /// `row_mins` (per-client row minima, the dual-ascent seed) — the
    /// exact values, in the exact per-element addend order, that the
    /// standalone lane passes inside the two solvers would produce.
    /// Workers call this once per build when *both* solvers will run
    /// on the same problem, halving the seeding traffic. No-op for the
    /// scalar reference backend, which recomputes facility-major.
    pub(crate) fn precompute_lane_aux(&mut self, kernel: Kernel) {
        if matches!(kernel, Kernel::Scalar) {
            return;
        }
        let n = self.n_facilities();
        self.col_sums.clear();
        self.col_sums.resize(n, 0.0);
        self.row_mins.clear();
        self.row_mins.resize(self.n_clients, 0.0);
        for (slot, row) in self
            .row_mins
            .iter_mut()
            .zip(self.service.chunks_exact(n.max(1)))
        {
            kernel::accum(kernel, &mut self.col_sums, row);
            *slot = kernel::row_min(kernel, row);
        }
    }

    /// Append one client's service row (row-major). The row length is
    /// checked once per client in [`UflProblem::finish_client`]-free
    /// style: callers push exactly `n_facilities` values then call this.
    pub fn push_service_row(&mut self, row: impl IntoIterator<Item = f64>) {
        let before = self.service.len();
        self.service.extend(row);
        debug_assert_eq!(
            self.service.len() - before,
            self.n_facilities(),
            "service row width must match facilities"
        );
        self.n_clients += 1;
    }

    /// Append one zero-filled client row and return it for in-place
    /// writing — the lane-kernel build path fills the base costs
    /// elementwise, then streams penalty rows in with
    /// [`crate::kernel::axpy`]. Allocation-free in steady state (the
    /// buffer's capacity is retained across [`UflProblem::reset`]).
    pub fn push_service_row_zeroed(&mut self) -> &mut [f64] {
        let n = self.n_facilities();
        let start = self.service.len();
        self.service.resize(start + n, 0.0);
        self.n_clients += 1;
        &mut self.service[start..]
    }

    pub fn n_facilities(&self) -> usize {
        self.facility_cost.len()
    }

    pub fn n_clients(&self) -> usize {
        self.n_clients
    }

    /// One client's dense service row.
    #[inline]
    pub fn service_row(&self, c: usize) -> &[f64] {
        let n = self.n_facilities();
        &self.service[c * n..(c + 1) * n]
    }

    /// All service rows in client order.
    #[inline]
    pub fn service_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.service.chunks_exact(self.n_facilities().max(1))
    }

    /// Total cost of a solution.
    pub fn cost(&self, sol: &UflSolution) -> f64 {
        let open_cost: f64 = sol.open.iter().map(|&i| self.facility_cost[i]).sum();
        let service_cost: f64 = self
            .service_rows()
            .zip(&sol.assign)
            .map(|(row, &i)| row[i])
            .sum();
        open_cost + service_cost
    }

    fn assert_valid(&self) {
        let n = self.n_facilities();
        assert!(n > 0, "UFL needs at least one facility");
        debug_assert_eq!(self.service.len(), n * self.n_clients);
        debug_assert!(self
            .facility_cost
            .iter()
            .all(|&f| f >= 0.0 && f.is_finite()));
        debug_assert!(self.service.iter().all(|&c| c >= 0.0 && c.is_finite()));
    }

    /// Greedy start + add/drop/swap local search.
    ///
    /// Every solution opens at least one facility even with zero
    /// clients — the MIP's constraints (3)+(4) imply `Σ_i y_i^m ≥ 1`
    /// (each video must be stored somewhere).
    pub fn solve_local_search(&self) -> UflSolution {
        self.local_search(true, &mut UflScratch::default(), Kernel::Scalar)
    }

    /// Add/drop-only local search: O(|V|·|C|) per round instead of the
    /// O(|V|²·|C|) swap scan. Slightly weaker solutions, but the EPF
    /// pass loop only needs descent *directions* — it calls this
    /// thousands of times per video, while the rounding pass (which
    /// commits integer decisions) uses the full search.
    pub fn solve_local_search_fast(&self) -> UflSolution {
        self.local_search(false, &mut UflScratch::default(), Kernel::Scalar)
    }

    /// [`UflProblem::solve_local_search`] with caller-owned scratch.
    pub fn solve_local_search_with(&self, scratch: &mut UflScratch) -> UflSolution {
        self.local_search(true, scratch, Kernel::Scalar)
    }

    /// [`UflProblem::solve_local_search_fast`] with caller-owned scratch.
    pub fn solve_local_search_fast_with(&self, scratch: &mut UflScratch) -> UflSolution {
        self.local_search(false, scratch, Kernel::Scalar)
    }

    /// [`UflProblem::solve_local_search_with`] on an explicit kernel
    /// backend (bitwise-identical result whatever the backend).
    pub fn solve_local_search_with_kernel(
        &self,
        scratch: &mut UflScratch,
        kernel: Kernel,
    ) -> UflSolution {
        self.local_search(true, scratch, kernel)
    }

    /// [`UflProblem::solve_local_search_fast_with`] on an explicit
    /// kernel backend (bitwise-identical result whatever the backend).
    pub fn solve_local_search_fast_with_kernel(
        &self,
        scratch: &mut UflScratch,
        kernel: Kernel,
    ) -> UflSolution {
        self.local_search(false, scratch, kernel)
    }

    fn local_search(
        &self,
        with_swaps: bool,
        scratch: &mut UflScratch,
        kernel: Kernel,
    ) -> UflSolution {
        self.assert_valid();
        let n = self.n_facilities();
        let n_clients = self.n_clients();
        let UflScratch {
            open,
            assign,
            new_assign,
            used,
            v,
            order,
            facc,
            cacc,
            cidx,
            calt,
            cbest,
            cb2i,
            ..
        } = scratch;

        // Start: the single facility minimizing open + total service.
        // Scalar: the reference facility-major scan. Lane backends:
        // stream client rows into per-facility column sums — element
        // `i` receives the same addends in the same client order, so
        // the totals (and the strict-< argmin) are bitwise-identical.
        let mut best_single = 0;
        let mut best_single_cost = f64::MAX;
        match kernel {
            Kernel::Scalar => {
                for i in 0..n {
                    let c: f64 =
                        self.facility_cost[i] + self.service_rows().map(|row| row[i]).sum::<f64>();
                    if c < best_single_cost {
                        best_single_cost = c;
                        best_single = i;
                    }
                }
            }
            _ => {
                let cols: &[f64] = if self.col_sums.len() == n {
                    &self.col_sums
                } else {
                    facc.clear();
                    facc.resize(n, 0.0);
                    for row in self.service_rows() {
                        kernel::accum(kernel, facc, row);
                    }
                    facc
                };
                for (i, &col) in cols.iter().enumerate() {
                    let c = self.facility_cost[i] + col;
                    if c < best_single_cost {
                        best_single_cost = c;
                        best_single = i;
                    }
                }
            }
        }
        open.clear();
        open.resize(n, false);
        open[best_single] = true;
        assign.clear();
        assign.resize(n_clients, best_single);

        // Local search: first-improvement add / drop / swap moves.
        let max_rounds = 4 * n + 16;
        let lane = !matches!(kernel, Kernel::Scalar);
        // Lane backends keep a per-client (best, second-best) view of
        // the open set alive across the whole call: seeded from the
        // singleton start, extended in O(C) per applied ADD, and
        // repaired per applied DROP by rescanning only the clients
        // whose best or second-best was the dropped facility. Index
        // ties may resolve differently than a fresh ascending scan,
        // but the *values* — all the DROP screen consumes — are the
        // exact set minima either way.
        let mut drop_cache_valid = false;
        if lane {
            cbest.clear();
            cbest.resize(n_clients, 0.0);
            for (slot, row) in cbest.iter_mut().zip(self.service_rows()) {
                *slot = row[best_single];
            }
            cidx.clear();
            cidx.resize(n_clients, best_single);
            calt.clear();
            calt.resize(n_clients, f64::INFINITY);
            cb2i.clear();
            cb2i.resize(n_clients, usize::MAX);
            drop_cache_valid = true;
        }
        let mut add_screen_valid = false;
        // Fresh-screen exactness: right after the streaming precompute,
        // `facc[k] − f_k` is *bitwise* the reference gain (same addends
        // in the same client order), so survivors may apply without the
        // exact re-evaluation — until the first state change staples
        // the screen back to an upper bound.
        let mut add_screen_exact = false;
        // Clean-phase skips: a phase's move sequence is a pure function
        // of (costs, open, assign), and the lane arms are pinned
        // bitwise to the scalar reference. So if the last evaluation of
        // a phase applied nothing and no other phase has changed state
        // since, re-evaluating it must again apply nothing — the lane
        // backends skip it outright.
        let mut add_clean = false;
        let mut drop_clean = false;
        for _round in 0..max_rounds {
            let mut improved = false;

            // ADD moves: open k, reassign clients that benefit. Lane
            // backends pre-screen with one streaming pass: `facc[k]`
            // is the gain computed against the assignment *frozen at
            // screen-build time*, which upper-bounds the live gain —
            // applied ADDs only move clients to cheaper rows, every
            // screen term dominates its live term, and f64 addition is
            // monotone, so `facc[k] − f_k ≤ TOL` proves the scalar
            // loop would skip `k` too. The screen therefore stays
            // valid across rounds until a DROP or SWAP raises some
            // client's cost (which invalidates it below); survivors
            // are re-evaluated with the exact reference expression, so
            // the move sequence is bitwise-identical to the scalar
            // backend's.
            let mut added = false;
            if !(lane && add_clean) {
                if lane && !add_screen_valid {
                    cacc.clear();
                    cacc.resize(n_clients, 0.0);
                    for (slot, (row, &a)) in cacc.iter_mut().zip(self.service_rows().zip(&*assign))
                    {
                        *slot = row[a];
                    }
                    facc.clear();
                    facc.resize(n, 0.0);
                    for (row, &cur) in self.service_rows().zip(&*cacc) {
                        kernel::accum_relu_sub(kernel, facc, cur, row);
                    }
                    add_screen_valid = true;
                    add_screen_exact = true;
                }
                for k in 0..n {
                    if open[k] {
                        continue;
                    }
                    if lane && facc[k] - self.facility_cost[k] <= TOL {
                        continue;
                    }
                    if !(lane && add_screen_exact) {
                        let fl: f64 = self
                            .service_rows()
                            .zip(assign.iter())
                            .map(|(row, &cur)| (row[cur] - row[k]).max(0.0))
                            .sum::<f64>();
                        if lane {
                            // Memoize the exact re-sum: client costs
                            // only decrease as facilities open, so the
                            // live value stays a sound upper bound for
                            // every later screen of k, far tighter
                            // than the phase-start snapshot.
                            facc[k] = fl;
                        }
                        let gain = fl - self.facility_cost[k];
                        if gain <= TOL {
                            continue;
                        }
                    }
                    open[k] = true;
                    if lane && drop_cache_valid {
                        // Same reassignments as the reference loop
                        // below, fused with the O(C) top-2 insert so
                        // `row[k]` is gathered once (all-zip iteration:
                        // no per-client bounds checks). The insert is a
                        // lexicographic (value, index) top-2 update:
                        // the reference breaks value ties by keeping
                        // the *earliest* facility in its ascending
                        // first-minimum scan, so the cached indices
                        // must do the same for the DROP direct-apply
                        // below to reroute onto the exact facility the
                        // reference would pick. (Service values are
                        // finite, nonnegative sums — never NaN or
                        // -0.0 — so `total_cmp` agrees with `<`.)
                        let cache = cbest
                            .iter_mut()
                            .zip(calt.iter_mut())
                            .zip(cidx.iter_mut().zip(cb2i.iter_mut()));
                        for ((row, a), ((cb, ca), (ci, c2))) in
                            self.service_rows().zip(assign.iter_mut()).zip(cache)
                        {
                            let s = row[k];
                            if s < row[*a] {
                                *a = k;
                            }
                            match s.total_cmp(cb) {
                                std::cmp::Ordering::Less => {
                                    *ca = *cb;
                                    *c2 = *ci;
                                    *cb = s;
                                    *ci = k;
                                }
                                std::cmp::Ordering::Equal if k < *ci => {
                                    *ca = *cb;
                                    *c2 = *ci;
                                    *cb = s;
                                    *ci = k;
                                }
                                _ => match s.total_cmp(ca) {
                                    std::cmp::Ordering::Less => {
                                        *ca = s;
                                        *c2 = k;
                                    }
                                    std::cmp::Ordering::Equal if k < *c2 => {
                                        *ca = s;
                                        *c2 = k;
                                    }
                                    _ => {}
                                },
                            }
                        }
                    } else {
                        for (row, a) in self.service_rows().zip(assign.iter_mut()) {
                            if row[k] < row[*a] {
                                *a = k;
                            }
                        }
                    }
                    improved = true;
                    added = true;
                    add_screen_exact = false;
                }
            }
            if lane {
                add_clean = !added;
                if added {
                    drop_clean = false;
                }
            }

            // DROP moves: close k if rerouting its clients to their
            // best other open facility saves the opening cost.
            let mut dropped = false;
            let open_count = open.iter().filter(|&&o| o).count();
            if open_count > 1 {
                match kernel {
                    Kernel::Scalar => {
                        for k in 0..n {
                            if !open[k] {
                                continue;
                            }
                            if open.iter().filter(|&&o| o).count() == 1 {
                                break;
                            }
                            let mut reroute_penalty = 0.0;
                            let mut feasible = true;
                            new_assign.clear();
                            new_assign.extend_from_slice(assign);
                            for (c, (row, &cur)) in
                                self.service_rows().zip(assign.iter()).enumerate()
                            {
                                if cur == k {
                                    let alt = (0..n)
                                        .filter(|&i| i != k && open[i])
                                        .min_by(|&a, &b| row[a].total_cmp(&row[b]));
                                    match alt {
                                        Some(alt) => {
                                            reroute_penalty += row[alt] - row[k];
                                            new_assign[c] = alt;
                                        }
                                        None => {
                                            feasible = false;
                                            break;
                                        }
                                    }
                                }
                            }
                            if feasible && self.facility_cost[k] - reroute_penalty > TOL {
                                open[k] = false;
                                std::mem::swap(assign, new_assign);
                                improved = true;
                            }
                        }
                    }
                    _ => {
                        // Lane backends: the per-facility reroute sums
                        // in `v` are not a screen but the *exact*
                        // reference penalties. For each k, the
                        // reference accumulates (alt − row[k]) over
                        // clients assigned to k in ascending client
                        // order, where alt is the first-minimum of the
                        // live open list excluding k. The `v` build
                        // below streams clients in that same ascending
                        // order, each contributing to exactly its own
                        // v[assign[c]] — identical addends in an
                        // identical order, starting from 0.0 — and the
                        // top-2 cache supplies the identical alt value
                        // (second-best when k holds the client's
                        // minimum, best otherwise; on value ties the
                        // cache stores the earliest index, matching
                        // the reference scan, so the rerouted-onto
                        // facility is also the exact one the reference
                        // picks). Passing `f_k − v[k] > TOL` therefore
                        // IS the reference apply decision: candidates
                        // apply directly with no re-evaluation, and
                        // after each apply the cache is repaired and
                        // `v` rebuilt from the live state so the
                        // remaining candidates stay exact. The move
                        // sequence is bitwise-identical by
                        // construction.
                        if drop_clean {
                            // Unchanged inputs since the last no-op
                            // DROP evaluation: nothing can apply.
                        } else {
                            order.clear();
                            // lint:allow(alloc-in-hot-loop): refills within capacity retained across calls (≤ n slots)
                            order.extend((0..n).filter(|&i| open[i]));
                            if !drop_cache_valid {
                                // Full rebuild (only after a SWAP): fresh
                                // ascending first-minimum scan per client.
                                cbest.clear();
                                cbest.resize(n_clients, 0.0);
                                calt.clear();
                                calt.resize(n_clients, 0.0);
                                cidx.clear();
                                cidx.resize(n_clients, usize::MAX);
                                cb2i.clear();
                                cb2i.resize(n_clients, usize::MAX);
                                for (c, row) in self.service_rows().enumerate() {
                                    let mut b1 = f64::INFINITY;
                                    let mut b1i = usize::MAX;
                                    let mut b2 = f64::INFINITY;
                                    let mut b2i = usize::MAX;
                                    for &i in order.iter() {
                                        let s = row[i];
                                        if s < b1 {
                                            b2 = b1;
                                            b2i = b1i;
                                            b1 = s;
                                            b1i = i;
                                        } else if s < b2 {
                                            b2 = s;
                                            b2i = i;
                                        }
                                    }
                                    cbest[c] = b1;
                                    cidx[c] = b1i;
                                    calt[c] = b2;
                                    cb2i[c] = b2i;
                                }
                                drop_cache_valid = true;
                            }
                            // `v` (dual-ascent scratch, free here) hosts the
                            // per-facility frozen reroute penalties —
                            // `facc` must survive untouched: it still holds
                            // the cached ADD screen.
                            v.clear();
                            v.resize(n, 0.0);
                            for (((row, &cur), (&ci, &ca)), &cb) in self
                                .service_rows()
                                .zip(assign.iter())
                                .zip(cidx.iter().zip(calt.iter()))
                                .zip(cbest.iter())
                            {
                                let alt = if ci == cur { ca } else { cb };
                                v[cur] += alt - row[cur];
                            }
                            // `order` now doubles as the live open list
                            // (sorted ascending; drops remove in place), so
                            // the survivors' alt-min scans O(|open|) instead
                            // of O(n) and matches the reference iteration
                            // order exactly.
                            for k in 0..n {
                                if !open[k] {
                                    continue;
                                }
                                if order.len() == 1 {
                                    break;
                                }
                                if self.facility_cost[k] - v[k] <= TOL {
                                    continue;
                                }
                                // Exact screen passed ⇒ the reference would
                                // apply this drop with reroute penalty
                                // bitwise-equal to v[k]. Apply directly:
                                // clients on k move to their cached
                                // alternative (second-best index when k was
                                // their minimum, best index otherwise —
                                // exactly the reference's first-minimum
                                // over the live open list minus k).
                                let reroute_penalty = v[k];
                                open[k] = false;
                                for (a, (&ci, &c2)) in
                                    assign.iter_mut().zip(cidx.iter().zip(cb2i.iter()))
                                {
                                    if *a == k {
                                        *a = if ci == k { c2 } else { ci };
                                    }
                                }
                                improved = true;
                                dropped = true;
                                add_screen_exact = false;
                                // Rerouted clients got more expensive,
                                // but by at most `reroute_penalty` in
                                // total — so adding it (with a relative
                                // cushion that dominates the O(C·u)
                                // accumulated rounding slop of the
                                // re-summed gains) keeps every cached
                                // ADD gain a sound upper bound. Loose
                                // is safe: a false survivor is merely
                                // re-evaluated exactly; only a false
                                // skip could diverge from scalar.
                                for g in facc.iter_mut() {
                                    *g = (*g + reroute_penalty) * (1.0 + 1e-9);
                                }
                                if let Ok(pos) = order.binary_search(&k) {
                                    order.remove(pos);
                                }
                                // Repair the top-2 cache: only clients
                                // whose best or second-best was `k`
                                // rescan the (live) open list.
                                for (c, row) in self.service_rows().enumerate() {
                                    if cidx[c] != k && cb2i[c] != k {
                                        continue;
                                    }
                                    let mut b1 = f64::INFINITY;
                                    let mut b1i = usize::MAX;
                                    let mut b2 = f64::INFINITY;
                                    let mut b2i = usize::MAX;
                                    for &i in order.iter() {
                                        let s = row[i];
                                        if s < b1 {
                                            b2 = b1;
                                            b2i = b1i;
                                            b1 = s;
                                            b1i = i;
                                        } else if s < b2 {
                                            b2 = s;
                                            b2i = i;
                                        }
                                    }
                                    cbest[c] = b1;
                                    cidx[c] = b1i;
                                    calt[c] = b2;
                                    cb2i[c] = b2i;
                                }
                                // Rebuild the exact reroute sums against
                                // the new live state so the remaining
                                // candidates keep the direct-apply
                                // guarantee.
                                v.clear();
                                v.resize(n, 0.0);
                                for (((row, &cur), (&ci, &ca)), &cb) in self
                                    .service_rows()
                                    .zip(assign.iter())
                                    .zip(cidx.iter().zip(calt.iter()))
                                    .zip(cbest.iter())
                                {
                                    let alt = if ci == cur { ca } else { cb };
                                    v[cur] += alt - row[cur];
                                }
                            }
                        }
                    }
                }
            }
            if lane {
                drop_clean = !dropped;
                if dropped {
                    add_clean = false;
                }
            }

            // SWAP moves: replace open k by closed k2.
            if !with_swaps {
                if !improved {
                    break;
                }
                continue;
            }
            for k in 0..n {
                if !open[k] {
                    continue;
                }
                for k2 in 0..n {
                    if open[k2] {
                        continue;
                    }
                    // Cost after the swap: every client picks its best
                    // among (open \ {k}) ∪ {k2}.
                    let mut delta = self.facility_cost[k2] - self.facility_cost[k];
                    new_assign.clear();
                    new_assign.extend_from_slice(assign);
                    for (c, (row, &cur)) in self.service_rows().zip(assign.iter()).enumerate() {
                        let best = (0..n)
                            .filter(|&i| (open[i] && i != k) || i == k2)
                            .min_by(|&a, &b| row[a].total_cmp(&row[b]))
                            .expect("k2 is always available"); // lint:allow(no-panic-hot-path): filter admits i == k2, set never empty
                        delta += row[best] - row[cur];
                        new_assign[c] = best;
                    }
                    if delta < -TOL {
                        open[k] = false;
                        open[k2] = true;
                        std::mem::swap(assign, new_assign);
                        improved = true;
                        // A swap may move clients to costlier rows and
                        // replaces an open facility wholesale.
                        add_screen_valid = false;
                        add_screen_exact = false;
                        add_clean = false;
                        drop_clean = false;
                        drop_cache_valid = false;
                        break;
                    }
                }
            }

            if !improved {
                break;
            }
        }

        // Drop opened-but-unused facilities (keep at least one).
        used.clear();
        used.resize(n, false);
        for &a in assign.iter() {
            used[a] = true;
        }
        let mut open_list: Vec<usize> = (0..n).filter(|&i| open[i] && used[i]).collect();
        if open_list.is_empty() {
            // No clients: keep the cheapest open facility.
            let keep = (0..n)
                .filter(|&i| open[i])
                .min_by(|&a, &b| self.facility_cost[a].total_cmp(&self.facility_cost[b]))
                .expect("at least one facility is open"); // lint:allow(no-panic-hot-path): UFL keeps >= 1 facility open
            open_list.push(keep);
        }
        UflSolution {
            open: open_list,
            assign: assign.clone(),
        }
    }

    /// Erlenkotter-style dual ascent: returns a valid lower bound on
    /// the *fractional* UFL optimum (and hence on the integral one).
    ///
    /// Maintains dual feasibility `Σ_c (v_c − s_ci)⁺ ≤ f_i` throughout;
    /// the bound is `Σ_c v_c`. With zero clients the bound is the
    /// cheapest opening cost (one copy is always required).
    pub fn dual_ascent_bound(&self) -> f64 {
        self.dual_ascent_bound_with(&mut UflScratch::default())
    }

    /// [`UflProblem::dual_ascent_bound`] with caller-owned scratch.
    pub fn dual_ascent_bound_with(&self, scratch: &mut UflScratch) -> f64 {
        self.dual_ascent_bound_with_kernel(scratch, Kernel::Scalar)
    }

    /// [`UflProblem::dual_ascent_bound_with`] on an explicit kernel
    /// backend (bitwise-identical bound whatever the backend: the min
    /// reductions are exactly reorderable — no NaN, no `-0.0` — and
    /// every sum keeps its per-element scalar order).
    pub fn dual_ascent_bound_with_kernel(&self, scratch: &mut UflScratch, kernel: Kernel) -> f64 {
        self.assert_valid();
        let n = self.n_facilities();
        if self.n_clients == 0 {
            return self.facility_cost.iter().cloned().fold(f64::MAX, f64::min);
        }
        let UflScratch {
            v,
            budget,
            order,
            facc,
            cidx,
            ..
        } = scratch;
        // v_c starts at the client's cheapest service cost (feasible:
        // every (v_c - s_ci)+ is 0 at the argmin and negative terms
        // don't count... they are zero for all i with s_ci >= v_c).
        v.clear();
        match kernel {
            Kernel::Scalar => v.extend(
                self.service_rows()
                    .map(|row| row.iter().cloned().fold(f64::MAX, f64::min)),
            ),
            _ => {
                if self.row_mins.len() == self.n_clients {
                    v.extend_from_slice(&self.row_mins);
                } else {
                    v.extend(self.service_rows().map(|row| kernel::row_min(kernel, row)));
                }
            }
        }
        // Remaining budget of each facility. Scalar: the reference
        // facility-major scan; lane backends: stream client rows into
        // per-facility consumption (same per-element addend order).
        budget.clear();
        match kernel {
            Kernel::Scalar => budget.extend((0..n).map(|i| {
                let used: f64 = v
                    .iter()
                    .zip(self.service_rows())
                    .map(|(&vc, row)| (vc - row[i]).max(0.0))
                    .sum();
                self.facility_cost[i] - used
            })),
            _ => {
                facc.clear();
                facc.resize(n, 0.0);
                for (row, &vc) in self.service_rows().zip(&*v) {
                    kernel::accum_relu_sub(kernel, facc, vc, row);
                }
                budget.extend(
                    self.facility_cost
                        .iter()
                        .zip(&*facc)
                        .map(|(&f, &used)| f - used),
                );
            }
        }
        debug_assert!(budget.iter().all(|&b| b >= -1e-9));

        // Ascend until no client can be raised (DUALOC-style); process
        // clients in ascending-v order each pass, which empirically
        // tightens the bound substantially. `order` is (re)initialized
        // once — the total-order comparator makes each pass's sort
        // independent of the incoming permutation.
        order.clear();
        order.extend(0..v.len());
        match kernel {
            Kernel::Scalar => {
                for _pass in 0..30 {
                    order.sort_by(|&a, &b| v[a].total_cmp(&v[b]).then(a.cmp(&b)));
                    let mut raised = 0.0;
                    for &c in order.iter() {
                        let row = self.service_row(c);
                        // Max uniform raise of v_c keeping all facilities
                        // within budget: for facility i the raise may
                        // consume budget only beyond max(s_ci, v_c).
                        let mut delta = f64::MAX;
                        for i in 0..n {
                            let headroom = (row[i] - v[c]).max(0.0) + budget[i].max(0.0);
                            delta = delta.min(headroom);
                        }
                        if delta > 1e-12 && delta < f64::MAX {
                            for i in 0..n {
                                let inc = (v[c] + delta - row[i].max(v[c])).max(0.0);
                                budget[i] -= inc;
                            }
                            v[c] += delta;
                            raised += delta;
                        }
                    }
                    if raised < 1e-12 {
                        break;
                    }
                }
            }
            _ => {
                // Lane backends retire quiescent clients: once a client
                // fails `delta > 1e-12`, its v_c is frozen while every
                // budget only drains and its row is fixed, so its
                // headroom (hence delta) is non-increasing — it can
                // never raise again. Skipping it is bitwise-invisible
                // (a no-raise iteration reads state without writing:
                // raising would add `+0.0` to nothing), the surviving
                // clients keep their exact relative sort order, and the
                // pass count is unchanged (a pass of retirees yields
                // `raised = 0.0` for scalar too). Each pass compacts
                // `order` in place to the still-active clients.
                // `cidx` (free local-search scratch) lists the dead
                // facilities — drained budgets. A client whose row
                // meets a dead facility at or below its v_c has
                // headroom `(row_i − v_c)⁺ + budget_i⁺ ≤ 1e-12` there,
                // so its delta cannot clear the raise threshold: it
                // retires without the O(n) headroom scan. The skip is
                // exactly the decision scalar reaches the long way.
                let dead = cidx;
                for _pass in 0..30 {
                    order.sort_by(|&a, &b| v[a].total_cmp(&v[b]).then(a.cmp(&b)));
                    dead.clear();
                    // lint:allow(alloc-in-hot-loop): refills within capacity retained across calls (≤ n slots)
                    dead.extend((0..n).filter(|&i| budget[i] <= 1e-12));
                    let mut raised = 0.0;
                    let mut kept = 0;
                    for idx in 0..order.len() {
                        let c = order[idx];
                        let row = self.service_row(c);
                        if dead.iter().any(|&i| row[i] <= v[c]) {
                            continue;
                        }
                        let delta = kernel::headroom_min(kernel, row, v[c], budget);
                        if delta > 1e-12 && delta < f64::MAX {
                            kernel::drain_budget(kernel, budget, row, v[c], delta);
                            v[c] += delta;
                            raised += delta;
                            order[kept] = c;
                            kept += 1;
                        }
                    }
                    order.truncate(kept);
                    if raised < 1e-12 {
                        break;
                    }
                }
            }
        }
        v.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound_sandwich(p: &UflProblem) {
        let sol = p.solve_local_search();
        let ub = p.cost(&sol);
        let lb = p.dual_ascent_bound();
        assert!(
            lb <= ub + 1e-9,
            "dual bound {lb} must not exceed heuristic cost {ub}"
        );
        // Solution invariants.
        assert!(!sol.open.is_empty());
        for &a in &sol.assign {
            assert!(sol.open.contains(&a), "client assigned to closed facility");
        }
    }

    #[test]
    fn single_facility_trivial() {
        let p = UflProblem::from_rows(vec![3.0], vec![vec![1.0], vec![2.0]]);
        let sol = p.solve_local_search();
        assert_eq!(sol.open, vec![0]);
        assert_eq!(p.cost(&sol), 6.0);
        assert!(p.dual_ascent_bound() <= 6.0 + 1e-9);
    }

    #[test]
    fn opens_second_facility_when_worth_it() {
        // Facility 0 cheap to open but far from client 1; facility 1
        // expensive but essential.
        let p = UflProblem::from_rows(vec![1.0, 2.0], vec![vec![0.0, 10.0], vec![10.0, 0.0]]);
        let sol = p.solve_local_search();
        assert_eq!(sol.open, vec![0, 1]);
        assert_eq!(p.cost(&sol), 3.0);
        check_bound_sandwich(&p);
    }

    #[test]
    fn consolidates_when_opening_costly() {
        let p = UflProblem::from_rows(vec![100.0, 100.0], vec![vec![1.0, 2.0], vec![2.0, 1.0]]);
        let sol = p.solve_local_search();
        assert_eq!(sol.open.len(), 1);
        assert_eq!(p.cost(&sol), 103.0);
        check_bound_sandwich(&p);
    }

    #[test]
    fn swap_escapes_local_trap() {
        // Start greedy would pick facility 0 (cheap overall), but the
        // true optimum is facility 2 alone.
        let p = UflProblem::from_rows(
            vec![0.0, 50.0, 1.0],
            vec![
                vec![5.0, 0.0, 0.5],
                vec![5.0, 0.0, 0.5],
                vec![5.0, 0.0, 0.5],
            ],
        );
        let sol = p.solve_local_search();
        assert_eq!(sol.open, vec![2]);
        assert!((p.cost(&sol) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_clients_opens_cheapest() {
        let p = UflProblem::from_rows(vec![5.0, 2.0, 7.0], vec![]);
        let sol = p.solve_local_search();
        assert_eq!(sol.open, vec![1]);
        assert_eq!(p.dual_ascent_bound(), 2.0);
    }

    #[test]
    fn free_facilities_serve_everyone_locally() {
        // Zero facility costs: open everything useful, serve at min.
        let p = UflProblem::from_rows(vec![0.0; 3], vec![vec![4.0, 1.0, 9.0], vec![0.5, 3.0, 9.0]]);
        let sol = p.solve_local_search();
        assert!((p.cost(&sol) - 1.5).abs() < 1e-9);
        // Dual bound equals optimum here (LP tight).
        assert!((p.dual_ascent_bound() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn dual_bound_reasonably_tight_random() {
        use rand::Rng;
        let mut rng = vod_model::rng::rng_from_seed(99);
        for _case in 0..50 {
            let n = rng.gen_range(2..8);
            let c = rng.gen_range(1..10);
            let p = UflProblem::from_rows(
                (0..n).map(|_| rng.gen_range(0.0..5.0)).collect(),
                (0..c)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                    .collect(),
            );
            check_bound_sandwich(&p);
            // On small instances the gap should typically be modest.
            let lb = p.dual_ascent_bound();
            let ub = p.cost(&p.solve_local_search());
            assert!(ub <= 3.0 * lb.max(0.5), "loose: lb={lb} ub={ub}");
        }
    }

    #[test]
    fn local_search_beats_naive_baselines() {
        use rand::Rng;
        let mut rng = vod_model::rng::rng_from_seed(7);
        for _ in 0..20 {
            let n = rng.gen_range(3..10);
            let c = rng.gen_range(1..12);
            let p = UflProblem::from_rows(
                (0..n).map(|_| rng.gen_range(0.0..8.0)).collect(),
                (0..c)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                    .collect(),
            );
            let got = p.cost(&p.solve_local_search());
            // Baseline 1: everything open.
            let all = UflSolution {
                open: (0..n).collect(),
                assign: p
                    .service_rows()
                    .map(|row| (0..n).min_by(|&a, &b| row[a].total_cmp(&row[b])).unwrap())
                    .collect(),
            };
            assert!(got <= p.cost(&all) + 1e-9);
            // Baseline 2: best single facility.
            let best_single = (0..n)
                .map(|i| p.facility_cost[i] + p.service_rows().map(|r| r[i]).sum::<f64>())
                .fold(f64::MAX, f64::min);
            assert!(got <= best_single + 1e-9);
        }
    }

    #[test]
    fn scratch_reuse_is_pure() {
        // Re-solving different problems through one scratch must give
        // exactly the fresh-scratch answers (workers reuse scratch
        // across thousands of blocks).
        use rand::Rng;
        let mut rng = vod_model::rng::rng_from_seed(31);
        let mut scratch = UflScratch::default();
        for _ in 0..30 {
            let n = rng.gen_range(1..9);
            let c = rng.gen_range(0..10);
            let p = UflProblem::from_rows(
                (0..n).map(|_| rng.gen_range(0.0..8.0)).collect(),
                (0..c)
                    .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
                    .collect(),
            );
            assert_eq!(
                p.solve_local_search_fast_with(&mut scratch),
                p.solve_local_search_fast()
            );
            assert_eq!(
                p.solve_local_search_with(&mut scratch),
                p.solve_local_search()
            );
            assert_eq!(
                p.dual_ascent_bound_with(&mut scratch).to_bits(),
                p.dual_ascent_bound().to_bits()
            );
        }
    }

    #[test]
    fn flat_and_rows_constructors_agree() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let a = UflProblem::from_rows(vec![0.5, 0.25], rows);
        let b = UflProblem::from_flat(vec![0.5, 0.25], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.n_clients(), 3);
        assert_eq!(a.service_row(1), b.service_row(1));
        assert_eq!(
            a.service_rows().collect::<Vec<_>>(),
            b.service_rows().collect::<Vec<_>>()
        );
    }

    #[test]
    fn in_place_rebuild_reuses_buffers() {
        let mut p = UflProblem::from_rows(vec![1.0, 2.0], vec![vec![1.0, 2.0]]);
        let cap_f = p.facility_cost.capacity();
        p.reset();
        assert_eq!(p.n_clients(), 0);
        p.facility_cost.extend([3.0, 4.0]);
        p.push_service_row([5.0, 6.0]);
        assert_eq!(p.n_clients(), 1);
        assert_eq!(p.service_row(0), &[5.0, 6.0]);
        assert!(p.facility_cost.capacity() >= cap_f);
    }
}
