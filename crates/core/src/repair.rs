//! Deterministic feasibility repair of a deployed placement after a
//! world delta.
//!
//! A reconfiguration can strand the *currently serving* placement in
//! two ways: copies pinned on a VHO that just went storage-dark
//! (decommission), and disk budgets that shrank below what is pinned
//! (recommission with a smaller disk). The repair pass produces a
//! typed [`RepairPlan`] — which copies were re-homed where, and which
//! were evicted — that the service feeds through the existing
//! churn-capped diff, so repair migrations never exceed the migration
//! budget.
//!
//! Determinism contract: pure function of `(deployed, catalog, dark,
//! disks)`; no RNG, no iteration over unordered containers. All ties
//! break toward the lowest id. Both chaos twins therefore compute
//! byte-identical plans.
//!
//! Rules, in order:
//!
//! 1. **Orphan eviction.** A video with copies on dark VHOs *and* at
//!    least one surviving holder simply drops the dark copies
//!    (eviction is free under the churn cap).
//! 2. **Sole-copy re-homing.** A video whose *only* copies sit on dark
//!    VHOs is re-homed to one live VHO: the one with the most free
//!    placement disk that fits the video (ties → lowest id), else the
//!    most free disk overall. Re-homing costs one churn-cap move; if
//!    the cap defers it, the video keeps its dark holders until the
//!    next cycle's solve re-homes it naturally (the placement stays
//!    structurally valid — dark VHOs remain in the id space).
//! 3. **Overflow eviction.** A live VHO pinned above its (possibly
//!    shrunken) budget evicts redundant copies — videos that keep at
//!    least one other copy — largest video first (ties → lowest id)
//!    until it fits. Sole copies are never evicted; a VHO that still
//!    overflows after shedding every redundant copy is left for the
//!    next solve to rebalance (best-effort, documented).
//! 4. **Routing renormalization.** Serving distributions pointing at
//!    holders that no longer hold the video are pruned and the
//!    remainder renormalized; a client left with no distribution falls
//!    back to nearest-copy service (the existing convention).

use crate::solution::Placement;
use vod_model::{Catalog, Gigabytes, VhoId, VideoId};

/// Slack when comparing pinned GB against a disk budget, to keep the
/// pass insensitive to accumulation order.
const DISK_TOL: f64 = 1e-9;

/// One re-homed sole copy: `video` moved from dark `from` to live `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairMove {
    pub video: VideoId,
    pub from: VhoId,
    pub to: VhoId,
}

/// The typed outcome of a repair pass.
#[derive(Debug, Clone)]
pub struct RepairPlan {
    /// The repaired placement (same video axis as the input).
    pub placement: Placement,
    /// Sole copies re-homed off dark VHOs (each costs one churn move).
    pub rehomed: Vec<RepairMove>,
    /// Copies dropped: orphans on dark VHOs with surviving holders,
    /// plus overflow evictions (free under the churn cap).
    pub evicted: Vec<(VideoId, VhoId)>,
}

impl RepairPlan {
    /// Whether the delta left the deployed placement untouched.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.rehomed.is_empty() && self.evicted.is_empty()
    }

    /// FNV-1a of the canonical plan description — the drill compares
    /// these across twins.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut s = String::new();
        for m in &self.rehomed {
            s.push_str(&format!("r{}:{}>{};", m.video, m.from, m.to));
        }
        for (v, i) in &self.evicted {
            s.push_str(&format!("e{v}@{i};"));
        }
        vod_json::snapshot::fnv1a64(s.as_bytes())
    }
}

/// Repair `deployed` against the post-delta world: `dark[i]` marks
/// storage-dark VHOs, `disks[i]` is each VHO's placement-disk budget.
/// Both slices must cover the placement's VHO axis.
#[must_use]
pub fn repair_placement(
    deployed: &Placement,
    catalog: &Catalog,
    dark: &[bool],
    disks: &[Gigabytes],
) -> RepairPlan {
    let n_vhos = deployed.n_vhos();
    assert_eq!(dark.len(), n_vhos, "dark mask must cover the VHO axis");
    assert_eq!(disks.len(), n_vhos, "disk budgets must cover the VHO axis");

    let mut stores = deployed.holder_lists();
    let mut rehomed = Vec::new();
    let mut evicted = Vec::new();

    let size_of = |mi: usize| catalog.video(VideoId::from_index(mi)).size().value();

    // Pinned GB per *live* VHO (dark holders never count toward disk).
    let mut used = vec![0.0f64; n_vhos];
    for (mi, holders) in stores.iter().enumerate() {
        for &h in holders {
            if !dark[h.index()] {
                used[h.index()] += size_of(mi);
            }
        }
    }
    let free = |used: &[f64], i: usize, disks: &[Gigabytes]| -> f64 { disks[i].value() - used[i] };

    // Passes 1 + 2: dark-VHO orphans and sole-copy re-homing.
    for (mi, holders) in stores.iter_mut().enumerate() {
        let has_dark = holders.iter().any(|h| dark[h.index()]);
        if !has_dark {
            continue;
        }
        let video = VideoId::from_index(mi);
        let alive: Vec<VhoId> = holders
            .iter()
            .copied()
            .filter(|h| !dark[h.index()])
            .collect();
        if !alive.is_empty() {
            for &h in holders.iter() {
                if dark[h.index()] {
                    evicted.push((video, h));
                }
            }
            *holders = alive;
            continue;
        }
        // Sole copies are all dark: re-home to the live VHO with the
        // most free disk that fits, else the most free disk overall.
        let sz = size_of(mi);
        let live: Vec<usize> = (0..n_vhos).filter(|&i| !dark[i]).collect();
        let pick = |cands: &[usize]| -> Option<usize> {
            cands.iter().copied().min_by(|&a, &b| {
                free(&used, b, disks)
                    .total_cmp(&free(&used, a, disks))
                    .then(a.cmp(&b))
            })
        };
        let fitting: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| free(&used, i, disks) + DISK_TOL >= sz)
            .collect();
        let Some(t) = pick(&fitting).or_else(|| pick(&live)) else {
            // Every VHO is dark: nothing to re-home onto; leave the
            // placement as-is (structurally valid, served degraded).
            continue;
        };
        // lint:allow(raw-index): t indexes the same dense VHO axis the
        // placement's store lists use; the id round-trips losslessly.
        let to = VhoId::from_index(t);
        let from = holders[0];
        for &h in holders.iter() {
            evicted.push((video, h));
        }
        rehomed.push(RepairMove { video, from, to });
        used[t] += sz;
        *holders = vec![to];
    }

    // Pass 3: overflow eviction on live VHOs, lowest VHO id first.
    for i in 0..n_vhos {
        if dark[i] || used[i] <= disks[i].value() + DISK_TOL {
            continue;
        }
        loop {
            // Redundant copies pinned here: the video keeps >= 1 copy
            // elsewhere. Largest video first, ties toward lowest id.
            // lint:allow(raw-index): i walks the dense VHO axis shared
            // with `dark`/`disks`; the id round-trips losslessly.
            let vho = VhoId::from_index(i);
            let candidate = stores
                .iter()
                .enumerate()
                .filter(|(_, holders)| holders.len() >= 2 && holders.binary_search(&vho).is_ok())
                .map(|(mi, _)| mi)
                .min_by(|&a, &b| size_of(b).total_cmp(&size_of(a)).then(a.cmp(&b)));
            let Some(mi) = candidate else {
                break; // only sole copies remain: best-effort stop
            };
            if let Ok(k) = stores[mi].binary_search(&vho) {
                stores[mi].remove(k);
            }
            evicted.push((VideoId::from_index(mi), vho));
            used[i] -= size_of(mi);
            if used[i] <= disks[i].value() + DISK_TOL {
                break;
            }
        }
    }

    // Pass 4: prune and renormalize routing against the new holders.
    let mut routing = deployed.routing_lists().to_vec();
    for (mi, clients) in routing.iter_mut().enumerate() {
        for (_, dist) in clients.iter_mut() {
            dist.retain(|(h, _)| stores[mi].binary_search(h).is_ok());
            let total: f64 = dist.iter().map(|&(_, x)| x).sum();
            if total > 0.0 {
                for e in dist.iter_mut() {
                    e.1 /= total;
                }
            } else {
                dist.clear(); // fall back to nearest-copy service
            }
        }
    }

    let placement = Placement::from_parts(n_vhos, stores, routing)
        // lint:allow(no-panic-hot-path): passes 1-4 only ever shrink or
        // re-home existing sorted store lists and renormalize routing
        // over surviving holders, so the parts are structurally valid
        // by construction; a failure here is a repair bug, not input.
        .expect("repair must preserve structural validity");
    RepairPlan {
        placement,
        rehomed,
        evicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{Video, VideoClass, VideoKind};

    fn catalog(classes: &[VideoClass]) -> Catalog {
        Catalog::new(
            classes
                .iter()
                .enumerate()
                .map(|(i, &class)| Video {
                    id: VideoId::from_index(i),
                    class,
                    kind: VideoKind::Catalog,
                    release_day: 0,
                    weight: 1.0,
                })
                .collect(),
        )
    }

    fn placement(n_vhos: usize, holders: Vec<Vec<u16>>) -> Placement {
        Placement::from_stores(
            n_vhos,
            holders
                .into_iter()
                .map(|hs| hs.into_iter().map(VhoId::new).collect())
                .collect(),
        )
    }

    fn gb(v: f64) -> Gigabytes {
        Gigabytes::new(v)
    }

    #[test]
    fn healthy_world_is_a_noop() {
        let cat = catalog(&[VideoClass::Movie, VideoClass::Show]);
        let p = placement(3, vec![vec![0, 1], vec![2]]);
        let plan = repair_placement(&p, &cat, &[false; 3], &[gb(10.0); 3]);
        assert!(plan.is_noop());
        assert_eq!(plan.placement.total_copies(), 3);
        assert_eq!(plan.fingerprint(), vod_json::snapshot::fnv1a64(b""));
    }

    #[test]
    fn orphans_with_survivors_are_evicted() {
        let cat = catalog(&[VideoClass::Movie]);
        let p = placement(3, vec![vec![0, 2]]);
        let dark = [false, false, true];
        let plan = repair_placement(&p, &cat, &dark, &[gb(10.0); 3]);
        assert_eq!(plan.rehomed, vec![]);
        assert_eq!(plan.evicted, vec![(VideoId::new(0), VhoId::new(2))]);
        assert_eq!(plan.placement.stores(VideoId::new(0)), &[VhoId::new(0)]);
    }

    #[test]
    fn sole_dark_copies_rehome_to_most_free_fitting_vho() {
        let cat = catalog(&[VideoClass::Movie, VideoClass::Movie]);
        // Video 0 only on VHO 2 (going dark); video 1 occupies VHO 0.
        let p = placement(3, vec![vec![2], vec![0]]);
        let dark = [false, false, true];
        // VHO 0 has 8 GB free after video 1's 2 GB, VHO 1 has 3 GB.
        let plan = repair_placement(&p, &cat, &dark, &[gb(10.0), gb(3.0), gb(10.0)]);
        assert_eq!(
            plan.rehomed,
            vec![RepairMove {
                video: VideoId::new(0),
                from: VhoId::new(2),
                to: VhoId::new(0),
            }]
        );
        assert_eq!(plan.placement.stores(VideoId::new(0)), &[VhoId::new(0)]);
        assert!(plan.evicted.contains(&(VideoId::new(0), VhoId::new(2))));
    }

    #[test]
    fn overflow_evicts_redundant_largest_first_never_sole_copies() {
        // VHO 0 budget shrinks to 1.2 GB; it pins a redundant 1 GB
        // Show (also on VHO 1) and a sole 2 GB Movie. Only the Show
        // may leave; the sole Movie stays (best-effort overflow).
        let cat = catalog(&[VideoClass::Show, VideoClass::Movie]);
        let p = placement(2, vec![vec![0, 1], vec![0]]);
        let plan = repair_placement(&p, &cat, &[false, false], &[gb(1.2), gb(10.0)]);
        assert_eq!(plan.evicted, vec![(VideoId::new(0), VhoId::new(0))]);
        assert_eq!(plan.placement.stores(VideoId::new(0)), &[VhoId::new(1)]);
        assert_eq!(plan.placement.stores(VideoId::new(1)), &[VhoId::new(0)]);
    }

    #[test]
    fn all_dark_world_leaves_placement_untouched() {
        let cat = catalog(&[VideoClass::Clip]);
        let p = placement(2, vec![vec![1]]);
        let plan = repair_placement(&p, &cat, &[true, true], &[gb(1.0); 2]);
        assert!(plan.is_noop());
        assert_eq!(plan.placement.stores(VideoId::new(0)), &[VhoId::new(1)]);
    }

    #[test]
    fn plans_are_deterministic_and_fingerprinted() {
        let cat = catalog(&[VideoClass::Movie, VideoClass::Show, VideoClass::Clip]);
        let p = placement(4, vec![vec![0, 3], vec![3], vec![1, 3]]);
        let dark = [false, false, false, true];
        let disks = [gb(5.0), gb(5.0), gb(5.0), gb(5.0)];
        let a = repair_placement(&p, &cat, &dark, &disks);
        let b = repair_placement(&p, &cat, &dark, &disks);
        assert_eq!(a.rehomed, b.rehomed);
        assert_eq!(a.evicted, b.evicted);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(!a.is_noop());
        // Video 1's sole dark copy re-homed to a live VHO.
        assert_eq!(a.rehomed.len(), 1);
        assert_eq!(a.rehomed[0].video, VideoId::new(1));
        assert!(!dark[a.rehomed[0].to.index()]);
    }
}
