//! The exponential potential function over the coupling constraints.
//!
//! Appendix A: the disk rows (5) and link rows (6) — plus the objective
//! target row `cz ≤ B` of `FEAS(B)` — are penalized through
//! `Φ(z) = Σ_i exp(α(δ)·r_i(z))` with `r_i(z) = a_i z / b_i − 1` and
//! `α(δ) = γ·ln(m+1)/δ`. This module owns the row layout, the running
//! usage totals, the potential/dual computations
//! (`π_i = exp(α r_i)/b_i`), and the exact 1-D convex line search used
//! for every block step.

use std::sync::atomic::{AtomicU64, Ordering};
use vod_model::{LinkId, VhoId};

/// Process-global dual-snapshot version counter (see [`Duals::version`]).
static DUAL_VERSION: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh, process-unique dual-snapshot version. Versions
/// never influence numerics — they only let consumers such as
/// [`crate::penalty::PenaltyArena`] recognize "same snapshot passed
/// again" and short-circuit recomputation — so the global counter does
/// not threaten run-to-run determinism of placements.
fn next_dual_version() -> u64 {
    DUAL_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// Maps (disk, link×window) coupling constraints onto a flat row index.
#[derive(Debug, Clone, Copy)]
pub struct RowLayout {
    pub n_vhos: usize,
    pub n_links: usize,
    pub n_windows: usize,
}

impl RowLayout {
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_vhos + self.n_links * self.n_windows
    }

    #[inline]
    pub fn disk_row(&self, i: VhoId) -> usize {
        i.index()
    }

    #[inline]
    pub fn link_row(&self, l: LinkId, window: usize) -> usize {
        debug_assert!(window < self.n_windows);
        self.n_vhos + window * self.n_links + l.index()
    }

    /// Whether `row` is a disk row (else it is a link row).
    #[inline]
    pub fn is_disk(&self, row: usize) -> bool {
        row < self.n_vhos
    }
}

/// Exponents are clamped here before `exp()`: at the operating point
/// `α·r ≤ γ·ln(m+1)` (since `δ ≥ max_i r_i`), but a trial step in the
/// line search may transiently exceed it; clamping preserves the sign
/// and monotonicity of the derivative without risking overflow.
const EXP_CLAMP: f64 = 60.0;

#[inline]
fn cexp(x: f64) -> f64 {
    x.min(EXP_CLAMP).exp()
}

/// State of the potential function: capacities, running usage, the
/// objective row, and the current exponent scale.
#[derive(Debug, Clone)]
pub struct Coupling {
    pub layout: RowLayout,
    /// `b_i` per row: disk rows in GB, link rows in Mb/s.
    caps: Vec<f64>,
    /// `a_i z` per row, maintained incrementally.
    usage: Vec<f64>,
    /// Current objective value `cz`.
    obj: f64,
    /// Objective target `B` of `FEAS(B)`; `None` in pure feasibility
    /// mode (the objective row then simply does not exist).
    target: Option<f64>,
    /// Current exponent multiplier `α(δ)`.
    alpha: f64,
    /// `γ·ln(m+1)` — numerator of `α(δ)`.
    gamma_log: f64,
    /// Current scale `δ`.
    delta: f64,
}

/// Snapshot of the Lagrange multipliers `π^δ(z)`.
#[derive(Debug, Clone)]
pub struct Duals {
    /// `π_i = exp(α r_i)/b_i` per coupling row.
    pub rows: Vec<f64>,
    /// `π_0 = exp(α r_0)/B`; zero in feasibility mode.
    pub obj: f64,
    /// Process-unique snapshot id: two `Duals` share a version iff one
    /// is a clone of the other, so `version` equality certifies "values
    /// identical" without comparing rows. Kept private so every
    /// construction/mutation path restamps it ([`Duals::new`],
    /// [`Duals::bump_version`]).
    version: u64,
}

impl Duals {
    /// A fresh snapshot with a new process-unique version.
    pub fn new(rows: Vec<f64>, obj: f64) -> Self {
        Self {
            rows,
            obj,
            version: next_dual_version(),
        }
    }

    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Restamp after mutating `rows`/`obj` in place (e.g. the EPF dual
    /// smoothing step) so the snapshot no longer aliases its ancestor.
    pub fn bump_version(&mut self) {
        self.version = next_dual_version();
    }

    /// Copy `src` into `self` (version included), reusing the row
    /// buffer instead of allocating like `clone` would.
    pub fn copy_from(&mut self, src: &Duals) {
        self.rows.clone_from(&src.rows);
        self.obj = src.obj;
        self.version = src.version;
    }
}

impl Coupling {
    pub fn new(layout: RowLayout, caps: Vec<f64>, gamma: f64, target: Option<f64>) -> Self {
        assert_eq!(caps.len(), layout.n_rows());
        assert!(caps.iter().all(|&b| b > 0.0), "capacities must be positive");
        if let Some(b) = target {
            assert!(b > 0.0, "objective target must be positive");
        }
        let m = layout.n_rows() + usize::from(target.is_some());
        Self {
            layout,
            usage: vec![0.0; caps.len()],
            caps,
            obj: 0.0,
            target,
            alpha: 0.0,
            gamma_log: gamma * ((m + 1) as f64).ln(),
            delta: f64::MAX,
        }
    }

    #[inline]
    pub fn usage(&self, row: usize) -> f64 {
        self.usage[row]
    }

    #[inline]
    pub fn cap(&self, row: usize) -> f64 {
        self.caps[row]
    }

    #[inline]
    pub fn objective(&self) -> f64 {
        self.obj
    }

    #[inline]
    pub fn target(&self) -> Option<f64> {
        self.target
    }

    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// All usage totals, in row order (for checkpointing).
    #[inline]
    pub fn usage_all(&self) -> &[f64] {
        &self.usage
    }

    /// Restore a checkpointed scale `δ` exactly, recomputing `α(δ)` the
    /// same way [`Coupling::update_scale`] does. This bypasses the
    /// monotone never-grow update — `δ`'s history dependence is the
    /// reason it is checkpointed rather than recomputed.
    pub fn restore_scale(&mut self, delta: f64) {
        assert!(delta > 0.0, "scale must be positive");
        self.delta = delta;
        self.alpha = self.gamma_log / self.delta;
    }

    /// Overwrite usage totals (used when (re)computing aggregates from
    /// scratch to wash out incremental drift).
    pub fn set_state(&mut self, usage: Vec<f64>, obj: f64) {
        assert_eq!(usage.len(), self.caps.len());
        self.usage = usage;
        self.obj = obj;
    }

    /// Update the objective target `B` (raised to each new lower
    /// bound, Algorithm 1 step 15).
    pub fn set_target(&mut self, b: f64) {
        assert!(b > 0.0);
        self.target = Some(b);
    }

    /// Relative infeasibility `r_i(z)` of a coupling row.
    #[inline]
    pub fn rel_infeas(&self, row: usize) -> f64 {
        self.usage[row] / self.caps[row] - 1.0
    }

    /// Relative infeasibility of the objective row, `cz/B − 1`.
    #[inline]
    pub fn r0(&self) -> f64 {
        match self.target {
            Some(b) => self.obj / b - 1.0,
            None => f64::NEG_INFINITY,
        }
    }

    /// `δ_c(z)`: max relative infeasibility over coupling rows.
    pub fn delta_c(&self) -> f64 {
        (0..self.caps.len())
            .map(|r| self.rel_infeas(r))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// `δ(z) = max(δ_c(z), r_0(z))`.
    pub fn delta_z(&self) -> f64 {
        self.delta_c().max(self.r0())
    }

    /// Algorithm 1 step 11: shrink the scale to the current max
    /// infeasibility (never grow it) and refresh `α(δ)`.
    ///
    /// `floor` keeps δ at or above the solver's tolerance: we only
    /// need ε-feasibility, and sharpening the potential beyond ε makes
    /// the exponentials so steep that line-searched steps collapse.
    pub fn update_scale(&mut self, floor: f64) {
        let dz = self.delta_z().max(floor.max(1e-6));
        self.delta = self.delta.min(dz);
        self.alpha = self.gamma_log / self.delta;
    }

    /// Initialize `δ` from the starting solution.
    pub fn init_scale(&mut self, floor: f64) {
        self.delta = self.delta_z().max(floor.max(1e-6));
        self.alpha = self.gamma_log / self.delta;
    }

    /// The Lagrange multipliers `π^δ(z)` at the current point.
    pub fn duals(&self) -> Duals {
        let rows = (0..self.caps.len())
            .map(|r| cexp(self.alpha * self.rel_infeas(r)) / self.caps[r])
            .collect();
        let obj = match self.target {
            Some(b) => cexp(self.alpha * self.r0()) / b,
            None => 0.0,
        };
        Duals::new(rows, obj)
    }

    /// Total potential `Φ^δ(z)` (for diagnostics/tests).
    pub fn potential(&self) -> f64 {
        let mut phi: f64 = (0..self.caps.len())
            .map(|r| cexp(self.alpha * self.rel_infeas(r)))
            .sum();
        if self.target.is_some() {
            phi += cexp(self.alpha * self.r0());
        }
        phi
    }

    /// Exact line search: minimize `τ ↦ Φ(z + τ·d)` over `[0, 1]`,
    /// where `d` changes coupling-row usages by `deltas` and the
    /// objective by `dobj` (both at `τ = 1`).
    ///
    /// `Φ(τ)` is a sum of exponentials of affine functions, hence
    /// strictly convex in `τ`; rows not touched by `d` are constants
    /// and are skipped. Solved by bisection on the derivative.
    pub fn line_search(&self, deltas: &[(usize, f64)], dobj: f64) -> f64 {
        // Build (u, s) pairs: term = exp(u + τ·s), derivative s·exp(·).
        let mut terms: Vec<(f64, f64)> = Vec::with_capacity(deltas.len() + 1);
        for &(row, d) in deltas {
            if d != 0.0 {
                terms.push((
                    self.alpha * self.rel_infeas(row),
                    self.alpha * d / self.caps[row],
                ));
            }
        }
        if let Some(b) = self.target {
            if dobj != 0.0 {
                terms.push((self.alpha * self.r0(), self.alpha * dobj / b));
            }
        }
        if terms.is_empty() {
            return 0.0;
        }
        let dphi = |tau: f64| -> f64 {
            terms
                .iter()
                .map(|&(u, s)| s * cexp(u + tau * s))
                .sum::<f64>()
        };
        if dphi(0.0) >= 0.0 {
            return 0.0;
        }
        if dphi(1.0) <= 0.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if dphi(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Apply a step of size `tau` along `d`.
    pub fn apply(&mut self, deltas: &[(usize, f64)], dobj: f64, tau: f64) {
        debug_assert!((0.0..=1.0).contains(&tau));
        for &(row, d) in deltas {
            self.usage[row] += tau * d;
            // Clamp tiny negative drift.
            if self.usage[row] < 0.0 {
                debug_assert!(self.usage[row] > -1e-6, "usage went negative");
                self.usage[row] = 0.0;
            }
        }
        self.obj += tau * dobj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Coupling {
        let layout = RowLayout {
            n_vhos: 2,
            n_links: 1,
            n_windows: 1,
        };
        let mut c = Coupling::new(layout, vec![10.0, 10.0, 100.0], 1.0, Some(50.0));
        c.set_state(vec![5.0, 20.0, 100.0], 25.0);
        c.init_scale(0.01);
        c
    }

    #[test]
    fn row_layout_indexing() {
        let l = RowLayout {
            n_vhos: 3,
            n_links: 4,
            n_windows: 2,
        };
        assert_eq!(l.n_rows(), 11);
        assert_eq!(l.disk_row(VhoId::new(2)), 2);
        assert_eq!(l.link_row(LinkId::new(0), 0), 3);
        assert_eq!(l.link_row(LinkId::new(3), 1), 10);
        assert!(l.is_disk(2));
        assert!(!l.is_disk(3));
    }

    #[test]
    fn infeasibility_measures() {
        let c = simple();
        assert_eq!(c.rel_infeas(0), -0.5);
        assert_eq!(c.rel_infeas(1), 1.0);
        assert_eq!(c.rel_infeas(2), 0.0);
        assert_eq!(c.r0(), -0.5);
        assert_eq!(c.delta_c(), 1.0);
        assert_eq!(c.delta_z(), 1.0);
    }

    #[test]
    fn scale_never_grows() {
        let mut c = simple();
        let d0 = c.delta();
        assert_eq!(d0, 1.0);
        // Make things worse; δ must not grow.
        c.set_state(vec![5.0, 40.0, 100.0], 25.0);
        c.update_scale(0.01);
        assert_eq!(c.delta(), 1.0);
        // Make things better; δ shrinks.
        c.set_state(vec![5.0, 11.0, 100.0], 25.0);
        c.update_scale(0.01);
        assert!((c.delta() - 0.1).abs() < 1e-12);
        assert!(c.alpha() > 0.0);
    }

    #[test]
    fn duals_positive_and_ordered() {
        let c = simple();
        let d = c.duals();
        assert_eq!(d.rows.len(), 3);
        assert!(d.rows.iter().all(|&p| p > 0.0));
        assert!(d.obj > 0.0);
        // The violated row (1) must carry a much larger dual than the
        // slack row (0) — same capacity, higher relative usage.
        assert!(d.rows[1] > d.rows[0] * 2.0);
    }

    #[test]
    fn line_search_moves_toward_feasibility() {
        let c = simple();
        // Direction that unloads the violated row 1 fully.
        let deltas = [(1usize, -15.0)];
        let tau = c.line_search(&deltas, 0.0);
        assert!(tau > 0.9, "should take (nearly) the full step, got {tau}");
        // Direction that overloads row 0 severely: refuse.
        let bad = [(0usize, 1e9)];
        assert_eq!(c.line_search(&bad, 0.0), 0.0);
    }

    #[test]
    fn line_search_finds_interior_optimum() {
        let c = simple();
        // Trade-off: relieve row 1 but overload row 0 at full step.
        let deltas = [(1usize, -15.0), (0usize, 40.0)];
        let tau = c.line_search(&deltas, 0.0);
        assert!(
            tau > 0.05 && tau < 0.95,
            "interior step expected, got {tau}"
        );
        // Verify it is a minimum of the potential along the segment.
        let phi_at = |t: f64| {
            let mut cc = c.clone();
            cc.apply(&deltas, 0.0, t);
            cc.potential()
        };
        let p = phi_at(tau);
        assert!(p <= phi_at((tau - 0.05).max(0.0)) + 1e-9);
        assert!(p <= phi_at((tau + 0.05).min(1.0)) + 1e-9);
    }

    #[test]
    fn apply_updates_state() {
        let mut c = simple();
        c.apply(&[(0, 10.0)], 5.0, 0.5);
        assert_eq!(c.usage(0), 10.0);
        assert_eq!(c.objective(), 27.5);
    }

    #[test]
    fn feasibility_mode_has_no_objective_row() {
        let layout = RowLayout {
            n_vhos: 1,
            n_links: 1,
            n_windows: 1,
        };
        let mut c = Coupling::new(layout, vec![10.0, 10.0], 1.0, None);
        c.set_state(vec![5.0, 5.0], 42.0);
        c.init_scale(0.01);
        assert_eq!(c.duals().obj, 0.0);
        assert_eq!(c.r0(), f64::NEG_INFINITY);
        // Objective changes don't affect the line search.
        assert_eq!(c.line_search(&[], 100.0), 0.0);
    }

    #[test]
    fn clamped_exponent_no_overflow() {
        let layout = RowLayout {
            n_vhos: 1,
            n_links: 0,
            n_windows: 0,
        };
        let mut c = Coupling::new(layout, vec![1e-3], 1.0, None);
        c.set_state(vec![1e9], 0.0);
        c.init_scale(0.01);
        assert!(c.potential().is_finite());
        assert!(c.duals().rows[0].is_finite());
    }
}
