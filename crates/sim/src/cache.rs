//! Cache-replacement policies: LRU and LFU with stream pinning.
//!
//! The paper's baselines (Section VII-A) keep one pinned copy of each
//! video somewhere and use the remaining disk as an LRU or LFU cache;
//! its own scheme adds a small *complementary* LRU cache on top of the
//! MIP placement (Section VI-A). Both replacement policies must respect
//! the VoD-specific constraint that a video currently being streamed
//! from the cache cannot be evicted (Section I), which is what makes
//! large working sets so punishing for caches (Fig. 9).

use std::collections::{BTreeMap, BTreeSet};
use vod_model::VideoId;

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored (evicting the listed victims).
    Inserted(Vec<VideoId>),
    /// Already present (treated as a touch).
    AlreadyPresent,
    /// Could not make room: the remaining contents are pinned by
    /// active streams — the request is *uncachable* (Fig. 9).
    Rejected,
}

/// Counters reported by Fig. 9 and Table II.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub rejections: u64,
}

/// Common interface of the replacement policies.
pub trait Cache {
    fn contains(&self, m: VideoId) -> bool;
    /// Record a hit (updates recency/frequency bookkeeping).
    fn touch(&mut self, m: VideoId);
    /// Try to insert `m` of the given size, evicting unpinned victims
    /// as needed.
    fn insert(&mut self, m: VideoId, size_gb: f64) -> InsertOutcome;
    /// Pin `m` for the duration of a stream (refcounted).
    fn pin(&mut self, m: VideoId);
    /// Release one pin of `m`.
    fn unpin(&mut self, m: VideoId);
    fn stats(&self) -> &CacheStats;
    fn used_gb(&self) -> f64;
    fn capacity_gb(&self) -> f64;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which replacement policy a VHO's cache uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheKind {
    Lru,
    Lfu,
    /// LRFU spectrum policy with decay λ (the paper's [18]); λ→0 is
    /// LFU, large λ is LRU.
    Lrfu(f64),
}

/// Create a cache of the given kind.
pub fn make_cache(kind: CacheKind, capacity_gb: f64) -> Box<dyn Cache + Send> {
    match kind {
        CacheKind::Lru => Box::new(LruCache::new(capacity_gb)),
        CacheKind::Lfu => Box::new(LfuCache::new(capacity_gb)),
        CacheKind::Lrfu(lambda) => Box::new(LrfuCache::new(capacity_gb, lambda)),
    }
}

#[derive(Debug, Clone)]
struct Entry {
    size_gb: f64,
    /// Eviction key currently registered in the order index.
    key: (u64, u64),
    pins: u32,
}

/// Shared machinery: a size-bounded store with an ordered eviction
/// index; LRU and LFU differ only in how they compute a video's
/// eviction key (smaller = evicted sooner).
#[derive(Debug)]
struct PolicyCache {
    capacity_gb: f64,
    used_gb: f64,
    entries: BTreeMap<u32, Entry>,
    /// (key, video) — iterated from the smallest key when evicting.
    order: BTreeSet<((u64, u64), u32)>,
    clock: u64,
    stats: CacheStats,
}

impl PolicyCache {
    fn new(capacity_gb: f64) -> Self {
        assert!(capacity_gb >= 0.0, "negative cache capacity");
        Self {
            capacity_gb,
            used_gb: 0.0,
            entries: BTreeMap::new(),
            order: BTreeSet::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn rekey(&mut self, m: u32, key: (u64, u64)) {
        if let Some(e) = self.entries.get_mut(&m) {
            self.order.remove(&(e.key, m));
            e.key = key;
            self.order.insert((key, m));
        }
    }

    fn insert_with_key(&mut self, m: VideoId, size_gb: f64, key: (u64, u64)) -> InsertOutcome {
        assert!(size_gb > 0.0, "video size must be positive");
        if self.entries.contains_key(&m.0) {
            return InsertOutcome::AlreadyPresent;
        }
        if size_gb > self.capacity_gb {
            self.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        // Select victims: smallest keys first, skipping pinned videos.
        let mut victims: Vec<u32> = Vec::new();
        let mut reclaimed = 0.0;
        if self.used_gb + size_gb > self.capacity_gb {
            for &(_, vid) in self.order.iter() {
                if self.used_gb + size_gb - reclaimed <= self.capacity_gb {
                    break;
                }
                let e = &self.entries[&vid];
                if e.pins == 0 {
                    victims.push(vid);
                    reclaimed += e.size_gb;
                }
            }
            if self.used_gb + size_gb - reclaimed > self.capacity_gb {
                // Everything left is pinned: uncachable.
                self.stats.rejections += 1;
                return InsertOutcome::Rejected;
            }
        }
        let mut evicted = Vec::with_capacity(victims.len());
        for vid in victims {
            let e = self.entries.remove(&vid).expect("victim exists");
            self.order.remove(&(e.key, vid));
            self.used_gb -= e.size_gb;
            self.stats.evictions += 1;
            evicted.push(VideoId::new(vid));
        }
        self.entries.insert(
            m.0,
            Entry {
                size_gb,
                key,
                pins: 0,
            },
        );
        self.order.insert((key, m.0));
        self.used_gb += size_gb;
        self.stats.insertions += 1;
        InsertOutcome::Inserted(evicted)
    }
}

/// Least-recently-used cache: eviction key = last access time.
#[derive(Debug)]
pub struct LruCache {
    inner: PolicyCache,
}

impl LruCache {
    pub fn new(capacity_gb: f64) -> Self {
        Self {
            inner: PolicyCache::new(capacity_gb),
        }
    }
}

impl Cache for LruCache {
    fn contains(&self, m: VideoId) -> bool {
        self.inner.entries.contains_key(&m.0)
    }

    fn touch(&mut self, m: VideoId) {
        let now = self.inner.tick();
        if self.inner.entries.contains_key(&m.0) {
            self.inner.stats.hits += 1;
            self.inner.rekey(m.0, (now, 0));
        }
    }

    fn insert(&mut self, m: VideoId, size_gb: f64) -> InsertOutcome {
        let now = self.inner.tick();
        self.inner.insert_with_key(m, size_gb, (now, 0))
    }

    fn pin(&mut self, m: VideoId) {
        if let Some(e) = self.inner.entries.get_mut(&m.0) {
            e.pins += 1;
        }
    }

    fn unpin(&mut self, m: VideoId) {
        if let Some(e) = self.inner.entries.get_mut(&m.0) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.inner.stats
    }

    fn used_gb(&self) -> f64 {
        self.inner.used_gb
    }

    fn capacity_gb(&self) -> f64 {
        self.inner.capacity_gb
    }

    fn len(&self) -> usize {
        self.inner.entries.len()
    }
}

/// Least-frequently-used cache: eviction key = (access count, last
/// access) — frequency first, recency breaking ties.
#[derive(Debug)]
pub struct LfuCache {
    inner: PolicyCache,
    freq: BTreeMap<u32, u64>,
}

impl LfuCache {
    pub fn new(capacity_gb: f64) -> Self {
        Self {
            inner: PolicyCache::new(capacity_gb),
            freq: BTreeMap::new(),
        }
    }
}

impl Cache for LfuCache {
    fn contains(&self, m: VideoId) -> bool {
        self.inner.entries.contains_key(&m.0)
    }

    fn touch(&mut self, m: VideoId) {
        let now = self.inner.tick();
        let f = self.freq.entry(m.0).or_insert(0);
        *f += 1;
        let f = *f;
        if self.inner.entries.contains_key(&m.0) {
            self.inner.stats.hits += 1;
            self.inner.rekey(m.0, (f, now));
        }
    }

    fn insert(&mut self, m: VideoId, size_gb: f64) -> InsertOutcome {
        let now = self.inner.tick();
        let f = *self.freq.entry(m.0).and_modify(|f| *f += 1).or_insert(1);
        self.inner.insert_with_key(m, size_gb, (f, now))
    }

    fn pin(&mut self, m: VideoId) {
        if let Some(e) = self.inner.entries.get_mut(&m.0) {
            e.pins += 1;
        }
    }

    fn unpin(&mut self, m: VideoId) {
        if let Some(e) = self.inner.entries.get_mut(&m.0) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.inner.stats
    }

    fn used_gb(&self) -> f64 {
        self.inner.used_gb
    }

    fn capacity_gb(&self) -> f64 {
        self.inner.capacity_gb
    }

    fn len(&self) -> usize {
        self.inner.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> VideoId {
        VideoId::new(i)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2.0);
        assert!(matches!(c.insert(m(1), 1.0), InsertOutcome::Inserted(v) if v.is_empty()));
        c.insert(m(2), 1.0);
        c.touch(m(1)); // 1 now most recent
        let out = c.insert(m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted(vec![m(2)]));
        assert!(c.contains(m(1)));
        assert!(!c.contains(m(2)));
        assert!(c.contains(m(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2.0);
        c.insert(m(1), 1.0);
        c.insert(m(2), 1.0);
        c.touch(m(1));
        c.touch(m(1)); // freq(1)=3, freq(2)=1
        let out = c.insert(m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted(vec![m(2)]));
        assert!(c.contains(m(1)));
    }

    #[test]
    fn pinned_entries_survive() {
        let mut c = LruCache::new(2.0);
        c.insert(m(1), 1.0);
        c.insert(m(2), 1.0);
        c.pin(m(1));
        // Oldest (1) is pinned → evict 2 instead.
        let out = c.insert(m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted(vec![m(2)]));
        assert!(c.contains(m(1)));
    }

    #[test]
    fn fully_pinned_cache_rejects() {
        let mut c = LruCache::new(2.0);
        c.insert(m(1), 1.0);
        c.insert(m(2), 1.0);
        c.pin(m(1));
        c.pin(m(2));
        assert_eq!(c.insert(m(3), 1.0), InsertOutcome::Rejected);
        assert_eq!(c.stats().rejections, 1);
        // Unpinning frees the way.
        c.unpin(m(2));
        assert!(matches!(c.insert(m(3), 1.0), InsertOutcome::Inserted(_)));
    }

    #[test]
    fn oversized_video_rejected() {
        let mut c = LfuCache::new(1.5);
        assert_eq!(c.insert(m(1), 2.0), InsertOutcome::Rejected);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = LruCache::new(2.0);
        c.insert(m(1), 1.0);
        assert_eq!(c.insert(m(1), 1.0), InsertOutcome::AlreadyPresent);
        assert_eq!(c.used_gb(), 1.0);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn multi_victim_eviction() {
        let mut c = LruCache::new(2.0);
        c.insert(m(1), 0.5);
        c.insert(m(2), 0.5);
        c.insert(m(3), 1.0);
        // 2 GB needed... cache cap 2.0, inserting 2.0 evicts all three.
        let out = c.insert(m(4), 2.0);
        assert_eq!(out, InsertOutcome::Inserted(vec![m(1), m(2), m(3)]));
        assert_eq!(c.used_gb(), 2.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refcounted_pins() {
        let mut c = LruCache::new(1.0);
        c.insert(m(1), 1.0);
        c.pin(m(1));
        c.pin(m(1));
        c.unpin(m(1));
        // Still pinned once.
        assert_eq!(c.insert(m(2), 1.0), InsertOutcome::Rejected);
        c.unpin(m(1));
        assert!(matches!(c.insert(m(2), 1.0), InsertOutcome::Inserted(_)));
    }

    #[test]
    fn hit_counting_via_touch() {
        let mut c = LfuCache::new(2.0);
        c.insert(m(1), 1.0);
        c.touch(m(1));
        c.touch(m(7)); // miss: not present, no hit counted
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_cache() {
        let mut c = LruCache::new(0.0);
        assert_eq!(c.insert(m(1), 0.1), InsertOutcome::Rejected);
        assert!(c.is_empty());
    }
}

/// LRFU cache — the spectrum policy of Lee et al. (the paper's [18])
/// that subsumes LRU and LFU: each video's priority is a *combined
/// recency and frequency* value `C(t) = Σ_k (1/2)^{λ·(t−t_k)}` over its
/// access times `t_k`, maintained incrementally as
/// `C ← 1 + C·(1/2)^{λ·Δt}`. `λ → 0` degenerates to LFU (pure counts),
/// large `λ` to LRU (only the last access matters). Provided as the
/// extension the paper points to for its caching baselines.
#[derive(Debug)]
pub struct LrfuCache {
    inner: PolicyCache,
    lambda: f64,
    /// Per-video (crf, last_tick) — kept across evictions, like LFU's
    /// frequency memory.
    crf: BTreeMap<u32, (f64, u64)>,
}

impl LrfuCache {
    pub fn new(capacity_gb: f64, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "decay must be nonnegative");
        Self {
            inner: PolicyCache::new(capacity_gb),
            lambda,
            crf: BTreeMap::new(),
        }
    }

    /// Updated combined recency-frequency value at `now`, after one
    /// more access.
    fn bump(&mut self, m: u32, now: u64) -> f64 {
        let (old, last) = self.crf.get(&m).copied().unwrap_or((0.0, now));
        let decayed = old * (-std::f64::consts::LN_2 * self.lambda * (now - last) as f64).exp();
        let new = 1.0 + decayed;
        self.crf.insert(m, (new, now));
        new
    }

    /// Quantized eviction key: the order index needs a totally ordered
    /// integer key; CRF values are mapped through a fixed-point scale
    /// (recency ties broken by the clock).
    fn key(crf: f64, now: u64) -> (u64, u64) {
        (vod_model::narrow::count_u64(crf * 1e6), now)
    }
}

impl Cache for LrfuCache {
    fn contains(&self, m: VideoId) -> bool {
        self.inner.entries.contains_key(&m.0)
    }

    fn touch(&mut self, m: VideoId) {
        let now = self.inner.tick();
        let crf = self.bump(m.0, now);
        if self.inner.entries.contains_key(&m.0) {
            self.inner.stats.hits += 1;
            self.inner.rekey(m.0, Self::key(crf, now));
        }
    }

    fn insert(&mut self, m: VideoId, size_gb: f64) -> InsertOutcome {
        let now = self.inner.tick();
        let crf = self.bump(m.0, now);
        self.inner.insert_with_key(m, size_gb, Self::key(crf, now))
    }

    fn pin(&mut self, m: VideoId) {
        if let Some(e) = self.inner.entries.get_mut(&m.0) {
            e.pins += 1;
        }
    }

    fn unpin(&mut self, m: VideoId) {
        if let Some(e) = self.inner.entries.get_mut(&m.0) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.inner.stats
    }

    fn used_gb(&self) -> f64 {
        self.inner.used_gb
    }

    fn capacity_gb(&self) -> f64 {
        self.inner.capacity_gb
    }

    fn len(&self) -> usize {
        self.inner.entries.len()
    }
}

#[cfg(test)]
mod lrfu_tests {
    use super::*;

    fn m(i: u32) -> VideoId {
        VideoId::new(i)
    }

    #[test]
    fn small_lambda_behaves_like_lfu() {
        // λ = 0: pure frequency. Heavily-accessed old video survives.
        let mut c = LrfuCache::new(2.0, 0.0);
        c.insert(m(1), 1.0);
        for _ in 0..10 {
            c.touch(m(1));
        }
        c.insert(m(2), 1.0);
        let out = c.insert(m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted(vec![m(2)]));
        assert!(c.contains(m(1)));
    }

    #[test]
    fn large_lambda_behaves_like_lru() {
        // Huge decay: only the most recent access matters.
        let mut c = LrfuCache::new(2.0, 100.0);
        c.insert(m(1), 1.0);
        for _ in 0..10 {
            c.touch(m(1)); // frequency is worthless under huge decay
        }
        c.insert(m(2), 1.0);
        c.touch(m(2));
        c.touch(m(1)); // 1 most recent
        let out = c.insert(m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted(vec![m(2)]));
    }

    #[test]
    fn pinning_respected() {
        let mut c = LrfuCache::new(2.0, 0.5);
        c.insert(m(1), 1.0);
        c.insert(m(2), 1.0);
        c.pin(m(1));
        c.pin(m(2));
        assert_eq!(c.insert(m(3), 1.0), InsertOutcome::Rejected);
        c.unpin(m(1));
        assert!(matches!(c.insert(m(3), 1.0), InsertOutcome::Inserted(_)));
    }

    #[test]
    fn crf_memory_survives_eviction() {
        // A video evicted and reinserted keeps (decayed) history, as in
        // LFU's frequency memory.
        let mut c = LrfuCache::new(1.0, 0.0);
        c.insert(m(1), 1.0);
        c.touch(m(1));
        c.touch(m(1));
        c.insert(m(2), 1.0); // evicts 1? 1 has crf 3, 2 has 1 → rejected-or..
                             // With λ=0 keys are frequency: inserting 2 must NOT evict the
                             // hotter 1 — it is rejected outright (2's crf is lower)? The
                             // policy evicts from the smallest key: that is 2 itself, so the
                             // insert would immediately self-evict; our implementation
                             // inserts only if room can be made from *other* entries, so 1
                             // stays and 2 takes its place only if 1 were colder.
        assert!(c.contains(m(1)) || c.contains(m(2)));
        assert_eq!(c.len(), 1);
    }
}
