//! Cache-replacement policies: LRU, LFU and LRFU with stream pinning.
//!
//! The paper's baselines (Section VII-A) keep one pinned copy of each
//! video somewhere and use the remaining disk as an LRU or LFU cache;
//! its own scheme adds a small *complementary* LRU cache on top of the
//! MIP placement (Section VI-A). Both replacement policies must respect
//! the VoD-specific constraint that a video currently being streamed
//! from the cache cannot be evicted (Section I), which is what makes
//! large working sets so punishing for caches (Fig. 9).
//!
//! # Hot-path layout
//!
//! Cache state lives in dense `VideoId`-indexed slabs (`Vec<Slot>` plus
//! per-policy side arrays), not keyed maps: `contains`/`pin`/`unpin`
//! are array loads, an LRU touch is an O(1) intrusive-list splice, and
//! an LFU refile is one [`IndexList`] splice plus a `BTreeMap` probe
//! over the (few) distinct frequency values. Evictions are written into
//! a caller-owned scratch `Vec<VideoId>` so the per-request path never
//! allocates. Dispatch is static through the [`CacheImpl`] enum; the
//! [`Cache`] trait remains for tests and benchmarks that want to treat
//! policies uniformly.
//!
//! Eviction *order* is unchanged from the original `BTreeSet` index:
//! candidates are scanned in ascending eviction-key order, and every
//! key embeds the logical clock, so keys are unique and the scan order
//! — hence `SimReport` — is bit-for-bit identical to the map-based
//! implementation.

use std::collections::{BTreeMap, BTreeSet};
use vod_model::slab::{IndexList, NIL};
use vod_model::VideoId;

/// Outcome of an insertion attempt. Victims are reported through the
/// scratch vector passed to [`Cache::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored (victims, if any, written to the caller's scratch).
    Inserted,
    /// Already present (treated as a touch).
    AlreadyPresent,
    /// Could not make room: the remaining contents are pinned by
    /// active streams — the request is *uncachable* (Fig. 9).
    Rejected,
}

/// Counters reported by Fig. 9 and Table II.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub rejections: u64,
}

/// Common interface of the replacement policies.
pub trait Cache {
    fn contains(&self, m: VideoId) -> bool;
    /// Record a hit (updates recency/frequency bookkeeping).
    fn touch(&mut self, m: VideoId);
    /// Try to insert `m` of the given size, evicting unpinned victims
    /// as needed. `evicted` is cleared, then filled with the victims in
    /// eviction order; it stays empty unless the outcome is
    /// [`InsertOutcome::Inserted`].
    fn insert(&mut self, m: VideoId, size_gb: f64, evicted: &mut Vec<VideoId>) -> InsertOutcome;
    /// Pin `m` for the duration of a stream (refcounted).
    fn pin(&mut self, m: VideoId);
    /// Release one pin of `m`.
    fn unpin(&mut self, m: VideoId);
    fn stats(&self) -> &CacheStats;
    fn used_gb(&self) -> f64;
    fn capacity_gb(&self) -> f64;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Current contents in ascending `VideoId` order (audit/tests; not
    /// a hot-path operation).
    fn contents_sorted(&self) -> Vec<VideoId>;
}

/// Which replacement policy a VHO's cache uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheKind {
    Lru,
    Lfu,
    /// LRFU spectrum policy with decay λ (the paper's [18]); λ→0 is
    /// LFU, large λ is LRU.
    Lrfu(f64),
}

/// Statically-dispatched cache: one variant per replacement policy.
#[derive(Debug)]
pub enum CacheImpl {
    Lru(LruCache),
    Lfu(LfuCache),
    Lrfu(LrfuCache),
}

impl CacheImpl {
    pub fn new(kind: CacheKind, capacity_gb: f64) -> Self {
        Self::with_video_hint(kind, capacity_gb, 0)
    }

    /// Pre-size the slabs for a catalog of `n_videos` so the simulator
    /// pays zero growth reallocations mid-run.
    pub fn with_video_hint(kind: CacheKind, capacity_gb: f64, n_videos: usize) -> Self {
        match kind {
            CacheKind::Lru => Self::Lru(LruCache::with_video_hint(capacity_gb, n_videos)),
            CacheKind::Lfu => Self::Lfu(LfuCache::with_video_hint(capacity_gb, n_videos)),
            CacheKind::Lrfu(lambda) => {
                Self::Lrfu(LrfuCache::with_video_hint(capacity_gb, lambda, n_videos))
            }
        }
    }
}

macro_rules! delegate {
    ($self:ident, $c:ident => $body:expr) => {
        match $self {
            CacheImpl::Lru($c) => $body,
            CacheImpl::Lfu($c) => $body,
            CacheImpl::Lrfu($c) => $body,
        }
    };
}

impl Cache for CacheImpl {
    fn contains(&self, m: VideoId) -> bool {
        delegate!(self, c => c.contains(m))
    }
    fn touch(&mut self, m: VideoId) {
        delegate!(self, c => c.touch(m));
    }
    fn insert(&mut self, m: VideoId, size_gb: f64, evicted: &mut Vec<VideoId>) -> InsertOutcome {
        delegate!(self, c => c.insert(m, size_gb, evicted))
    }
    fn pin(&mut self, m: VideoId) {
        delegate!(self, c => c.pin(m));
    }
    fn unpin(&mut self, m: VideoId) {
        delegate!(self, c => c.unpin(m));
    }
    fn stats(&self) -> &CacheStats {
        delegate!(self, c => c.stats())
    }
    fn used_gb(&self) -> f64 {
        delegate!(self, c => c.used_gb())
    }
    fn capacity_gb(&self) -> f64 {
        delegate!(self, c => c.capacity_gb())
    }
    fn len(&self) -> usize {
        delegate!(self, c => c.len())
    }
    fn contents_sorted(&self) -> Vec<VideoId> {
        delegate!(self, c => c.contents_sorted())
    }
}

/// Create a cache of the given kind (slabs grow on demand; the
/// simulator uses [`CacheImpl::with_video_hint`] to pre-size them).
pub fn make_cache(kind: CacheKind, capacity_gb: f64) -> CacheImpl {
    CacheImpl::new(kind, capacity_gb)
}

/// One dense slab slot; `present == false` slots are holes whose
/// policy memory (LFU frequency, LRFU CRF) lives on in the side
/// arrays, mirroring the original implementation's behaviour of
/// keeping that memory across evictions.
#[derive(Debug, Clone, Copy)]
struct Slot {
    size_gb: f64,
    pins: u32,
    present: bool,
}

const EMPTY_SLOT: Slot = Slot {
    size_gb: 0.0,
    pins: 0,
    present: false,
};

/// Shared machinery: capacity accounting, the logical clock, stats and
/// the `VideoId`-indexed slot slab. Policies layer their eviction
/// order on top.
#[derive(Debug)]
struct SlabCore {
    capacity_gb: f64,
    used_gb: f64,
    n_present: usize,
    clock: u64,
    slots: Vec<Slot>,
    stats: CacheStats,
}

impl SlabCore {
    fn new(capacity_gb: f64, n_videos: usize) -> Self {
        assert!(capacity_gb >= 0.0, "negative cache capacity");
        Self {
            capacity_gb,
            used_gb: 0.0,
            n_present: 0,
            clock: 0,
            slots: vec![EMPTY_SLOT; n_videos],
            stats: CacheStats::default(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Grow the slab to cover `m` and return its slot index.
    fn ensure(&mut self, m: VideoId) -> usize {
        let i = m.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, EMPTY_SLOT);
        }
        i
    }

    fn present(&self, m: VideoId) -> bool {
        self.slots.get(m.index()).is_some_and(|s| s.present)
    }

    fn pin(&mut self, m: VideoId) {
        if let Some(s) = self.slots.get_mut(m.index()) {
            if s.present {
                s.pins += 1;
            }
        }
    }

    fn unpin(&mut self, m: VideoId) {
        if let Some(s) = self.slots.get_mut(m.index()) {
            if s.present {
                s.pins = s.pins.saturating_sub(1);
            }
        }
    }

    /// Mark `v`'s slot occupied and account for its size.
    fn fill(&mut self, v: u32, size_gb: f64) {
        let s = &mut self.slots[v as usize];
        s.present = true;
        s.size_gb = size_gb;
        s.pins = 0;
        self.used_gb += size_gb;
        self.n_present += 1;
        self.stats.insertions += 1;
    }

    /// Vacate `v`'s slot and account for the reclaimed size.
    fn evict(&mut self, v: u32) {
        let s = &mut self.slots[v as usize];
        debug_assert!(s.present && s.pins == 0, "evicting pinned/absent slot");
        s.present = false;
        self.used_gb -= s.size_gb;
        self.n_present -= 1;
        self.stats.evictions += 1;
    }

    fn contents_sorted(&self) -> Vec<VideoId> {
        let mut out = Vec::with_capacity(self.n_present);
        for (i, s) in self.slots.iter().enumerate() {
            if s.present {
                out.push(VideoId::new(vod_model::narrow::u32_from(i)));
            }
        }
        out
    }
}

/// Walk eviction candidates in list order (smallest key first),
/// skipping pinned entries, until the insertion fits. Victims are
/// appended to `evicted`; returns `false` (and clears `evicted`) when
/// even evicting everything unpinned cannot make room. Arithmetic
/// order matches the original `BTreeSet` walk exactly.
fn plan_evictions_list(
    core: &SlabCore,
    order: &IndexList,
    size_gb: f64,
    evicted: &mut Vec<VideoId>,
) -> bool {
    if core.used_gb + size_gb <= core.capacity_gb {
        return true;
    }
    let mut reclaimed = 0.0;
    let mut v = order.head();
    while v != NIL {
        if core.used_gb + size_gb - reclaimed <= core.capacity_gb {
            break;
        }
        let s = &core.slots[v as usize];
        if s.pins == 0 {
            evicted.push(VideoId::new(v));
            reclaimed += s.size_gb;
        }
        v = order.next(v);
    }
    if core.used_gb + size_gb - reclaimed > core.capacity_gb {
        evicted.clear();
        return false;
    }
    true
}

/// As [`plan_evictions_list`] but over a `BTreeSet` eviction index
/// (LRFU, whose quantized keys admit no positional structure).
fn plan_evictions_set(
    core: &SlabCore,
    order: &BTreeSet<((u64, u64), u32)>,
    size_gb: f64,
    evicted: &mut Vec<VideoId>,
) -> bool {
    if core.used_gb + size_gb <= core.capacity_gb {
        return true;
    }
    let mut reclaimed = 0.0;
    for &(_, vid) in order.iter() {
        if core.used_gb + size_gb - reclaimed <= core.capacity_gb {
            break;
        }
        let s = &core.slots[vid as usize];
        if s.pins == 0 {
            evicted.push(VideoId::new(vid));
            reclaimed += s.size_gb;
        }
    }
    if core.used_gb + size_gb - reclaimed > core.capacity_gb {
        evicted.clear();
        return false;
    }
    true
}

/// Least-recently-used cache: an intrusive list in access order —
/// head is the coldest entry, a touch is an O(1) splice to the tail.
#[derive(Debug)]
pub struct LruCache {
    core: SlabCore,
    order: IndexList,
}

impl LruCache {
    pub fn new(capacity_gb: f64) -> Self {
        Self::with_video_hint(capacity_gb, 0)
    }

    pub fn with_video_hint(capacity_gb: f64, n_videos: usize) -> Self {
        let mut order = IndexList::new();
        order.ensure(n_videos);
        Self {
            core: SlabCore::new(capacity_gb, n_videos),
            order,
        }
    }

    fn ensure(&mut self, m: VideoId) -> u32 {
        let i = self.core.ensure(m);
        self.order.ensure(self.core.slots.len());
        vod_model::narrow::u32_from(i)
    }
}

impl Cache for LruCache {
    fn contains(&self, m: VideoId) -> bool {
        self.core.present(m)
    }

    fn touch(&mut self, m: VideoId) {
        self.core.tick();
        if self.core.present(m) {
            let i = self.ensure(m);
            self.core.stats.hits += 1;
            self.order.unlink(i);
            self.order.push_back(i);
        }
    }

    fn insert(&mut self, m: VideoId, size_gb: f64, evicted: &mut Vec<VideoId>) -> InsertOutcome {
        evicted.clear();
        self.core.tick();
        assert!(size_gb > 0.0, "video size must be positive");
        let i = self.ensure(m);
        if self.core.slots[i as usize].present {
            return InsertOutcome::AlreadyPresent;
        }
        if size_gb > self.core.capacity_gb {
            self.core.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        if !plan_evictions_list(&self.core, &self.order, size_gb, evicted) {
            self.core.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        for &v in evicted.iter() {
            self.core.evict(v.0);
            self.order.unlink(v.0);
        }
        self.core.fill(i, size_gb);
        self.order.push_back(i);
        InsertOutcome::Inserted
    }

    fn pin(&mut self, m: VideoId) {
        self.core.pin(m);
    }

    fn unpin(&mut self, m: VideoId) {
        self.core.unpin(m);
    }

    fn stats(&self) -> &CacheStats {
        &self.core.stats
    }

    fn used_gb(&self) -> f64 {
        self.core.used_gb
    }

    fn capacity_gb(&self) -> f64 {
        self.core.capacity_gb
    }

    fn len(&self) -> usize {
        self.core.n_present
    }

    fn contents_sorted(&self) -> Vec<VideoId> {
        self.core.contents_sorted()
    }
}

/// Least-frequently-used cache. The eviction index is a single
/// intrusive list kept sorted by `(frequency, last access)`; a
/// `freq → last-entry-of-that-frequency` map makes refiling after a
/// touch one list splice plus a map probe over the distinct frequency
/// values (few, versus one `BTreeSet` rebalance per request before).
#[derive(Debug)]
pub struct LfuCache {
    core: SlabCore,
    order: IndexList,
    /// Persistent per-video access counts (kept across evictions).
    freq: Vec<u64>,
    /// Frequency registered in `order` while present (an entry is
    /// *not* refiled when its count moves without an access — matching
    /// the original's key-at-insert semantics).
    entry_freq: Vec<u64>,
    /// Registered frequency → last list entry carrying it.
    tails: BTreeMap<u64, u32>,
}

impl LfuCache {
    pub fn new(capacity_gb: f64) -> Self {
        Self::with_video_hint(capacity_gb, 0)
    }

    pub fn with_video_hint(capacity_gb: f64, n_videos: usize) -> Self {
        let mut order = IndexList::new();
        order.ensure(n_videos);
        Self {
            core: SlabCore::new(capacity_gb, n_videos),
            order,
            freq: vec![0; n_videos],
            entry_freq: vec![0; n_videos],
            tails: BTreeMap::new(),
        }
    }

    fn ensure(&mut self, m: VideoId) -> u32 {
        let i = self.core.ensure(m);
        let n = self.core.slots.len();
        self.order.ensure(n);
        if self.freq.len() < n {
            self.freq.resize(n, 0);
            self.entry_freq.resize(n, 0);
        }
        vod_model::narrow::u32_from(i)
    }

    /// Unlink `i` from the order list, maintaining the group tails.
    fn remove_from_order(&mut self, i: u32) {
        let f = self.entry_freq[i as usize];
        if self.tails.get(&f) == Some(&i) {
            let p = self.order.prev(i);
            if p != NIL && self.entry_freq[p as usize] == f {
                self.tails.insert(f, p);
            } else {
                self.tails.remove(&f);
            }
        }
        self.order.unlink(i);
    }

    /// File `i` with frequency `f`: after the tail of the greatest
    /// frequency group ≤ `f` (ties within a group are already in tick
    /// order, and `i` carries the newest tick).
    fn file_in_order(&mut self, i: u32, f: u64) {
        self.entry_freq[i as usize] = f;
        match self.tails.range(..=f).next_back() {
            Some((_, &at)) => self.order.insert_after(at, i),
            None => self.order.push_front(i),
        }
        self.tails.insert(f, i);
    }
}

impl Cache for LfuCache {
    fn contains(&self, m: VideoId) -> bool {
        self.core.present(m)
    }

    fn touch(&mut self, m: VideoId) {
        self.core.tick();
        let i = self.ensure(m);
        self.freq[i as usize] += 1;
        let f = self.freq[i as usize];
        if self.core.slots[i as usize].present {
            self.core.stats.hits += 1;
            self.remove_from_order(i);
            self.file_in_order(i, f);
        }
    }

    fn insert(&mut self, m: VideoId, size_gb: f64, evicted: &mut Vec<VideoId>) -> InsertOutcome {
        evicted.clear();
        self.core.tick();
        let i = self.ensure(m);
        self.freq[i as usize] += 1;
        let f = self.freq[i as usize];
        assert!(size_gb > 0.0, "video size must be positive");
        if self.core.slots[i as usize].present {
            return InsertOutcome::AlreadyPresent;
        }
        if size_gb > self.core.capacity_gb {
            self.core.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        if !plan_evictions_list(&self.core, &self.order, size_gb, evicted) {
            self.core.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        for &v in evicted.iter() {
            self.core.evict(v.0);
            self.remove_from_order(v.0);
        }
        self.core.fill(i, size_gb);
        self.file_in_order(i, f);
        InsertOutcome::Inserted
    }

    fn pin(&mut self, m: VideoId) {
        self.core.pin(m);
    }

    fn unpin(&mut self, m: VideoId) {
        self.core.unpin(m);
    }

    fn stats(&self) -> &CacheStats {
        &self.core.stats
    }

    fn used_gb(&self) -> f64 {
        self.core.used_gb
    }

    fn capacity_gb(&self) -> f64 {
        self.core.capacity_gb
    }

    fn len(&self) -> usize {
        self.core.n_present
    }

    fn contents_sorted(&self) -> Vec<VideoId> {
        self.core.contents_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> VideoId {
        VideoId::new(i)
    }

    /// Old-API shim so the behavioural tests read as before.
    fn ins(c: &mut dyn Cache, v: VideoId, size: f64) -> (InsertOutcome, Vec<VideoId>) {
        let mut ev = Vec::new();
        let out = c.insert(v, size, &mut ev);
        (out, ev)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2.0);
        let (out, ev) = ins(&mut c, m(1), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert!(ev.is_empty());
        ins(&mut c, m(2), 1.0);
        c.touch(m(1)); // 1 now most recent
        let (out, ev) = ins(&mut c, m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(2)]);
        assert!(c.contains(m(1)));
        assert!(!c.contains(m(2)));
        assert!(c.contains(m(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2.0);
        ins(&mut c, m(1), 1.0);
        ins(&mut c, m(2), 1.0);
        c.touch(m(1));
        c.touch(m(1)); // freq(1)=3, freq(2)=1
        let (out, ev) = ins(&mut c, m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(2)]);
        assert!(c.contains(m(1)));
    }

    #[test]
    fn pinned_entries_survive() {
        let mut c = LruCache::new(2.0);
        ins(&mut c, m(1), 1.0);
        ins(&mut c, m(2), 1.0);
        c.pin(m(1));
        // Oldest (1) is pinned → evict 2 instead.
        let (out, ev) = ins(&mut c, m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(2)]);
        assert!(c.contains(m(1)));
    }

    #[test]
    fn fully_pinned_cache_rejects() {
        let mut c = LruCache::new(2.0);
        ins(&mut c, m(1), 1.0);
        ins(&mut c, m(2), 1.0);
        c.pin(m(1));
        c.pin(m(2));
        let (out, ev) = ins(&mut c, m(3), 1.0);
        assert_eq!(out, InsertOutcome::Rejected);
        assert!(ev.is_empty(), "rejected insert must report no victims");
        assert_eq!(c.stats().rejections, 1);
        // Unpinning frees the way.
        c.unpin(m(2));
        assert_eq!(ins(&mut c, m(3), 1.0).0, InsertOutcome::Inserted);
    }

    #[test]
    fn oversized_video_rejected() {
        let mut c = LfuCache::new(1.5);
        assert_eq!(ins(&mut c, m(1), 2.0).0, InsertOutcome::Rejected);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut c = LruCache::new(2.0);
        ins(&mut c, m(1), 1.0);
        assert_eq!(ins(&mut c, m(1), 1.0).0, InsertOutcome::AlreadyPresent);
        assert_eq!(c.used_gb(), 1.0);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn multi_victim_eviction() {
        let mut c = LruCache::new(2.0);
        ins(&mut c, m(1), 0.5);
        ins(&mut c, m(2), 0.5);
        ins(&mut c, m(3), 1.0);
        // 2 GB needed... cache cap 2.0, inserting 2.0 evicts all three.
        let (out, ev) = ins(&mut c, m(4), 2.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(1), m(2), m(3)]);
        assert_eq!(c.used_gb(), 2.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refcounted_pins() {
        let mut c = LruCache::new(1.0);
        ins(&mut c, m(1), 1.0);
        c.pin(m(1));
        c.pin(m(1));
        c.unpin(m(1));
        // Still pinned once.
        assert_eq!(ins(&mut c, m(2), 1.0).0, InsertOutcome::Rejected);
        c.unpin(m(1));
        assert_eq!(ins(&mut c, m(2), 1.0).0, InsertOutcome::Inserted);
    }

    #[test]
    fn hit_counting_via_touch() {
        let mut c = LfuCache::new(2.0);
        ins(&mut c, m(1), 1.0);
        c.touch(m(1));
        c.touch(m(7)); // miss: not present, no hit counted
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_cache() {
        let mut c = LruCache::new(0.0);
        assert_eq!(ins(&mut c, m(1), 0.1).0, InsertOutcome::Rejected);
        assert!(c.is_empty());
    }

    #[test]
    fn contents_sorted_tracks_membership() {
        let mut c = LfuCache::new(3.0);
        ins(&mut c, m(5), 1.0);
        ins(&mut c, m(2), 1.0);
        ins(&mut c, m(9), 1.0);
        assert_eq!(c.contents_sorted(), vec![m(2), m(5), m(9)]);
        c.touch(m(2));
        c.touch(m(2));
        let (_, ev) = ins(&mut c, m(1), 1.0); // evicts the coldest (5)
        assert_eq!(ev, vec![m(5)]);
        assert_eq!(c.contents_sorted(), vec![m(1), m(2), m(9)]);
    }

    #[test]
    fn lfu_frequency_memory_survives_eviction() {
        let mut c = LfuCache::new(1.0);
        ins(&mut c, m(1), 1.0);
        c.touch(m(1));
        c.touch(m(1)); // freq(1) = 3
        c.pin(m(1));
        assert_eq!(ins(&mut c, m(2), 1.0).0, InsertOutcome::Rejected);
        c.unpin(m(1));
        // freq(2) is now 2 (one rejected insert + this one): still colder
        // than 1? No — eviction only weighs *present* entries, and 1 is
        // the only candidate, so it goes; reinsertion of 1 then carries
        // its remembered count and outranks 2.
        let (out, ev) = ins(&mut c, m(2), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(1)]);
        let (_, ev) = ins(&mut c, m(1), 1.0); // freq(1)=4 > freq(2)=2
        assert_eq!(ev, vec![m(2)]);
    }

    #[test]
    fn cache_impl_dispatch_matches_concrete() {
        let mut e = CacheImpl::new(CacheKind::Lru, 2.0);
        let mut ev = Vec::new();
        assert_eq!(e.insert(m(1), 1.0, &mut ev), InsertOutcome::Inserted);
        e.touch(m(1));
        assert!(e.contains(m(1)));
        assert_eq!(e.len(), 1);
        assert_eq!(e.stats().hits, 1);
        assert_eq!(e.contents_sorted(), vec![m(1)]);
    }
}

/// LRFU cache — the spectrum policy of Lee et al. (the paper's [18])
/// that subsumes LRU and LFU: each video's priority is a *combined
/// recency and frequency* value `C(t) = Σ_k (1/2)^{λ·(t−t_k)}` over its
/// access times `t_k`, maintained incrementally as
/// `C ← 1 + C·(1/2)^{λ·Δt}`. `λ → 0` degenerates to LFU (pure counts),
/// large `λ` to LRU (only the last access matters). Provided as the
/// extension the paper points to for its caching baselines.
///
/// Unlike LRU/LFU, a touch moves an entry to an arbitrary position in
/// the eviction order, so the index stays a `BTreeSet` over quantized
/// keys; the entry store itself is still the dense slab (this policy
/// is an extension, not on the figure-reproduction hot path).
#[derive(Debug)]
pub struct LrfuCache {
    core: SlabCore,
    lambda: f64,
    /// Per-video (crf, last_tick) — kept across evictions, like LFU's
    /// frequency memory. Dense default `(0.0, 0)` decays to the same
    /// `1.0` first-access value as the original's lazy initialisation.
    crf: Vec<(f64, u64)>,
    /// Key registered in `order` while present.
    entry_key: Vec<(u64, u64)>,
    /// (key, video) — iterated from the smallest key when evicting.
    order: BTreeSet<((u64, u64), u32)>,
}

impl LrfuCache {
    pub fn new(capacity_gb: f64, lambda: f64) -> Self {
        Self::with_video_hint(capacity_gb, lambda, 0)
    }

    pub fn with_video_hint(capacity_gb: f64, lambda: f64, n_videos: usize) -> Self {
        assert!(lambda >= 0.0, "decay must be nonnegative");
        Self {
            core: SlabCore::new(capacity_gb, n_videos),
            lambda,
            crf: vec![(0.0, 0); n_videos],
            entry_key: vec![(0, 0); n_videos],
            order: BTreeSet::new(),
        }
    }

    fn ensure(&mut self, m: VideoId) -> u32 {
        let i = self.core.ensure(m);
        let n = self.core.slots.len();
        if self.crf.len() < n {
            self.crf.resize(n, (0.0, 0));
            self.entry_key.resize(n, (0, 0));
        }
        vod_model::narrow::u32_from(i)
    }

    /// Updated combined recency-frequency value at `now`, after one
    /// more access.
    fn bump(&mut self, i: u32, now: u64) -> f64 {
        let (old, last) = self.crf[i as usize];
        let decayed = old * (-std::f64::consts::LN_2 * self.lambda * (now - last) as f64).exp();
        let new = 1.0 + decayed;
        self.crf[i as usize] = (new, now);
        new
    }

    /// Quantized eviction key: the order index needs a totally ordered
    /// integer key; CRF values are mapped through a fixed-point scale
    /// (recency ties broken by the clock).
    fn key(crf: f64, now: u64) -> (u64, u64) {
        (vod_model::narrow::count_u64(crf * 1e6), now)
    }
}

impl Cache for LrfuCache {
    fn contains(&self, m: VideoId) -> bool {
        self.core.present(m)
    }

    fn touch(&mut self, m: VideoId) {
        let now = self.core.tick();
        let i = self.ensure(m);
        let crf = self.bump(i, now);
        if self.core.slots[i as usize].present {
            self.core.stats.hits += 1;
            let key = Self::key(crf, now);
            self.order.remove(&(self.entry_key[i as usize], i));
            self.entry_key[i as usize] = key;
            self.order.insert((key, i));
        }
    }

    fn insert(&mut self, m: VideoId, size_gb: f64, evicted: &mut Vec<VideoId>) -> InsertOutcome {
        evicted.clear();
        let now = self.core.tick();
        let i = self.ensure(m);
        let crf = self.bump(i, now);
        assert!(size_gb > 0.0, "video size must be positive");
        if self.core.slots[i as usize].present {
            return InsertOutcome::AlreadyPresent;
        }
        if size_gb > self.core.capacity_gb {
            self.core.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        if !plan_evictions_set(&self.core, &self.order, size_gb, evicted) {
            self.core.stats.rejections += 1;
            return InsertOutcome::Rejected;
        }
        for &v in evicted.iter() {
            self.core.evict(v.0);
            self.order.remove(&(self.entry_key[v.0 as usize], v.0));
        }
        self.core.fill(i, size_gb);
        let key = Self::key(crf, now);
        self.entry_key[i as usize] = key;
        self.order.insert((key, i));
        InsertOutcome::Inserted
    }

    fn pin(&mut self, m: VideoId) {
        self.core.pin(m);
    }

    fn unpin(&mut self, m: VideoId) {
        self.core.unpin(m);
    }

    fn stats(&self) -> &CacheStats {
        &self.core.stats
    }

    fn used_gb(&self) -> f64 {
        self.core.used_gb
    }

    fn capacity_gb(&self) -> f64 {
        self.core.capacity_gb
    }

    fn len(&self) -> usize {
        self.core.n_present
    }

    fn contents_sorted(&self) -> Vec<VideoId> {
        self.core.contents_sorted()
    }
}

#[cfg(test)]
mod lrfu_tests {
    use super::*;

    fn m(i: u32) -> VideoId {
        VideoId::new(i)
    }

    fn ins(c: &mut LrfuCache, v: VideoId, size: f64) -> (InsertOutcome, Vec<VideoId>) {
        let mut ev = Vec::new();
        let out = c.insert(v, size, &mut ev);
        (out, ev)
    }

    #[test]
    fn small_lambda_behaves_like_lfu() {
        // λ = 0: pure frequency. Heavily-accessed old video survives.
        let mut c = LrfuCache::new(2.0, 0.0);
        ins(&mut c, m(1), 1.0);
        for _ in 0..10 {
            c.touch(m(1));
        }
        ins(&mut c, m(2), 1.0);
        let (out, ev) = ins(&mut c, m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(2)]);
        assert!(c.contains(m(1)));
    }

    #[test]
    fn large_lambda_behaves_like_lru() {
        // Huge decay: only the most recent access matters.
        let mut c = LrfuCache::new(2.0, 100.0);
        ins(&mut c, m(1), 1.0);
        for _ in 0..10 {
            c.touch(m(1)); // frequency is worthless under huge decay
        }
        ins(&mut c, m(2), 1.0);
        c.touch(m(2));
        c.touch(m(1)); // 1 most recent
        let (out, ev) = ins(&mut c, m(3), 1.0);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(ev, vec![m(2)]);
    }

    #[test]
    fn pinning_respected() {
        let mut c = LrfuCache::new(2.0, 0.5);
        ins(&mut c, m(1), 1.0);
        ins(&mut c, m(2), 1.0);
        c.pin(m(1));
        c.pin(m(2));
        assert_eq!(ins(&mut c, m(3), 1.0).0, InsertOutcome::Rejected);
        c.unpin(m(1));
        assert_eq!(ins(&mut c, m(3), 1.0).0, InsertOutcome::Inserted);
    }

    #[test]
    fn crf_memory_survives_eviction() {
        // A video evicted and reinserted keeps (decayed) history, as in
        // LFU's frequency memory.
        let mut c = LrfuCache::new(1.0, 0.0);
        ins(&mut c, m(1), 1.0);
        c.touch(m(1));
        c.touch(m(1));
        ins(&mut c, m(2), 1.0); // evicts 1? 1 has crf 3, 2 has 1 → rejected-or..
                                // With λ=0 keys are frequency: inserting 2 must NOT evict the
                                // hotter 1 — it is rejected outright (2's crf is lower)? The
                                // policy evicts from the smallest key: that is 2 itself, so the
                                // insert would immediately self-evict; our implementation
                                // inserts only if room can be made from *other* entries, so 1
                                // stays and 2 takes its place only if 1 were colder.
        assert!(c.contains(m(1)) || c.contains(m(2)));
        assert_eq!(c.len(), 1);
    }
}
