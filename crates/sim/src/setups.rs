//! Storage-configuration builders for the paper's strategies
//! (Section VII-A):
//!
//! - **MIP**: pinned copies from the solver's placement plus a small
//!   complementary LRU cache,
//! - **Random + LRU / LFU**: one random copy per video, the rest of
//!   each disk used as cache,
//! - **Top-K + LRU**: the K most-requested videos replicated at every
//!   VHO, the rest placed randomly, remaining space as cache,
//! - **Origin servers + LRU** (Section VII-B, Table II): the network is
//!   partitioned into regions, each served by an origin holding the
//!   full library attached to one VHO; VHO disks are pure caches.

use crate::cache::CacheKind;
use crate::engine::VhoConfig;
use rand::Rng;
use vod_core::Placement;
use vod_model::rng::derive_rng;
use vod_model::{Catalog, Gigabytes, VhoId, VideoId};
use vod_net::PathSet;

/// MIP placement + complementary cache: each VHO pins its placement
/// copies and uses `cache_frac` of its disk as an LRU cache (the MIP
/// must have been solved with the remaining `1 − cache_frac` share —
/// Section VII-B reserves ~5 %).
pub fn mip_vho_configs(
    placement: &Placement,
    disks: &[Gigabytes],
    cache_frac: f64,
    kind: CacheKind,
) -> Vec<VhoConfig> {
    assert!((0.0..1.0).contains(&cache_frac));
    let n = disks.len();
    assert_eq!(placement.n_vhos(), n);
    let mut pinned: Vec<Vec<VideoId>> = vec![Vec::new(); n];
    for mi in 0..placement.n_videos() {
        let m = VideoId::from_index(mi);
        for &i in placement.stores(m) {
            pinned[i.index()].push(m);
        }
    }
    pinned
        .into_iter()
        .zip(disks)
        .map(|(p, d)| VhoConfig {
            pinned: p,
            cache: (cache_frac > 0.0).then(|| (kind, d.value() * cache_frac)),
        })
        .collect()
}

/// Place one copy of each video at a random VHO with remaining pinned
/// space (videos assigned largest-first so everything fits), then use
/// each VHO's leftover disk as a cache of the given kind.
///
/// `pin_budget_frac` bounds the pinned share of each disk (the
/// baselines need most of the disk as cache; one copy of the library
/// spread over all VHOs is small).
pub fn random_single_vho_configs(
    catalog: &Catalog,
    disks: &[Gigabytes],
    kind: CacheKind,
    seed: u64,
) -> Vec<VhoConfig> {
    let n = disks.len();
    let mut rng = derive_rng(seed, 0x5E70);
    let mut remaining: Vec<f64> = disks.iter().map(|d| d.value()).collect();
    let mut pinned: Vec<Vec<VideoId>> = vec![Vec::new(); n];

    // Largest videos first so the random fit cannot strand capacity.
    let mut order: Vec<&vod_model::Video> = catalog.iter().collect();
    order.sort_by(|a, b| {
        b.size()
            .value()
            .total_cmp(&a.size().value())
            .then(a.id.cmp(&b.id))
    });
    for v in order {
        let size = v.size().value();
        let fitting: Vec<usize> = (0..n).filter(|&i| remaining[i] >= size).collect();
        assert!(
            !fitting.is_empty(),
            "disks too small to hold one copy of {}",
            v.id
        );
        let pick = fitting[rng.gen_range(0..fitting.len())];
        remaining[pick] -= size;
        pinned[pick].push(v.id);
    }
    pinned
        .into_iter()
        .zip(&remaining)
        .map(|(mut p, &rem)| {
            p.sort();
            VhoConfig {
                pinned: p,
                cache: (rem > 0.0).then_some((kind, rem)),
            }
        })
        .collect()
}

/// Top-K + LRU (the simplified Valancius-style baseline): the `k`
/// most-requested videos (per `ranked`, most popular first) are pinned
/// at *every* VHO; every other video gets one random copy; leftover
/// space is an LRU cache.
pub fn top_k_vho_configs(
    catalog: &Catalog,
    ranked: &[VideoId],
    k: usize,
    disks: &[Gigabytes],
    seed: u64,
) -> Vec<VhoConfig> {
    let n = disks.len();
    let top: Vec<VideoId> = ranked.iter().take(k).copied().collect();
    let top_size: f64 = top.iter().map(|&m| catalog.video(m).size().value()).sum();
    let mut remaining: Vec<f64> = disks
        .iter()
        .map(|d| {
            let rem = d.value() - top_size;
            assert!(rem >= 0.0, "top-{k} videos do not fit in a VHO disk");
            rem
        })
        .collect();
    let mut pinned: Vec<Vec<VideoId>> = vec![top.clone(); n];

    let in_top: std::collections::BTreeSet<u32> = top.iter().map(|m| m.0).collect();
    let mut rng = derive_rng(seed, 0x70BC);
    let mut order: Vec<&vod_model::Video> = catalog
        .iter()
        .filter(|v| !in_top.contains(&v.id.0))
        .collect();
    order.sort_by(|a, b| {
        b.size()
            .value()
            .total_cmp(&a.size().value())
            .then(a.id.cmp(&b.id))
    });
    for v in order {
        let size = v.size().value();
        let fitting: Vec<usize> = (0..n).filter(|&i| remaining[i] >= size).collect();
        assert!(!fitting.is_empty(), "no space left for {}", v.id);
        let pick = fitting[rng.gen_range(0..fitting.len())];
        remaining[pick] -= size;
        pinned[pick].push(v.id);
    }
    pinned
        .into_iter()
        .zip(&remaining)
        .map(|(mut p, &rem)| {
            p.sort();
            p.dedup();
            VhoConfig {
                pinned: p,
                cache: (rem > 0.0).then_some((CacheKind::Lru, rem)),
            }
        })
        .collect()
}

/// Origin-server setup (Table II): `n_regions` origin servers, each
/// holding the entire library, attached to spread-out VHOs chosen by
/// farthest-point traversal (the paper partitions the network into four
/// regions); every VHO's own disk is purely a cache. The origins'
/// library storage is *extra* capacity, exactly as the paper grants the
/// caching side ("we did not account for this extra storage").
pub fn origin_vho_configs(
    catalog: &Catalog,
    paths: &PathSet,
    disks: &[Gigabytes],
    n_regions: usize,
    kind: CacheKind,
) -> Vec<VhoConfig> {
    let n = disks.len();
    assert!(n_regions >= 1 && n_regions <= n);
    // Farthest-point traversal from VHO 0 picks well-separated attach
    // points, one per region.
    // lint:allow(raw-index): the traversal is seeded at VHO 0 by convention
    let mut attach: Vec<VhoId> = vec![VhoId::new(0)];
    while attach.len() < n_regions {
        let next = (0..n)
            // lint:allow(raw-index): enumerates every VHO of a dense 0..n id space
            .map(VhoId::from_index)
            .filter(|v| !attach.contains(v))
            .max_by_key(|&v| {
                (
                    attach.iter().map(|&a| paths.hops(a, v)).min().unwrap_or(0),
                    std::cmp::Reverse(v),
                )
            })
            .expect("fewer regions than VHOs");
        attach.push(next);
    }
    let full: Vec<VideoId> = catalog.ids().collect();
    (0..n)
        .map(|i| {
            // lint:allow(raw-index): recovers the id from a dense 0..n vector index
            let v = VhoId::from_index(i);
            if attach.contains(&v) {
                VhoConfig {
                    pinned: full.clone(),
                    cache: Some((kind, disks[i].value())),
                }
            } else {
                VhoConfig {
                    pinned: Vec::new(),
                    cache: Some((kind, disks[i].value())),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{Video, VideoClass, VideoKind};
    use vod_net::topologies;

    fn catalog(n: u32) -> Catalog {
        Catalog::new(
            (0..n)
                .map(|i| Video {
                    id: VideoId::new(i),
                    class: if i % 2 == 0 {
                        VideoClass::Show
                    } else {
                        VideoClass::Movie
                    },
                    kind: VideoKind::Catalog,
                    release_day: 0,
                    weight: 1.0 / (i + 1) as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn random_single_covers_catalog_within_disks() {
        let cat = catalog(40);
        let disks = vec![Gigabytes::new(30.0); 4];
        let vhos = random_single_vho_configs(&cat, &disks, CacheKind::Lru, 3);
        let total: usize = vhos.iter().map(|v| v.pinned.len()).sum();
        assert_eq!(total, 40);
        for (vc, d) in vhos.iter().zip(&disks) {
            let used: f64 = vc.pinned.iter().map(|&m| cat.video(m).size().value()).sum();
            let cache_gb = vc.cache.map(|(_, g)| g).unwrap_or(0.0);
            assert!(used + cache_gb <= d.value() + 1e-9);
            assert!(
                (used + cache_gb - d.value()).abs() < 1e-9,
                "disk fully used"
            );
        }
    }

    #[test]
    fn random_single_deterministic() {
        let cat = catalog(20);
        let disks = vec![Gigabytes::new(30.0); 3];
        let a = random_single_vho_configs(&cat, &disks, CacheKind::Lfu, 9);
        let b = random_single_vho_configs(&cat, &disks, CacheKind::Lfu, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pinned, y.pinned);
        }
    }

    #[test]
    fn top_k_replicated_everywhere() {
        let cat = catalog(30);
        let ranked: Vec<VideoId> = cat.ids().collect(); // weight-ordered already
        let disks = vec![Gigabytes::new(40.0); 3];
        let vhos = top_k_vho_configs(&cat, &ranked, 5, &disks, 4);
        for vc in &vhos {
            for m in ranked.iter().take(5) {
                assert!(vc.pinned.contains(m), "top video missing");
            }
        }
        // Non-top videos placed exactly once.
        for m in ranked.iter().skip(5) {
            let copies = vhos.iter().filter(|vc| vc.pinned.contains(m)).count();
            assert_eq!(copies, 1, "video {m}");
        }
    }

    #[test]
    fn origin_setup_spreads_attach_points() {
        let net = topologies::line(6);
        let paths = vod_net::PathSet::shortest_paths(&net);
        let cat = catalog(10);
        let disks = vec![Gigabytes::new(5.0); 6];
        let vhos = origin_vho_configs(&cat, &paths, &disks, 2, CacheKind::Lru);
        let origins: Vec<usize> = vhos
            .iter()
            .enumerate()
            .filter(|(_, vc)| !vc.pinned.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(origins.len(), 2);
        // Farthest-point on a line from node 0 → the other end.
        assert_eq!(origins, vec![0, 5]);
        assert!(vhos[0].pinned.len() == 10);
        // Non-origin VHOs are pure caches.
        assert!(vhos[2].pinned.is_empty());
        assert!(vhos[2].cache.is_some());
    }

    #[test]
    fn mip_configs_reflect_placement() {
        let placement = Placement::from_stores(
            3,
            vec![vec![VhoId::new(0), VhoId::new(2)], vec![VhoId::new(1)]],
        );
        let disks = vec![Gigabytes::new(10.0); 3];
        let vhos = mip_vho_configs(&placement, &disks, 0.05, CacheKind::Lru);
        assert_eq!(vhos[0].pinned, vec![VideoId::new(0)]);
        assert_eq!(vhos[1].pinned, vec![VideoId::new(1)]);
        assert_eq!(vhos[2].pinned, vec![VideoId::new(0)]);
        assert_eq!(vhos[0].cache, Some((CacheKind::Lru, 0.5)));
        let none = mip_vho_configs(&placement, &disks, 0.0, CacheKind::Lru);
        assert!(none[0].cache.is_none());
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn top_k_too_large_for_disk() {
        let cat = catalog(30);
        let ranked: Vec<VideoId> = cat.ids().collect();
        let disks = vec![Gigabytes::new(3.0); 3];
        let _ = top_k_vho_configs(&cat, &ranked, 10, &disks, 4);
    }
}
