//! Deterministic fault schedules for the simulator.
//!
//! The journal version of the paper evaluates placements under
//! operational stress — VHO failures, link cuts, and flash-crowd
//! surges (Table VI). A [`FaultSchedule`] describes such stress as a
//! list of timed, seeded-in-advance [`FaultEvent`]s; the engine
//! advances the schedule inline with the event loop and degrades
//! gracefully (failover, denial accounting, stream interruption)
//! instead of panicking. An empty schedule is zero-cost by
//! construction: the engine's fault branches are all gated on
//! [`FaultSchedule::is_active`], so `SimReport` at a fixed seed stays
//! byte-identical to a fault-free build (pinned by
//! `crates/sim/tests/fault_props.rs`).
//!
//! Semantics (see DESIGN.md "Failure model & degradation semantics"):
//! - `VhoOutage` takes a VHO's *storage* (pinned store and cache)
//!   offline. Its subscribers stay attached and fail over to the
//!   next-cheapest surviving replica; remote streams it was serving
//!   are interrupted and counted.
//! - `LinkDegrade` scales one directed link's capacity; a scale of
//!   `0.0` is a cut. Cuts interrupt every stream crossing the link;
//!   degradations only matter to admission control.
//! - `FlashCrowd` multiplies request arrivals at one VHO (or all of
//!   them) for the duration of the window — each trace request in the
//!   window is replayed `multiplier` times, deterministically, with no
//!   extra RNG draws.
//!
//! Faults clear automatically at their window's end: no state lingers,
//! new requests immediately route through recovered VHOs/links.

use vod_model::{LinkId, SimTime, VhoId};
use vod_net::{Network, PathSet};

/// What a single fault does while its window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The VHO's pinned store and cache go offline (its subscribers
    /// stay attached and are served remotely).
    VhoOutage { vho: VhoId },
    /// One directed link's capacity is multiplied by `capacity_scale`
    /// (`0.0` cuts the link entirely).
    LinkDegrade { link: LinkId, capacity_scale: f64 },
    /// Requests arriving at `vho` (or everywhere, when `None`) are
    /// replayed `multiplier` times each.
    FlashCrowd { vho: Option<VhoId>, multiplier: u32 },
}

/// One timed fault: active on `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub start: SimTime,
    pub end: SimTime,
    pub kind: FaultKind,
}

/// A full run's fault plan. The default (empty, no admission control)
/// leaves the engine on its exact fault-free code path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    pub events: Vec<FaultEvent>,
    /// When set, every remote stream start is admission-checked
    /// against the (possibly degraded) capacity of each link on its
    /// path; overloads become counted denials instead of capacity
    /// violations.
    pub admission: bool,
}

impl FaultSchedule {
    /// The zero-cost no-fault schedule.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the engine needs any fault machinery at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.events.is_empty() || self.admission
    }

    /// Check every event against the world it will be injected into.
    /// The engine asserts this at entry; callers that assemble
    /// schedules from untrusted input should check it first.
    pub fn validate(&self, n_vhos: usize, n_links: usize) -> Result<(), FaultConfigError> {
        for (idx, ev) in self.events.iter().enumerate() {
            if ev.start >= ev.end {
                return Err(FaultConfigError::EmptyWindow {
                    idx,
                    start: ev.start,
                    end: ev.end,
                });
            }
            match ev.kind {
                FaultKind::VhoOutage { vho } => {
                    if vho.index() >= n_vhos {
                        return Err(FaultConfigError::VhoOutOfRange { idx, vho, n_vhos });
                    }
                }
                FaultKind::LinkDegrade {
                    link,
                    capacity_scale,
                } => {
                    if link.index() >= n_links {
                        return Err(FaultConfigError::LinkOutOfRange { idx, link, n_links });
                    }
                    if !capacity_scale.is_finite() || capacity_scale < 0.0 {
                        return Err(FaultConfigError::InvalidScale {
                            idx,
                            value: capacity_scale,
                        });
                    }
                }
                FaultKind::FlashCrowd { vho, multiplier } => {
                    if let Some(v) = vho {
                        if v.index() >= n_vhos {
                            return Err(FaultConfigError::VhoOutOfRange {
                                idx,
                                vho: v,
                                n_vhos,
                            });
                        }
                    }
                    if multiplier == 0 {
                        return Err(FaultConfigError::ZeroMultiplier { idx });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A malformed [`FaultSchedule`], rejected before the replay starts.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    VhoOutOfRange {
        idx: usize,
        vho: VhoId,
        n_vhos: usize,
    },
    LinkOutOfRange {
        idx: usize,
        link: LinkId,
        n_links: usize,
    },
    /// Capacity scale was NaN, infinite, or negative.
    InvalidScale { idx: usize, value: f64 },
    /// `start >= end` — the fault would never be active.
    EmptyWindow {
        idx: usize,
        start: SimTime,
        end: SimTime,
    },
    /// A flash crowd that erases its requests makes conservation
    /// unverifiable; use an empty schedule instead.
    ZeroMultiplier { idx: usize },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VhoOutOfRange { idx, vho, n_vhos } => {
                write!(f, "fault {idx}: VHO {vho} out of range (n_vhos = {n_vhos})")
            }
            Self::LinkOutOfRange { idx, link, n_links } => {
                write!(
                    f,
                    "fault {idx}: link {link} out of range (n_links = {n_links})"
                )
            }
            Self::InvalidScale { idx, value } => {
                write!(
                    f,
                    "fault {idx}: capacity scale {value} must be finite and >= 0"
                )
            }
            Self::EmptyWindow { idx, start, end } => {
                write!(f, "fault {idx}: window [{start}, {end}) is empty")
            }
            Self::ZeroMultiplier { idx } => {
                write!(f, "fault {idx}: flash-crowd multiplier must be >= 1")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// One schedule transition: an event starting or ending.
#[derive(Debug, Clone, Copy)]
struct Transition {
    time: SimTime,
    event: usize,
    is_start: bool,
}

/// Live fault state, advanced inline with the engine's event loop.
/// Construction from an empty schedule is a handful of empty vectors;
/// the engine never consults it on the fault-free path.
pub(crate) struct FaultState<'a> {
    schedule: &'a FaultSchedule,
    /// All starts/ends sorted by (time, ends-before-starts, index) so
    /// a window ending exactly when another begins heals first.
    transitions: Vec<Transition>,
    cursor: usize,
    /// Per event: whether its window is currently active.
    active: Vec<bool>,
    /// Per VHO: number of active outages (up when zero).
    vho_down: Vec<u32>,
    /// Per link: effective capacity scale (min over active
    /// degradations, 1.0 when none).
    link_scale: Vec<f64>,
    /// Per link: raw capacity in Mb/s (admission basis).
    link_cap: Vec<f64>,
    /// Per VHO: active flash-crowd multiplier (max over active events
    /// naming the VHO; 1 when none).
    surge_vho: Vec<u32>,
    /// Multiplier from active network-wide flash crowds.
    surge_global: u32,
}

impl<'a> FaultState<'a> {
    pub(crate) fn new(schedule: &'a FaultSchedule, net: &Network) -> Self {
        let mut transitions = Vec::with_capacity(schedule.events.len() * 2);
        for (idx, ev) in schedule.events.iter().enumerate() {
            transitions.push(Transition {
                time: ev.start,
                event: idx,
                is_start: true,
            });
            transitions.push(Transition {
                time: ev.end,
                event: idx,
                is_start: false,
            });
        }
        transitions.sort_by_key(|t| (t.time, t.is_start, t.event));
        Self {
            schedule,
            transitions,
            cursor: 0,
            active: vec![false; schedule.events.len()],
            vho_down: vec![0; net.num_nodes()],
            link_scale: vec![1.0; net.num_links()],
            link_cap: net.links().iter().map(|l| l.capacity.value()).collect(),
            surge_vho: vec![1; net.num_nodes()],
            surge_global: 1,
        }
    }

    /// Time of the next pending transition, if any.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.transitions.get(self.cursor).map(|t| t.time)
    }

    /// Apply the next transition. Returns `(time, disruptive)`;
    /// `disruptive` means active streams may now be dead (a VHO went
    /// down or a link was cut) and the engine must scan for
    /// interruptions.
    pub(crate) fn apply_next(&mut self) -> (SimTime, bool) {
        let tr = self.transitions[self.cursor];
        self.cursor += 1;
        self.active[tr.event] = tr.is_start;
        let disruptive = match self.schedule.events[tr.event].kind {
            FaultKind::VhoOutage { vho } => {
                if tr.is_start {
                    self.vho_down[vho.index()] += 1;
                } else {
                    self.vho_down[vho.index()] = self.vho_down[vho.index()].saturating_sub(1);
                }
                tr.is_start
            }
            FaultKind::LinkDegrade { link, .. } => {
                // Recompute the link's effective scale from all active
                // degradations (overlaps compose by min).
                let mut scale = 1.0f64;
                for (idx, ev) in self.schedule.events.iter().enumerate() {
                    if let FaultKind::LinkDegrade {
                        link: l,
                        capacity_scale,
                    } = ev.kind
                    {
                        if l == link && self.active[idx] {
                            scale = scale.min(capacity_scale);
                        }
                    }
                }
                self.link_scale[link.index()] = scale;
                tr.is_start && scale == 0.0
            }
            FaultKind::FlashCrowd { .. } => {
                // Recompute surge multipliers (overlaps compose by max).
                self.surge_global = 1;
                self.surge_vho.fill(1);
                for (idx, ev) in self.schedule.events.iter().enumerate() {
                    if !self.active[idx] {
                        continue;
                    }
                    if let FaultKind::FlashCrowd { vho, multiplier } = ev.kind {
                        match vho {
                            Some(v) => {
                                let s = &mut self.surge_vho[v.index()];
                                *s = (*s).max(multiplier);
                            }
                            None => self.surge_global = self.surge_global.max(multiplier),
                        }
                    }
                }
                false
            }
        };
        (tr.time, disruptive)
    }

    /// Whether the VHO's storage is serving.
    #[inline]
    pub(crate) fn vho_up(&self, v: VhoId) -> bool {
        self.vho_down[v.index()] == 0
    }

    /// Whether the link still carries traffic (not cut).
    #[inline]
    pub(crate) fn link_alive(&self, l: LinkId) -> bool {
        self.link_scale[l.index()] > 0.0
    }

    /// Whether every link on the path survives.
    pub(crate) fn path_alive(&self, path: &[LinkId]) -> bool {
        path.iter().all(|&l| self.link_alive(l))
    }

    /// Whether `server` can currently serve `client`: storage up and
    /// the route between them intact.
    pub(crate) fn server_usable(&self, server: VhoId, client: VhoId, paths: &PathSet) -> bool {
        self.vho_up(server) && self.path_alive(paths.path(server, client))
    }

    /// Effective capacity of a link under active degradations, Mb/s.
    #[inline]
    pub(crate) fn effective_capacity(&self, l: LinkId) -> f64 {
        self.link_cap[l.index()] * self.link_scale[l.index()]
    }

    /// Admission check: would adding `rate` overload any path link?
    /// `level` reports the link's current load in Mb/s.
    pub(crate) fn admits(&self, path: &[LinkId], rate: f64, level: impl Fn(LinkId) -> f64) -> bool {
        path.iter()
            .all(|&l| level(l) + rate <= self.effective_capacity(l) + 1e-9)
    }

    /// How many times a request arriving at `v` now is replayed.
    #[inline]
    pub(crate) fn surge_copies(&self, v: VhoId) -> u32 {
        self.surge_global.max(self.surge_vho[v.index()])
    }

    /// Raw link capacity accessor used to build schedules relative to
    /// the network (e.g. degrade to 50% of whatever the run set).
    #[cfg(test)]
    pub(crate) fn raw_capacity(&self, l: LinkId) -> f64 {
        self.link_cap[l.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_net::topologies;

    fn window(start: u64, end: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            start: SimTime::new(start),
            end: SimTime::new(end),
            kind,
        }
    }

    #[test]
    fn empty_schedule_is_inactive() {
        let s = FaultSchedule::empty();
        assert!(!s.is_active());
        assert!(s.validate(3, 4).is_ok());
        // Admission control alone still needs the machinery.
        let s = FaultSchedule {
            events: vec![],
            admission: true,
        };
        assert!(s.is_active());
    }

    #[test]
    fn validate_rejects_bad_events() {
        let cases = [
            (
                window(0, 10, FaultKind::VhoOutage { vho: VhoId::new(9) }),
                "out of range",
            ),
            (
                window(
                    0,
                    10,
                    FaultKind::LinkDegrade {
                        link: LinkId::new(99),
                        capacity_scale: 0.5,
                    },
                ),
                "out of range",
            ),
            (
                window(
                    0,
                    10,
                    FaultKind::LinkDegrade {
                        link: LinkId::new(0),
                        capacity_scale: f64::NAN,
                    },
                ),
                "finite",
            ),
            (
                window(
                    0,
                    10,
                    FaultKind::LinkDegrade {
                        link: LinkId::new(0),
                        capacity_scale: -0.5,
                    },
                ),
                "finite",
            ),
            (
                window(10, 10, FaultKind::VhoOutage { vho: VhoId::new(0) }),
                "empty",
            ),
            (
                window(
                    0,
                    10,
                    FaultKind::FlashCrowd {
                        vho: None,
                        multiplier: 0,
                    },
                ),
                "multiplier",
            ),
        ];
        for (ev, needle) in cases {
            let s = FaultSchedule {
                events: vec![ev],
                admission: false,
            };
            let err = s.validate(3, 6).expect_err("must reject");
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }

    #[test]
    fn state_machine_tracks_windows() {
        let net = topologies::line(3);
        let schedule = FaultSchedule {
            events: vec![
                window(100, 200, FaultKind::VhoOutage { vho: VhoId::new(1) }),
                window(
                    150,
                    250,
                    FaultKind::LinkDegrade {
                        link: LinkId::new(0),
                        capacity_scale: 0.0,
                    },
                ),
                window(
                    120,
                    180,
                    FaultKind::FlashCrowd {
                        vho: Some(VhoId::new(2)),
                        multiplier: 3,
                    },
                ),
            ],
            admission: false,
        };
        assert!(schedule.validate(3, net.num_links()).is_ok());
        let mut st = FaultState::new(&schedule, &net);
        assert!(st.vho_up(VhoId::new(1)));
        assert_eq!(st.surge_copies(VhoId::new(2)), 1);

        // t=100: outage starts (disruptive).
        let (t, disruptive) = st.apply_next();
        assert_eq!(t, SimTime::new(100));
        assert!(disruptive);
        assert!(!st.vho_up(VhoId::new(1)));

        // t=120: flash crowd starts (not disruptive).
        let (_, disruptive) = st.apply_next();
        assert!(!disruptive);
        assert_eq!(st.surge_copies(VhoId::new(2)), 3);
        assert_eq!(st.surge_copies(VhoId::new(0)), 1);

        // t=150: link cut (disruptive).
        let (_, disruptive) = st.apply_next();
        assert!(disruptive);
        assert!(!st.link_alive(LinkId::new(0)));
        assert_eq!(st.effective_capacity(LinkId::new(0)), 0.0);

        // t=180, 200, 250: everything clears in order.
        let _ = st.apply_next();
        assert_eq!(st.surge_copies(VhoId::new(2)), 1);
        let (_, disruptive) = st.apply_next();
        assert!(!disruptive, "recovery is never disruptive");
        assert!(st.vho_up(VhoId::new(1)));
        let _ = st.apply_next();
        assert!(st.link_alive(LinkId::new(0)));
        assert!(st.peek_time().is_none());
    }

    #[test]
    fn overlapping_degradations_compose_by_min() {
        let net = topologies::line(2);
        let schedule = FaultSchedule {
            events: vec![
                window(
                    0,
                    100,
                    FaultKind::LinkDegrade {
                        link: LinkId::new(0),
                        capacity_scale: 0.5,
                    },
                ),
                window(
                    50,
                    150,
                    FaultKind::LinkDegrade {
                        link: LinkId::new(0),
                        capacity_scale: 0.2,
                    },
                ),
            ],
            admission: true,
        };
        let mut st = FaultState::new(&schedule, &net);
        let cap = st.raw_capacity(LinkId::new(0));
        let _ = st.apply_next(); // 0.5 active
        assert!((st.effective_capacity(LinkId::new(0)) - 0.5 * cap).abs() < 1e-12);
        let _ = st.apply_next(); // 0.2 joins: min wins
        assert!((st.effective_capacity(LinkId::new(0)) - 0.2 * cap).abs() < 1e-12);
        let _ = st.apply_next(); // 0.5 ends: 0.2 remains
        assert!((st.effective_capacity(LinkId::new(0)) - 0.2 * cap).abs() < 1e-12);
        let _ = st.apply_next(); // all clear
        assert!((st.effective_capacity(LinkId::new(0)) - cap).abs() < 1e-12);
    }

    #[test]
    fn admission_checks_every_path_link() {
        let net = topologies::line(3);
        let schedule = FaultSchedule {
            events: vec![],
            admission: true,
        };
        let st = FaultState::new(&schedule, &net);
        let cap = st.raw_capacity(LinkId::new(0));
        let path = [LinkId::new(0), LinkId::new(2)];
        assert!(st.admits(&path, 2.0, |_| 0.0));
        // Second link full: the whole path is refused.
        assert!(!st.admits(&path, 2.0, |l| if l == LinkId::new(2) { cap } else { 0.0 }));
    }
}
