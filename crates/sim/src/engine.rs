//! The simulation engine: trace replay with exact link-load accounting.
//!
//! Hot-path structure (see DESIGN.md "Simulator performance
//! architecture"): link loads live in an implicit tournament tree so
//! stream add/remove are O(log L) with the running max a root read;
//! caches are statically-dispatched dense slabs ([`CacheImpl`]); and
//! evictions reuse one scratch vector across the whole replay. All of
//! it is bit-for-bit compatible with the original O(L)-rescan,
//! `BTreeMap`-cache implementation — `SimReport` at a fixed seed is
//! byte-identical, which the determinism and property tests pin.

use crate::cache::{Cache, CacheImpl, CacheKind, CacheStats, InsertOutcome};
use rand::Rng;
use std::collections::BinaryHeap;
use vod_core::Placement;
use vod_model::narrow;
use vod_model::rng::derive_rng;
use vod_model::{Catalog, SimTime, VhoId, VideoId};
use vod_net::{Network, PathSet};
use vod_trace::Trace;

/// Per-VHO storage configuration.
#[derive(Debug, Clone)]
pub struct VhoConfig {
    /// Videos pinned at this VHO (the placement's copies).
    pub pinned: Vec<VideoId>,
    /// Optional cache: kind and capacity in GB.
    pub cache: Option<(CacheKind, f64)>,
}

/// How a locally-missing video's server is chosen.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Use the MIP's serving distribution `x_{ij}^m` (random weighted
    /// server selection, Section V-B); falls back to nearest replica
    /// for videos/clients the solve did not cover.
    MipRouting(Placement),
    /// Always fetch from the nearest replica, located by the Oracle
    /// (the best case the paper grants the caching baselines).
    NearestReplica,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Reporting bucket length (the paper samples every 5 minutes).
    pub bucket_secs: u64,
    /// Request counters only accumulate from this instant (the warm-up
    /// period before it still exercises the caches).
    pub measure_from: SimTime,
    /// Insert remotely-fetched videos into the local cache.
    pub insert_on_miss: bool,
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            bucket_secs: 300,
            measure_from: SimTime::ZERO,
            insert_on_miss: true,
            seed: 0,
        }
    }
}

/// Simulation results (the measurements of Section VII).
#[derive(Debug, Clone)]
pub struct SimReport {
    pub bucket_secs: u64,
    /// Per bucket: max instantaneous load over all links (Mb/s) —
    /// Fig. 5's series.
    pub peak_link_mbps: Vec<f64>,
    /// Per bucket: data carried by all links during the bucket (GB;
    /// each remote stream contributes on every hop) — Fig. 6's series.
    pub transfer_gb: Vec<f64>,
    pub total_requests: u64,
    pub served_local_pinned: u64,
    pub served_local_cached: u64,
    pub served_remote: u64,
    /// Total transfer weighted by video size and hop count (GB×hops),
    /// the objective the MIP minimizes.
    pub total_gb_hops: f64,
    /// Max over the whole run of the per-bucket peaks.
    pub max_link_mbps: f64,
    /// Aggregated cache counters across VHOs.
    pub cache: CacheStats,
}

impl SimReport {
    /// Fraction of (measured) requests served from local disk (pinned
    /// or cached) — Table VI's "locally served".
    pub fn local_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        (self.served_local_pinned + self.served_local_cached) as f64 / self.total_requests as f64
    }

    /// Cache hit rate in the Table II sense: requests that did not
    /// need a remote transfer.
    pub fn hit_rate(&self) -> f64 {
        self.local_fraction()
    }

    /// Peak of the aggregate-transfer series, in GB per bucket.
    pub fn max_aggregate_gb(&self) -> f64 {
        self.transfer_gb.iter().cloned().fold(0.0, f64::max)
    }
}

/// Final dynamic state of a run — what the caches ended up holding.
/// Separated from [`SimReport`] so the report stays byte-comparable
/// across implementations while tests/audits can still inspect state.
#[derive(Debug, Clone)]
pub struct SimFinalState {
    /// Per video: sorted ids of the VHOs whose *cache* (not pinned
    /// store) holds it when the replay ends.
    pub cached_holders: Vec<Vec<VhoId>>,
    /// Per VHO: sorted cache contents (empty for cacheless VHOs).
    pub cache_contents: Vec<Vec<VideoId>>,
}

/// A stream-end event (min-heap by time; `seq` keeps ordering stable).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EndEvent {
    time: SimTime,
    seq: u64,
    video: VideoId,
    /// Links to unload (empty for local service).
    server: VhoId,
    client: VhoId,
    unpin_server_cache: bool,
    unpin_client_cache: bool,
}

/// Per-link load levels with the running maximum maintained in an
/// implicit tournament (segment) tree: leaves hold link loads, each
/// internal node the max of its two children, so add/remove cost
/// O(log L) per touched link and the current max is a root read. This
/// replaces an epsilon-guarded O(L) rescan per stream end (and its
/// `1e-9` "touched the max" heuristic). `f64::max` is exact selection
/// — the root equals a linear fold over the links bit-for-bit, so the
/// reported series are unchanged.
struct Loads {
    /// 1-indexed implicit binary tree; leaves at `leaf_base..`.
    tree: Vec<f64>,
    leaf_base: usize,
    current_total: f64,
    last_event: u64,
    bucket_secs: u64,
    peaks: Vec<f64>,
    volumes_gb: Vec<f64>,
}

impl Loads {
    fn new(n_links: usize, horizon: SimTime, bucket_secs: u64) -> Self {
        let n_buckets = narrow::usize_from(horizon.secs().div_ceil(bucket_secs)).max(1);
        let leaf_base = n_links.next_power_of_two().max(1);
        Self {
            tree: vec![0.0; 2 * leaf_base],
            leaf_base,
            current_total: 0.0,
            last_event: 0,
            bucket_secs,
            peaks: vec![0.0; n_buckets],
            volumes_gb: vec![0.0; n_buckets],
        }
    }

    /// Current max load over all links.
    #[inline]
    fn max(&self) -> f64 {
        self.tree[1]
    }

    /// Recompute ancestors of leaf `i` after its value changed.
    #[inline]
    fn pull_up(&mut self, mut i: usize) {
        while i > 1 {
            i /= 2;
            self.tree[i] = self.tree[2 * i].max(self.tree[2 * i + 1]);
        }
    }

    /// Integrate the piecewise-constant load level from the previous
    /// event up to `now` into the bucket series.
    fn advance(&mut self, now: u64) {
        let mut t = self.last_event;
        while t < now {
            let b = narrow::usize_from(t / self.bucket_secs);
            if b >= self.peaks.len() {
                break;
            }
            let seg_end = ((b as u64 + 1) * self.bucket_secs).min(now);
            self.peaks[b] = self.peaks[b].max(self.max());
            // Mb/s × s = Mb; /8000 → GB.
            self.volumes_gb[b] += self.current_total * (seg_end - t) as f64 / 8000.0;
            t = seg_end;
        }
        self.last_event = now;
        // The new level also counts toward the bucket containing `now`.
        let b = narrow::usize_from(now / self.bucket_secs);
        if b < self.peaks.len() {
            self.peaks[b] = self.peaks[b].max(self.max());
        }
    }

    fn add(&mut self, links: &[vod_model::LinkId], rate: f64) {
        for &l in links {
            let i = self.leaf_base + l.index();
            self.tree[i] += rate;
            self.pull_up(i);
        }
        self.current_total += rate * links.len() as f64;
    }

    fn remove(&mut self, links: &[vod_model::LinkId], rate: f64) {
        for &l in links {
            let i = self.leaf_base + l.index();
            #[cfg(feature = "audit")]
            assert!(
                self.tree[i] - rate >= -1e-6,
                "audit: link {} load would go negative ({} - {rate})",
                l.index(),
                self.tree[i],
            );
            self.tree[i] = (self.tree[i] - rate).max(0.0);
            self.pull_up(i);
        }
        self.current_total = (self.current_total - rate * links.len() as f64).max(0.0);
    }
}

/// Audit check: `cached_holders[m]` must list exactly the VHOs whose
/// cache contains `m`.
#[cfg(feature = "audit")]
fn audit_video_holders(m: VideoId, cached_holders: &[Vec<VhoId>], caches: &[Option<CacheImpl>]) {
    for (jj, c) in caches.iter().enumerate() {
        // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
        let id = VhoId::from_index(jj);
        let in_cache = c.as_ref().is_some_and(|c| c.contains(m));
        let in_holders = cached_holders[m.index()].binary_search(&id).is_ok();
        assert_eq!(
            in_cache, in_holders,
            "audit: holder-set divergence for video {m} at VHO {jj}"
        );
    }
}

/// Run the simulation: replay `trace` over `net` with the given per-VHO
/// storage and serving policy.
///
/// Every video must have at least one pinned copy somewhere (the
/// placement strategies all guarantee this), otherwise the first
/// request for an unhosted video panics — losing content would silently
/// corrupt every downstream metric.
pub fn simulate(
    net: &Network,
    paths: &PathSet,
    catalog: &Catalog,
    trace: &Trace,
    vhos: &[VhoConfig],
    policy: &PolicyKind,
    cfg: &SimConfig,
) -> SimReport {
    simulate_with_final(net, paths, catalog, trace, vhos, policy, cfg).0
}

/// As [`simulate`], additionally returning the end-of-run cache state
/// (used by the property tests and the audit layer).
pub fn simulate_with_final(
    net: &Network,
    paths: &PathSet,
    catalog: &Catalog,
    trace: &Trace,
    vhos: &[VhoConfig],
    policy: &PolicyKind,
    cfg: &SimConfig,
) -> (SimReport, SimFinalState) {
    let n_vhos = net.num_nodes();
    let n_videos = catalog.len();
    assert_eq!(vhos.len(), n_vhos, "one VhoConfig per VHO");
    assert!(cfg.bucket_secs > 0);

    // Pinned holders per video, sorted.
    let mut pinned_holders: Vec<Vec<VhoId>> = vec![Vec::new(); n_videos];
    for (j, vc) in vhos.iter().enumerate() {
        for &m in &vc.pinned {
            // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
            pinned_holders[m.index()].push(VhoId::from_index(j));
        }
    }
    for h in &mut pinned_holders {
        h.sort();
        h.dedup();
    }
    // Dynamic cache holders per video, kept sorted.
    let mut cached_holders: Vec<Vec<VhoId>> = vec![Vec::new(); n_videos];
    let mut caches: Vec<Option<CacheImpl>> = vhos
        .iter()
        .map(|vc| {
            vc.cache
                .map(|(kind, gb)| CacheImpl::with_video_hint(kind, gb, n_videos))
        })
        .collect();
    // Eviction scratch, reused across the whole replay.
    let mut evicted: Vec<VideoId> = Vec::new();

    let mut loads = Loads::new(net.num_links(), trace.horizon(), cfg.bucket_secs);
    let mut ends: BinaryHeap<std::cmp::Reverse<EndEvent>> = BinaryHeap::new();
    let mut rng = derive_rng(cfg.seed, 0x517_EC0);
    let mut seq = 0u64;

    let mut total_requests = 0u64;
    let mut served_local_pinned = 0u64;
    let mut served_local_cached = 0u64;
    let mut served_remote = 0u64;
    let mut total_gb_hops = 0.0f64;

    let finish = |ev: EndEvent, loads: &mut Loads, caches: &mut Vec<Option<CacheImpl>>| {
        loads.advance(ev.time.secs());
        if ev.server != ev.client {
            let path = paths.path(ev.server, ev.client);
            loads.remove(path, catalog.video(ev.video).bitrate().value());
        }
        if ev.unpin_server_cache {
            if let Some(c) = caches[ev.server.index()].as_mut() {
                c.unpin(ev.video);
            }
        }
        if ev.unpin_client_cache {
            if let Some(c) = caches[ev.client.index()].as_mut() {
                c.unpin(ev.video);
            }
        }
    };

    for r in trace.requests() {
        // Complete streams that ended before this request.
        while ends.peek().is_some_and(|e| e.0.time <= r.time) {
            let ev = ends.pop().expect("peeked a pending end event").0;
            finish(ev, &mut loads, &mut caches);
        }
        loads.advance(r.time.secs());

        let measured = r.time >= cfg.measure_from;
        if measured {
            total_requests += 1;
        }
        let j = r.vho;
        let m = r.video;
        let video = catalog.video(m);
        let dur = video.duration_secs();
        let end_time = r.time + dur;

        // 1) Local pinned copy.
        if pinned_holders[m.index()].binary_search(&j).is_ok() {
            if measured {
                served_local_pinned += 1;
            }
            continue;
        }
        // 2) Local cached copy.
        if caches[j.index()].as_ref().is_some_and(|c| c.contains(m)) {
            let c = caches[j.index()]
                .as_mut()
                .expect("cache presence checked above");
            c.touch(m);
            c.pin(m);
            if measured {
                served_local_cached += 1;
            }
            seq += 1;
            ends.push(std::cmp::Reverse(EndEvent {
                time: end_time,
                seq,
                video: m,
                server: j,
                client: j,
                unpin_server_cache: false,
                unpin_client_cache: true,
            }));
            continue;
        }

        // 3) Remote service: pick a server.
        let pinned = &pinned_holders[m.index()];
        let cached = &cached_holders[m.index()];
        let nearest = || -> VhoId {
            pinned
                .iter()
                .chain(cached.iter())
                .copied()
                .min_by_key(|&i| (paths.hops(i, j), i))
                .unwrap_or_else(|| panic!("video {m} has no copy anywhere"))
        };
        let server = match policy {
            PolicyKind::MipRouting(placement) => {
                match placement.serving_distribution(m, j) {
                    Some(dist) => {
                        // Weighted random server choice (Section V-B);
                        // guard against a distribution entry whose
                        // holder disappeared (shouldn't happen when the
                        // placement matches the pinned sets).
                        let total: f64 = dist.iter().map(|&(_, w)| w).sum();
                        let mut pick = rng.gen::<f64>() * total;
                        let mut chosen = dist[0].0;
                        for &(i, w) in dist {
                            if pick <= w {
                                chosen = i;
                                break;
                            }
                            pick -= w;
                        }
                        if pinned_holders[m.index()].binary_search(&chosen).is_ok() {
                            chosen
                        } else {
                            nearest()
                        }
                    }
                    None => nearest(),
                }
            }
            PolicyKind::NearestReplica => nearest(),
        };
        debug_assert_ne!(server, j, "remote path reached with a local copy");

        // The serving copy may live in the server's cache: pin it.
        let server_cached = pinned_holders[m.index()].binary_search(&server).is_err();
        if server_cached {
            if let Some(c) = caches[server.index()].as_mut() {
                c.touch(m);
                c.pin(m);
            }
        }

        let path = paths.path(server, j);
        loads.add(path, video.bitrate().value());
        if measured {
            served_remote += 1;
            total_gb_hops += video.size().value() * path.len() as f64;
        }

        // 4) Cache the fetched video locally.
        let mut unpin_client = false;
        if cfg.insert_on_miss {
            if let Some(c) = caches[j.index()].as_mut() {
                match c.insert(m, video.size().value(), &mut evicted) {
                    InsertOutcome::Inserted => {
                        c.pin(m);
                        unpin_client = true;
                        let row = &mut cached_holders[m.index()];
                        if let Err(pos) = row.binary_search(&j) {
                            row.insert(pos, j);
                        }
                        for victim in &evicted {
                            let row = &mut cached_holders[victim.index()];
                            if let Ok(pos) = row.binary_search(&j) {
                                row.remove(pos);
                            }
                        }
                    }
                    InsertOutcome::AlreadyPresent => {
                        c.pin(m);
                        unpin_client = true;
                    }
                    InsertOutcome::Rejected => {}
                }
            }
        }

        // Holder-set/cache consistency for every video whose membership
        // this event may have changed.
        #[cfg(feature = "audit")]
        {
            audit_video_holders(m, &cached_holders, &caches);
            for &victim in &evicted {
                audit_video_holders(victim, &cached_holders, &caches);
            }
        }

        seq += 1;
        ends.push(std::cmp::Reverse(EndEvent {
            time: end_time,
            seq,
            video: m,
            server,
            client: j,
            unpin_server_cache: server_cached,
            unpin_client_cache: unpin_client,
        }));
    }

    // Drain remaining streams (clamped to the horizon for bucketing).
    while let Some(std::cmp::Reverse(ev)) = ends.pop() {
        finish(ev, &mut loads, &mut caches);
    }
    loads.advance(trace.horizon().secs());

    #[cfg(feature = "audit")]
    {
        for i in 0..n_videos {
            audit_video_holders(VideoId::new(narrow::u32_from(i)), &cached_holders, &caches);
        }
        // Every stream was unloaded; only float residue may remain.
        assert!(
            loads.max() <= 1e-6,
            "audit: residual link load {} after drain",
            loads.max()
        );
    }

    let mut cache_stats = CacheStats::default();
    for c in caches.iter().flatten() {
        let s = c.stats();
        cache_stats.hits += s.hits;
        cache_stats.insertions += s.insertions;
        cache_stats.evictions += s.evictions;
        cache_stats.rejections += s.rejections;
    }
    let max_link_mbps = loads.peaks.iter().cloned().fold(0.0, f64::max);
    let cache_contents = caches
        .iter()
        .map(|c| c.as_ref().map(Cache::contents_sorted).unwrap_or_default())
        .collect();
    (
        SimReport {
            bucket_secs: cfg.bucket_secs,
            peak_link_mbps: loads.peaks,
            transfer_gb: loads.volumes_gb,
            total_requests,
            served_local_pinned,
            served_local_cached,
            served_remote,
            total_gb_hops,
            max_link_mbps,
            cache: cache_stats,
        },
        SimFinalState {
            cached_holders,
            cache_contents,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{Video, VideoClass, VideoKind};
    use vod_net::topologies;
    use vod_trace::Request;

    fn catalog(n: u32) -> Catalog {
        Catalog::new(
            (0..n)
                .map(|i| Video {
                    id: VideoId::new(i),
                    class: VideoClass::Show, // 1 GB, 1 h, 2 Mb/s
                    kind: VideoKind::Catalog,
                    release_day: 0,
                    weight: 1.0,
                })
                .collect(),
        )
    }

    fn line3() -> (Network, PathSet) {
        let net = topologies::line(3);
        let paths = PathSet::shortest_paths(&net);
        (net, paths)
    }

    fn req(t: u64, j: u16, m: u32) -> Request {
        Request {
            time: SimTime::new(t),
            vho: VhoId::new(j),
            video: VideoId::new(m),
        }
    }

    fn no_cache_vhos(pinned: Vec<Vec<u32>>) -> Vec<VhoConfig> {
        pinned
            .into_iter()
            .map(|p| VhoConfig {
                pinned: p.into_iter().map(VideoId::new).collect(),
                cache: None,
            })
            .collect()
    }

    #[test]
    fn local_service_uses_no_links() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 0, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.served_local_pinned, 1);
        assert_eq!(rep.max_link_mbps, 0.0);
        assert_eq!(rep.total_gb_hops, 0.0);
    }

    #[test]
    fn remote_service_loads_path_for_duration() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Client at node 2, only copy at node 0 → 2 hops, 2 Mb/s for 1 h.
        let trace = Trace::new(SimTime::new(2 * 4600), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.served_remote, 1);
        assert_eq!(rep.max_link_mbps, 2.0);
        assert_eq!(rep.total_gb_hops, 2.0); // 1 GB × 2 hops
                                            // During the stream (first hour = 12 buckets) the peak is 2.
        assert_eq!(rep.peak_link_mbps[0], 2.0);
        assert_eq!(rep.peak_link_mbps[11], 2.0);
        // After the stream ends, load returns to zero.
        assert_eq!(*rep.peak_link_mbps.last().unwrap(), 0.0);
        // Total transferred volume: 2 Mb/s × 3600 s × 2 links / 8000
        // = 1.8 GB... wait: 2*3600*2/8000 = 1.8; GB×hop counts 1 GB ×
        // 2 hops = 2 GB because size (1 GB = 8000 Mb at 2 Mb/s =
        // 4000 s?) — the video is 1 h at 2 Mb/s = 0.9 GB of stream
        // volume vs a nominal 1 GB size; both are reported, volumes
        // from the wire, gb_hops from the nominal size.
        let vol: f64 = rep.transfer_gb.iter().sum();
        assert!((vol - 1.8).abs() < 1e-9, "wire volume {vol}");
    }

    #[test]
    fn nearest_replica_chosen() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Copies at 0 and 1; client at 2 → fetch from 1 (1 hop).
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![0], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.total_gb_hops, 1.0);
    }

    #[test]
    fn cache_hit_after_first_fetch() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(20_000), vec![req(0, 2, 0), req(10_000, 2, 0)]);
        let mut vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        vhos[2].cache = Some((CacheKind::Lru, 5.0));
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.served_remote, 1);
        assert_eq!(rep.served_local_cached, 1);
        assert_eq!(rep.cache.insertions, 1);
    }

    #[test]
    fn remote_fetch_from_another_vhos_cache() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Copy pinned at 0 only. Node 1 fetches (caches it), then node
        // 2 fetches: nearest holder is now node 1's cache (1 hop).
        let trace = Trace::new(SimTime::new(30_000), vec![req(0, 1, 0), req(10_000, 2, 0)]);
        let mut vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        vhos[1].cache = Some((CacheKind::Lru, 5.0));
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        // 1 GB × 1 hop (0→1) + 1 GB × 1 hop (1→2).
        assert_eq!(rep.total_gb_hops, 2.0);
    }

    #[test]
    fn mip_routing_uses_distribution() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Placement: copies at 0 and 1; distribution for client 2 sends
        // everything to 0 (2 hops) even though 1 is nearer.
        let placement = {
            let stores = vec![vec![VhoId::new(0), VhoId::new(1)]];
            // from_stores carries no routing distribution, so the
            // MIP-routing policy must fall back to nearest replica.
            // This test asserts the fallback.
            Placement::from_stores(3, stores)
        };
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![0], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::MipRouting(placement),
            &SimConfig::default(),
        );
        // Fallback to nearest: 1 hop.
        assert_eq!(rep.total_gb_hops, 1.0);
    }

    #[test]
    fn measure_from_excludes_warmup() {
        let (net, paths) = line3();
        let cat = catalog(2);
        let trace = Trace::new(SimTime::new(30_000), vec![req(0, 2, 0), req(20_000, 2, 1)]);
        let vhos = no_cache_vhos(vec![vec![0, 1], vec![], vec![]]);
        let cfg = SimConfig {
            measure_from: SimTime::new(10_000),
            ..Default::default()
        };
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.total_requests, 1);
        assert_eq!(rep.served_remote, 1);
        // But the warm-up stream still showed up on the links.
        assert_eq!(rep.peak_link_mbps[0], 2.0);
    }

    #[test]
    fn concurrent_streams_stack_on_links() {
        let (net, paths) = line3();
        let cat = catalog(3);
        let trace = Trace::new(
            SimTime::new(30_000),
            vec![req(0, 2, 0), req(100, 2, 1), req(200, 2, 2)],
        );
        let vhos = no_cache_vhos(vec![vec![0, 1, 2], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.max_link_mbps, 6.0);
    }

    #[test]
    #[should_panic(expected = "no copy anywhere")]
    fn unhosted_video_panics() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![], vec![], vec![]]);
        let _ = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
    }

    #[test]
    fn report_ratios() {
        let rep = SimReport {
            bucket_secs: 300,
            peak_link_mbps: vec![],
            transfer_gb: vec![1.0, 3.0, 2.0],
            total_requests: 10,
            served_local_pinned: 4,
            served_local_cached: 2,
            served_remote: 4,
            total_gb_hops: 12.0,
            max_link_mbps: 5.0,
            cache: CacheStats::default(),
        };
        assert!((rep.local_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(rep.max_aggregate_gb(), 3.0);
    }

    #[test]
    fn final_state_reflects_cache_contents() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(20_000), vec![req(0, 2, 0)]);
        let mut vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        vhos[2].cache = Some((CacheKind::Lru, 5.0));
        let (_, fin) = simulate_with_final(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(fin.cache_contents[2], vec![VideoId::new(0)]);
        assert_eq!(fin.cached_holders[0], vec![VhoId::new(2)]);
        assert!(fin.cache_contents[0].is_empty());
    }
}
