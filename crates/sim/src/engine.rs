//! The simulation engine: trace replay with exact link-load accounting.
//!
//! Hot-path structure (see DESIGN.md "Simulator performance
//! architecture"): link loads live in an implicit tournament tree so
//! stream add/remove are O(log L) with the running max a root read;
//! caches are statically-dispatched dense slabs ([`CacheImpl`]); and
//! evictions reuse one scratch vector across the whole replay. All of
//! it is bit-for-bit compatible with the original O(L)-rescan,
//! `BTreeMap`-cache implementation — `SimReport` at a fixed seed is
//! byte-identical, which the determinism and property tests pin.

use crate::cache::{Cache, CacheImpl, CacheKind, CacheStats, InsertOutcome};
use crate::faults::{FaultSchedule, FaultState};
use rand::Rng;
use std::collections::BinaryHeap;
use vod_core::Placement;
use vod_model::narrow;
use vod_model::rng::derive_rng;
use vod_model::{Catalog, SimTime, VhoId, VideoId};
use vod_net::{Network, PathSet};
use vod_trace::Trace;

/// Per-VHO storage configuration.
#[derive(Debug, Clone)]
pub struct VhoConfig {
    /// Videos pinned at this VHO (the placement's copies).
    pub pinned: Vec<VideoId>,
    /// Optional cache: kind and capacity in GB.
    pub cache: Option<(CacheKind, f64)>,
}

/// How a locally-missing video's server is chosen.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Use the MIP's serving distribution `x_{ij}^m` (random weighted
    /// server selection, Section V-B); falls back to nearest replica
    /// for videos/clients the solve did not cover.
    MipRouting(Placement),
    /// Always fetch from the nearest replica, located by the Oracle
    /// (the best case the paper grants the caching baselines).
    NearestReplica,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Reporting bucket length (the paper samples every 5 minutes).
    pub bucket_secs: u64,
    /// Request counters only accumulate from this instant (the warm-up
    /// period before it still exercises the caches).
    pub measure_from: SimTime,
    /// Insert remotely-fetched videos into the local cache.
    pub insert_on_miss: bool,
    pub seed: u64,
    /// Timed faults injected into the replay. The default (empty)
    /// schedule leaves the engine on its exact fault-free code path,
    /// so reports stay byte-identical to a build without the fault
    /// layer.
    pub faults: FaultSchedule,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            bucket_secs: 300,
            measure_from: SimTime::ZERO,
            insert_on_miss: true,
            seed: 0,
            faults: FaultSchedule::default(),
        }
    }
}

/// Simulation results (the measurements of Section VII).
#[derive(Debug, Clone)]
pub struct SimReport {
    pub bucket_secs: u64,
    /// Per bucket: max instantaneous load over all links (Mb/s) —
    /// Fig. 5's series.
    pub peak_link_mbps: Vec<f64>,
    /// Per bucket: data carried by all links during the bucket (GB;
    /// each remote stream contributes on every hop) — Fig. 6's series.
    pub transfer_gb: Vec<f64>,
    pub total_requests: u64,
    pub served_local_pinned: u64,
    pub served_local_cached: u64,
    pub served_remote: u64,
    /// Total transfer weighted by video size and hop count (GB×hops),
    /// the objective the MIP minimizes.
    pub total_gb_hops: f64,
    /// Max over the whole run of the per-bucket peaks.
    pub max_link_mbps: f64,
    /// Requests with no reachable replica (every holder down or cut
    /// off — or, with a malformed placement, no holder at all).
    pub denied_no_replica: u64,
    /// Requests refused by admission control: some path link had no
    /// headroom under its (possibly degraded) capacity.
    pub denied_capacity: u64,
    /// Streams killed mid-flight by a VHO outage or link cut — the
    /// rebuffer events a real system would surface to subscribers.
    pub interrupted_streams: u64,
    /// Aggregated cache counters across VHOs.
    pub cache: CacheStats,
}

impl SimReport {
    /// Fraction of (measured) requests served from local disk (pinned
    /// or cached) — Table VI's "locally served".
    pub fn local_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        (self.served_local_pinned + self.served_local_cached) as f64 / self.total_requests as f64
    }

    /// Cache hit rate in the Table II sense: requests that did not
    /// need a remote transfer.
    pub fn hit_rate(&self) -> f64 {
        self.local_fraction()
    }

    /// Peak of the aggregate-transfer series, in GB per bucket.
    pub fn max_aggregate_gb(&self) -> f64 {
        self.transfer_gb.iter().cloned().fold(0.0, f64::max)
    }

    /// Total requests denied (no replica reachable, or no capacity).
    pub fn denied(&self) -> u64 {
        self.denied_no_replica + self.denied_capacity
    }

    /// Fraction of measured requests denied — Table VI-style quality
    /// loss under stress.
    pub fn denial_rate(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.denied() as f64 / self.total_requests as f64
    }

    /// Fraction of measured requests whose stream was interrupted
    /// mid-flight (a rebuffer/abort in subscriber terms).
    pub fn rebuffer_rate(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.interrupted_streams as f64 / self.total_requests as f64
    }
}

/// Final dynamic state of a run — what the caches ended up holding.
/// Separated from [`SimReport`] so the report stays byte-comparable
/// across implementations while tests/audits can still inspect state.
#[derive(Debug, Clone)]
pub struct SimFinalState {
    /// Per video: sorted ids of the VHOs whose *cache* (not pinned
    /// store) holds it when the replay ends.
    pub cached_holders: Vec<Vec<VhoId>>,
    /// Per VHO: sorted cache contents (empty for cacheless VHOs).
    pub cache_contents: Vec<Vec<VideoId>>,
}

/// A stream-end event (min-heap by time; `seq` keeps ordering stable).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EndEvent {
    time: SimTime,
    seq: u64,
    video: VideoId,
    /// Links to unload (empty for local service).
    server: VhoId,
    client: VhoId,
    unpin_server_cache: bool,
    unpin_client_cache: bool,
    /// Whether the originating request counted toward the report (so
    /// interruptions are measured consistently with services).
    measured: bool,
}

/// Per-link load levels with the running maximum maintained in an
/// implicit tournament (segment) tree: leaves hold link loads, each
/// internal node the max of its two children, so add/remove cost
/// O(log L) per touched link and the current max is a root read. This
/// replaces an epsilon-guarded O(L) rescan per stream end (and its
/// `1e-9` "touched the max" heuristic). `f64::max` is exact selection
/// — the root equals a linear fold over the links bit-for-bit, so the
/// reported series are unchanged.
struct Loads {
    /// 1-indexed implicit binary tree; leaves at `leaf_base..`.
    tree: Vec<f64>,
    leaf_base: usize,
    current_total: f64,
    last_event: u64,
    bucket_secs: u64,
    peaks: Vec<f64>,
    volumes_gb: Vec<f64>,
}

impl Loads {
    fn new(n_links: usize, horizon: SimTime, bucket_secs: u64) -> Self {
        let n_buckets = narrow::usize_from(horizon.secs().div_ceil(bucket_secs)).max(1);
        let leaf_base = n_links.next_power_of_two().max(1);
        Self {
            tree: vec![0.0; 2 * leaf_base],
            leaf_base,
            current_total: 0.0,
            last_event: 0,
            bucket_secs,
            peaks: vec![0.0; n_buckets],
            volumes_gb: vec![0.0; n_buckets],
        }
    }

    /// Current max load over all links.
    #[inline]
    fn max(&self) -> f64 {
        self.tree[1]
    }

    /// Current load on one link (leaf read; used by admission control).
    #[inline]
    fn level(&self, l: vod_model::LinkId) -> f64 {
        self.tree[self.leaf_base + l.index()]
    }

    /// Recompute ancestors of leaf `i` after its value changed.
    #[inline]
    fn pull_up(&mut self, mut i: usize) {
        while i > 1 {
            i /= 2;
            self.tree[i] = self.tree[2 * i].max(self.tree[2 * i + 1]);
        }
    }

    /// Integrate the piecewise-constant load level from the previous
    /// event up to `now` into the bucket series.
    fn advance(&mut self, now: u64) {
        let mut t = self.last_event;
        while t < now {
            let b = narrow::usize_from(t / self.bucket_secs);
            if b >= self.peaks.len() {
                break;
            }
            let seg_end = ((b as u64 + 1) * self.bucket_secs).min(now);
            self.peaks[b] = self.peaks[b].max(self.max());
            // Mb/s × s = Mb; /8000 → GB.
            self.volumes_gb[b] += self.current_total * (seg_end - t) as f64 / 8000.0;
            t = seg_end;
        }
        self.last_event = now;
        // The new level also counts toward the bucket containing `now`.
        let b = narrow::usize_from(now / self.bucket_secs);
        if b < self.peaks.len() {
            self.peaks[b] = self.peaks[b].max(self.max());
        }
    }

    fn add(&mut self, links: &[vod_model::LinkId], rate: f64) {
        for &l in links {
            let i = self.leaf_base + l.index();
            self.tree[i] += rate;
            self.pull_up(i);
        }
        self.current_total += rate * links.len() as f64;
    }

    fn remove(&mut self, links: &[vod_model::LinkId], rate: f64) {
        for &l in links {
            let i = self.leaf_base + l.index();
            #[cfg(feature = "audit")]
            assert!(
                self.tree[i] - rate >= -1e-6,
                "audit: link {} load would go negative ({} - {rate})",
                l.index(),
                self.tree[i],
            );
            self.tree[i] = (self.tree[i] - rate).max(0.0);
            self.pull_up(i);
        }
        self.current_total = (self.current_total - rate * links.len() as f64).max(0.0);
    }
}

/// Audit check: `cached_holders[m]` must list exactly the VHOs whose
/// cache contains `m`.
#[cfg(feature = "audit")]
fn audit_video_holders(m: VideoId, cached_holders: &[Vec<VhoId>], caches: &[Option<CacheImpl>]) {
    for (jj, c) in caches.iter().enumerate() {
        // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
        let id = VhoId::from_index(jj);
        let in_cache = c.as_ref().is_some_and(|c| c.contains(m));
        let in_holders = cached_holders[m.index()].binary_search(&id).is_ok();
        assert_eq!(
            in_cache, in_holders,
            "audit: holder-set divergence for video {m} at VHO {jj}"
        );
    }
}

/// Kill every active remote stream whose server or route a
/// just-started fault took down: release its link load at `now`,
/// undo its cache pins, and drop it from the end-event heap. Returns
/// the number of measured streams interrupted. Only called on
/// disruptive transitions, so the fault-free path never pays for it.
#[allow(clippy::too_many_arguments)]
fn interrupt_dead_streams(
    now: SimTime,
    ends: &mut BinaryHeap<std::cmp::Reverse<EndEvent>>,
    fstate: &FaultState<'_>,
    paths: &PathSet,
    catalog: &Catalog,
    loads: &mut Loads,
    caches: &mut [Option<CacheImpl>],
    survivors: &mut Vec<EndEvent>,
) -> u64 {
    loads.advance(now.secs());
    survivors.clear();
    let mut killed = 0u64;
    for std::cmp::Reverse(ev) in std::mem::take(ends).into_vec() {
        let dead = ev.server != ev.client
            && (!fstate.vho_up(ev.server) || !fstate.path_alive(paths.path(ev.server, ev.client)));
        if !dead {
            survivors.push(ev);
            continue;
        }
        killed += u64::from(ev.measured);
        loads.remove(
            paths.path(ev.server, ev.client),
            catalog.video(ev.video).bitrate().value(),
        );
        if ev.unpin_server_cache {
            if let Some(c) = caches[ev.server.index()].as_mut() {
                c.unpin(ev.video);
            }
        }
        if ev.unpin_client_cache {
            if let Some(c) = caches[ev.client.index()].as_mut() {
                c.unpin(ev.video);
            }
        }
    }
    ends.extend(survivors.drain(..).map(std::cmp::Reverse));
    killed
}

/// Run the simulation: replay `trace` over `net` with the given per-VHO
/// storage and serving policy.
///
/// A request for a video with no reachable copy — because the
/// placement is malformed, or because faults took every holder down —
/// is counted in [`SimReport::denied_no_replica`] rather than
/// aborting the replay; losing content degrades the metrics visibly
/// instead of silently corrupting them.
pub fn simulate(
    net: &Network,
    paths: &PathSet,
    catalog: &Catalog,
    trace: &Trace,
    vhos: &[VhoConfig],
    policy: &PolicyKind,
    cfg: &SimConfig,
) -> SimReport {
    simulate_with_final(net, paths, catalog, trace, vhos, policy, cfg).0
}

/// As [`simulate`], additionally returning the end-of-run cache state
/// (used by the property tests and the audit layer).
pub fn simulate_with_final(
    net: &Network,
    paths: &PathSet,
    catalog: &Catalog,
    trace: &Trace,
    vhos: &[VhoConfig],
    policy: &PolicyKind,
    cfg: &SimConfig,
) -> (SimReport, SimFinalState) {
    let n_vhos = net.num_nodes();
    let n_videos = catalog.len();
    assert_eq!(vhos.len(), n_vhos, "one VhoConfig per VHO");
    assert!(cfg.bucket_secs > 0);
    let schedule_ok = cfg.faults.validate(n_vhos, net.num_links());
    assert!(
        schedule_ok.is_ok(),
        "invalid fault schedule: {}",
        schedule_ok.err().map(|e| e.to_string()).unwrap_or_default()
    );

    // Fault machinery: constructing the state from an empty schedule
    // is a few empty vectors, and `faulted == false` keeps every fault
    // branch below off the replay's hot path.
    let faulted = cfg.faults.is_active();
    let mut fstate = FaultState::new(&cfg.faults, net);
    let mut interrupt_scratch: Vec<EndEvent> = Vec::new();

    // Pinned holders per video, sorted.
    let mut pinned_holders: Vec<Vec<VhoId>> = vec![Vec::new(); n_videos];
    for (j, vc) in vhos.iter().enumerate() {
        for &m in &vc.pinned {
            // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
            pinned_holders[m.index()].push(VhoId::from_index(j));
        }
    }
    for h in &mut pinned_holders {
        h.sort();
        h.dedup();
    }
    // Dynamic cache holders per video, kept sorted.
    let mut cached_holders: Vec<Vec<VhoId>> = vec![Vec::new(); n_videos];
    let mut caches: Vec<Option<CacheImpl>> = vhos
        .iter()
        .map(|vc| {
            vc.cache
                .map(|(kind, gb)| CacheImpl::with_video_hint(kind, gb, n_videos))
        })
        .collect();
    // Eviction scratch, reused across the whole replay.
    let mut evicted: Vec<VideoId> = Vec::new();

    let mut loads = Loads::new(net.num_links(), trace.horizon(), cfg.bucket_secs);
    let mut ends: BinaryHeap<std::cmp::Reverse<EndEvent>> = BinaryHeap::new();
    let mut rng = derive_rng(cfg.seed, 0x517_EC0);
    let mut seq = 0u64;

    let mut total_requests = 0u64;
    let mut served_local_pinned = 0u64;
    let mut served_local_cached = 0u64;
    let mut served_remote = 0u64;
    let mut total_gb_hops = 0.0f64;
    let mut denied_no_replica = 0u64;
    let mut denied_capacity = 0u64;
    let mut interrupted_streams = 0u64;

    let finish = |ev: EndEvent, loads: &mut Loads, caches: &mut Vec<Option<CacheImpl>>| {
        loads.advance(ev.time.secs());
        if ev.server != ev.client {
            let path = paths.path(ev.server, ev.client);
            loads.remove(path, catalog.video(ev.video).bitrate().value());
        }
        if ev.unpin_server_cache {
            if let Some(c) = caches[ev.server.index()].as_mut() {
                c.unpin(ev.video);
            }
        }
        if ev.unpin_client_cache {
            if let Some(c) = caches[ev.client.index()].as_mut() {
                c.unpin(ev.video);
            }
        }
    };

    for r in trace.requests() {
        // Complete ended streams and apply due fault transitions in
        // time order. With an empty schedule `peek_time()` is always
        // `None` and this is exactly the plain drain-ends loop. At
        // equal timestamps stream ends run first, so a stream ending
        // the instant a fault begins is not interrupted.
        loop {
            let next_end = ends.peek().map(|e| e.0.time);
            let transition_due = match (next_end, fstate.peek_time()) {
                (_, None) => false,
                (None, Some(tt)) => tt <= r.time,
                (Some(te), Some(tt)) => tt <= r.time && tt < te,
            };
            if transition_due {
                let (t, disruptive) = fstate.apply_next();
                if disruptive {
                    interrupted_streams += interrupt_dead_streams(
                        t,
                        &mut ends,
                        &fstate,
                        paths,
                        catalog,
                        &mut loads,
                        &mut caches,
                        &mut interrupt_scratch,
                    );
                }
                continue;
            }
            match ends.peek() {
                Some(e) if e.0.time <= r.time => {
                    let Some(std::cmp::Reverse(ev)) = ends.pop() else {
                        break;
                    };
                    finish(ev, &mut loads, &mut caches);
                }
                _ => break,
            }
        }
        loads.advance(r.time.secs());

        let measured = r.time >= cfg.measure_from;
        let j = r.vho;
        let m = r.video;
        let video = catalog.video(m);
        let dur = video.duration_secs();
        let end_time = r.time + dur;

        // An active flash crowd replays the request `copies` times;
        // the fault-free path is exactly one iteration with no extra
        // RNG draws or arithmetic.
        let copies = if faulted { fstate.surge_copies(j) } else { 1 };
        for _copy in 0..copies {
            if measured {
                total_requests += 1;
            }

            // 1) Local pinned copy (offline while the VHO is down).
            if (!faulted || fstate.vho_up(j)) && pinned_holders[m.index()].binary_search(&j).is_ok()
            {
                if measured {
                    served_local_pinned += 1;
                }
                continue;
            }
            // 2) Local cached copy.
            if !faulted || fstate.vho_up(j) {
                if let Some(c) = caches[j.index()].as_mut() {
                    if c.contains(m) {
                        c.touch(m);
                        c.pin(m);
                        if measured {
                            served_local_cached += 1;
                        }
                        seq += 1;
                        ends.push(std::cmp::Reverse(EndEvent {
                            time: end_time,
                            seq,
                            video: m,
                            server: j,
                            client: j,
                            unpin_server_cache: false,
                            unpin_client_cache: true,
                            measured,
                        }));
                        continue;
                    }
                }
            }

            // 3) Remote service: pick a surviving server (failover to
            // the next-cheapest reachable replica under faults).
            let pinned = &pinned_holders[m.index()];
            let cached = &cached_holders[m.index()];
            let nearest = || -> Option<VhoId> {
                pinned
                    .iter()
                    .chain(cached.iter())
                    .copied()
                    .filter(|&i| !faulted || fstate.server_usable(i, j, paths))
                    .min_by_key(|&i| (paths.hops(i, j), i))
            };
            let server = match policy {
                PolicyKind::MipRouting(placement) => {
                    match placement.serving_distribution(m, j) {
                        Some(dist) => {
                            // Weighted random server choice (Section V-B);
                            // guard against a distribution entry whose
                            // holder disappeared (shouldn't happen when the
                            // placement matches the pinned sets) or is
                            // currently down/cut off.
                            let total: f64 = dist.iter().map(|&(_, w)| w).sum();
                            let mut pick = rng.gen::<f64>() * total;
                            let mut chosen = dist[0].0;
                            for &(i, w) in dist {
                                if pick <= w {
                                    chosen = i;
                                    break;
                                }
                                pick -= w;
                            }
                            if pinned_holders[m.index()].binary_search(&chosen).is_ok()
                                && (!faulted || fstate.server_usable(chosen, j, paths))
                            {
                                Some(chosen)
                            } else {
                                nearest()
                            }
                        }
                        None => nearest(),
                    }
                }
                PolicyKind::NearestReplica => nearest(),
            };
            // No reachable replica anywhere: a counted denial, never
            // an abort — malformed placements and total outages both
            // land here.
            let Some(server) = server else {
                if measured {
                    denied_no_replica += 1;
                }
                continue;
            };
            debug_assert_ne!(server, j, "remote path reached with a local copy");

            let path = paths.path(server, j);
            let rate = video.bitrate().value();
            // Admission control: refuse a stream that would push any
            // path link past its (possibly degraded) capacity.
            if faulted && cfg.faults.admission && !fstate.admits(path, rate, |l| loads.level(l)) {
                if measured {
                    denied_capacity += 1;
                }
                continue;
            }

            // The serving copy may live in the server's cache: pin it.
            let server_cached = pinned_holders[m.index()].binary_search(&server).is_err();
            if server_cached {
                if let Some(c) = caches[server.index()].as_mut() {
                    c.touch(m);
                    c.pin(m);
                }
            }

            loads.add(path, rate);
            if measured {
                served_remote += 1;
                total_gb_hops += video.size().value() * path.len() as f64;
            }

            // 4) Cache the fetched video locally (not while the local
            // VHO's storage is down).
            let mut unpin_client = false;
            if cfg.insert_on_miss && (!faulted || fstate.vho_up(j)) {
                if let Some(c) = caches[j.index()].as_mut() {
                    match c.insert(m, video.size().value(), &mut evicted) {
                        InsertOutcome::Inserted => {
                            c.pin(m);
                            unpin_client = true;
                            let row = &mut cached_holders[m.index()];
                            if let Err(pos) = row.binary_search(&j) {
                                row.insert(pos, j);
                            }
                            for victim in &evicted {
                                let row = &mut cached_holders[victim.index()];
                                if let Ok(pos) = row.binary_search(&j) {
                                    row.remove(pos);
                                }
                            }
                        }
                        InsertOutcome::AlreadyPresent => {
                            c.pin(m);
                            unpin_client = true;
                        }
                        InsertOutcome::Rejected => {}
                    }
                }
            }

            // Holder-set/cache consistency for every video whose membership
            // this event may have changed.
            #[cfg(feature = "audit")]
            {
                audit_video_holders(m, &cached_holders, &caches);
                for &victim in &evicted {
                    audit_video_holders(victim, &cached_holders, &caches);
                }
            }

            seq += 1;
            ends.push(std::cmp::Reverse(EndEvent {
                time: end_time,
                seq,
                video: m,
                server,
                client: j,
                unpin_server_cache: server_cached,
                unpin_client_cache: unpin_client,
                measured,
            }));
        }
    }

    // Drain remaining streams (clamped to the horizon for bucketing),
    // still interleaved with any fault transitions left on the clock.
    // Once no streams remain, pending transitions cannot affect the
    // report and are skipped.
    loop {
        let next_end = ends.peek().map(|e| e.0.time);
        let transition_due = match (next_end, fstate.peek_time()) {
            (_, None) | (None, Some(_)) => false,
            (Some(te), Some(tt)) => tt < te,
        };
        if transition_due {
            let (t, disruptive) = fstate.apply_next();
            if disruptive {
                interrupted_streams += interrupt_dead_streams(
                    t,
                    &mut ends,
                    &fstate,
                    paths,
                    catalog,
                    &mut loads,
                    &mut caches,
                    &mut interrupt_scratch,
                );
            }
            continue;
        }
        let Some(std::cmp::Reverse(ev)) = ends.pop() else {
            break;
        };
        finish(ev, &mut loads, &mut caches);
    }
    loads.advance(trace.horizon().secs());

    #[cfg(feature = "audit")]
    {
        for i in 0..n_videos {
            audit_video_holders(VideoId::new(narrow::u32_from(i)), &cached_holders, &caches);
        }
        // Every stream was unloaded; only float residue may remain.
        assert!(
            loads.max() <= 1e-6,
            "audit: residual link load {} after drain",
            loads.max()
        );
        // Conservation: service classes and denials partition the
        // measured requests (interruptions overlap the served counts).
        assert_eq!(
            served_local_pinned
                + served_local_cached
                + served_remote
                + denied_no_replica
                + denied_capacity,
            total_requests,
            "audit: served + denied must equal issued"
        );
    }

    let mut cache_stats = CacheStats::default();
    for c in caches.iter().flatten() {
        let s = c.stats();
        cache_stats.hits += s.hits;
        cache_stats.insertions += s.insertions;
        cache_stats.evictions += s.evictions;
        cache_stats.rejections += s.rejections;
    }
    let max_link_mbps = loads.peaks.iter().cloned().fold(0.0, f64::max);
    let cache_contents = caches
        .iter()
        .map(|c| c.as_ref().map(Cache::contents_sorted).unwrap_or_default())
        .collect();
    (
        SimReport {
            bucket_secs: cfg.bucket_secs,
            peak_link_mbps: loads.peaks,
            transfer_gb: loads.volumes_gb,
            total_requests,
            served_local_pinned,
            served_local_cached,
            served_remote,
            total_gb_hops,
            max_link_mbps,
            denied_no_replica,
            denied_capacity,
            interrupted_streams,
            cache: cache_stats,
        },
        SimFinalState {
            cached_holders,
            cache_contents,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::{Video, VideoClass, VideoKind};
    use vod_net::topologies;
    use vod_trace::Request;

    fn catalog(n: u32) -> Catalog {
        Catalog::new(
            (0..n)
                .map(|i| Video {
                    id: VideoId::new(i),
                    class: VideoClass::Show, // 1 GB, 1 h, 2 Mb/s
                    kind: VideoKind::Catalog,
                    release_day: 0,
                    weight: 1.0,
                })
                .collect(),
        )
    }

    fn line3() -> (Network, PathSet) {
        let net = topologies::line(3);
        let paths = PathSet::shortest_paths(&net);
        (net, paths)
    }

    fn req(t: u64, j: u16, m: u32) -> Request {
        Request {
            time: SimTime::new(t),
            vho: VhoId::new(j),
            video: VideoId::new(m),
        }
    }

    fn no_cache_vhos(pinned: Vec<Vec<u32>>) -> Vec<VhoConfig> {
        pinned
            .into_iter()
            .map(|p| VhoConfig {
                pinned: p.into_iter().map(VideoId::new).collect(),
                cache: None,
            })
            .collect()
    }

    #[test]
    fn local_service_uses_no_links() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 0, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.served_local_pinned, 1);
        assert_eq!(rep.max_link_mbps, 0.0);
        assert_eq!(rep.total_gb_hops, 0.0);
    }

    #[test]
    fn remote_service_loads_path_for_duration() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Client at node 2, only copy at node 0 → 2 hops, 2 Mb/s for 1 h.
        let trace = Trace::new(SimTime::new(2 * 4600), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.served_remote, 1);
        assert_eq!(rep.max_link_mbps, 2.0);
        assert_eq!(rep.total_gb_hops, 2.0); // 1 GB × 2 hops
                                            // During the stream (first hour = 12 buckets) the peak is 2.
        assert_eq!(rep.peak_link_mbps[0], 2.0);
        assert_eq!(rep.peak_link_mbps[11], 2.0);
        // After the stream ends, load returns to zero.
        assert_eq!(*rep.peak_link_mbps.last().unwrap(), 0.0);
        // Total transferred volume: 2 Mb/s × 3600 s × 2 links / 8000
        // = 1.8 GB... wait: 2*3600*2/8000 = 1.8; GB×hop counts 1 GB ×
        // 2 hops = 2 GB because size (1 GB = 8000 Mb at 2 Mb/s =
        // 4000 s?) — the video is 1 h at 2 Mb/s = 0.9 GB of stream
        // volume vs a nominal 1 GB size; both are reported, volumes
        // from the wire, gb_hops from the nominal size.
        let vol: f64 = rep.transfer_gb.iter().sum();
        assert!((vol - 1.8).abs() < 1e-9, "wire volume {vol}");
    }

    #[test]
    fn nearest_replica_chosen() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Copies at 0 and 1; client at 2 → fetch from 1 (1 hop).
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![0], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.total_gb_hops, 1.0);
    }

    #[test]
    fn cache_hit_after_first_fetch() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(20_000), vec![req(0, 2, 0), req(10_000, 2, 0)]);
        let mut vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        vhos[2].cache = Some((CacheKind::Lru, 5.0));
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.served_remote, 1);
        assert_eq!(rep.served_local_cached, 1);
        assert_eq!(rep.cache.insertions, 1);
    }

    #[test]
    fn remote_fetch_from_another_vhos_cache() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Copy pinned at 0 only. Node 1 fetches (caches it), then node
        // 2 fetches: nearest holder is now node 1's cache (1 hop).
        let trace = Trace::new(SimTime::new(30_000), vec![req(0, 1, 0), req(10_000, 2, 0)]);
        let mut vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        vhos[1].cache = Some((CacheKind::Lru, 5.0));
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        // 1 GB × 1 hop (0→1) + 1 GB × 1 hop (1→2).
        assert_eq!(rep.total_gb_hops, 2.0);
    }

    #[test]
    fn mip_routing_uses_distribution() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Placement: copies at 0 and 1; distribution for client 2 sends
        // everything to 0 (2 hops) even though 1 is nearer.
        let placement = {
            let stores = vec![vec![VhoId::new(0), VhoId::new(1)]];
            // from_stores carries no routing distribution, so the
            // MIP-routing policy must fall back to nearest replica.
            // This test asserts the fallback.
            Placement::from_stores(3, stores)
        };
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![0], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::MipRouting(placement),
            &SimConfig::default(),
        );
        // Fallback to nearest: 1 hop.
        assert_eq!(rep.total_gb_hops, 1.0);
    }

    #[test]
    fn measure_from_excludes_warmup() {
        let (net, paths) = line3();
        let cat = catalog(2);
        let trace = Trace::new(SimTime::new(30_000), vec![req(0, 2, 0), req(20_000, 2, 1)]);
        let vhos = no_cache_vhos(vec![vec![0, 1], vec![], vec![]]);
        let cfg = SimConfig {
            measure_from: SimTime::new(10_000),
            ..Default::default()
        };
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.total_requests, 1);
        assert_eq!(rep.served_remote, 1);
        // But the warm-up stream still showed up on the links.
        assert_eq!(rep.peak_link_mbps[0], 2.0);
    }

    #[test]
    fn concurrent_streams_stack_on_links() {
        let (net, paths) = line3();
        let cat = catalog(3);
        let trace = Trace::new(
            SimTime::new(30_000),
            vec![req(0, 2, 0), req(100, 2, 1), req(200, 2, 2)],
        );
        let vhos = no_cache_vhos(vec![vec![0, 1, 2], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.max_link_mbps, 6.0);
    }

    #[test]
    fn unhosted_video_is_denied_not_a_panic() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        // Malformed placement: the video exists nowhere. The request
        // must surface as a counted denial, never an abort.
        let vhos = no_cache_vhos(vec![vec![], vec![], vec![]]);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(rep.denied_no_replica, 1);
        assert_eq!(rep.total_requests, 1);
        assert_eq!(rep.served_remote, 0);
        assert_eq!(rep.max_link_mbps, 0.0);
        assert!((rep.denial_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_ratios() {
        let rep = SimReport {
            bucket_secs: 300,
            peak_link_mbps: vec![],
            transfer_gb: vec![1.0, 3.0, 2.0],
            total_requests: 10,
            served_local_pinned: 4,
            served_local_cached: 2,
            served_remote: 2,
            total_gb_hops: 12.0,
            max_link_mbps: 5.0,
            denied_no_replica: 1,
            denied_capacity: 1,
            interrupted_streams: 2,
            cache: CacheStats::default(),
        };
        assert!((rep.local_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(rep.max_aggregate_gb(), 3.0);
        assert_eq!(rep.denied(), 2);
        assert!((rep.denial_rate() - 0.2).abs() < 1e-12);
        assert!((rep.rebuffer_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn final_state_reflects_cache_contents() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(20_000), vec![req(0, 2, 0)]);
        let mut vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        vhos[2].cache = Some((CacheKind::Lru, 5.0));
        let (_, fin) = simulate_with_final(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        assert_eq!(fin.cache_contents[2], vec![VideoId::new(0)]);
        assert_eq!(fin.cached_holders[0], vec![VhoId::new(2)]);
        assert!(fin.cache_contents[0].is_empty());
    }

    // ---- fault-injection behaviour ----------------------------------

    use crate::faults::{FaultEvent, FaultKind, FaultSchedule};
    use vod_model::LinkId;

    fn fault_cfg(events: Vec<FaultEvent>, admission: bool) -> SimConfig {
        SimConfig {
            faults: FaultSchedule { events, admission },
            ..Default::default()
        }
    }

    #[test]
    fn vho_outage_fails_over_to_next_replica() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Copies at 0 and 1, client at 2. Fault-free the nearest is 1
        // (1 hop); with 1 down the request fails over to 0 (2 hops).
        let trace = Trace::new(SimTime::new(8000), vec![req(0, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![0], vec![]]);
        let cfg = fault_cfg(
            vec![FaultEvent {
                start: SimTime::new(0),
                end: SimTime::new(10),
                kind: FaultKind::VhoOutage { vho: VhoId::new(1) },
            }],
            false,
        );
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.served_remote, 1);
        assert_eq!(rep.total_gb_hops, 2.0, "failover took the 2-hop route");
        assert_eq!(rep.denied(), 0);
    }

    #[test]
    fn link_cut_interrupts_denies_then_recovers() {
        let (net, paths) = line3();
        let cat = catalog(1);
        // Only copy at 0; client at 2 (path links 0->1, 1->2). Stream
        // starts at t=0; link 1->2 is cut on [1000, 2000): the stream
        // is interrupted, a request at 1500 finds no route (denied),
        // and a request at 2500 is served again after recovery.
        let trace = Trace::new(
            SimTime::new(30_000),
            vec![req(0, 2, 0), req(1500, 2, 0), req(2500, 2, 0)],
        );
        let vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        let cfg = fault_cfg(
            vec![FaultEvent {
                start: SimTime::new(1000),
                end: SimTime::new(2000),
                kind: FaultKind::LinkDegrade {
                    link: LinkId::new(2),
                    capacity_scale: 0.0,
                },
            }],
            false,
        );
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.interrupted_streams, 1);
        assert_eq!(rep.denied_no_replica, 1);
        assert_eq!(rep.served_remote, 2);
        assert_eq!(rep.total_requests, 3);
        // The cut window shows zero load (bucket 4 covers 1200..1500).
        assert_eq!(rep.peak_link_mbps[4], 0.0);
    }

    #[test]
    fn flash_crowd_replays_requests() {
        let (net, paths) = line3();
        let cat = catalog(1);
        let trace = Trace::new(SimTime::new(30_000), vec![req(100, 2, 0)]);
        let vhos = no_cache_vhos(vec![vec![0], vec![], vec![]]);
        let cfg = fault_cfg(
            vec![FaultEvent {
                start: SimTime::new(0),
                end: SimTime::new(200),
                kind: FaultKind::FlashCrowd {
                    vho: Some(VhoId::new(2)),
                    multiplier: 3,
                },
            }],
            false,
        );
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.total_requests, 3);
        assert_eq!(rep.served_remote, 3);
        // Three concurrent copies of the same 2 Mb/s stream.
        assert_eq!(rep.max_link_mbps, 6.0);
    }

    #[test]
    fn admission_control_denies_overload() {
        let (mut net, _) = line3();
        net.set_uniform_capacity(vod_model::Mbps::new(3.0));
        let paths = PathSet::shortest_paths(&net);
        let cat = catalog(2);
        // Two concurrent 2 Mb/s streams over a 3 Mb/s link: the second
        // must be refused, not overload the link.
        let trace = Trace::new(SimTime::new(30_000), vec![req(0, 2, 0), req(100, 2, 1)]);
        let vhos = no_cache_vhos(vec![vec![0, 1], vec![], vec![]]);
        let cfg = fault_cfg(vec![], true);
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.served_remote, 1);
        assert_eq!(rep.denied_capacity, 1);
        assert!(rep.max_link_mbps <= 3.0, "admission kept links feasible");
    }

    #[test]
    fn dormant_schedule_matches_fault_free_run() {
        let (net, paths) = line3();
        let cat = catalog(2);
        let trace = Trace::new(
            SimTime::new(30_000),
            vec![req(0, 2, 0), req(100, 1, 1), req(5000, 2, 1)],
        );
        let mut vhos = no_cache_vhos(vec![vec![0, 1], vec![], vec![]]);
        vhos[2].cache = Some((CacheKind::Lru, 5.0));
        let base = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig::default(),
        );
        // A schedule whose only event never overlaps the trace flips
        // the engine onto the fault-aware path but must not change a
        // single bit of the report.
        let cfg = fault_cfg(
            vec![FaultEvent {
                start: SimTime::new(40_000),
                end: SimTime::new(50_000),
                kind: FaultKind::VhoOutage { vho: VhoId::new(0) },
            }],
            false,
        );
        let rep = simulate(
            &net,
            &paths,
            &cat,
            &trace,
            &vhos,
            &PolicyKind::NearestReplica,
            &cfg,
        );
        assert_eq!(rep.total_requests, base.total_requests);
        assert_eq!(rep.total_gb_hops.to_bits(), base.total_gb_hops.to_bits());
        assert_eq!(rep.peak_link_mbps, base.peak_link_mbps);
        assert_eq!(rep.transfer_gb, base.transfer_gb);
        assert_eq!(rep.denied(), 0);
    }
}
