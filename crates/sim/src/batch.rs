//! Parallel scenario runner: fan independent `simulate()` calls over
//! the `vod-core` worker surface.
//!
//! Every figure sweep downstream of a placement (Figs. 5–12, Tables
//! V–VI) replays the *same* trace under many configurations — cache
//! fractions, window sizes, update frequencies, baselines. Each replay
//! is independent, so the sweep parallelizes perfectly; and because
//! [`vod_core::map_ordered`] reassembles results in job order, a batch
//! at `threads = N` is byte-identical to the serial loop it replaces
//! (pinned by `crates/sim/tests/determinism.rs`).

use crate::engine::{simulate, PolicyKind, SimConfig, SimReport, VhoConfig};
use vod_model::Catalog;
use vod_net::{Network, PathSet};
use vod_trace::Trace;

/// One `simulate()` invocation's borrowed inputs. Jobs in a batch may
/// share everything (fig. 12: same net/trace, different `vhos`) or
/// nothing (table V: per-row capacities).
#[derive(Debug, Clone)]
pub struct SimJob<'a> {
    pub net: &'a Network,
    pub paths: &'a PathSet,
    pub catalog: &'a Catalog,
    pub trace: &'a Trace,
    pub vhos: &'a [VhoConfig],
    pub policy: &'a PolicyKind,
    pub cfg: SimConfig,
}

/// Run every job and return the reports in job order. `threads <= 1`
/// degenerates to the serial loop.
pub fn simulate_batch(jobs: &[SimJob<'_>], threads: usize) -> Vec<SimReport> {
    vod_core::map_ordered(threads, jobs, |job| {
        simulate(
            job.net,
            job.paths,
            job.catalog,
            job.trace,
            job.vhos,
            job.policy,
            &job.cfg,
        )
    })
}

/// Thread count for batch sweeps: all available cores (the jobs are
/// compute-bound and order-independent).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VhoConfig;
    use vod_model::{Catalog, SimTime, VhoId, Video, VideoClass, VideoId, VideoKind};
    use vod_net::topologies;
    use vod_trace::{Request, Trace};

    fn catalog(n: u32) -> Catalog {
        Catalog::new(
            (0..n)
                .map(|i| Video {
                    id: VideoId::new(i),
                    class: VideoClass::Show,
                    kind: VideoKind::Catalog,
                    release_day: 0,
                    weight: 1.0,
                })
                .collect(),
        )
    }

    #[test]
    fn batch_matches_serial_calls() {
        let net = topologies::line(3);
        let paths = PathSet::shortest_paths(&net);
        let cat = catalog(2);
        let trace = Trace::new(
            SimTime::new(30_000),
            vec![
                Request {
                    time: SimTime::new(0),
                    vho: VhoId::new(2),
                    video: VideoId::new(0),
                },
                Request {
                    time: SimTime::new(100),
                    vho: VhoId::new(1),
                    video: VideoId::new(1),
                },
            ],
        );
        let vhos: Vec<VhoConfig> = vec![
            VhoConfig {
                pinned: vec![VideoId::new(0), VideoId::new(1)],
                cache: None,
            },
            VhoConfig {
                pinned: vec![],
                cache: None,
            },
            VhoConfig {
                pinned: vec![],
                cache: None,
            },
        ];
        let policy = PolicyKind::NearestReplica;
        let jobs: Vec<SimJob> = (0..4u64)
            .map(|seed| SimJob {
                net: &net,
                paths: &paths,
                catalog: &cat,
                trace: &trace,
                vhos: &vhos,
                policy: &policy,
                cfg: SimConfig {
                    seed,
                    ..Default::default()
                },
            })
            .collect();
        let batched = simulate_batch(&jobs, 3);
        assert_eq!(batched.len(), 4);
        for (job, rep) in jobs.iter().zip(&batched) {
            let serial = simulate(
                job.net,
                job.paths,
                job.catalog,
                job.trace,
                job.vhos,
                job.policy,
                &job.cfg,
            );
            assert_eq!(rep.total_requests, serial.total_requests);
            assert_eq!(rep.total_gb_hops.to_bits(), serial.total_gb_hops.to_bits());
        }
    }
}
