//! Discrete-event VoD streaming simulator.
//!
//! Replays a request trace against a placement/caching configuration
//! and measures exactly what the paper's evaluation measures
//! (Section VII): peak link bandwidth per 5-minute interval (Fig. 5),
//! aggregate transfer across all links (Fig. 6), cache behaviour
//! (Fig. 9), hit rates and locally-served fractions (Tables II, VI).
//!
//! Mechanics: each request opens a stream of the video's bitrate along
//! the fixed path from its serving VHO for the video's full duration;
//! per-link loads are updated at stream start/end events and integrated
//! between events, so bucket peaks and transferred volumes are exact.
//! Each VHO owns a *pinned* store (the placement's copies) plus an
//! optional LRU/LFU cache; cached copies are pinned for the duration of
//! any stream using them (a video being viewed "occupies the cache for
//! a long period", Section I) — a cache full of active videos rejects
//! insertions, which the paper counts as "uncachable" requests
//! (Fig. 9).
//!
//! Serving decision, in order: local pinned copy → local cached copy →
//! the MIP's serving distribution `x_{ij}^m` (weighted random server
//! choice, Section V-B) when available → the *Oracle* nearest replica
//! (the paper grants the caching baselines a perfect replica locator).

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod faults;
pub mod setups;
pub mod snapshot;

pub use batch::{default_threads, simulate_batch, SimJob};
pub use cache::{Cache, CacheImpl, CacheKind, CacheStats, LfuCache, LrfuCache, LruCache};
pub use engine::{
    simulate, simulate_with_final, PolicyKind, SimConfig, SimFinalState, SimReport, VhoConfig,
};
pub use faults::{FaultConfigError, FaultEvent, FaultKind, FaultSchedule};
pub use setups::{
    mip_vho_configs, origin_vho_configs, random_single_vho_configs, top_k_vho_configs,
};
pub use snapshot::{read_schedule, schedule_from_value, schedule_to_value, write_schedule};
