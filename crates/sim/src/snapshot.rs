//! Durable JSON codec for [`FaultSchedule`] — the service loop's
//! per-cycle fault feed.
//!
//! The supervised placement service persists the fault schedule it is
//! about to inject (and the chaos drills persist whole matrices of
//! them), so schedules need the same crash-safe container treatment as
//! solver checkpoints: a clean round trip is *identity* (pinned by
//! proptest in `tests/fault_snapshot.rs`), and decoding arbitrarily
//! corrupted bytes is a typed error, never a panic — a torn or
//! bit-rotted schedule must degrade into "run without faults", not
//! take the service down.
//!
//! Times are encoded bit-exactly as hex `u64`s (a `SimTime` may exceed
//! the 53-bit exact range of a JSON number) and `capacity_scale` as
//! its IEEE-754 bit pattern, so the decoded schedule drives the
//! simulator through byte-identical trajectories.

use crate::faults::{FaultEvent, FaultKind, FaultSchedule};
use std::path::Path;
use vod_json::snapshot::{
    f64_bits_value, f64_from_bits_value, read_json_snapshot, u64_bits_value, u64_from_bits_value,
    write_json_snapshot, SnapshotError,
};
use vod_json::Value;
use vod_model::{LinkId, SimTime, VhoId};

/// Snapshot container tag for persisted fault schedules.
pub const FAULTS_KIND: &str = "fault-schedule";
pub const FAULTS_VERSION: u32 = 1;

/// Serialize a schedule to a JSON value (the snapshot payload).
#[must_use]
pub fn schedule_to_value(s: &FaultSchedule) -> Value {
    let events = s
        .events
        .iter()
        .map(|ev| {
            let mut fields = vec![
                ("start".to_string(), u64_bits_value(ev.start.0)),
                ("end".to_string(), u64_bits_value(ev.end.0)),
            ];
            match ev.kind {
                FaultKind::VhoOutage { vho } => {
                    fields.push(("kind".to_string(), Value::Str("vho-outage".into())));
                    fields.push(("vho".to_string(), Value::Num(vho.index() as f64)));
                }
                FaultKind::LinkDegrade {
                    link,
                    capacity_scale,
                } => {
                    fields.push(("kind".to_string(), Value::Str("link-degrade".into())));
                    fields.push(("link".to_string(), Value::Num(link.index() as f64)));
                    fields.push(("capacity_scale".to_string(), f64_bits_value(capacity_scale)));
                }
                FaultKind::FlashCrowd { vho, multiplier } => {
                    fields.push(("kind".to_string(), Value::Str("flash-crowd".into())));
                    fields.push((
                        "vho".to_string(),
                        match vho {
                            Some(v) => Value::Num(v.index() as f64),
                            None => Value::Null,
                        },
                    ));
                    fields.push(("multiplier".to_string(), Value::Num(f64::from(multiplier))));
                }
            }
            Value::Obj(fields)
        })
        .collect();
    Value::Obj(vec![
        ("admission".to_string(), Value::Bool(s.admission)),
        ("events".to_string(), Value::Arr(events)),
    ])
}

fn vho_of(v: &Value, what: &str) -> Result<VhoId, String> {
    let idx = v
        .as_usize()
        .ok_or_else(|| format!("{what}: expected a VHO index"))?;
    let raw = u16::try_from(idx).map_err(|_| format!("{what}: VHO index {idx} overflows u16"))?;
    // lint:allow(raw-index): decoding a persisted id back into its newtype
    Ok(VhoId::new(raw))
}

/// Decode a schedule from its JSON value. Total: every malformed shape
/// is an `Err(String)`, decoding never panics. Range validity against
/// a concrete world is *not* checked here — run
/// [`FaultSchedule::validate`] before injecting.
pub fn schedule_from_value(v: &Value) -> Result<FaultSchedule, String> {
    let admission = v
        .get("admission")
        .and_then(Value::as_bool)
        .ok_or("missing/invalid admission flag")?;
    let raw_events = v
        .get("events")
        .and_then(Value::as_arr)
        .ok_or("missing events array")?;
    let mut events = Vec::with_capacity(raw_events.len());
    for (i, ev) in raw_events.iter().enumerate() {
        let time = |key: &str| -> Result<SimTime, String> {
            let field = ev.get(key).ok_or_else(|| format!("event {i}: no {key}"))?;
            u64_from_bits_value(field, key)
                .map(SimTime::new)
                .map_err(|e| format!("event {i}: {e}"))
        };
        let start = time("start")?;
        let end = time("end")?;
        let kind_tag = ev
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing kind tag"))?;
        let kind = match kind_tag {
            "vho-outage" => FaultKind::VhoOutage {
                vho: vho_of(
                    ev.get("vho").unwrap_or(&Value::Null),
                    &format!("event {i} vho"),
                )?,
            },
            "link-degrade" => {
                let idx = ev
                    .get("link")
                    .and_then(Value::as_usize)
                    .ok_or_else(|| format!("event {i}: missing link index"))?;
                let raw = u32::try_from(idx)
                    .map_err(|_| format!("event {i}: link index {idx} overflows u32"))?;
                let scale = ev
                    .get("capacity_scale")
                    .ok_or_else(|| format!("event {i}: missing capacity_scale"))
                    .and_then(|f| {
                        f64_from_bits_value(f, "capacity_scale")
                            .map_err(|e| format!("event {i}: {e}"))
                    })?;
                FaultKind::LinkDegrade {
                    link: LinkId::new(raw),
                    capacity_scale: scale,
                }
            }
            "flash-crowd" => {
                let vho = match ev.get("vho") {
                    None | Some(Value::Null) => None,
                    Some(val) => Some(vho_of(val, &format!("event {i} vho"))?),
                };
                let multiplier = ev
                    .get("multiplier")
                    .and_then(Value::as_usize)
                    .and_then(|m| u32::try_from(m).ok())
                    .ok_or_else(|| format!("event {i}: missing/invalid multiplier"))?;
                FaultKind::FlashCrowd { vho, multiplier }
            }
            other => return Err(format!("event {i}: unknown kind {other:?}")),
        };
        events.push(FaultEvent { start, end, kind });
    }
    Ok(FaultSchedule { events, admission })
}

/// Persist a schedule as a checksummed snapshot (atomic write).
pub fn write_schedule(path: &Path, s: &FaultSchedule) -> Result<(), SnapshotError> {
    write_json_snapshot(path, FAULTS_KIND, FAULTS_VERSION, &schedule_to_value(s))
}

/// Load a schedule persisted by [`write_schedule`]. Corruption at any
/// layer — container, JSON, codec — is a typed [`SnapshotError`].
pub fn read_schedule(path: &Path) -> Result<FaultSchedule, SnapshotError> {
    let doc = read_json_snapshot(path, FAULTS_KIND, FAULTS_VERSION)?;
    schedule_from_value(&doc).map_err(|what| SnapshotError::Malformed { what })
}
