//! Property tests over the simulator's conservation and cache-state
//! invariants: randomized topologies, catalogs, traces, policies and
//! cache kinds, checked against `simulate_with_final`'s end-of-run
//! holder sets.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;
use vod_model::{Gigabytes, VideoId};
use vod_net::PathSet;
use vod_sim::{random_single_vho_configs, simulate_with_final, CacheKind, PolicyKind, SimConfig};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every request is served exactly once (pinned + cached + remote
    /// add up to the trace), and the final holder index is exactly the
    /// transpose of the final cache contents — each direction of the
    /// subset check catches a different desync (stale holder rows vs
    /// unindexed cache entries).
    #[test]
    fn conservation_and_holder_transpose(
        seed in 0u64..300,
        n_videos in 20usize..90,
        rpd in 100.0f64..600.0,
        kind in 0u8..3,
        insert_on_miss in any::<bool>(),
    ) {
        let net = vod_net::topologies::mesh_backbone(5, 7, seed);
        let paths = PathSet::shortest_paths(&net);
        let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(rpd, 7, seed));
        // Disks sized so caches actually churn (evictions happen).
        let disks = vec![Gigabytes::new(catalog.total_size().value() * 0.4); 5];
        let cache_kind = match kind {
            0 => CacheKind::Lru,
            1 => CacheKind::Lfu,
            _ => CacheKind::Lrfu(0.3),
        };
        let vhos = random_single_vho_configs(&catalog, &disks, cache_kind, seed);
        let (rep, fin) = simulate_with_final(
            &net, &paths, &catalog, &trace, &vhos,
            &PolicyKind::NearestReplica,
            &SimConfig { seed, insert_on_miss, ..Default::default() },
        );

        // Conservation: the three service classes partition the trace.
        prop_assert_eq!(rep.total_requests as usize, trace.len());
        prop_assert_eq!(
            rep.served_local_pinned + rep.served_local_cached + rep.served_remote,
            rep.total_requests
        );

        // cached_holders[v] says VHO n caches v  =>  v is in n's cache.
        for (v, holders) in fin.cached_holders.iter().enumerate() {
            let video = VideoId::new(v as u32);
            for &n in holders {
                prop_assert!(
                    fin.cache_contents[n.index()].binary_search(&video).is_ok(),
                    "video {video} indexed at VHO {n} but not in its cache"
                );
            }
        }
        // v in n's cache  =>  cached_holders[v] lists n (transpose).
        for (n, contents) in fin.cache_contents.iter().enumerate() {
            for &video in contents {
                prop_assert!(
                    fin.cached_holders[video.index()]
                        .iter()
                        .any(|h| h.index() == n),
                    "VHO {n} caches {video} but the holder index misses it"
                );
            }
        }
    }
}
