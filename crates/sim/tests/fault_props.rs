//! Property tests for the fault-injection layer: request conservation
//! under arbitrary fault schedules, thread-count invariance of faulted
//! runs, and the zero-cost guarantee that an empty schedule leaves the
//! report byte-identical to a fault-free run.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;
use vod_model::{Gigabytes, LinkId, SimTime};
use vod_net::PathSet;
use vod_sim::{
    random_single_vho_configs, simulate, simulate_batch, CacheKind, FaultEvent, FaultKind,
    FaultSchedule, PolicyKind, SimConfig, SimJob, SimReport,
};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

/// Bitwise equality of two reports (mirrors `tests/determinism.rs`).
fn assert_bit_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.total_requests, b.total_requests);
    assert_eq!(a.served_local_pinned, b.served_local_pinned);
    assert_eq!(a.served_local_cached, b.served_local_cached);
    assert_eq!(a.served_remote, b.served_remote);
    assert_eq!(a.denied_no_replica, b.denied_no_replica);
    assert_eq!(a.denied_capacity, b.denied_capacity);
    assert_eq!(a.interrupted_streams, b.interrupted_streams);
    assert_eq!(a.total_gb_hops.to_bits(), b.total_gb_hops.to_bits());
    assert_eq!(a.max_link_mbps.to_bits(), b.max_link_mbps.to_bits());
    assert_eq!(a.cache.insertions, b.cache.insertions);
    assert_eq!(a.cache.evictions, b.cache.evictions);
    assert_eq!(a.cache.hits, b.cache.hits);
    assert_eq!(a.cache.rejections, b.cache.rejections);
    assert_eq!(a.peak_link_mbps.len(), b.peak_link_mbps.len());
    for (x, y) in a.peak_link_mbps.iter().zip(&b.peak_link_mbps) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.transfer_gb.len(), b.transfer_gb.len());
    for (x, y) in a.transfer_gb.iter().zip(&b.transfer_gb) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// A pseudo-random but deterministic fault schedule: VHO outages, link
/// degradations/cuts and flash crowds with windows inside the 7-day
/// horizon, derived from the proptest-drawn integers (no RNG here, so
/// failures shrink cleanly).
fn schedule_from(
    net: &vod_net::Network,
    picks: &[(u8, u32, u32, u8)],
    admission: bool,
) -> FaultSchedule {
    let horizon = 7 * 86_400u64;
    let vhos: Vec<_> = net.vho_ids().collect();
    let mut events = Vec::new();
    for &(kind, start, len, which) in picks {
        let start = u64::from(start) % (horizon - 3_600);
        let end = (start + 600 + u64::from(len) % 86_400).min(horizon);
        let kind = match kind % 4 {
            0 => FaultKind::VhoOutage {
                vho: vhos[usize::from(which) % vhos.len()],
            },
            1 => FaultKind::LinkDegrade {
                link: LinkId::from_index(usize::from(which) % net.num_links()),
                capacity_scale: 0.0,
            },
            2 => FaultKind::LinkDegrade {
                link: LinkId::from_index(usize::from(which) % net.num_links()),
                capacity_scale: 0.5,
            },
            _ => FaultKind::FlashCrowd {
                vho: Some(vhos[usize::from(which) % vhos.len()]),
                multiplier: 2 + u32::from(which % 3),
            },
        };
        events.push(FaultEvent {
            start: SimTime::new(start),
            end: SimTime::new(end),
            kind,
        });
    }
    FaultSchedule { events, admission }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any fault schedule, every issued request (including flash-
    /// crowd copies) is exactly one of: served locally from pinned
    /// storage, served from cache, served remotely, denied for lack of
    /// a live replica, or denied by admission control. No request is
    /// lost or double-counted, and the denial helpers agree with the
    /// raw counters.
    #[test]
    fn faulted_sim_conserves_requests(
        seed in 0u64..200,
        n_videos in 20usize..80,
        rpd in 100.0f64..500.0,
        kind in 0u8..3,
        admission in any::<bool>(),
        picks in prop::collection::vec((0u8..=255, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u8..=255), 1..6),
    ) {
        let net = vod_net::topologies::mesh_backbone(5, 7, seed);
        let paths = PathSet::shortest_paths(&net);
        let catalog = synthesize_library(&LibraryConfig::default_for(n_videos, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(rpd, 7, seed));
        let disks = vec![Gigabytes::new(catalog.total_size().value() * 0.4); 5];
        let cache_kind = match kind {
            0 => CacheKind::Lru,
            1 => CacheKind::Lfu,
            _ => CacheKind::Lrfu(0.3),
        };
        let vhos = random_single_vho_configs(&catalog, &disks, cache_kind, seed);
        let cfg = SimConfig {
            seed,
            faults: schedule_from(&net, &picks, admission),
            ..Default::default()
        };
        let rep = simulate(
            &net, &paths, &catalog, &trace, &vhos,
            &PolicyKind::NearestReplica, &cfg,
        );

        // Conservation: issued = served + denied, with flash crowds
        // only ever adding whole extra copies on top of the trace.
        prop_assert!(rep.total_requests as usize >= trace.len());
        prop_assert_eq!(
            rep.served_local_pinned + rep.served_local_cached + rep.served_remote
                + rep.denied_no_replica + rep.denied_capacity,
            rep.total_requests
        );
        prop_assert_eq!(rep.denied(), rep.denied_no_replica + rep.denied_capacity);
        prop_assert!(rep.denial_rate() >= 0.0 && rep.denial_rate() <= 1.0);
        // Interrupted streams were served (then cut) — never more of
        // them than there were served requests.
        prop_assert!(
            rep.interrupted_streams
                <= rep.served_local_pinned + rep.served_local_cached + rep.served_remote
        );
    }

    /// The thread count stays invisible in faulted runs: the same jobs
    /// through `simulate_batch` at 1 and 4 threads are byte-identical
    /// for every cache kind.
    #[test]
    fn faulted_batch_is_thread_invariant(
        seed in 0u64..100,
        admission in any::<bool>(),
        picks in prop::collection::vec((0u8..=255, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u8..=255), 1..5),
    ) {
        let net = vod_net::topologies::mesh_backbone(5, 7, seed);
        let paths = PathSet::shortest_paths(&net);
        let catalog = synthesize_library(&LibraryConfig::default_for(40, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(250.0, 7, seed));
        let disks = vec![Gigabytes::new(catalog.total_size().value() * 0.4); 5];
        let policy = PolicyKind::NearestReplica;
        let faults = schedule_from(&net, &picks, admission);
        let vho_sets: Vec<_> = [CacheKind::Lru, CacheKind::Lfu, CacheKind::Lrfu(0.3)]
            .into_iter()
            .map(|k| random_single_vho_configs(&catalog, &disks, k, seed))
            .collect();
        let jobs: Vec<SimJob> = vho_sets
            .iter()
            .map(|vhos| SimJob {
                net: &net,
                paths: &paths,
                catalog: &catalog,
                trace: &trace,
                vhos,
                policy: &policy,
                cfg: SimConfig {
                    seed,
                    faults: faults.clone(),
                    ..Default::default()
                },
            })
            .collect();
        let serial = simulate_batch(&jobs, 1);
        let parallel = simulate_batch(&jobs, 4);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_bit_identical(a, b);
        }
    }

    /// Zero-cost guarantee: an explicitly-empty schedule produces a
    /// report byte-identical to the default (fault-free) config — the
    /// fault layer must not perturb a single bit when dormant.
    #[test]
    fn empty_schedule_is_byte_identical_to_fault_free(
        seed in 0u64..100,
        kind in 0u8..3,
    ) {
        let net = vod_net::topologies::mesh_backbone(5, 7, seed);
        let paths = PathSet::shortest_paths(&net);
        let catalog = synthesize_library(&LibraryConfig::default_for(40, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(250.0, 7, seed));
        let disks = vec![Gigabytes::new(catalog.total_size().value() * 0.4); 5];
        let cache_kind = match kind {
            0 => CacheKind::Lru,
            1 => CacheKind::Lfu,
            _ => CacheKind::Lrfu(0.3),
        };
        let vhos = random_single_vho_configs(&catalog, &disks, cache_kind, seed);
        let policy = PolicyKind::NearestReplica;
        let plain = simulate(
            &net, &paths, &catalog, &trace, &vhos, &policy,
            &SimConfig { seed, ..Default::default() },
        );
        let dormant = simulate(
            &net, &paths, &catalog, &trace, &vhos, &policy,
            &SimConfig {
                seed,
                faults: FaultSchedule::empty(),
                ..Default::default()
            },
        );
        assert_bit_identical(&plain, &dormant);
    }
}
