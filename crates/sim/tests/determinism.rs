//! Batch-runner determinism regression: `simulate_batch` must produce
//! **byte-identical** reports whatever the thread count (mirrors
//! `crates/core/tests/determinism.rs` for the solver pool).
//!
//! The batch contract (see `crates/sim/src/batch.rs`) is that each job
//! runs the same single-threaded `simulate` as the serial path and the
//! results are reassembled in job order, so `threads = 1` vs
//! `threads = 4` differ only in scheduling — never in a single bit of
//! output.
#![allow(clippy::unwrap_used, clippy::float_cmp)]
use vod_model::Gigabytes;
use vod_net::PathSet;
use vod_sim::{
    random_single_vho_configs, simulate_batch, CacheKind, PolicyKind, SimConfig, SimJob, SimReport,
};
use vod_trace::{generate_trace, synthesize_library, LibraryConfig, TraceConfig};

/// Bitwise equality of two reports: every counter, every f64 bit
/// pattern, every series entry.
fn assert_bit_identical(a: &SimReport, b: &SimReport, ctx: &str) {
    assert_eq!(a.total_requests, b.total_requests, "{ctx}: total_requests");
    assert_eq!(
        a.served_local_pinned, b.served_local_pinned,
        "{ctx}: served_local_pinned"
    );
    assert_eq!(
        a.served_local_cached, b.served_local_cached,
        "{ctx}: served_local_cached"
    );
    assert_eq!(a.served_remote, b.served_remote, "{ctx}: served_remote");
    assert_eq!(
        a.total_gb_hops.to_bits(),
        b.total_gb_hops.to_bits(),
        "{ctx}: total_gb_hops"
    );
    assert_eq!(
        a.max_link_mbps.to_bits(),
        b.max_link_mbps.to_bits(),
        "{ctx}: max_link_mbps"
    );
    assert_eq!(
        a.denied_no_replica, b.denied_no_replica,
        "{ctx}: denied_no_replica"
    );
    assert_eq!(
        a.denied_capacity, b.denied_capacity,
        "{ctx}: denied_capacity"
    );
    assert_eq!(
        a.interrupted_streams, b.interrupted_streams,
        "{ctx}: interrupted_streams"
    );
    assert_eq!(a.cache.insertions, b.cache.insertions, "{ctx}: insertions");
    assert_eq!(a.cache.evictions, b.cache.evictions, "{ctx}: evictions");
    assert_eq!(a.cache.hits, b.cache.hits, "{ctx}: hits");
    assert_eq!(a.cache.rejections, b.cache.rejections, "{ctx}: rejections");
    assert_eq!(
        a.peak_link_mbps.len(),
        b.peak_link_mbps.len(),
        "{ctx}: peak series length"
    );
    for (i, (x, y)) in a.peak_link_mbps.iter().zip(&b.peak_link_mbps).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: peak_link_mbps[{i}]");
    }
    assert_eq!(
        a.transfer_gb.len(),
        b.transfer_gb.len(),
        "{ctx}: transfer series length"
    );
    for (i, (x, y)) in a.transfer_gb.iter().zip(&b.transfer_gb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: transfer_gb[{i}]");
    }
}

#[test]
fn thread_count_is_invisible_in_reports() {
    for seed in [11u64, 12] {
        let net = vod_net::topologies::mesh_backbone(6, 9, seed);
        let paths = PathSet::shortest_paths(&net);
        let catalog = synthesize_library(&LibraryConfig::default_for(120, 7, seed));
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(800.0, 7, seed));
        let disks = vec![Gigabytes::new(catalog.total_size().value() * 0.5); 6];
        let vho_sets: Vec<_> = [CacheKind::Lru, CacheKind::Lfu, CacheKind::Lrfu(0.3)]
            .into_iter()
            .map(|kind| random_single_vho_configs(&catalog, &disks, kind, seed))
            .collect();
        let policy = PolicyKind::NearestReplica;
        let jobs: Vec<SimJob> = vho_sets
            .iter()
            .flat_map(|vhos| {
                [true, false].map(|insert_on_miss| SimJob {
                    net: &net,
                    paths: &paths,
                    catalog: &catalog,
                    trace: &trace,
                    vhos,
                    policy: &policy,
                    cfg: SimConfig {
                        seed,
                        insert_on_miss,
                        ..Default::default()
                    },
                })
            })
            .collect();
        let serial = simulate_batch(&jobs, 1);
        let parallel = simulate_batch(&jobs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_bit_identical(a, b, &format!("seed {seed}, job {i}"));
        }
    }
}
