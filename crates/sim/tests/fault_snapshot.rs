//! Property tests for the `FaultSchedule` snapshot codec: a clean
//! round trip is identity, and no mutation of the serialized bytes —
//! JSON text or snapshot container — can ever make decoding panic.
//! The service loop feeds persisted schedules straight into cycles,
//! so a bit-rotted file must surface as a typed error it can degrade
//! through, never a crash.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;
use vod_json::Value;
use vod_model::{LinkId, SimTime, VhoId};
use vod_sim::{
    read_schedule, schedule_from_value, schedule_to_value, write_schedule, FaultEvent, FaultKind,
    FaultSchedule,
};

const N_VHOS: u16 = 5;
const N_LINKS: u32 = 9;

/// Deterministic schedule from proptest-drawn integers (no RNG, so
/// failures shrink cleanly) — mirrors `fault_props::schedule_from`
/// minus the network.
fn schedule_of(picks: &[(u8, u32, u32, u8)], admission: bool) -> FaultSchedule {
    let events = picks
        .iter()
        .map(|&(kind, start, len, which)| {
            let start = u64::from(start);
            let end = start + 1 + u64::from(len);
            let kind = match kind % 4 {
                0 => FaultKind::VhoOutage {
                    vho: VhoId::new(u16::from(which) % N_VHOS),
                },
                1 => FaultKind::LinkDegrade {
                    link: LinkId::new(u32::from(which) % N_LINKS),
                    capacity_scale: f64::from(which) / 7.0,
                },
                2 => FaultKind::FlashCrowd {
                    vho: None,
                    multiplier: 1 + u32::from(which),
                },
                _ => FaultKind::FlashCrowd {
                    vho: Some(VhoId::new(u16::from(which) % N_VHOS)),
                    multiplier: 1 + u32::from(which % 7),
                },
            };
            FaultEvent {
                start: SimTime::new(start),
                end: SimTime::new(end),
                kind,
            }
        })
        .collect();
    FaultSchedule { events, admission }
}

proptest! {
    /// serialize → parse → deserialize is the identity map.
    #[test]
    fn clean_round_trip_is_identity(
        picks in prop::collection::vec((0u8..=255, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u8..=255), 0..12),
        admission in any::<bool>(),
    ) {
        let schedule = schedule_of(&picks, admission);
        let text = schedule_to_value(&schedule).to_string_pretty();
        let back = schedule_from_value(&Value::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, schedule);
    }

    /// Flipping any single bit of the serialized JSON text must never
    /// panic the decoder: either the text no longer parses, or the
    /// codec returns (a possibly different schedule, or a typed
    /// error). Silent mutation surviving decode is fine — integrity is
    /// the *container checksum's* job, not the codec's.
    #[test]
    fn mutated_json_never_panics(
        picks in prop::collection::vec((0u8..=255, 0u32..=u32::MAX, 0u32..=u32::MAX, 0u8..=255), 1..8),
        admission in any::<bool>(),
        at in any::<u64>(),
        bit in 0u8..8,
    ) {
        let schedule = schedule_of(&picks, admission);
        let mut bytes = schedule_to_value(&schedule).to_string_pretty().into_bytes();
        let i = (at % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        if let Ok(text) = String::from_utf8(bytes) {
            if let Ok(doc) = Value::parse(&text) {
                let _ = schedule_from_value(&doc);
            }
        }
    }
}

fn drill_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vod-fault-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Container-level: every single-byte corruption of the snapshot file
/// is a typed result, and truncation at every prefix length too.
#[test]
fn every_byte_corruption_of_the_container_is_typed() {
    let schedule = schedule_of(&[(0, 10, 5, 3), (1, 100, 50, 4), (3, 7, 2, 9)], true);
    let path = drill_dir().join("sched.snap");
    write_schedule(&path, &schedule).unwrap();
    assert_eq!(read_schedule(&path).unwrap(), schedule);
    let clean = std::fs::read(&path).unwrap();
    for offset in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[offset] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        // A flip in pretty-printer whitespace etc. still trips the
        // checksum; any decode layer may reject — none may panic.
        let _ = read_schedule(&path);
        let mut cut = clean.clone();
        cut.truncate(offset);
        std::fs::write(&path, &cut).unwrap();
        assert!(read_schedule(&path).is_err(), "truncation at {offset}");
    }
    std::fs::write(&path, &clean).unwrap();
    assert_eq!(read_schedule(&path).unwrap(), schedule);
}

#[test]
fn empty_schedule_round_trips() {
    let s = FaultSchedule::empty();
    let doc = Value::parse(&schedule_to_value(&s).to_string_pretty()).unwrap();
    assert_eq!(schedule_from_value(&doc).unwrap(), s);
}

#[test]
fn shape_errors_are_typed() {
    for text in [
        "null",
        "{}",
        "{\"admission\": true}",
        "{\"admission\": 3, \"events\": []}",
        "{\"admission\": true, \"events\": [{}]}",
        "{\"admission\": true, \"events\": [{\"start\": \"00\", \"end\": \"00\", \"kind\": \"vho-outage\"}]}",
        "{\"admission\": true, \"events\": [{\"start\": \"0000000000000000\", \"end\": \"0000000000000001\", \"kind\": \"nope\"}]}",
    ] {
        let doc = Value::parse(text).unwrap();
        assert!(schedule_from_value(&doc).is_err(), "{text}");
    }
}
