//! Small statistical sampling utilities.
//!
//! The offline crate set does not include `rand_distr`, so the Poisson
//! and Gaussian samplers the trace generator needs are implemented
//! here: Box–Muller for normals, Knuth's product method for small-mean
//! Poisson, and a normal approximation for large means (relative error
//! of the approximation is far below the stochastic noise of the
//! experiments).

use rand::Rng;
use vod_model::narrow;

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample from a lognormal with the given *logarithmic* std dev `sigma`
/// and unit median.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

/// Poisson sample with mean `lambda >= 0`.
///
/// Knuth's product method for `lambda < 30` (exact); Gaussian
/// approximation `round(lambda + sqrt(lambda)·Z)` clamped at zero for
/// larger means.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "invalid Poisson mean");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let z = standard_normal(rng);
        let v = lambda + lambda.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            narrow::count_u64(v.round())
        }
    }
}

/// Sample an index from a cumulative weight table (binary search).
///
/// `cum` must be non-decreasing with a positive final entry.
pub fn sample_cumulative<R: Rng + ?Sized>(rng: &mut R, cum: &[f64]) -> usize {
    // An empty table has no mass to sample; index 0 is the only
    // defensible answer and keeps trace generation running.
    let Some(&total) = cum.last() else {
        return 0;
    };
    debug_assert!(total > 0.0, "cumulative table must have positive mass");
    let x = rng.gen::<f64>() * total;
    // partition_point: first index with cum[idx] > x.
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

/// Build a cumulative table from weights (negative weights rejected).
pub fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "negative weight");
            acc += w;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::rng::rng_from_seed;

    #[test]
    fn poisson_mean_small() {
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large() {
        let mut rng = rng_from_seed(2);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 200.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero() {
        let mut rng = rng_from_seed(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut rng = rng_from_seed(5);
        let mut s: Vec<f64> = (0..10_001).map(|_| lognormal(&mut rng, 0.8)).collect();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[5000];
        assert!((median - 1.0).abs() < 0.1, "median {median}");
        assert!(s.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn cumulative_sampling_respects_weights() {
        let cum = cumulative(&[1.0, 0.0, 3.0]);
        assert_eq!(cum, vec![1.0, 1.0, 4.0]);
        let mut rng = rng_from_seed(6);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[sample_cumulative(&mut rng, &cum)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = |seed| {
            let mut rng = rng_from_seed(seed);
            (0..16).map(|_| poisson(&mut rng, 5.0)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_rejected() {
        let _ = cumulative(&[1.0, -0.5]);
    }
}
