//! Demand aggregation: the MIP's demand inputs `a_j^m` and `f_j^m(t)`.
//!
//! Table I: `a_j^m` is the aggregate number of requests for video `m`
//! at VHO `j` over the modeling period (drives the objective), and
//! `f_j^m(t)` is the number of streams of `m` at `j` *active* during
//! time slice `t` — including streams that started before `t` — which
//! drives the link-bandwidth constraints (6).
//!
//! Both are produced either by exact aggregation over a request trace
//! ([`DemandInput::from_trace`]) or directly by the synthetic demand
//! sampler ([`synthetic_demand`]) used for the large-scale scalability
//! experiments (Table III, Fig. 13), which skips materializing billions
//! of request events.

use crate::generator::{age_factor, vho_perturbation, TraceConfig, DOW_FACTORS, HOD_FACTORS};
use crate::stats::{cumulative, poisson, sample_cumulative};
use crate::trace::Trace;
use rand::Rng;
use vod_model::narrow;
use vod_model::rng::derive_rng;
use vod_model::time::{DAY, HOUR};
use vod_model::{Catalog, SimTime, TimeWindow, VhoId, VideoId};
use vod_net::Network;

/// Sparse per-(video, VHO) nonnegative demand counts.
///
/// Row `m` lists `(j, count)` pairs sorted by VHO id; VHOs with zero
/// demand for `m` are omitted.
#[derive(Debug, Clone)]
pub struct DemandMatrix {
    n_vhos: usize,
    rows: Vec<Vec<(VhoId, f64)>>,
}

impl DemandMatrix {
    /// Build from dense per-video accumulation buffers.
    pub fn from_rows(n_vhos: usize, rows: Vec<Vec<(VhoId, f64)>>) -> Self {
        for row in &rows {
            debug_assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "rows must be sorted"
            );
            debug_assert!(row.iter().all(|&(j, c)| j.index() < n_vhos && c > 0.0));
        }
        Self { n_vhos, rows }
    }

    pub fn zeros(n_videos: usize, n_vhos: usize) -> Self {
        Self {
            n_vhos,
            rows: vec![Vec::new(); n_videos],
        }
    }

    #[inline]
    pub fn n_videos(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.n_vhos
    }

    /// Sparse demand row for video `m`.
    #[inline]
    pub fn row(&self, m: VideoId) -> &[(VhoId, f64)] {
        &self.rows[m.index()]
    }

    /// Demand at a specific (video, VHO) cell.
    pub fn get(&self, m: VideoId, j: VhoId) -> f64 {
        self.rows[m.index()]
            .binary_search_by_key(&j, |&(v, _)| v)
            .map(|k| self.rows[m.index()][k].1)
            .unwrap_or(0.0)
    }

    /// Total demand for video `m` across all VHOs.
    pub fn video_total(&self, m: VideoId) -> f64 {
        self.rows[m.index()].iter().map(|&(_, c)| c).sum()
    }

    /// Total demand over the whole matrix.
    pub fn total(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.iter().map(|&(_, c)| c).sum::<f64>())
            .sum()
    }

    /// Replace one video's demand row (entries must be sorted by VHO
    /// with positive counts). Used by the demand estimators to graft a
    /// donor video's history onto a new release (Section VI-A).
    pub fn set_row(&mut self, m: VideoId, row: Vec<(VhoId, f64)>) {
        debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(row.iter().all(|&(j, c)| j.index() < self.n_vhos && c > 0.0));
        self.rows[m.index()] = row;
    }

    /// Videos ranked by total demand, most-requested first
    /// (deterministic tie-break by id). Used for Top-K placement and
    /// the copy-count analysis of Fig. 8.
    pub fn rank_videos(&self) -> Vec<VideoId> {
        let mut ids: Vec<(f64, VideoId)> = (0..self.rows.len())
            .map(|i| {
                let m = VideoId::from_index(i);
                (self.video_total(m), m)
            })
            .collect();
        ids.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        ids.into_iter().map(|(_, m)| m).collect()
    }
}

/// The complete demand-side input of one MIP instance: aggregate
/// demands, the enforced time slices, and the per-slice active-stream
/// profiles.
#[derive(Debug, Clone)]
pub struct DemandInput {
    /// `a_j^m` — aggregate requests over the modeling period.
    pub aggregate: DemandMatrix,
    /// The time slices `T` at which constraint (6) is enforced.
    pub windows: Vec<TimeWindow>,
    /// `f_j^m(t)` — one matrix per window, aligned with `windows`.
    pub active: Vec<DemandMatrix>,
}

impl DemandInput {
    /// Exact aggregation over a trace: `a_j^m` counts all requests in
    /// the trace; `f_j^m(t)` counts requests whose active interval
    /// `[time, time + duration)` overlaps window `t`.
    pub fn from_trace(
        trace: &Trace,
        catalog: &Catalog,
        n_vhos: usize,
        windows: Vec<TimeWindow>,
    ) -> Self {
        let n_videos = catalog.len();
        let mut agg = vec![std::collections::BTreeMap::<VhoId, f64>::new(); n_videos];
        let mut act =
            vec![vec![std::collections::BTreeMap::<VhoId, f64>::new(); n_videos]; windows.len()];
        for r in trace.requests() {
            *agg[r.video.index()].entry(r.vho).or_insert(0.0) += 1.0;
            let dur = catalog.video(r.video).duration_secs();
            let end = r.time + dur;
            for (t, w) in windows.iter().enumerate() {
                if w.overlaps(r.time, end) {
                    *act[t][r.video.index()].entry(r.vho).or_insert(0.0) += 1.0;
                }
            }
        }
        let to_matrix = |maps: Vec<std::collections::BTreeMap<VhoId, f64>>| {
            DemandMatrix::from_rows(
                n_vhos,
                maps.into_iter().map(|m| m.into_iter().collect()).collect(),
            )
        };
        Self {
            aggregate: to_matrix(agg),
            windows,
            active: act.into_iter().map(to_matrix).collect(),
        }
    }

    #[inline]
    pub fn n_videos(&self) -> usize {
        self.aggregate.n_videos()
    }

    #[inline]
    pub fn n_vhos(&self) -> usize {
        self.aggregate.n_vhos()
    }
}

/// Directly sample a demand input without materializing a trace.
///
/// Used for the scalability study (Table III, Fig. 13): per-video
/// request totals are Poisson with the same expectations the trace
/// generator uses, spread over VHOs by population × taste perturbation;
/// active-stream profiles for the two synthetic peak windows (Friday
/// and Saturday evening) are binomial thinnings of the aggregate with
/// the window's expected share of weekly activity, inflated by
/// `1 + duration/window` to account for streams that start before the
/// window (exactly the over-counting the paper discusses in Table V).
pub fn synthetic_demand(catalog: &Catalog, net: &Network, cfg: &TraceConfig) -> DemandInput {
    let n_vhos = net.num_nodes();
    let lambdas = crate::generator::expected_requests(catalog, cfg);
    let pops: Vec<f64> = net.nodes().iter().map(|n| n.population).collect();
    let hod_total: f64 = HOD_FACTORS.iter().sum();

    // Two peak windows: Friday (day 4) and Saturday (day 5) 20:00–21:00
    // of the first full week.
    let windows = vec![
        TimeWindow::of_len(SimTime::new(4 * DAY + 20 * HOUR), HOUR),
        TimeWindow::of_len(SimTime::new(5 * DAY + 20 * HOUR), HOUR),
    ];

    let mut rng = derive_rng(cfg.seed, 0x5D3_A4D);
    let mut agg_rows: Vec<Vec<(VhoId, f64)>> = Vec::with_capacity(catalog.len());
    let mut act_rows: Vec<Vec<Vec<(VhoId, f64)>>> =
        (0..2).map(|_| Vec::with_capacity(catalog.len())).collect();

    for (v, &lambda) in catalog.iter().zip(&lambdas) {
        let n = poisson(&mut rng, lambda);
        if n == 0 {
            agg_rows.push(Vec::new());
            act_rows[0].push(Vec::new());
            act_rows[1].push(Vec::new());
            continue;
        }
        // Spread across VHOs.
        let weights: Vec<f64> = pops
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                p * vho_perturbation(cfg.seed, v.id.0, narrow::u16_from(j), cfg.vho_sigma)
            })
            .collect();
        let cum = cumulative(&weights);
        let mut counts = vec![0u32; n_vhos];
        for _ in 0..n {
            counts[sample_cumulative(&mut rng, &cum)] += 1;
        }
        let row: Vec<(VhoId, f64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
            .map(|(j, &c)| (VhoId::from_index(j), c as f64))
            .collect();

        // Expected share of this video's requests that *overlap* each
        // window: day share × hour share × (1 + duration/window).
        let day_weights: Vec<f64> = (0..cfg.horizon_days)
            .map(|d| DOW_FACTORS[(d % 7) as usize] * age_factor(v, d, cfg.new_release_decay))
            .collect();
        let day_total: f64 = day_weights.iter().sum();
        let dur = v.duration_secs() as f64;
        for (t, w) in windows.iter().enumerate() {
            let day = w.start.day();
            let share = if day_total > 0.0 && narrow::usize_from(day) < day_weights.len() {
                (day_weights[narrow::usize_from(day)] / day_total)
                    * (HOD_FACTORS[20] / hod_total)
                    * (1.0 + dur / w.len_secs() as f64)
            } else {
                0.0
            }
            .min(1.0);
            // Binomial thinning of each VHO's aggregate count.
            let thinned: Vec<(VhoId, f64)> = row
                .iter()
                .filter_map(|&(j, c)| {
                    let mut k = 0u32;
                    for _ in 0..narrow::count_u64(c) {
                        if rng.gen::<f64>() < share {
                            k += 1;
                        }
                    }
                    (k > 0).then_some((j, k as f64))
                })
                .collect();
            act_rows[t].push(thinned);
        }
        agg_rows.push(row);
    }

    let act = act_rows
        .into_iter()
        .map(|rows| DemandMatrix::from_rows(n_vhos, rows))
        .collect();
    DemandInput {
        aggregate: DemandMatrix::from_rows(n_vhos, agg_rows),
        windows,
        active: act,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_trace;
    use crate::synth::{synthesize_library, LibraryConfig};
    use vod_net::topologies;

    fn setup() -> (Catalog, Network, TraceConfig) {
        let catalog = synthesize_library(&LibraryConfig::default_for(300, 14, 11));
        let net = topologies::mesh_backbone(6, 9, 11);
        let cfg = TraceConfig::default_for(2000.0, 14, 11);
        (catalog, net, cfg)
    }

    #[test]
    fn matrix_lookup() {
        let m = DemandMatrix::from_rows(
            3,
            vec![vec![(VhoId::new(0), 2.0), (VhoId::new(2), 5.0)], vec![]],
        );
        assert_eq!(m.get(VideoId::new(0), VhoId::new(0)), 2.0);
        assert_eq!(m.get(VideoId::new(0), VhoId::new(1)), 0.0);
        assert_eq!(m.get(VideoId::new(0), VhoId::new(2)), 5.0);
        assert_eq!(m.video_total(VideoId::new(0)), 7.0);
        assert_eq!(m.video_total(VideoId::new(1)), 0.0);
        assert_eq!(m.total(), 7.0);
    }

    #[test]
    fn ranking_orders_by_demand() {
        let m = DemandMatrix::from_rows(
            1,
            vec![
                vec![(VhoId::new(0), 1.0)],
                vec![(VhoId::new(0), 9.0)],
                vec![(VhoId::new(0), 4.0)],
            ],
        );
        assert_eq!(
            m.rank_videos(),
            vec![VideoId::new(1), VideoId::new(2), VideoId::new(0)]
        );
    }

    #[test]
    fn from_trace_aggregate_matches_trace_volume() {
        let (catalog, net, cfg) = setup();
        let trace = generate_trace(&catalog, &net, &cfg);
        let d = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), vec![]);
        assert_eq!(d.aggregate.total(), trace.len() as f64);
        assert_eq!(d.n_videos(), catalog.len());
        assert_eq!(d.n_vhos(), 6);
    }

    #[test]
    fn active_counts_include_carryover_streams() {
        // A 1-hour video requested at t=0 is still active during a
        // window [1800, 5400); a request at t=5400 is not.
        use crate::trace::Request;
        let catalog = {
            use vod_model::{Video, VideoClass, VideoKind};
            Catalog::new(vec![Video {
                id: VideoId::new(0),
                class: VideoClass::Show,
                kind: VideoKind::Catalog,
                release_day: 0,
                weight: 1.0,
            }])
        };
        let trace = Trace::new(
            SimTime::new(10_000),
            vec![
                Request {
                    time: SimTime::new(0),
                    vho: VhoId::new(0),
                    video: VideoId::new(0),
                },
                Request {
                    time: SimTime::new(5400),
                    vho: VhoId::new(0),
                    video: VideoId::new(0),
                },
            ],
        );
        let w = TimeWindow::new(SimTime::new(1800), SimTime::new(5400));
        let d = DemandInput::from_trace(&trace, &catalog, 1, vec![w]);
        assert_eq!(d.active[0].get(VideoId::new(0), VhoId::new(0)), 1.0);
        assert_eq!(d.aggregate.get(VideoId::new(0), VhoId::new(0)), 2.0);
    }

    #[test]
    fn synthetic_demand_totals_plausible() {
        let (catalog, net, cfg) = setup();
        let d = synthetic_demand(&catalog, &net, &cfg);
        let expect = cfg.requests_per_day * cfg.horizon_days as f64;
        let got = d.aggregate.total();
        assert!(
            (got - expect).abs() / expect < 0.08,
            "total {got} vs {expect}"
        );
        assert_eq!(d.windows.len(), 2);
        // Active counts are a thinning of aggregates.
        for t in 0..2 {
            for m in catalog.ids() {
                for &(j, f) in d.active[t].row(m) {
                    assert!(f <= d.aggregate.get(m, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn synthetic_demand_deterministic() {
        let (catalog, net, cfg) = setup();
        let a = synthetic_demand(&catalog, &net, &cfg);
        let b = synthetic_demand(&catalog, &net, &cfg);
        assert_eq!(a.aggregate.total(), b.aggregate.total());
        assert_eq!(a.active[0].total(), b.active[0].total());
    }

    #[test]
    fn trace_and_synthetic_agree_in_expectation() {
        let (catalog, net, cfg) = setup();
        let trace = generate_trace(&catalog, &net, &cfg);
        let d_trace = DemandInput::from_trace(&trace, &catalog, net.num_nodes(), vec![]);
        let d_synth = synthetic_demand(&catalog, &net, &cfg);
        let rel = (d_trace.aggregate.total() - d_synth.aggregate.total()).abs()
            / d_trace.aggregate.total();
        assert!(rel < 0.1, "relative difference {rel}");
    }
}
