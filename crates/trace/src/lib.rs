//! Synthetic VoD workload generation and trace analytics.
//!
//! The paper's evaluation (Section VII-A) drives everything from one
//! month of request traces of a nationally deployed VoD service, plus
//! synthetic traces following the YouTube popularity distribution of
//! Cha et al. for the scalability study. The operational traces are
//! proprietary, so this crate synthesizes traces with the statistical
//! properties the paper reports and measures (see DESIGN.md §1):
//!
//! - long-tailed video popularity (Zipf with exponential cutoff),
//! - four video length classes (Section VII-A),
//! - population-weighted per-VHO demand with per-(video, VHO)
//!   perturbation — different locations see different request mixes,
//! - diurnal and weekly intensity modulation with Friday/Saturday
//!   peaks (Section VI-B),
//! - a weekly new-release process with TV-series episodes (Fig. 4),
//!   blockbusters, and unpredictable "other" releases (Section VI-A).
//!
//! It also implements the analytics the paper runs over traces: peak
//! working-set sizes (Fig. 2), cosine similarity of request mixes
//! (Fig. 3), per-episode daily request counts (Fig. 4), demand
//! aggregation `a_j^m`, concurrent-stream profiles `f_j^m(t)`, and
//! peak-window selection (Section VI-B, Table V).

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

pub mod analysis;
pub mod demand;
pub mod generator;
pub mod popularity;
pub mod stats;
pub mod synth;
pub mod trace;

pub use demand::{synthetic_demand, DemandInput, DemandMatrix};
pub use generator::{generate_trace, TraceConfig};
pub use popularity::PopularityModel;
pub use synth::{synthesize_library, LibraryConfig};
pub use trace::{Request, Trace};
