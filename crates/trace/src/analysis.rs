//! Trace analytics reproducing the paper's measurement figures.
//!
//! - Working-set sizes during peak hours (Fig. 2, Section IV-A),
//! - cosine similarity of request mixes across time windows (Fig. 3,
//!   Section IV-B),
//! - per-episode daily request counts for TV series (Fig. 4),
//! - peak-window selection for the MIP's time slices `T`
//!   (Section VI-B), and
//! - concurrency timelines used by several experiments.

use crate::trace::Trace;
use vod_model::narrow;
use vod_model::time::{DAY, HOUR};
use vod_model::{Catalog, Gigabytes, SimTime, TimeWindow, VhoId, VideoKind};

/// Per-VHO working set measured over one window.
#[derive(Debug, Clone)]
pub struct WorkingSet {
    pub vho: VhoId,
    /// Number of distinct videos requested in the window.
    pub distinct_videos: usize,
    /// Their total size on disk.
    pub size: Gigabytes,
}

/// The hour-long window with the most requests within day `day`.
pub fn peak_hour_of_day(trace: &Trace, day: u64) -> TimeWindow {
    let day_start = day * DAY;
    let mut best = (0u64, 0u64); // (count, hour)
    for h in 0..24 {
        let w = TimeWindow::of_len(SimTime::new(day_start + h * HOUR), HOUR);
        let c = trace.slice(w).len() as u64;
        if c > best.0 {
            best = (c, h);
        }
    }
    TimeWindow::of_len(SimTime::new(day_start + best.1 * HOUR), HOUR)
}

/// Fig. 2: per-VHO working set (distinct videos and their disk size)
/// during the given window — typically the peak hour of a Friday or
/// Saturday, the two busiest days.
pub fn working_sets(
    trace: &Trace,
    catalog: &Catalog,
    n_vhos: usize,
    window: TimeWindow,
) -> Vec<WorkingSet> {
    let mut seen: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n_vhos];
    for r in trace.slice(window) {
        seen[r.vho.index()].insert(r.video.0);
    }
    seen.into_iter()
        .enumerate()
        .map(|(j, set)| {
            let size = set
                .iter()
                .map(|&m| catalog.video(vod_model::VideoId::new(m)).size())
                .sum();
            WorkingSet {
                // lint:allow(raw-index): per-VHO working sets are accumulated in a dense vector
                vho: VhoId::from_index(j),
                distinct_videos: set.len(),
                size,
            }
        })
        .collect()
}

/// Cosine similarity between two sparse request-count vectors.
pub fn cosine(
    a: &std::collections::BTreeMap<u32, f64>,
    b: &std::collections::BTreeMap<u32, f64>,
) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, &va)| b.get(k).map(|&vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Fig. 3: for the interval (of `window_secs`) containing the global
/// peak-demand instant, the per-VHO cosine similarity between that
/// interval's request vector and the previous interval's.
///
/// Returns one similarity per VHO. Smaller windows ⇒ noisier vectors ⇒
/// lower similarity, which is the paper's point about cache cycling.
pub fn peak_cosine_similarity(trace: &Trace, n_vhos: usize, window_secs: u64) -> Vec<f64> {
    assert!(window_secs > 0);
    // Global peak instant = busiest hour of the trace.
    let hourly = trace.bucket_counts(HOUR);
    let peak_hour = hourly
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, usize::MAX - i))
        .map(|(i, _)| i as u64)
        .unwrap_or(0);
    let peak_instant = peak_hour * HOUR + HOUR / 2;
    let idx = peak_instant / window_secs;
    if idx == 0 {
        return vec![0.0; n_vhos];
    }
    let cur = TimeWindow::of_len(SimTime::new(idx * window_secs), window_secs);
    let prev = TimeWindow::of_len(SimTime::new((idx - 1) * window_secs), window_secs);

    let mut cur_vecs: Vec<std::collections::BTreeMap<u32, f64>> = vec![Default::default(); n_vhos];
    let mut prev_vecs: Vec<std::collections::BTreeMap<u32, f64>> = vec![Default::default(); n_vhos];
    for r in trace.slice(cur) {
        *cur_vecs[r.vho.index()].entry(r.video.0).or_insert(0.0) += 1.0;
    }
    for r in trace.slice(prev) {
        *prev_vecs[r.vho.index()].entry(r.video.0).or_insert(0.0) += 1.0;
    }
    (0..n_vhos)
        .map(|j| cosine(&cur_vecs[j], &prev_vecs[j]))
        .collect()
}

/// Fig. 4: daily request counts per episode of a series, over the whole
/// trace. Returns `(episode number, per-day counts)` sorted by episode.
pub fn episode_daily_counts(trace: &Trace, catalog: &Catalog, series: u32) -> Vec<(u32, Vec<u64>)> {
    let days = narrow::usize_from(trace.horizon().secs().div_ceil(DAY));
    let mut per_episode: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
    for r in trace.requests() {
        if let VideoKind::SeriesEpisode { series: s, episode } = catalog.video(r.video).kind {
            if s == series {
                per_episode.entry(episode).or_insert_with(|| vec![0; days])
                    [narrow::usize_from(r.time.secs() / DAY)] += 1;
            }
        }
    }
    per_episode.into_iter().collect()
}

/// Section VI-B: select `k` peak-demand windows of `window_secs`
/// seconds over which to enforce the link constraints, requiring the
/// chosen windows to fall on distinct days (the paper uses e.g. the
/// Friday and Saturday peaks).
///
/// A window's load is the number of streams *active* during it
/// (arrivals whose `[start, start+duration)` overlaps the window).
pub fn select_peak_windows(
    trace: &Trace,
    catalog: &Catalog,
    window_secs: u64,
    k: usize,
) -> Vec<TimeWindow> {
    assert!(window_secs > 0 && k > 0);
    let n_buckets = narrow::usize_from(trace.horizon().secs().div_ceil(window_secs));
    let mut load = vec![0u64; n_buckets];
    for r in trace.requests() {
        let start = r.time.secs();
        let end = start + catalog.video(r.video).duration_secs();
        let first = narrow::usize_from(start / window_secs);
        let last = narrow::usize_from((end - 1) / window_secs).min(n_buckets - 1);
        for b in &mut load[first..=last] {
            *b += 1;
        }
    }
    let mut order: Vec<usize> = (0..n_buckets).collect();
    order.sort_by_key(|&b| std::cmp::Reverse((load[b], n_buckets - b)));
    let mut chosen: Vec<usize> = Vec::new();
    let mut used_days: std::collections::BTreeSet<u64> = Default::default();
    for b in order {
        let day = (b as u64 * window_secs) / DAY;
        if used_days.insert(day) {
            chosen.push(b);
            if chosen.len() == k {
                break;
            }
        }
    }
    chosen.sort();
    chosen
        .into_iter()
        .map(|b| {
            let s = b as u64 * window_secs;
            TimeWindow::new(
                SimTime::new(s),
                SimTime::new((s + window_secs).min(trace.horizon().secs())),
            )
        })
        .collect()
}

/// Total concurrent streams sampled every `sample_secs` (exact sweep
/// over start/end events). Used by experiments that report bandwidth
/// or load over time.
pub fn concurrency_timeline(trace: &Trace, catalog: &Catalog, sample_secs: u64) -> Vec<u64> {
    assert!(sample_secs > 0);
    let horizon = trace.horizon().secs();
    let n_samples = narrow::usize_from(horizon / sample_secs) + 1;
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(trace.len() * 2);
    for r in trace.requests() {
        let s = r.time.secs();
        events.push((s, 1));
        events.push((s + catalog.video(r.video).duration_secs(), -1));
    }
    events.sort_unstable();
    let mut out = Vec::with_capacity(n_samples);
    let mut active: i64 = 0;
    let mut e = 0;
    for i in 0..n_samples {
        let t = i as u64 * sample_secs;
        while e < events.len() && events[e].0 <= t {
            active += events[e].1;
            e += 1;
        }
        out.push(active as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_trace, TraceConfig};
    use crate::synth::{synthesize_library, LibraryConfig};
    use crate::trace::Request;
    use vod_model::{VhoId, VideoId};
    use vod_net::topologies;

    fn world() -> (Catalog, Trace, usize) {
        let catalog = synthesize_library(&LibraryConfig::default_for(400, 14, 3));
        let net = topologies::mesh_backbone(6, 9, 3);
        let trace = generate_trace(&catalog, &net, &TraceConfig::default_for(4000.0, 14, 3));
        (catalog, trace, net.num_nodes())
    }

    fn single_video_catalog() -> Catalog {
        use vod_model::{Video, VideoClass};
        Catalog::new(vec![Video {
            id: VideoId::new(0),
            class: VideoClass::Show, // 1 h
            kind: VideoKind::Catalog,
            release_day: 0,
            weight: 1.0,
        }])
    }

    #[test]
    fn working_sets_count_distinct() {
        let catalog = single_video_catalog();
        let reqs = vec![
            Request {
                time: SimTime::new(10),
                vho: VhoId::new(0),
                video: VideoId::new(0),
            },
            Request {
                time: SimTime::new(20),
                vho: VhoId::new(0),
                video: VideoId::new(0),
            },
            Request {
                time: SimTime::new(30),
                vho: VhoId::new(1),
                video: VideoId::new(0),
            },
        ];
        let trace = Trace::new(SimTime::new(1000), reqs);
        let ws = working_sets(&trace, &catalog, 2, TimeWindow::of_len(SimTime::ZERO, 100));
        assert_eq!(ws[0].distinct_videos, 1);
        assert_eq!(ws[0].size, Gigabytes::new(1.0));
        assert_eq!(ws[1].distinct_videos, 1);
    }

    #[test]
    fn peak_hour_finds_busiest() {
        let (_, trace, _) = world();
        let w = peak_hour_of_day(&trace, 4); // first Friday
        assert_eq!(w.len_secs(), HOUR);
        assert_eq!(w.start.day(), 4);
        // Peak should be in the evening.
        assert!((17..=23).contains(&w.start.hour_of_day()));
    }

    #[test]
    fn cosine_identity_and_orthogonality() {
        let mut a = std::collections::BTreeMap::new();
        a.insert(1u32, 2.0);
        a.insert(2, 1.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        let mut b = std::collections::BTreeMap::new();
        b.insert(3u32, 5.0);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &Default::default()), 0.0);
    }

    #[test]
    fn similarity_grows_with_window_size() {
        let (_, trace, n) = world();
        let avg = |xs: Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
        let small = avg(peak_cosine_similarity(&trace, n, HOUR));
        let large = avg(peak_cosine_similarity(&trace, n, DAY));
        assert!(
            large > small,
            "1-day similarity {large} should exceed 1-hour {small}"
        );
        assert!(large > 0.5, "daily mixes should be fairly similar: {large}");
    }

    #[test]
    fn episode_counts_shape() {
        let (catalog, trace, _) = world();
        let eps = episode_daily_counts(&trace, &catalog, 0);
        assert!(!eps.is_empty());
        for (ep, daily) in &eps {
            assert_eq!(daily.len(), 14);
            let video = catalog
                .iter()
                .find(|v| {
                    v.kind
                        == VideoKind::SeriesEpisode {
                            series: 0,
                            episode: *ep,
                        }
                })
                .unwrap();
            // No requests before release.
            for &c in daily.iter().take(narrow::usize_from(video.release_day)) {
                assert_eq!(c, 0);
            }
        }
        // Release-day demand of consecutive episodes is similar
        // (within a factor 3 — Fig. 4 shows e.g. 7000 vs 8700).
        if eps.len() >= 2 {
            let peak: Vec<u64> = eps
                .iter()
                .map(|(_, d)| d.iter().copied().max().unwrap())
                .collect();
            for pair in peak.windows(2) {
                if pair[0] > 0 && pair[1] > 0 {
                    let ratio = pair[1] as f64 / pair[0] as f64;
                    assert!(ratio > 1.0 / 3.0 && ratio < 3.0, "ratio {ratio}");
                }
            }
        }
    }

    #[test]
    fn peak_windows_distinct_days_and_loaded() {
        let (catalog, trace, _) = world();
        let ws = select_peak_windows(&trace, &catalog, HOUR, 2);
        assert_eq!(ws.len(), 2);
        assert_ne!(ws[0].start.day(), ws[1].start.day());
        // Peak windows should be on the busy weekend days and in the
        // evening.
        for w in &ws {
            assert!((16..=23).contains(&w.start.hour_of_day()), "window {w}");
        }
    }

    #[test]
    fn concurrency_timeline_counts_active_streams() {
        let catalog = single_video_catalog(); // 1-hour videos
        let reqs = vec![
            Request {
                time: SimTime::new(0),
                vho: VhoId::new(0),
                video: VideoId::new(0),
            },
            Request {
                time: SimTime::new(1800),
                vho: VhoId::new(0),
                video: VideoId::new(0),
            },
        ];
        let trace = Trace::new(SimTime::new(3 * HOUR), reqs);
        let tl = concurrency_timeline(&trace, &catalog, 1800);
        // t=0: 1 active; t=1800: 2; t=3600: first ended → 1; t=5400: 0.
        assert_eq!(tl[0], 1);
        assert_eq!(tl[1], 2);
        assert_eq!(tl[2], 1);
        assert_eq!(tl[3], 0);
    }

    #[test]
    fn empty_trace_analytics() {
        let catalog = single_video_catalog();
        let trace = Trace::new(SimTime::new(DAY), vec![]);
        assert_eq!(
            working_sets(&trace, &catalog, 2, TimeWindow::of_len(SimTime::ZERO, HOUR))[0]
                .distinct_videos,
            0
        );
        assert_eq!(peak_cosine_similarity(&trace, 2, HOUR), vec![0.0, 0.0]);
        let tl = concurrency_timeline(&trace, &catalog, HOUR);
        assert!(tl.iter().all(|&x| x == 0));
    }
}
