//! Library synthesis: building a catalog with the content mix the
//! paper's traces contain.
//!
//! Section VII-A: "requests to various types of videos, including
//! music videos and trailers, TV shows, and full-length movies",
//! mapped to four length classes. Section VI-A: new videos are added
//! continually; TV-series episodes (released weekly, with demand
//! similar to the previous episode — Fig. 4) and blockbusters account
//! for the majority of new-release requests, with a residue of
//! unpredictable new content.

use crate::popularity::PopularityModel;
use rand::seq::SliceRandom;
use rand::Rng;
use vod_model::narrow;
use vod_model::rng::derive_rng;
use vod_model::{Catalog, Video, VideoClass, VideoId, VideoKind};

/// Configuration of the synthetic library.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Total number of videos, back catalog plus all new releases.
    pub n_videos: usize,
    /// Fractions of the four classes [Clip, ShortShow, Show, Movie];
    /// normalized internally.
    pub class_mix: [f64; 4],
    /// Rank-popularity model for base weights.
    pub popularity: PopularityModel,
    /// Trace horizon in days; releases are scheduled inside it.
    pub horizon_days: u64,
    /// Number of concurrently running TV series, each releasing one
    /// episode per week (1-hour Show class).
    pub n_series: usize,
    /// Blockbuster movies released per week (Movie class).
    pub blockbusters_per_week: usize,
    /// Other unpredictable new releases per week (class-mixed).
    pub other_new_per_week: usize,
    pub seed: u64,
}

impl LibraryConfig {
    /// Paper-like defaults for a library of `n_videos` over
    /// `horizon_days` days.
    pub fn default_for(n_videos: usize, horizon_days: u64, seed: u64) -> Self {
        let weeks = narrow::usize_from(horizon_days.div_ceil(7));
        Self {
            n_videos,
            class_mix: [0.30, 0.25, 0.25, 0.20],
            popularity: PopularityModel::youtube_default(n_videos),
            horizon_days,
            // Series are a significant share of new-release traffic
            // (Section VI-A: episodes account for more than half of
            // new-release requests); scaled down for tiny libraries.
            n_series: (n_videos / 100).clamp(1, 40),
            blockbusters_per_week: if weeks > 0 { 2 } else { 0 },
            other_new_per_week: (n_videos / 500).clamp(1, 50),
            seed,
        }
    }

    fn weeks(&self) -> u64 {
        self.horizon_days.div_ceil(7)
    }

    fn n_new_releases(&self) -> usize {
        let weeks = narrow::usize_from(self.weeks());
        self.n_series * weeks + (self.blockbusters_per_week + self.other_new_per_week) * weeks
    }
}

/// Synthesize a catalog according to `cfg`.
///
/// Weight assignment: popularity ranks `1..=n` are shuffled over all
/// videos, then series episodes and blockbusters are re-ranked into the
/// top decile (new releases "receive a significant number of
/// requests", Section VI-A). Episodes of the same series share their
/// series' base weight up to ±10 % lognormal noise, reproducing the
/// episode-to-episode similarity of Fig. 4.
pub fn synthesize_library(cfg: &LibraryConfig) -> Catalog {
    let n = cfg.n_videos;
    let n_new = cfg.n_new_releases();
    assert!(
        n_new < n,
        "library too small: {n} videos but {n_new} scheduled new releases"
    );
    let mut rng = derive_rng(cfg.seed, 0x11B_5E7);

    // Global rank permutation -> base weights.
    let weights = cfg.popularity.normalized_weights(n);
    let mut ranks: Vec<usize> = (1..=n).collect();
    ranks.shuffle(&mut rng);

    // Class sampling table.
    let mix_total: f64 = cfg.class_mix.iter().sum();
    assert!(mix_total > 0.0, "class mix must have positive mass");
    let classes = VideoClass::ALL;
    let mut class_cum = [0.0f64; 4];
    let mut acc = 0.0;
    for (k, &w) in cfg.class_mix.iter().enumerate() {
        assert!(w >= 0.0, "negative class fraction");
        acc += w / mix_total;
        class_cum[k] = acc;
    }
    let sample_class = |rng: &mut rand::rngs::StdRng| {
        let x: f64 = rng.gen();
        let k = class_cum.iter().position(|&c| x <= c).unwrap_or(3);
        classes[k]
    };

    let weeks = cfg.weeks();
    let top_decile = (n / 10).max(1);

    let mut videos: Vec<Video> = Vec::with_capacity(n);
    // --- New releases occupy the first ids for reproducibility. ---
    // TV series: one episode per week; each series airs on a fixed
    // weekday (3 = Thursday-like), staggered across series.
    for s in 0..cfg.n_series {
        let air_dow = (3 + s % 3) as u64; // air Thu/Fri/Sat-like
        let series_rank = rng.gen_range(1..=top_decile);
        let series_weight = weights[series_rank - 1];
        for e in 0..weeks {
            let noise = crate::stats::lognormal(&mut rng, 0.10);
            videos.push(Video {
                id: VideoId::from_index(videos.len()),
                class: VideoClass::Show,
                kind: VideoKind::SeriesEpisode {
                    series: narrow::u32_from(s),
                    episode: narrow::u32_from(e) + 1,
                },
                release_day: (e * 7 + air_dow).min(cfg.horizon_days.saturating_sub(1)),
                weight: series_weight * noise,
            });
        }
    }
    // Blockbusters: released on the Friday-like day (4) of each week.
    for w in 0..weeks {
        for _ in 0..cfg.blockbusters_per_week {
            let rank = rng.gen_range(1..=top_decile);
            videos.push(Video {
                id: VideoId::from_index(videos.len()),
                class: VideoClass::Movie,
                kind: VideoKind::Blockbuster,
                release_day: (w * 7 + 4).min(cfg.horizon_days.saturating_sub(1)),
                weight: weights[rank - 1],
            });
        }
        // Other new releases: unpredictable, arbitrary day & rank.
        for _ in 0..cfg.other_new_per_week {
            let rank = rng.gen_range(1..=n);
            let day = w * 7 + rng.gen_range(0..7u64);
            videos.push(Video {
                id: VideoId::from_index(videos.len()),
                class: sample_class(&mut rng),
                kind: VideoKind::OtherNew,
                release_day: day.min(cfg.horizon_days.saturating_sub(1)),
                weight: weights[rank - 1],
            });
        }
    }
    // --- Back catalog fills the rest, consuming the shuffled ranks. ---
    let mut rank_iter = ranks.into_iter();
    // `ranks` holds one entry per requested video, so the iterator
    // outlasts the loop; a short table just yields a smaller catalog.
    while videos.len() < n {
        let Some(rank) = rank_iter.next() else {
            break;
        };
        videos.push(Video {
            id: VideoId::from_index(videos.len()),
            class: sample_class(&mut rng),
            kind: VideoKind::Catalog,
            release_day: 0,
            weight: weights[rank - 1],
        });
    }

    Catalog::new(videos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> LibraryConfig {
        LibraryConfig::default_for(n, 28, 42)
    }

    #[test]
    fn synthesis_counts() {
        let c = synthesize_library(&cfg(2000));
        assert_eq!(c.len(), 2000);
        let series = c
            .iter()
            .filter(|v| matches!(v.kind, VideoKind::SeriesEpisode { .. }))
            .count();
        let cfg = cfg(2000);
        assert_eq!(series, cfg.n_series * 4);
        let blockbusters = c
            .iter()
            .filter(|v| v.kind == VideoKind::Blockbuster)
            .count();
        assert_eq!(blockbusters, cfg.blockbusters_per_week * 4);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize_library(&cfg(500));
        let b = synthesize_library(&cfg(500));
        assert_eq!(
            a.iter().map(|v| v.weight).sum::<f64>(),
            b.iter().map(|v| v.weight).sum::<f64>()
        );
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn episodes_weekly_and_similar() {
        let c = synthesize_library(&cfg(2000));
        // Collect episodes of series 0 in episode order.
        let mut eps: Vec<&Video> = c
            .iter()
            .filter(|v| matches!(v.kind, VideoKind::SeriesEpisode { series: 0, .. }))
            .collect();
        eps.sort_by_key(|v| match v.kind {
            VideoKind::SeriesEpisode { episode, .. } => episode,
            _ => unreachable!(),
        });
        assert_eq!(eps.len(), 4);
        for pair in eps.windows(2) {
            assert_eq!(pair[1].release_day - pair[0].release_day, 7);
            let ratio = pair[1].weight / pair[0].weight;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "episode weights similar, got {ratio}"
            );
        }
        assert!(eps.iter().all(|v| v.class == VideoClass::Show));
    }

    #[test]
    fn new_releases_popular() {
        let c = synthesize_library(&cfg(5000));
        let mean_new: f64 = {
            let xs: Vec<f64> = c
                .iter()
                .filter(|v| {
                    matches!(
                        v.kind,
                        VideoKind::SeriesEpisode { .. } | VideoKind::Blockbuster
                    )
                })
                .map(|v| v.weight)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let mean_catalog: f64 = {
            let xs: Vec<f64> = c
                .iter()
                .filter(|v| v.kind == VideoKind::Catalog)
                .map(|v| v.weight)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean_new > 2.0 * mean_catalog,
            "new releases should be much more popular: {mean_new} vs {mean_catalog}"
        );
    }

    #[test]
    fn class_mix_respected() {
        let mut c = cfg(10_000);
        c.class_mix = [1.0, 0.0, 0.0, 0.0];
        let cat = synthesize_library(&c);
        // All catalog + other-new videos must be clips; series are
        // always Shows and blockbusters always Movies.
        assert!(cat
            .iter()
            .filter(|v| matches!(v.kind, VideoKind::Catalog | VideoKind::OtherNew))
            .all(|v| v.class == VideoClass::Clip));
    }

    #[test]
    #[should_panic(expected = "library too small")]
    fn too_small_library_rejected() {
        let mut c = cfg(10);
        c.n_series = 10;
        let _ = synthesize_library(&c);
    }
}
