//! Video popularity models.
//!
//! The paper's traces exhibit a long tail but "not a very high skew"
//! (Section VII-B: even less popular videos incur significant load);
//! its synthetic traces follow the YouTube popularity distribution of
//! Cha et al. [10], which is well described by a Zipf law with an
//! exponential cutoff in the tail. Both are provided here.

/// A rank-based popularity model: `weight(rank)` for ranks `1..=n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PopularityModel {
    /// Pure Zipf: `rank^-gamma`.
    Zipf { gamma: f64 },
    /// Zipf with exponential cutoff: `rank^-gamma * exp(-rank/cutoff)`,
    /// the YouTube-like shape of Cha et al. The cutoff flattens the
    /// extreme head relative to what pure Zipf with larger gamma would
    /// give and truncates the far tail.
    ZipfCutoff { gamma: f64, cutoff: f64 },
    /// Uniform popularity (degenerate control case for tests).
    Uniform,
}

impl PopularityModel {
    /// The paper-default model: YouTube-like, moderately skewed.
    /// `gamma = 0.8` matches Cha et al.'s fitted exponent for video
    /// popularity; the cutoff scales with the library so the tail
    /// keeps non-negligible mass ("video popularity does not have a
    /// very high skew", Section VII-B).
    pub fn youtube_default(n_videos: usize) -> Self {
        PopularityModel::ZipfCutoff {
            gamma: 0.8,
            cutoff: (n_videos as f64 * 0.4).max(1.0),
        }
    }

    /// Unnormalized weight of the video at `rank` (1-based).
    pub fn weight(&self, rank: usize) -> f64 {
        assert!(rank >= 1, "ranks are 1-based");
        let r = rank as f64;
        match *self {
            PopularityModel::Zipf { gamma } => r.powf(-gamma),
            PopularityModel::ZipfCutoff { gamma, cutoff } => r.powf(-gamma) * (-r / cutoff).exp(),
            PopularityModel::Uniform => 1.0,
        }
    }

    /// Weights for ranks `1..=n`, normalized to sum to 1.
    pub fn normalized_weights(&self, n: usize) -> Vec<f64> {
        assert!(n > 0);
        let mut w: Vec<f64> = (1..=n).map(|r| self.weight(r)).collect();
        let total: f64 = w.iter().sum();
        for x in &mut w {
            *x /= total;
        }
        w
    }

    /// Fraction of total mass held by the top `k` ranks out of `n`.
    pub fn head_mass(&self, k: usize, n: usize) -> f64 {
        let w = self.normalized_weights(n);
        w[..k.min(n)].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_decreasing() {
        let m = PopularityModel::Zipf { gamma: 1.0 };
        assert!(m.weight(1) > m.weight(2));
        assert_eq!(m.weight(2), 0.5);
    }

    #[test]
    fn cutoff_truncates_tail() {
        let plain = PopularityModel::Zipf { gamma: 0.8 };
        let cut = PopularityModel::ZipfCutoff {
            gamma: 0.8,
            cutoff: 100.0,
        };
        // Relative to rank 1, a deep-tail rank has much less weight
        // under the cutoff model.
        let rel_plain = plain.weight(1000) / plain.weight(1);
        let rel_cut = cut.weight(1000) / cut.weight(1);
        assert!(rel_cut < rel_plain / 100.0);
    }

    #[test]
    fn normalization_sums_to_one() {
        for m in [
            PopularityModel::Zipf { gamma: 0.8 },
            PopularityModel::youtube_default(1000),
            PopularityModel::Uniform,
        ] {
            let w = m.normalized_weights(1000);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn youtube_default_moderate_skew() {
        // The paper stresses that the top-100 videos do NOT dominate:
        // medium-popular videos carry significant load (Fig. 7). The
        // default model must give the top 100 of 5000 videos a
        // noticeable but not overwhelming share.
        let m = PopularityModel::youtube_default(5000);
        let head = m.head_mass(100, 5000);
        assert!(head > 0.05 && head < 0.5, "top-100 mass {head}");
    }

    #[test]
    fn uniform_head_mass_proportional() {
        let m = PopularityModel::Uniform;
        assert!((m.head_mass(10, 100) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_rejected() {
        let _ = PopularityModel::Uniform.weight(0);
    }
}
