//! Request traces: the raw input of every experiment.

use vod_model::narrow;
use vod_model::{SimTime, TimeWindow, VhoId, VideoId};

/// One VoD request: user in metro `vho` asks for `video` at `time`.
/// The stream then stays active for the video's duration (the paper's
/// `f_j^m(t)` counts these still-active streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub time: SimTime,
    pub vho: VhoId,
    pub video: VideoId,
}

/// A time-sorted sequence of requests over a fixed horizon.
#[derive(Debug, Clone)]
pub struct Trace {
    horizon: SimTime,
    requests: Vec<Request>,
}

impl Trace {
    /// Build a trace; requests are sorted by time (stably, so equal
    /// timestamps keep generation order for determinism).
    pub fn new(horizon: SimTime, mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.time);
        assert!(
            requests.last().is_none_or(|r| r.time < horizon),
            "request beyond trace horizon"
        );
        Self { horizon, requests }
    }

    #[inline]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    #[inline]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Requests with `start <= time < end` (binary search on the sorted
    /// vector).
    pub fn slice(&self, window: TimeWindow) -> &[Request] {
        let lo = self.requests.partition_point(|r| r.time < window.start);
        let hi = self.requests.partition_point(|r| r.time < window.end);
        &self.requests[lo..hi]
    }

    /// Requests per consecutive bucket of `bucket_secs` over the whole
    /// horizon (used to locate peak hours).
    pub fn bucket_counts(&self, bucket_secs: u64) -> Vec<u64> {
        assert!(bucket_secs > 0);
        let n = self.horizon.secs().div_ceil(bucket_secs);
        let mut counts = vec![0u64; narrow::usize_from(n)];
        for r in &self.requests {
            counts[narrow::usize_from(r.time.secs() / bucket_secs)] += 1;
        }
        counts
    }

    /// Restrict to a sub-range (e.g., the evaluation weeks after the
    /// warm-up period), keeping absolute timestamps.
    pub fn restricted(&self, window: TimeWindow) -> Trace {
        Trace {
            horizon: self.horizon.min(window.end),
            requests: self.slice(window).to_vec(),
        }
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = Request;
    fn index(&self, i: usize) -> &Request {
        &self.requests[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, v: u16, m: u32) -> Request {
        Request {
            time: SimTime::new(t),
            vho: VhoId::new(v),
            video: VideoId::new(m),
        }
    }

    #[test]
    fn constructor_sorts_stably() {
        let t = Trace::new(
            SimTime::new(100),
            vec![req(50, 0, 1), req(10, 1, 2), req(50, 2, 3)],
        );
        assert_eq!(t[0].time, SimTime::new(10));
        // Equal timestamps keep insertion order.
        assert_eq!(t[1].vho, VhoId::new(0));
        assert_eq!(t[2].vho, VhoId::new(2));
    }

    #[test]
    fn slicing_is_half_open() {
        let t = Trace::new(
            SimTime::new(100),
            (0..10).map(|i| req(i * 10, 0, i as u32)).collect(),
        );
        let s = t.slice(TimeWindow::new(SimTime::new(20), SimTime::new(50)));
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].time, SimTime::new(20));
        assert_eq!(s[2].time, SimTime::new(40));
    }

    #[test]
    fn bucket_counts_cover_horizon() {
        let t = Trace::new(
            SimTime::new(95),
            vec![req(0, 0, 0), req(5, 0, 1), req(90, 0, 2)],
        );
        let c = t.bucket_counts(10);
        assert_eq!(c.len(), 10);
        assert_eq!(c[0], 2);
        assert_eq!(c[9], 1);
        assert_eq!(c.iter().sum::<u64>(), 3);
    }

    #[test]
    fn restriction_preserves_timestamps() {
        let t = Trace::new(
            SimTime::new(100),
            (0..10).map(|i| req(i * 10, 0, 0)).collect(),
        );
        let r = t.restricted(TimeWindow::new(SimTime::new(30), SimTime::new(60)));
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].time, SimTime::new(30));
    }

    #[test]
    #[should_panic(expected = "beyond trace horizon")]
    fn horizon_enforced() {
        let _ = Trace::new(SimTime::new(10), vec![req(10, 0, 0)]);
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::new(SimTime::new(100), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.bucket_counts(50), vec![0, 0]);
    }
}
