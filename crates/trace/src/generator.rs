//! Request-trace generation.
//!
//! Produces a time-sorted request trace with the temporal and spatial
//! structure the paper reports: weekly modulation with Friday/Saturday
//! the two busiest days (Section VII, Fig. 2), an evening-peaked
//! diurnal cycle, per-VHO request volumes proportional to metro
//! population but with per-(video, VHO) taste perturbation (different
//! offices see different request mixes — Fig. 3), and new-release
//! demand that spikes on the release day and decays geometrically
//! (Fig. 4).

use crate::stats::{cumulative, poisson, sample_cumulative, standard_normal};
use crate::trace::{Request, Trace};
use rand::Rng;
use vod_model::narrow;
use vod_model::rng::{derive_rng, derive_seed};
use vod_model::time::{DAY, HOUR};
use vod_model::{Catalog, SimTime, VhoId, Video, VideoKind};
use vod_net::Network;

/// Relative request intensity by day-of-week (trace starts on the
/// Monday-like day 0): Friday (4) and Saturday (5) are the two busiest
/// days, as the paper observes.
pub const DOW_FACTORS: [f64; 7] = [1.00, 0.95, 0.95, 1.00, 1.35, 1.45, 1.10];

/// Relative request intensity by hour-of-day: quiet overnight, evening
/// peak around 20:00–22:00.
pub const HOD_FACTORS: [f64; 24] = [
    0.20, 0.14, 0.10, 0.08, 0.08, 0.10, 0.15, 0.22, 0.30, 0.38, 0.45, 0.52, //
    0.58, 0.60, 0.58, 0.58, 0.62, 0.72, 0.88, 1.00, 1.00, 0.92, 0.65, 0.38,
];

/// Trace-generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Mean requests per day across the whole footprint.
    pub requests_per_day: f64,
    /// Horizon in days (the paper uses a one-month trace).
    pub horizon_days: u64,
    /// Log-std-dev of the per-(video, VHO) lognormal taste
    /// perturbation; 0 makes every VHO's mix identical.
    pub vho_sigma: f64,
    /// Per-day geometric decay of new-release demand after release.
    pub new_release_decay: f64,
    pub seed: u64,
}

impl TraceConfig {
    /// Paper-like defaults: a month-long trace.
    pub fn default_for(requests_per_day: f64, horizon_days: u64, seed: u64) -> Self {
        Self {
            requests_per_day,
            horizon_days,
            vho_sigma: 0.45,
            new_release_decay: 0.72,
            seed,
        }
    }
}

/// Demand multiplier for `video` on `day` (0 before release; decaying
/// from the release day for new content; flat for back catalog).
pub fn age_factor(video: &Video, day: u64, decay: f64) -> f64 {
    if day < video.release_day {
        return 0.0;
    }
    match video.kind {
        VideoKind::Catalog => 1.0,
        _ => {
            let age = i32::try_from(day - video.release_day).unwrap_or(i32::MAX);
            // New releases spike then decay toward a floor; the spike
            // makes them the dominant share of new-release traffic
            // (Section VI-A) and the floor keeps a long tail of
            // residual demand.
            decay.powi(age).max(0.12)
        }
    }
}

/// Deterministic per-(video, VHO) taste multiplier: lognormal with
/// log-σ `sigma`, derived purely from `(seed, video, vho)` so the trace
/// generator and the direct demand synthesizer agree exactly.
pub fn vho_perturbation(seed: u64, video: u32, vho: u16, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let sub = derive_seed(seed, 0x7A57E ^ ((video as u64) << 16) ^ vho as u64);
    let mut rng = vod_model::rng::rng_from_seed(sub);
    (sigma * standard_normal(&mut rng)).exp()
}

/// Per-video expected total request count over the horizon, for the
/// given total budget. Shared by trace generation and direct demand
/// synthesis. Returns `(per-video expectation, per-video per-day
/// weights flattened)` — day weights are recomputed cheaply on demand
/// for sampling instead of being returned for every video.
pub fn expected_requests(catalog: &Catalog, cfg: &TraceConfig) -> Vec<f64> {
    let days = cfg.horizon_days;
    let mut day_sums: Vec<f64> = Vec::with_capacity(catalog.len());
    for v in catalog.iter() {
        let s: f64 = (0..days)
            .map(|d| DOW_FACTORS[(d % 7) as usize] * age_factor(v, d, cfg.new_release_decay))
            .sum();
        day_sums.push(v.weight * s);
    }
    let z: f64 = day_sums.iter().sum();
    assert!(z > 0.0, "catalog has no requestable mass over the horizon");
    let total = cfg.requests_per_day * days as f64;
    day_sums.iter().map(|&x| x / z * total).collect()
}

/// Generate a full request trace.
pub fn generate_trace(catalog: &Catalog, net: &Network, cfg: &TraceConfig) -> Trace {
    assert!(cfg.horizon_days > 0, "horizon must be positive");
    assert!(!catalog.is_empty(), "catalog must not be empty");
    let n_vhos = net.num_nodes();
    let horizon = SimTime::new(cfg.horizon_days * DAY);
    let lambdas = expected_requests(catalog, cfg);
    let hod_cum = cumulative(&HOD_FACTORS);
    let pops: Vec<f64> = net.nodes().iter().map(|n| n.population).collect();

    let mut rng = derive_rng(cfg.seed, 0x6E47_11CE);
    let mut requests = Vec::with_capacity(narrow::count_usize(lambdas.iter().sum::<f64>()) + 1024);

    for (v, &lambda) in catalog.iter().zip(&lambdas) {
        let n = poisson(&mut rng, lambda);
        if n == 0 {
            continue;
        }
        // Per-day weight table for this video.
        let day_weights: Vec<f64> = (0..cfg.horizon_days)
            .map(|d| DOW_FACTORS[(d % 7) as usize] * age_factor(v, d, cfg.new_release_decay))
            .collect();
        let day_cum = cumulative(&day_weights);
        // Per-VHO weight table for this video.
        let vho_weights: Vec<f64> = pops
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                p * vho_perturbation(cfg.seed, v.id.0, narrow::u16_from(j), cfg.vho_sigma)
            })
            .collect();
        let vho_cum = cumulative(&vho_weights);

        for _ in 0..n {
            let day = sample_cumulative(&mut rng, &day_cum) as u64;
            let hour = sample_cumulative(&mut rng, &hod_cum) as u64;
            let sec = rng.gen_range(0..HOUR);
            let vho = sample_cumulative(&mut rng, &vho_cum);
            debug_assert!(vho < n_vhos);
            requests.push(Request {
                time: SimTime::new(day * DAY + hour * HOUR + sec),
                // lint:allow(raw-index): recovers the id from a dense 0..n_vhos vector index
                vho: VhoId::from_index(vho),
                video: v.id,
            });
        }
    }
    Trace::new(horizon, requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize_library, LibraryConfig};
    use vod_net::topologies;

    fn small_world() -> (Catalog, Network, TraceConfig) {
        let catalog = synthesize_library(&LibraryConfig::default_for(400, 14, 7));
        let net = topologies::mesh_backbone(8, 12, 7);
        let cfg = TraceConfig::default_for(3000.0, 14, 7);
        (catalog, net, cfg)
    }

    #[test]
    fn volume_close_to_budget() {
        let (catalog, net, cfg) = small_world();
        let t = generate_trace(&catalog, &net, &cfg);
        let expect = cfg.requests_per_day * cfg.horizon_days as f64;
        let got = t.len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.05,
            "volume {got} vs budget {expect}"
        );
    }

    #[test]
    fn deterministic() {
        let (catalog, net, cfg) = small_world();
        let a = generate_trace(&catalog, &net, &cfg);
        let b = generate_trace(&catalog, &net, &cfg);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    fn weekend_busier_than_midweek() {
        let (catalog, net, cfg) = small_world();
        let t = generate_trace(&catalog, &net, &cfg);
        let daily = t.bucket_counts(DAY);
        // Friday (4) and Saturday (5) of week 1 busier than Tuesday (1).
        assert!(daily[4] > daily[1]);
        assert!(daily[5] > daily[1]);
    }

    #[test]
    fn evening_peak() {
        let (catalog, net, cfg) = small_world();
        let t = generate_trace(&catalog, &net, &cfg);
        let hourly = t.bucket_counts(HOUR);
        // Aggregate by hour of day.
        let mut by_hod = [0u64; 24];
        for (h, &c) in hourly.iter().enumerate() {
            by_hod[h % 24] += c;
        }
        let peak = (0..24).max_by_key(|&h| by_hod[h]).unwrap();
        assert!((18..=22).contains(&peak), "peak hour {peak}");
        assert!(by_hod[3] < by_hod[20] / 3);
    }

    #[test]
    fn no_requests_before_release() {
        let (catalog, net, cfg) = small_world();
        let t = generate_trace(&catalog, &net, &cfg);
        for r in t.requests() {
            let v = catalog.video(r.video);
            assert!(
                r.time.day() >= v.release_day,
                "request for {} on day {} before release day {}",
                v.id,
                r.time.day(),
                v.release_day
            );
        }
    }

    #[test]
    fn populous_metros_get_more_requests() {
        let (catalog, net, cfg) = small_world();
        let t = generate_trace(&catalog, &net, &cfg);
        let mut counts = vec![0u64; net.num_nodes()];
        for r in t.requests() {
            counts[r.vho.index()] += 1;
        }
        let biggest = (0..net.num_nodes())
            .max_by(|&a, &b| {
                net.nodes()[a]
                    .population
                    .total_cmp(&net.nodes()[b].population)
            })
            .unwrap();
        let smallest = (0..net.num_nodes())
            .min_by(|&a, &b| {
                net.nodes()[a]
                    .population
                    .total_cmp(&net.nodes()[b].population)
            })
            .unwrap();
        assert!(counts[biggest] > counts[smallest]);
    }

    #[test]
    fn age_factor_shape() {
        let v = Video {
            id: vod_model::VideoId::new(0),
            class: vod_model::VideoClass::Show,
            kind: VideoKind::Blockbuster,
            release_day: 7,
            weight: 1.0,
        };
        assert_eq!(age_factor(&v, 6, 0.7), 0.0);
        assert_eq!(age_factor(&v, 7, 0.7), 1.0);
        assert!((age_factor(&v, 8, 0.7) - 0.7).abs() < 1e-12);
        // Floor kicks in eventually.
        assert_eq!(age_factor(&v, 40, 0.7), 0.12);
        // Catalog videos are flat.
        let c = Video {
            kind: VideoKind::Catalog,
            release_day: 0,
            ..v
        };
        assert_eq!(age_factor(&c, 20, 0.7), 1.0);
    }

    #[test]
    fn perturbation_deterministic_and_positive() {
        let a = vho_perturbation(9, 5, 3, 0.5);
        let b = vho_perturbation(9, 5, 3, 0.5);
        assert_eq!(a, b);
        assert!(a > 0.0);
        assert_ne!(a, vho_perturbation(9, 5, 4, 0.5));
        assert_eq!(vho_perturbation(9, 5, 3, 0.0), 1.0);
    }
}
