//! Property tests for the lexer: totality and span discipline.
//!
//! The lexer is the foundation of every other analysis layer, and it
//! runs over whatever bytes happen to be in the tree — including
//! malformed, mid-edit, or adversarial input. Two properties must hold
//! unconditionally:
//!
//! 1. **Totality** — `lex` never panics, on any input.
//! 2. **Span discipline** — token spans are sorted, non-overlapping,
//!    in-bounds, aligned to `char` boundaries, and together cover
//!    every non-whitespace byte of the input (nothing is silently
//!    dropped; the masking views depend on this).

use proptest::prelude::*;
use vod_analyze::lexer::{code_view, comment_view, lex, Token};

/// Rust-ish source fragments: the generator splices these together to
/// hit lexer states (raw strings, nested comments, lifetimes, byte
/// chars, unterminated constructs) far more often than uniform bytes
/// would.
const FRAGMENTS: &[&str] = &[
    "fn f() {",
    "}",
    "let x = ",
    "\"str with \\\" escape\"",
    "\"unterminated",
    "r#\"raw \" body\"#",
    "r#\"unterminated raw",
    "b'x'",
    "'c'",
    "'\\n'",
    "'lifetime",
    "&'a str",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "*/",
    "0x1f_u64",
    "1.5e-3",
    "1.",
    "..",
    "ident_07",
    "r#match",
    "::",
    ";\n",
    "#[cfg(test)]",
    "📦",
    "\\",
    "\u{0}",
];

fn check_spans(src: &str, tokens: &[Token]) -> Result<(), TestCaseError> {
    let mut covered = vec![false; src.len()];
    let mut prev_end = 0usize;
    for t in tokens {
        prop_assert!(t.start < t.end, "empty span {}..{}", t.start, t.end);
        prop_assert!(
            t.end <= src.len(),
            "span {}..{} out of bounds",
            t.start,
            t.end
        );
        prop_assert!(
            t.start >= prev_end,
            "overlap: token at {} starts before {}",
            t.start,
            prev_end
        );
        prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        for c in covered.iter_mut().take(t.end).skip(t.start) {
            *c = true;
        }
        prev_end = t.end;
    }
    for (i, ch) in src.char_indices() {
        prop_assert!(
            covered[i] || ch.is_whitespace(),
            "char at byte {i} ({ch:?}) neither tokenized nor whitespace"
        );
    }
    // The masking views must preserve length and newline geometry —
    // every downstream line number depends on it.
    for view in [code_view(src, tokens), comment_view(src, tokens)] {
        prop_assert_eq!(view.len(), src.len());
        for (a, b) in view.bytes().zip(src.bytes()) {
            prop_assert_eq!(a == b'\n', b == b'\n');
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn arbitrary_bytes_never_panic_and_spans_behave(
        bytes in prop::collection::vec(0u8..=255u8, 0..200)
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        check_spans(&src, &tokens)?;
    }

    #[test]
    fn rustish_fragment_soup_never_panics_and_spans_behave(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lex(&src);
        check_spans(&src, &tokens)?;
    }
}
