//! Golden-file tests: the interprocedural passes against the seeded
//! fixture crates under `tests/fixtures/`. Each fixture plants an
//! exact set of violations (and a few decoys that must stay silent);
//! these tests pin the complete finding set, not just its presence.

use vod_analyze::{analyze_sources, Finding, SourceFile};

/// Load a fixture file and present it to the analyzer under a synthetic
/// workspace path (which controls path-scoped rules like
/// `alloc-in-hot-loop`).
fn fixture(name: &str, mapped_path: &str) -> SourceFile {
    let disk = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let content = match std::fs::read_to_string(&disk) {
        Ok(c) => c,
        Err(e) => panic!("cannot read fixture {disk}: {e}"),
    };
    SourceFile {
        path: mapped_path.to_string(),
        content,
    }
}

fn triples(findings: &[Finding]) -> Vec<(String, String, usize)> {
    findings
        .iter()
        .map(|f| (f.kind.clone(), f.function.clone(), f.line))
        .collect()
}

#[test]
fn taint_fixture_reports_every_source_kind_exactly() {
    let files = [fixture("taint_sources.rs", "crates/fix/src/lib.rs")];
    let r = analyze_sources(&files, &["place_all"]);
    assert!(
        r.findings.iter().all(|f| f.rule == "determinism-taint"),
        "{:?}",
        r.findings
    );
    let got = triples(&r.findings);
    let s = String::from;
    let want = [
        ("hash-order".to_string(), s("pick_order"), 17),
        ("hash-order".to_string(), s("pick_order"), 17),
        ("hash-order".to_string(), s("pick_order"), 21),
        ("wall-clock".to_string(), s("jitter"), 27),
        ("unseeded-rng".to_string(), s("jitter"), 29),
        ("thread-id".to_string(), s("jitter"), 31),
        ("env-read".to_string(), s("load_popularity"), 37),
        ("fs-read".to_string(), s("load_popularity"), 39),
    ];
    let mut got_sorted = got.clone();
    got_sorted.sort();
    let mut want_sorted = want.to_vec();
    want_sorted.sort();
    assert_eq!(got_sorted, want_sorted);
    // Every finding carries a chain rooted at the sink.
    assert!(
        r.findings
            .iter()
            .all(|f| f.chain.first().map(String::as_str) == Some("place_all")),
        "{:?}",
        r.findings
    );
}

#[test]
fn panic_fixture_reports_only_the_reachable_unwrap() {
    let files = [fixture("panic_chain.rs", "crates/fix/src/lib.rs")];
    let r = analyze_sources(&files, &["simulate"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "panic-reachable");
    assert_eq!(f.kind, "unwrap");
    assert_eq!(f.function, "route");
    assert_eq!(f.chain, ["simulate", "admit", "route"]);
    // `offline_tool` (unreachable unwrap) and `skip_marker` (byte-
    // literal expect method) are both decoys the single assertion
    // above already excludes.
}

#[test]
fn alloc_fixture_reports_loop_allocations_only_in_hot_scope() {
    let hot = [fixture("alloc_hot_loop.rs", "crates/core/src/rounding.rs")];
    let r = analyze_sources(&hot, &["round_solution"]);
    assert!(
        r.findings.iter().all(|f| f.rule == "alloc-in-hot-loop"),
        "{:?}",
        r.findings
    );
    let mut got = triples(&r.findings);
    got.sort();
    let s = String::from;
    let mut want = vec![
        (s("vec-new"), s("round_solution"), 8),
        (s("push"), s("round_solution"), 9),
        (s("push"), s("round_solution"), 10),
        (s("clone"), s("round_solution"), 14),
    ];
    want.sort();
    assert_eq!(got, want);

    // The identical file outside the hot scope is silent.
    let cold = [fixture("alloc_hot_loop.rs", "crates/ops/src/lib.rs")];
    let r = analyze_sources(&cold, &["round_solution"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

/// Regression cover for the pre-PR-1 bug class: objective accumulation
/// over `HashMap` iteration order. The workspace is clean today; this
/// pins that the analyzer would catch the bug coming back.
#[test]
fn hashmap_iteration_bug_class_is_caught() {
    let files = [fixture("hashmap_iteration.rs", "crates/fix/src/lib.rs")];
    let r = analyze_sources(&files, &["solve_placement"]);
    let keys: std::collections::BTreeSet<String> = r.findings.iter().map(Finding::key).collect();
    assert_eq!(
        keys.into_iter().collect::<Vec<_>>(),
        ["determinism-taint|crates/fix/src/lib.rs|solve_placement|hash-order"]
    );
    // Both textual occurrences on the declaration line are reported.
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
    assert!(r.findings.iter().all(|f| f.line == 11), "{:?}", r.findings);
}
