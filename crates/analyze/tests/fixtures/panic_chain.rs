//! Fixture: a panic site three calls deep from the sink root — only
//! interprocedural reachability (not the textual module list) can see
//! it. Never compiled — parsed by `tests/golden_taint.rs`.

pub fn simulate(events: &[u64]) -> u64 {
    events.iter().map(|&e| admit(e)).sum()
}

fn admit(event: u64) -> u64 {
    skip_marker(event);
    route(event)
}

fn route(event: u64) -> u64 {
    // The seeded violation: an unwrap deep in the call chain.
    lookup(event).unwrap()
}

fn lookup(event: u64) -> Option<u64> {
    event.checked_mul(3)
}

/// Not reachable from `simulate`: must NOT be reported.
pub fn offline_tool(event: u64) -> u64 {
    lookup(event).unwrap()
}

/// A byte-literal `expect` is the JSON cursor's fallible *method*, not
/// `Option::expect` — reachable, but must NOT be reported.
fn skip_marker(event: u64) {
    cursor_for(event).expect(b'[');
}
