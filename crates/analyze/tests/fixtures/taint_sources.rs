//! Fixture: one seeded determinism-taint violation per source kind,
//! every one reachable from the sink root `place_all` through at least
//! one call. Never compiled — parsed by `tests/golden_taint.rs`.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

pub fn place_all(videos: usize) -> Vec<usize> {
    let mut out = pick_order(videos);
    jitter(&mut out);
    out
}

fn pick_order(videos: usize) -> Vec<usize> {
    // hash-order: iteration order of the map decides placement order.
    let mut popularity: HashMap<usize, u64> = HashMap::new();
    for v in 0..videos {
        popularity.insert(v, load_popularity(v));
    }
    let seen: HashSet<usize> = popularity.keys().copied().collect();
    seen.into_iter().collect()
}

fn jitter(order: &mut [usize]) {
    // wall-clock: a timing readout steers the result.
    let t = Instant::now();
    // unseeded-rng: ambient entropy instead of the run's seed.
    let mut rng = rand::thread_rng();
    // thread-id: scheduling decides the outcome.
    let tid = std::thread::current().id();
    mix(order, t, rng.next_u64(), tid);
}

fn load_popularity(v: usize) -> u64 {
    // env-read: ambient configuration changes the answer.
    let scale = std::env::var("POPULARITY_SCALE").ok();
    // fs-read: undeclared input file.
    let table = std::fs::read_to_string("popularity.txt").ok();
    fold(v, scale, table)
}
