//! Regression fixture for the pre-PR-1 bug class: accumulating
//! placement state by iterating a `HashMap`, which made two runs with
//! identical seeds disagree in the last ulps (iteration order changes
//! float summation order). The workspace itself is clean — this
//! fixture proves the analyzer would catch the bug's reintroduction.
//! Never compiled — parsed by `tests/golden_taint.rs`.

use std::collections::HashMap;

pub fn solve_placement(demands: &[(u32, f64)]) -> f64 {
    let mut per_vho: HashMap<u32, f64> = HashMap::new();
    for &(vho, demand) in demands {
        *per_vho.entry(vho).or_insert(0.0) += demand;
    }
    // The bug: summation order follows hash-iteration order.
    let mut objective = 0.0;
    for (_vho, demand) in &per_vho {
        objective += transfer_cost(*demand);
    }
    objective
}

fn transfer_cost(demand: f64) -> f64 {
    demand * 1.25
}
