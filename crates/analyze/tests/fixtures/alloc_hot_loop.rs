//! Fixture: allocations inside loop bodies of a hot-path module (the
//! golden test maps this file to a `flat_buffer_scope` path).
//! Never compiled — parsed by `tests/golden_taint.rs`.

pub fn round_solution(fractional: &[f64]) -> Vec<u32> {
    let mut placed = Vec::with_capacity(fractional.len()); // fine: outside any loop
    for &x in fractional {
        let mut scratch = Vec::new(); // seeded: vec-new in loop
        scratch.push(x); // seeded: push in loop
        placed.push(quantize(&scratch)); // seeded: second push, its own line
    }
    let mut total = 0u32;
    while total < 10 {
        let copy = placed.clone(); // seeded: clone in loop
        total += advance(&copy);
    }
    placed
}

fn quantize(xs: &[f64]) -> u32 {
    xs.len() as u32
}

/// Allocating outside a loop is fine even in hot-path modules.
pub fn setup(n: usize) -> Vec<f64> {
    let mut buf = Vec::new();
    buf.resize(n, 0.0);
    buf
}
