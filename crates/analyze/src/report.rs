//! Finding type, JSON rendering, and the checked-in baseline format.
//!
//! The baseline (`results/ANALYZE_baseline.json`) freezes pre-existing
//! findings by **key** — `rule|file|function|kind` — deliberately
//! omitting line numbers so unrelated edits that shift a finding a few
//! lines do not churn the file. CI fails only on keys absent from the
//! baseline; stale baseline keys (debt that got fixed) are reported so
//! the file can be re-generated with `cargo xtask analyze
//! --write-baseline`.
//!
//! JSON is rendered and parsed by hand: `vod-analyze` has zero
//! dependencies, and the formats involved are flat.

use std::collections::BTreeSet;
use std::fmt;

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name from [`crate::rules::ANALYZER_RULES`].
    pub rule: &'static str,
    /// Rule-specific kind, e.g. `wall-clock` or `push`.
    pub kind: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Qualified function name (`module::Owner::name`), or `-` when the
    /// finding is not attached to a function (e.g. a stale allow at
    /// module scope).
    pub function: String,
    /// Call chain from the sink root (empty for non-reachability rules).
    pub chain: Vec<String>,
    pub message: String,
}

impl Finding {
    /// Baseline identity: stable across line-number churn.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.rule, self.file, self.function, self.kind
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.rule, self.kind, self.message
        )
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the machine-readable findings report.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", escape(f.rule)));
        out.push_str(&format!("\"kind\": \"{}\", ", escape(&f.kind)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"function\": \"{}\", ", escape(&f.function)));
        out.push_str("\"chain\": [");
        for (j, c) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape(c)));
        }
        out.push_str("], ");
        out.push_str(&format!("\"message\": \"{}\", ", escape(&f.message)));
        out.push_str(&format!("\"key\": \"{}\"", escape(&f.key())));
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Render the baseline file: sorted, deduplicated keys only.
pub fn render_baseline(findings: &[Finding]) -> String {
    let keys: BTreeSet<String> = findings.iter().map(Finding::key).collect();
    let mut out = String::from("{\n  \"version\": 1,\n  \"keys\": [");
    for (i, k) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\"", escape(k)));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Parse a baseline file back into its key set.
///
/// The scanner accepts any JSON-ish text and extracts every quoted
/// string containing a `|` — exactly the strings `render_baseline`
/// emits as keys (rule names, paths, and function names never contain
/// `|`, and the only other strings in the file are `"version"` /
/// `"keys"`). Escapes are unescaped for the backslash/quote cases that
/// `escape` can produce.
pub fn parse_baseline(content: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = content.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        // Scan the quoted string.
        let mut j = i + 1;
        let mut s = String::new();
        let mut closed = false;
        while j < bytes.len() {
            match bytes[j] {
                b'"' => {
                    closed = true;
                    break;
                }
                b'\\' if j + 1 < bytes.len() => {
                    match bytes[j + 1] {
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        other => s.push(other as char),
                    }
                    j += 2;
                }
                _ => {
                    // Copy one UTF-8 scalar; multibyte continuation is
                    // handled by pushing raw bytes into a Vec instead.
                    let start = j;
                    j += 1;
                    while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                        j += 1;
                    }
                    s.push_str(&String::from_utf8_lossy(&bytes[start..j]));
                }
            }
        }
        if closed && s.contains('|') {
            keys.insert(s);
        }
        i = j + 1;
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "determinism-taint",
            kind: "wall-clock".to_string(),
            file: "crates/core/src/epf.rs".to_string(),
            line: 42,
            function: "epf::solve_fractional_driven".to_string(),
            chain: vec![
                "solve_placement".to_string(),
                "solve_fractional_driven".to_string(),
            ],
            message: "quote \" and backslash \\ survive".to_string(),
        }
    }

    #[test]
    fn key_omits_line_numbers() {
        let mut f = sample();
        let k1 = f.key();
        f.line = 999;
        assert_eq!(k1, f.key());
        assert_eq!(
            k1,
            "determinism-taint|crates/core/src/epf.rs|epf::solve_fractional_driven|wall-clock"
        );
    }

    #[test]
    fn baseline_roundtrips() {
        let f = sample();
        let text = render_baseline(std::slice::from_ref(&f));
        let keys = parse_baseline(&text);
        assert_eq!(keys.len(), 1);
        assert!(keys.contains(&f.key()));
    }

    #[test]
    fn baseline_keys_are_sorted_and_deduped() {
        let mut a = sample();
        a.kind = "zzz".to_string();
        let b = sample();
        let text = render_baseline(&[a.clone(), b.clone(), b.clone()]);
        let first = text.find(&b.key()).unwrap_or(usize::MAX);
        let second = text.find(&a.key()).unwrap_or(0);
        assert!(first < second, "{text}");
        assert_eq!(parse_baseline(&text).len(), 2);
    }

    #[test]
    fn json_report_escapes_specials() {
        let text = render_json(&[sample()]);
        assert!(text.contains("quote \\\" and backslash \\\\ survive"));
        assert!(text.contains("\"line\": 42"));
        assert!(text.contains("\"chain\": [\"solve_placement\", \"solve_fractional_driven\"]"));
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let text = render_json(&[]);
        assert!(text.contains("\"findings\": [\n  ]"));
        assert!(parse_baseline(&render_baseline(&[])).is_empty());
    }
}
