//! Name-resolution-approximate call graph + reachability.
//!
//! Edges are resolved by callee name, refined by the qualifier when it
//! names a known owner type: `PenaltyArena::new(...)` resolves only to
//! `fn new` items owned by `impl PenaltyArena`, while a bare `new(...)`
//! or `.next(...)` resolves to every function of that name. This
//! over-approximates the true call relation (extra edges → extra
//! reachability → at worst an extra finding the baseline absorbs) and
//! never under-approximates it for workspace-local callees, which is
//! the property the determinism-taint pass needs.
//!
//! Test-only functions are excluded as nodes: library code cannot call
//! them, and test helpers are allowed to panic, allocate, and read the
//! clock at will.

use crate::items::FnItem;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Call graph over an indexed function inventory.
#[derive(Debug)]
pub struct CallGraph {
    /// name → indices of non-test fns with that name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// adjacency: fn index → callee fn indices (sorted, deduped).
    edges: Vec<Vec<usize>>,
}

/// Reachability result: which functions are transitively called from
/// the roots, and via which (shortest) chain.
#[derive(Debug)]
pub struct Reachability {
    /// fn index → index of the BFS parent (None for roots).
    parent: BTreeMap<usize, Option<usize>>,
}

impl CallGraph {
    pub fn build(fns: &[FnItem]) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &f.calls {
                let Some(candidates) = by_name.get(&call.name) else {
                    continue;
                };
                // Qualifier refinement: `Owner::name(...)` binds to
                // fns owned by `Owner` when any exist; `Self::name`
                // binds within the caller's own impl.
                let narrowed: Vec<usize> = match call.qualifier.as_deref() {
                    Some("Self") => candidates
                        .iter()
                        .copied()
                        .filter(|&j| fns[j].owner == f.owner && f.owner.is_some())
                        .collect(),
                    Some(q) => candidates
                        .iter()
                        .copied()
                        .filter(|&j| fns[j].owner.as_deref() == Some(q))
                        .collect(),
                    // `.name(...)` can only land on an impl method,
                    // never a free function.
                    None if call.method => candidates
                        .iter()
                        .copied()
                        .filter(|&j| fns[j].owner.is_some())
                        .collect(),
                    None => Vec::new(),
                };
                let chosen: &[usize] = if narrowed.is_empty() {
                    candidates
                } else {
                    &narrowed
                };
                out.extend(chosen.iter().copied());
            }
            out.remove(&i); // self-recursion adds nothing
            edges[i] = out.into_iter().collect();
        }
        Self { by_name, edges }
    }

    /// All non-test fns with the given simple name.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// BFS from every function whose *name* is in `roots`. Deterministic:
    /// roots and adjacency are visited in sorted order.
    pub fn reachable_from(&self, roots: &[&str]) -> Reachability {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut root_idxs: Vec<usize> = roots
            .iter()
            .flat_map(|r| self.fns_named(r).iter().copied())
            .collect();
        root_idxs.sort_unstable();
        root_idxs.dedup();
        for r in root_idxs {
            parent.insert(r, None);
            queue.push_back(r);
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                    e.insert(Some(u));
                    queue.push_back(v);
                }
            }
        }
        Reachability { parent }
    }
}

impl Reachability {
    pub fn contains(&self, fn_idx: usize) -> bool {
        self.parent.contains_key(&fn_idx)
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Shortest call chain root → … → `fn_idx`, as qualified names.
    pub fn chain(&self, fns: &[FnItem], fn_idx: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = Some(fn_idx);
        while let Some(i) = cur {
            rev.push(fns[i].qual());
            match self.parent.get(&i) {
                Some(Some(p)) => cur = Some(*p),
                _ => cur = None,
            }
        }
        rev.reverse();
        rev
    }

    /// Iterate reachable fn indices in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.parent.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{extract_fns, ParsedFile};

    fn graph_of(src: &str) -> (Vec<FnItem>, CallGraph) {
        let pf = ParsedFile::new("crates/x/src/lib.rs".to_string(), src.to_string());
        let fns = extract_fns(&pf);
        let g = CallGraph::build(&fns);
        (fns, g)
    }

    #[test]
    fn reaches_transitive_callees() {
        let (fns, g) = graph_of(
            "fn root() { a(); }
             fn a() { b(); }
             fn b() {}
             fn unrelated() {}",
        );
        let r = g.reachable_from(&["root"]);
        let names: Vec<&str> = r.iter().map(|i| fns[i].name.as_str()).collect();
        assert_eq!(names, ["root", "a", "b"]);
        let b = fns.iter().position(|f| f.name == "b").unwrap_or(0);
        assert_eq!(r.chain(&fns, b), ["root", "a", "b"]);
    }

    #[test]
    fn qualifier_narrows_resolution() {
        let (fns, g) = graph_of(
            "struct A; struct B;
             impl A { fn make() { only_a(); } }
             impl B { fn make() { only_b(); } }
             fn only_a() {}
             fn only_b() {}
             fn root() { A::make(); }",
        );
        let r = g.reachable_from(&["root"]);
        let names: Vec<&str> = r
            .iter()
            .map(|i| fns[i].qual())
            .map(|q| {
                // leak a &str for assert simplicity
                Box::leak(q.into_boxed_str()) as &str
            })
            .collect();
        assert!(names.contains(&"A::make"), "{names:?}");
        assert!(names.contains(&"only_a"), "{names:?}");
        assert!(!names.contains(&"B::make"), "{names:?}");
        assert!(!names.contains(&"only_b"), "{names:?}");
    }

    #[test]
    fn method_calls_over_approximate() {
        let (fns, g) = graph_of(
            "impl C { fn step(&self) { dangerous(); } }
             fn dangerous() {}
             fn root(c: &C) { c.step(); }",
        );
        let r = g.reachable_from(&["root"]);
        let names: Vec<String> = r.iter().map(|i| fns[i].qual()).collect();
        assert!(names.iter().any(|n| n == "dangerous"), "{names:?}");
    }

    #[test]
    fn method_calls_do_not_resolve_to_free_fns() {
        let (fns, g) = graph_of(
            "impl Pool { fn run(&self) { fine(); } }
             fn fine() {}
             fn run() { free_danger(); }
             fn free_danger() {}
             fn root(p: &Pool) { p.run(); }",
        );
        let r = g.reachable_from(&["root"]);
        let names: Vec<String> = r.iter().map(|i| fns[i].qual()).collect();
        assert!(names.iter().any(|n| n == "Pool::run"), "{names:?}");
        assert!(names.iter().all(|n| n != "free_danger"), "{names:?}");
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let (fns, g) = graph_of(
            "fn root() { helper(); }
             fn helper() {}
             #[cfg(test)]
             mod tests {
                 fn helper() { super::forbidden(); }
             }
             fn forbidden() {}",
        );
        let r = g.reachable_from(&["root"]);
        let names: Vec<&str> = r.iter().map(|i| fns[i].name.as_str()).collect();
        assert!(!names.contains(&"forbidden"), "{names:?}");
    }
}
